file(REMOVE_RECURSE
  "libomx_nas.a"
)
