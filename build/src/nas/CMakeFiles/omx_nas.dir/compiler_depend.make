# Empty compiler generated dependencies file for omx_nas.
# This may be replaced when dependencies are built.
