# Empty dependencies file for omx_nas.
# This may be replaced when dependencies are built.
