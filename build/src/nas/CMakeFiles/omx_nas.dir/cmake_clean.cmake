file(REMOVE_RECURSE
  "CMakeFiles/omx_nas.dir/is_kernel.cpp.o"
  "CMakeFiles/omx_nas.dir/is_kernel.cpp.o.d"
  "libomx_nas.a"
  "libomx_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
