file(REMOVE_RECURSE
  "CMakeFiles/omx_mpi.dir/comm.cpp.o"
  "CMakeFiles/omx_mpi.dir/comm.cpp.o.d"
  "libomx_mpi.a"
  "libomx_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
