file(REMOVE_RECURSE
  "libomx_mpi.a"
)
