# Empty dependencies file for omx_mpi.
# This may be replaced when dependencies are built.
