# Empty compiler generated dependencies file for omx_core.
# This may be replaced when dependencies are built.
