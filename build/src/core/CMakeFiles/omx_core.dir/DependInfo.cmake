
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/driver.cpp" "src/core/CMakeFiles/omx_core.dir/driver.cpp.o" "gcc" "src/core/CMakeFiles/omx_core.dir/driver.cpp.o.d"
  "/root/repo/src/core/endpoint.cpp" "src/core/CMakeFiles/omx_core.dir/endpoint.cpp.o" "gcc" "src/core/CMakeFiles/omx_core.dir/endpoint.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/core/CMakeFiles/omx_core.dir/node.cpp.o" "gcc" "src/core/CMakeFiles/omx_core.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/omx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
