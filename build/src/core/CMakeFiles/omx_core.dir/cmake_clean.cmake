file(REMOVE_RECURSE
  "CMakeFiles/omx_core.dir/driver.cpp.o"
  "CMakeFiles/omx_core.dir/driver.cpp.o.d"
  "CMakeFiles/omx_core.dir/endpoint.cpp.o"
  "CMakeFiles/omx_core.dir/endpoint.cpp.o.d"
  "CMakeFiles/omx_core.dir/node.cpp.o"
  "CMakeFiles/omx_core.dir/node.cpp.o.d"
  "libomx_core.a"
  "libomx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
