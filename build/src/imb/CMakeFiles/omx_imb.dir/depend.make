# Empty dependencies file for omx_imb.
# This may be replaced when dependencies are built.
