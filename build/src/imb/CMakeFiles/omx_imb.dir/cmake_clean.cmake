file(REMOVE_RECURSE
  "CMakeFiles/omx_imb.dir/imb.cpp.o"
  "CMakeFiles/omx_imb.dir/imb.cpp.o.d"
  "libomx_imb.a"
  "libomx_imb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_imb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
