file(REMOVE_RECURSE
  "libomx_imb.a"
)
