file(REMOVE_RECURSE
  "CMakeFiles/omx_sim.dir/sim_thread.cpp.o"
  "CMakeFiles/omx_sim.dir/sim_thread.cpp.o.d"
  "libomx_sim.a"
  "libomx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
