# Empty dependencies file for omx_sim.
# This may be replaced when dependencies are built.
