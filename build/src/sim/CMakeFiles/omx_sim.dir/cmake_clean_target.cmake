file(REMOVE_RECURSE
  "libomx_sim.a"
)
