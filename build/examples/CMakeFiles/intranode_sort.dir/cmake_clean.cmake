file(REMOVE_RECURSE
  "CMakeFiles/intranode_sort.dir/intranode_sort.cpp.o"
  "CMakeFiles/intranode_sort.dir/intranode_sort.cpp.o.d"
  "intranode_sort"
  "intranode_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intranode_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
