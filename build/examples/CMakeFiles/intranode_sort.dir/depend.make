# Empty dependencies file for intranode_sort.
# This may be replaced when dependencies are built.
