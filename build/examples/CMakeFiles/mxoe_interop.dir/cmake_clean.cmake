file(REMOVE_RECURSE
  "CMakeFiles/mxoe_interop.dir/mxoe_interop.cpp.o"
  "CMakeFiles/mxoe_interop.dir/mxoe_interop.cpp.o.d"
  "mxoe_interop"
  "mxoe_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mxoe_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
