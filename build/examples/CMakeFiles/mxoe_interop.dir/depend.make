# Empty dependencies file for mxoe_interop.
# This may be replaced when dependencies are built.
