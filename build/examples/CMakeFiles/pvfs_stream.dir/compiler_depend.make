# Empty compiler generated dependencies file for pvfs_stream.
# This may be replaced when dependencies are built.
