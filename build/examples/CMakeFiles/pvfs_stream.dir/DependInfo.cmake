
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pvfs_stream.cpp" "examples/CMakeFiles/pvfs_stream.dir/pvfs_stream.cpp.o" "gcc" "examples/CMakeFiles/pvfs_stream.dir/pvfs_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/omx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/omx_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/imb/CMakeFiles/omx_imb.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/omx_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
