file(REMOVE_RECURSE
  "CMakeFiles/pvfs_stream.dir/pvfs_stream.cpp.o"
  "CMakeFiles/pvfs_stream.dir/pvfs_stream.cpp.o.d"
  "pvfs_stream"
  "pvfs_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
