# Empty compiler generated dependencies file for omx_info.
# This may be replaced when dependencies are built.
