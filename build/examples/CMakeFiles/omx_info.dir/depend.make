# Empty dependencies file for omx_info.
# This may be replaced when dependencies are built.
