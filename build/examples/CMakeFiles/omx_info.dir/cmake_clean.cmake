file(REMOVE_RECURSE
  "CMakeFiles/omx_info.dir/omx_info.cpp.o"
  "CMakeFiles/omx_info.dir/omx_info.cpp.o.d"
  "omx_info"
  "omx_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
