# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pvfs_stream "/root/repo/build/examples/pvfs_stream")
set_tests_properties(example_pvfs_stream PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_halo_exchange "/root/repo/build/examples/halo_exchange")
set_tests_properties(example_halo_exchange PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_intranode_sort "/root/repo/build/examples/intranode_sort")
set_tests_properties(example_intranode_sort PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mxoe_interop "/root/repo/build/examples/mxoe_interop")
set_tests_properties(example_mxoe_interop PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_omx_info "/root/repo/build/examples/omx_info")
set_tests_properties(example_omx_info PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
