file(REMOVE_RECURSE
  "CMakeFiles/test_omx.dir/test_omx.cpp.o"
  "CMakeFiles/test_omx.dir/test_omx.cpp.o.d"
  "test_omx"
  "test_omx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
