# Empty dependencies file for test_omx.
# This may be replaced when dependencies are built.
