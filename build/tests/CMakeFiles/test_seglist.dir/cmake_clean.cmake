file(REMOVE_RECURSE
  "CMakeFiles/test_seglist.dir/test_seglist.cpp.o"
  "CMakeFiles/test_seglist.dir/test_seglist.cpp.o.d"
  "test_seglist"
  "test_seglist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seglist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
