# Empty dependencies file for test_seglist.
# This may be replaced when dependencies are built.
