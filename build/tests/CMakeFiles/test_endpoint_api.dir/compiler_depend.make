# Empty compiler generated dependencies file for test_endpoint_api.
# This may be replaced when dependencies are built.
