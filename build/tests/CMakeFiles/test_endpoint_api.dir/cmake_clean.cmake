file(REMOVE_RECURSE
  "CMakeFiles/test_endpoint_api.dir/test_endpoint_api.cpp.o"
  "CMakeFiles/test_endpoint_api.dir/test_endpoint_api.cpp.o.d"
  "test_endpoint_api"
  "test_endpoint_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_endpoint_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
