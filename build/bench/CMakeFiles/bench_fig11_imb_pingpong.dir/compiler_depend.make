# Empty compiler generated dependencies file for bench_fig11_imb_pingpong.
# This may be replaced when dependencies are built.
