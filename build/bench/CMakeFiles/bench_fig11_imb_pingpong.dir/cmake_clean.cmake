file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_imb_pingpong.dir/bench_fig11_imb_pingpong.cpp.o"
  "CMakeFiles/bench_fig11_imb_pingpong.dir/bench_fig11_imb_pingpong.cpp.o.d"
  "bench_fig11_imb_pingpong"
  "bench_fig11_imb_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_imb_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
