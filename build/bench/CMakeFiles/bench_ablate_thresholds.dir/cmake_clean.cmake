file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_thresholds.dir/bench_ablate_thresholds.cpp.o"
  "CMakeFiles/bench_ablate_thresholds.dir/bench_ablate_thresholds.cpp.o.d"
  "bench_ablate_thresholds"
  "bench_ablate_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
