file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_overlap.dir/bench_ablate_overlap.cpp.o"
  "CMakeFiles/bench_ablate_overlap.dir/bench_ablate_overlap.cpp.o.d"
  "bench_ablate_overlap"
  "bench_ablate_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
