# Empty dependencies file for bench_ablate_overlap.
# This may be replaced when dependencies are built.
