file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_cleanup.dir/bench_ablate_cleanup.cpp.o"
  "CMakeFiles/bench_ablate_cleanup.dir/bench_ablate_cleanup.cpp.o.d"
  "bench_ablate_cleanup"
  "bench_ablate_cleanup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_cleanup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
