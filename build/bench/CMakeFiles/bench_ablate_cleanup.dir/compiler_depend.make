# Empty compiler generated dependencies file for bench_ablate_cleanup.
# This may be replaced when dependencies are built.
