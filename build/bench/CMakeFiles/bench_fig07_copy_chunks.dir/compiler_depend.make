# Empty compiler generated dependencies file for bench_fig07_copy_chunks.
# This may be replaced when dependencies are built.
