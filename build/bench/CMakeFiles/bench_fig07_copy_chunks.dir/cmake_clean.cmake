file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_copy_chunks.dir/bench_fig07_copy_chunks.cpp.o"
  "CMakeFiles/bench_fig07_copy_chunks.dir/bench_fig07_copy_chunks.cpp.o.d"
  "bench_fig07_copy_chunks"
  "bench_fig07_copy_chunks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_copy_chunks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
