file(REMOVE_RECURSE
  "CMakeFiles/bench_nas_is.dir/bench_nas_is.cpp.o"
  "CMakeFiles/bench_nas_is.dir/bench_nas_is.cpp.o.d"
  "bench_nas_is"
  "bench_nas_is.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nas_is.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
