# Empty compiler generated dependencies file for bench_nas_is.
# This may be replaced when dependencies are built.
