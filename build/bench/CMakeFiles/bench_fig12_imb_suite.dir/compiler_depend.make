# Empty compiler generated dependencies file for bench_fig12_imb_suite.
# This may be replaced when dependencies are built.
