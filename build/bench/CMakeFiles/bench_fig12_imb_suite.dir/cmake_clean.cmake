file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_imb_suite.dir/bench_fig12_imb_suite.cpp.o"
  "CMakeFiles/bench_fig12_imb_suite.dir/bench_fig12_imb_suite.cpp.o.d"
  "bench_fig12_imb_suite"
  "bench_fig12_imb_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_imb_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
