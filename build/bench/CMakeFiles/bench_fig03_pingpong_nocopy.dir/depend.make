# Empty dependencies file for bench_fig03_pingpong_nocopy.
# This may be replaced when dependencies are built.
