file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_pingpong_nocopy.dir/bench_fig03_pingpong_nocopy.cpp.o"
  "CMakeFiles/bench_fig03_pingpong_nocopy.dir/bench_fig03_pingpong_nocopy.cpp.o.d"
  "bench_fig03_pingpong_nocopy"
  "bench_fig03_pingpong_nocopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_pingpong_nocopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
