file(REMOVE_RECURSE
  "CMakeFiles/bench_ioat_micro.dir/bench_ioat_micro.cpp.o"
  "CMakeFiles/bench_ioat_micro.dir/bench_ioat_micro.cpp.o.d"
  "bench_ioat_micro"
  "bench_ioat_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ioat_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
