file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_shm.dir/bench_fig10_shm.cpp.o"
  "CMakeFiles/bench_fig10_shm.dir/bench_fig10_shm.cpp.o.d"
  "bench_fig10_shm"
  "bench_fig10_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
