# Empty dependencies file for bench_fig10_shm.
# This may be replaced when dependencies are built.
