# Empty compiler generated dependencies file for bench_ablate_sleep.
# This may be replaced when dependencies are built.
