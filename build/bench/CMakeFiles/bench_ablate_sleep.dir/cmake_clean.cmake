file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_sleep.dir/bench_ablate_sleep.cpp.o"
  "CMakeFiles/bench_ablate_sleep.dir/bench_ablate_sleep.cpp.o.d"
  "bench_ablate_sleep"
  "bench_ablate_sleep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_sleep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
