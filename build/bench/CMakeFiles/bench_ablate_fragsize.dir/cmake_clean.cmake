file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_fragsize.dir/bench_ablate_fragsize.cpp.o"
  "CMakeFiles/bench_ablate_fragsize.dir/bench_ablate_fragsize.cpp.o.d"
  "bench_ablate_fragsize"
  "bench_ablate_fragsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_fragsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
