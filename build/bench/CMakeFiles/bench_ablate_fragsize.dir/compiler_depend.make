# Empty compiler generated dependencies file for bench_ablate_fragsize.
# This may be replaced when dependencies are built.
