# Empty dependencies file for bench_medium_sync.
# This may be replaced when dependencies are built.
