file(REMOVE_RECURSE
  "CMakeFiles/bench_medium_sync.dir/bench_medium_sync.cpp.o"
  "CMakeFiles/bench_medium_sync.dir/bench_medium_sync.cpp.o.d"
  "bench_medium_sync"
  "bench_medium_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_medium_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
