file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_channels.dir/bench_ablate_channels.cpp.o"
  "CMakeFiles/bench_ablate_channels.dir/bench_ablate_channels.cpp.o.d"
  "bench_ablate_channels"
  "bench_ablate_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
