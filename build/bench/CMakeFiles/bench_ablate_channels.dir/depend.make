# Empty dependencies file for bench_ablate_channels.
# This may be replaced when dependencies are built.
