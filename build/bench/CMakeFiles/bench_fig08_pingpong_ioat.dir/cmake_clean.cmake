file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_pingpong_ioat.dir/bench_fig08_pingpong_ioat.cpp.o"
  "CMakeFiles/bench_fig08_pingpong_ioat.dir/bench_fig08_pingpong_ioat.cpp.o.d"
  "bench_fig08_pingpong_ioat"
  "bench_fig08_pingpong_ioat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_pingpong_ioat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
