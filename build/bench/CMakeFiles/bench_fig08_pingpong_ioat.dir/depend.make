# Empty dependencies file for bench_fig08_pingpong_ioat.
# This may be replaced when dependencies are built.
