// omx_benchdiff: cross-run bench analytics.
//
// Diffs two trees of BENCH_*_metrics.json files — typically a fresh run
// directory against the committed bench/baselines/ — and emits a
// markdown regression/improvement report.  Direction heuristics decide
// whether a metric moving up is good (throughput), bad (latency, stalls,
// faults) or neutral (behavioral event counters), and tolerance bands
// keep the report noise-aware: the guard baseline's per-row "tol" values
// apply where names match, wall-clock-derived metrics get a wide band,
// everything else the --tol default.  Identical trees always produce an
// empty diff (the deterministic counters byte-match), so a same-commit
// re-run can never report a spurious regression.
//
// Usage: omx_benchdiff [--base DIR] [--cur DIR] [--out REPORT.md]
//                      [--guard GUARD.json] [--tol FRAC] [--strict]
// Defaults: base = bench/baselines, cur = $OMX_BENCH_OUT_DIR (or "."),
// guard = <base>/guard.json, report to stdout.  --strict exits 1 when
// any regression is flagged (CI uses the default so the report uploads
// even on a bad day).
//
// With no arguments and no metrics in the current directory, runs a
// self-demo: diffs the committed baselines against themselves (must be
// empty) and against a synthetically perturbed copy — which doubles as
// the example smoke test.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "bench/common.hpp"
#include "obs/benchdiff.hpp"

using namespace openmx;
namespace bd = obs::benchdiff;

namespace {

/// Locates bench/baselines relative to the current directory (works from
/// the repo root and from a build subdirectory).
std::string find_baselines() {
  namespace fs = std::filesystem;
  for (const char* c : {"bench/baselines", "../bench/baselines",
                        "../../bench/baselines"})
    if (fs::exists(fs::path(c) / "guard.json")) return c;
  return "bench/baselines";
}

int self_demo(const std::string& base_dir) {
  std::printf("omx_benchdiff self-demo: %s vs itself\n", base_dir.c_str());
  bd::Tolerances tol;
  bd::load_guard_tolerances(base_dir + "/guard.json", tol);
  const auto base = bd::load_tree(base_dir);
  if (base.empty()) {
    std::fprintf(stderr, "no BENCH_*_metrics.json under %s\n",
                 base_dir.c_str());
    return 2;
  }
  bd::Report same = bd::diff_trees(base, base, tol);
  bd::write_markdown(stdout, same, base_dir, base_dir);
  if (!same.rows.empty()) {
    std::fprintf(stderr, "FAIL: identical trees produced %zu findings\n",
                 same.rows.size());
    return 1;
  }

  // Perturb one throughput metric by -20 % and show the flagged report.
  auto cur = base;
  for (auto& [bench, mm] : cur) {
    for (auto& [name, v] : mm) {
      if (bd::direction(name) > 0 && v > 0) {
        std::printf("\ninjecting -20%% into %s / %s\n\n", bench.c_str(),
                    name.c_str());
        v *= 0.8;
        bd::Report rep = bd::diff_trees(base, cur, tol);
        bd::write_markdown(stdout, rep, base_dir, "(perturbed copy)");
        return rep.count(bd::Status::kRegression) == 1 ? 0 : 1;
      }
    }
  }
  std::fprintf(stderr, "no perturbable metric found\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_dir;
  std::string cur_dir;
  std::string out_file;
  std::string guard_file;
  bd::Tolerances tol;
  bool strict = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--base") {
      base_dir = next();
    } else if (arg == "--cur") {
      cur_dir = next();
    } else if (arg == "--out") {
      out_file = next();
    } else if (arg == "--guard") {
      guard_file = next();
    } else if (arg == "--tol") {
      tol.default_band = std::strtod(next(), nullptr);
    } else if (arg == "--strict") {
      strict = true;
    } else {
      std::fprintf(stderr,
                   "usage: omx_benchdiff [--base DIR] [--cur DIR] "
                   "[--out REPORT.md] [--guard GUARD.json] [--tol FRAC] "
                   "[--strict]\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  if (base_dir.empty()) base_dir = find_baselines();
  if (guard_file.empty()) guard_file = base_dir + "/guard.json";
  if (cur_dir.empty()) {
    const char* env = std::getenv("OMX_BENCH_OUT_DIR");
    cur_dir = env && *env ? env : ".";
    // Bare invocation with nothing to compare: run the self-demo instead
    // of reporting an empty diff (this is the example smoke-test path).
    if (argc == 1 && bd::load_tree(cur_dir).empty())
      return self_demo(base_dir);
  }

  bd::load_guard_tolerances(guard_file, tol);
  const auto base = bd::load_tree(base_dir);
  const auto cur = bd::load_tree(cur_dir);
  if (base.empty() || cur.empty()) {
    std::fprintf(stderr, "no BENCH_*_metrics.json found (base %s: %zu, cur "
                 "%s: %zu)\n",
                 base_dir.c_str(), base.size(), cur_dir.c_str(), cur.size());
    return 2;
  }

  const bd::Report rep = bd::diff_trees(base, cur, tol);
  if (out_file.empty()) {
    bd::write_markdown(stdout, rep, base_dir, cur_dir);
  } else {
    const std::string path = bench::out_path(out_file);
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      bd::write_markdown(f, rep, base_dir, cur_dir);
      std::fclose(f);
      std::printf("report written to %s (%zu regressions, %zu improvements)\n",
                  path.c_str(), rep.count(bd::Status::kRegression),
                  rep.count(bd::Status::kImprovement));
    } else {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 2;
    }
  }
  return strict && rep.count(bd::Status::kRegression) ? 1 : 0;
}
