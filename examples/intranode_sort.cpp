// Intra-node NAS-IS: all four ranks on one node, so every byte moves
// through the driver's shared-memory one-copy path (Section III-C) —
// the scenario where synchronous I/OAT copies nearly double large-message
// throughput (Figure 10).
#include <cstdio>

#include "core/cluster.hpp"
#include "mpi/world.hpp"
#include "nas/is_kernel.hpp"

using namespace openmx;

namespace {

nas::IsResult run(bool ioat, std::size_t keys) {
  core::OmxConfig cfg;
  cfg.ioat_shm = ioat;
  cfg.ioat_shm_min_msg = 64 * sim::KiB;  // the paper plans to lower the
                                         // threshold for uncached peers
  core::Cluster cluster;
  cluster.add_node(cfg);
  // Four processes on cores 0,2,4,6: four different subchips, so every
  // copy crosses an L2 boundary (the I/OAT-friendly placement).
  mpi::World world(cluster, {{0, 0}, {0, 2}, {0, 4}, {0, 6}});
  nas::IsResult out;
  nas::IsParams params;
  params.keys_per_rank = keys;
  world.run([&](mpi::Comm& c) {
    const nas::IsResult r = nas::run_is(c, params);
    if (c.rank() == 0) out = r;
  });
  return out;
}

}  // namespace

int main() {
  std::printf("=== intra-node IS sort, 4 processes on 4 subchips ===\n");
  std::printf("%-12s %16s %16s %10s %8s\n", "keys/rank", "memcpy us/iter",
              "I/OAT us/iter", "speedup", "sorted");
  for (std::size_t keys : {1u << 16, 1u << 18, 1u << 20}) {
    const nas::IsResult a = run(false, keys);
    const nas::IsResult b = run(true, keys);
    std::printf("%-12zu %16.1f %16.1f %9.1f%% %8s\n", keys,
                sim::to_micros(a.time_per_iteration),
                sim::to_micros(b.time_per_iteration),
                100.0 * (static_cast<double>(a.time_per_iteration) /
                             static_cast<double>(b.time_per_iteration) -
                         1.0),
                (a.sorted && b.sorted) ? "yes" : "NO");
  }
  return 0;
}
