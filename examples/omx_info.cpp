// omx_info: prints the simulated platform and stack configuration, the
// calibration table behind the cost models, and the auto-tuned offload
// thresholds — the moral equivalent of the real Open-MX's omx_info tool.
#include <cstdio>

#include "core/cluster.hpp"
#include "core/driver.hpp"
#include "obs/wallprof.hpp"

using namespace openmx;

int main() {
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  cfg.ioat_shm = true;
  cfg.autotune_thresholds = true;
  core::Cluster cluster;
  cluster.add_nodes(1, cfg);
  core::Node& n = cluster.node(0);
  const core::NodeParams& p = n.params();
  const auto& tuned = n.driver().config();

  std::printf("Open-MX (simulated) — I/OAT copy-offload build\n");
  std::printf("================================================\n\n");

  std::printf("platform\n");
  std::printf("  CPUs:            2 sockets x 2 subchips x 2 cores "
              "(Xeon E5345 'Clovertown' @2.33 GHz)\n");
  std::printf("  shared L2:       %zu MiB per dual-core subchip\n",
              p.l2_bytes / sim::MiB);
  std::printf("  chipset:         Intel 5000X with I/OAT DMA engine "
              "(%d channels)\n", n.ioat().num_channels());
  std::printf("  NIC:             10 GbE, line rate 1186 MiB/s, "
              "MTU %zu\n\n", n.network().params().mtu);

  std::printf("copy engines (calibrated to the paper, Section IV-A)\n");
  std::printf("  memcpy uncached: %.2f GiB/s\n",
              p.memcpy_model.uncached_bw / static_cast<double>(sim::GiB));
  std::printf("  memcpy cached:   %.1f GiB/s\n",
              p.memcpy_model.cached_bw / static_cast<double>(sim::GiB));
  std::printf("  memcpy contended:%.2f GiB/s (NIC DMA active)\n",
              p.memcpy_model.contended_bw / static_cast<double>(sim::GiB));
  std::printf("  I/OAT submit:    %ld ns/descriptor\n",
              static_cast<long>(p.ioat.submit_ns));
  std::printf("  I/OAT stream:    %.2f GiB/s per channel, %.2f GiB/s "
              "aggregate\n",
              p.ioat.engine_bw / static_cast<double>(sim::GiB),
              p.ioat.aggregate_bw / static_cast<double>(sim::GiB));
  std::printf("  pinning:         %ld ns + %ld ns/page\n\n",
              static_cast<long>(p.pin_model.base_ns),
              static_cast<long>(p.pin_model.per_page_ns));

  std::printf("protocol\n");
  std::printf("  fragment:        %zu B (page-based)\n", tuned.frag_payload);
  std::printf("  eager max:       %zu kB (rendezvous above)\n",
              tuned.eager_max / sim::KiB);
  std::printf("  pull window:     %d blocks x %d fragments\n",
              tuned.pull_blocks_outstanding, tuned.pull_block_frags);
  std::printf("  retransmit:      %.0f us base, exponential backoff, "
              "adaptive floor\n\n",
              sim::to_micros(tuned.retrans_timeout));

  std::printf("I/OAT offload\n");
  std::printf("  large receive:   %s\n",
              tuned.ioat_large ? "enabled (overlapped)" : "disabled");
  std::printf("  medium receive:  %s\n",
              tuned.ioat_medium ? "enabled (synchronous)" : "disabled");
  std::printf("  shared memory:   %s (>= %zu kB)\n",
              tuned.ioat_shm ? "enabled" : "disabled",
              tuned.ioat_shm_min_msg / sim::KiB);
  std::printf("  thresholds:      fragments >= %zu B, messages >= %zu kB "
              "(auto-tuned; paper: 1 kB / 64 kB)\n",
              tuned.ioat_min_frag, tuned.ioat_min_msg / sim::KiB);
  std::printf("  regcache:        %s\n",
              tuned.regcache ? "enabled" : "disabled");

  const obs::WallProfiler& prof = obs::WallProfiler::instance();
  std::printf("\nhost wall-clock profiler (obs::WallProfiler)\n");
  std::printf("  compiled in:     %s (ENABLE_WALLPROF)\n",
              obs::WallProfiler::compiled_in() ? "yes" : "no");
  std::printf("  runtime:         %s (OMX_WALLPROF=0 disables)\n",
              prof.enabled() ? "enabled" : "disabled");
  std::printf("  clock source:    %s (%.4f ns/tick)\n", prof.clock_name(),
              prof.ns_per_tick());
  std::printf("  zones interned:  %zu across %zu registered threads\n",
              prof.num_zones(), prof.num_threads());
  return 0;
}
