// Quickstart: the smallest complete Open-MX program on the simulated
// testbed — two nodes, one endpoint each, one eager and one rendezvous
// message, with and without I/OAT copy offload.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/cluster.hpp"
#include "core/endpoint.hpp"
#include "mem/aligned_buffer.hpp"

using namespace openmx;

int main() {
  // 1. Configure the stack: this is the paper's contribution switch.
  core::OmxConfig config;
  config.ioat_large = true;  // offload large receive copies to the DMA engine

  // 2. Build a two-node cluster (dual quad-core Xeons, 10 GbE back-to-back).
  core::Cluster cluster;
  cluster.add_nodes(2, config);

  // 3. Application buffers.
  mem::Buffer small_msg(1024);
  std::iota(small_msg.begin(), small_msg.end(), 0);
  mem::Buffer large_msg(2 * sim::MiB, 0x5A);
  mem::Buffer recv_small(small_msg.size());
  mem::Buffer recv_large(large_msg.size());

  // 4. One process per node, written in plain blocking style.
  cluster.spawn(cluster.node(0), /*core=*/0, "sender", [&](core::Process& p) {
    core::Endpoint ep(p, /*endpoint_id=*/0);
    const core::Addr peer{/*node=*/1, /*endpoint=*/1};
    ep.wait(ep.isend(small_msg.data(), small_msg.size(), peer, /*match=*/1));
    ep.wait(ep.isend(large_msg.data(), large_msg.size(), peer, /*match=*/2));
    std::printf("[%.3f ms] sender: both sends complete\n",
                sim::to_seconds(p.now()) * 1e3);
  });

  cluster.spawn(cluster.node(1), 0, "receiver", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    core::Request* r1 = ep.irecv(recv_small.data(), recv_small.size(), 1);
    core::Request* r2 = ep.irecv(recv_large.data(), recv_large.size(), 2);
    const core::Request small_done = ep.wait(r1);
    std::printf("[%.3f ms] receiver: eager message, %zu bytes\n",
                sim::to_seconds(p.now()) * 1e3, small_done.recv_len);
    const sim::Time t0 = p.now();
    const core::Request large_done = ep.wait(r2);
    std::printf("[%.3f ms] receiver: rendezvous message, %zu bytes "
                "(%.0f MiB/s)\n",
                sim::to_seconds(p.now()) * 1e3, large_done.recv_len,
                sim::mib_per_second(large_done.recv_len, p.now() - t0));
  });

  // 5. Run the simulation to completion.
  cluster.run();

  const bool ok = recv_small == small_msg && recv_large == large_msg;
  std::printf("payload verification: %s\n", ok ? "OK" : "MISMATCH");
  std::printf("receiver I/OAT-offloaded bytes: %llu\n",
              static_cast<unsigned long long>(
                  cluster.node(1).driver().counters().get(
                      "driver.large_ioat_bytes")));
  return ok ? 0 : 1;
}
