// PVFS-style file streaming: the paper's motivating deployment is
// Open-MX as the PVFS2 transport between BlueGene/P compute nodes and
// I/O nodes (Section II-A).  One "I/O server" node streams file stripes
// to three client endpoints on another node; clients write back.
//
// Shows the receive-side CPU relief: the same workload is run with
// memcpy receives and with I/OAT-offloaded receives, printing the
// server-side throughput and the clients' node CPU usage.
#include <cstdio>
#include <vector>

#include "core/cluster.hpp"
#include "core/endpoint.hpp"
#include "mem/aligned_buffer.hpp"

using namespace openmx;

namespace {

struct RunStats {
  double mibs = 0;
  double client_bh_cpu = 0;  // bottom-half share on the client node
};

RunStats run(bool ioat) {
  core::OmxConfig cfg;
  cfg.ioat_large = ioat;
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);

  constexpr std::size_t kStripe = 512 * sim::KiB;
  constexpr int kStripesPerClient = 6;
  constexpr int kClients = 3;

  mem::Buffer file(kStripe, 0xF5);
  sim::Time t0 = 0, t1 = 0;

  // The I/O server on node 0: streams stripes to each client in turn.
  cluster.spawn(cluster.node(0), 0, "ionode", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    t0 = p.now();
    std::vector<core::Request*> reqs;
    for (int s = 0; s < kStripesPerClient; ++s)
      for (int c = 0; c < kClients; ++c)
        reqs.push_back(ep.isend(
            file.data(), kStripe, core::Addr{1, static_cast<std::uint16_t>(c + 1)},
            static_cast<std::uint64_t>(s)));
    for (auto* r : reqs) ep.wait(r);
    t1 = p.now();
  });

  // Three client processes on node 1 (cores 0, 2, 4).
  std::vector<mem::Buffer> sink(
      kClients, mem::Buffer(kStripe));
  for (int c = 0; c < kClients; ++c) {
    cluster.spawn(cluster.node(1), c == 0 ? 0 : 2 * c,
                  "client" + std::to_string(c), [&, c](core::Process& p) {
                    core::Endpoint ep(p, static_cast<std::uint16_t>(c + 1));
                    for (int s = 0; s < kStripesPerClient; ++s)
                      ep.wait(ep.irecv(sink[static_cast<std::size_t>(c)].data(),
                                       kStripe,
                                       static_cast<std::uint64_t>(s)));
                  });
  }
  cluster.run();

  RunStats st;
  const std::size_t total =
      kStripe * static_cast<std::size_t>(kStripesPerClient * kClients);
  st.mibs = sim::mib_per_second(total, t1 - t0);
  st.client_bh_cpu =
      static_cast<double>(
          cluster.node(1).machine().busy_all_cores(cpu::Cat::BottomHalf)) /
      static_cast<double>(t1 - t0);
  for (const auto& s : sink)
    for (std::size_t i = 0; i < s.size(); i += 4096)
      if (s[i] != 0xF5) std::printf("DATA ERROR at %zu\n", i);
  return st;
}

}  // namespace

int main() {
  std::printf("=== PVFS-style striped file streaming (3 clients) ===\n");
  const RunStats plain = run(false);
  const RunStats ioat = run(true);
  std::printf("%-22s %12s %18s\n", "config", "MiB/s", "client BH CPU");
  std::printf("%-22s %12.0f %17.0f%%\n", "Open-MX (memcpy)", plain.mibs,
              100 * plain.client_bh_cpu);
  std::printf("%-22s %12.0f %17.0f%%\n", "Open-MX + I/OAT", ioat.mibs,
              100 * ioat.client_bh_cpu);
  std::printf("\nthroughput +%.0f%%, receive CPU x%.2f\n",
              100.0 * (ioat.mibs / plain.mibs - 1.0),
              ioat.client_bh_cpu / plain.client_bh_cpu);
  return 0;
}
