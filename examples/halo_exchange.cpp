// Halo exchange: a 1-D domain-decomposed stencil code on the mini-MPI
// layer — the classic HPC communication pattern (IMB "Exchange") the
// paper's Figure 12 evaluates.  Four ranks on 2 nodes x 2 processes mix
// intra-node (shared-memory one-copy) and inter-node (Ethernet) halos.
#include <cstdio>
#include <vector>

#include "core/cluster.hpp"
#include "mpi/world.hpp"

using namespace openmx;

namespace {

double run(bool ioat, std::size_t halo_doubles, int steps) {
  core::OmxConfig cfg;
  cfg.ioat_large = ioat;
  cfg.ioat_shm = ioat;
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  mpi::World world(cluster, mpi::placements(2, 2));

  sim::Time elapsed = 0;
  bool values_ok = true;
  world.run([&](mpi::Comm& c) {
    const int p = c.size();
    const int left = (c.rank() - 1 + p) % p;
    const int right = (c.rank() + 1) % p;
    const std::size_t bytes = halo_doubles * sizeof(double);
    std::vector<double> interior(halo_doubles,
                                 static_cast<double>(c.rank()));
    std::vector<double> from_left(halo_doubles), from_right(halo_doubles);

    c.barrier();
    const sim::Time t0 = c.now();
    for (int s = 0; s < steps; ++s) {
      // Exchange halos with both neighbours.
      core::Request* rl = c.irecv(from_left.data(), bytes, left, 1);
      core::Request* rr = c.irecv(from_right.data(), bytes, right, 2);
      core::Request* sl = c.isend(interior.data(), bytes, left, 2);
      core::Request* sr = c.isend(interior.data(), bytes, right, 1);
      c.wait(rl);
      c.wait(rr);
      c.wait(sl);
      c.wait(sr);
      // A sweep over the interior (modeled compute).
      c.process().compute(
          static_cast<sim::Time>(halo_doubles) * 2);  // ~2 ns per point
      // Verify neighbour data on the fly.
      if (from_left[halo_doubles / 2] != static_cast<double>(left) ||
          from_right[halo_doubles / 2] != static_cast<double>(right))
        values_ok = false;
    }
    c.barrier();
    if (c.rank() == 0) elapsed = c.now() - t0;
  });
  if (!values_ok) std::printf("HALO DATA ERROR\n");
  return sim::to_micros(elapsed / steps);
}

}  // namespace

int main() {
  std::printf("=== 1-D halo exchange, 2 nodes x 2 ppn ===\n");
  std::printf("%-12s %18s %18s %10s\n", "halo", "Open-MX us/step",
              "OMX+I/OAT us/step", "speedup");
  for (std::size_t n : {std::size_t{4096}, std::size_t{65536},
                        std::size_t{524288}}) {
    const double t_omx = run(false, n, 10);
    const double t_io = run(true, n, 10);
    std::printf("%-12s %18.1f %18.1f %9.1f%%\n",
                (std::to_string(n * 8 / 1024) + "kB").c_str(), t_omx, t_io,
                100.0 * (t_omx / t_io - 1.0));
  }
  return 0;
}
