// MXoE wire interoperability: the paper's motivating deployment at
// Argonne (Section II-A) — BlueGene/P compute nodes running Open-MX on
// commodity (Broadcom) 10 GbE NICs exchanging PVFS2 traffic with I/O
// nodes running the native MXoE stack on Myri-10G boards.  Both speak
// the same wire protocol, so they interoperate frame-for-frame.
//
// One native-MX "I/O node" serves file blocks to two Open-MX "compute
// nodes" (with and without I/OAT receive offload on the compute side).
#include <cstdio>
#include <vector>

#include "core/cluster.hpp"
#include "core/endpoint.hpp"
#include "mem/aligned_buffer.hpp"

using namespace openmx;

namespace {

double run(bool compute_ioat) {
  core::OmxConfig io_node = {};
  io_node.native_mx = true;  // Myri-10G running the native MXoE firmware

  core::OmxConfig compute = {};
  compute.ioat_large = compute_ioat;  // Open-MX on commodity Ethernet

  core::Cluster cluster;
  cluster.add_node(io_node);   // node 0
  cluster.add_node(compute);   // node 1
  cluster.add_node(compute);   // node 2

  constexpr std::size_t kBlock = 1 * sim::MiB;
  constexpr int kBlocks = 8;
  mem::Buffer file(kBlock, 0xAB);
  sim::Time t0 = 0, t1 = 0;

  cluster.spawn(cluster.node(0), 0, "io-node", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    t0 = p.now();
    std::vector<core::Request*> reqs;
    for (int b = 0; b < kBlocks; ++b)
      for (int c = 1; c <= 2; ++c)
        reqs.push_back(ep.isend(file.data(), kBlock,
                                core::Addr{c, static_cast<std::uint16_t>(c)},
                                static_cast<std::uint64_t>(b)));
    for (auto* r : reqs) ep.wait(r);
    t1 = p.now();
  });
  for (int c = 1; c <= 2; ++c) {
    cluster.spawn(cluster.node(static_cast<std::size_t>(c)), 0,
                  "compute" + std::to_string(c), [&, c](core::Process& p) {
                    core::Endpoint ep(p, static_cast<std::uint16_t>(c));
                    mem::Buffer buf(kBlock);
                    for (int b = 0; b < kBlocks; ++b) {
                      ep.wait(ep.irecv(buf.data(), kBlock,
                                       static_cast<std::uint64_t>(b)));
                      if (buf[kBlock / 2] != 0xAB)
                        std::printf("DATA ERROR on compute%d\n", c);
                    }
                  });
  }
  cluster.run();
  return sim::mib_per_second(kBlock * kBlocks * 2, t1 - t0);
}

}  // namespace

int main() {
  std::printf("=== MXoE interop: native-MX I/O node -> 2 Open-MX compute "
              "nodes ===\n");
  const double plain = run(false);
  const double ioat = run(true);
  std::printf("compute nodes receive with memcpy:      %7.0f MiB/s "
              "aggregate\n", plain);
  std::printf("compute nodes receive with I/OAT:       %7.0f MiB/s "
              "aggregate (+%.0f%%)\n", ioat, 100.0 * (ioat / plain - 1.0));
  std::printf("\nwire compatibility: the Open-MX nodes never knew the "
              "server ran the native firmware\n");
  return 0;
}
