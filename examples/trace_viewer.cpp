// Trace viewer: run a small ping-pong with every telemetry layer on and
// write a Chrome trace-event / Perfetto file.  Open it at
// https://ui.perfetto.dev (or chrome://tracing): one process per node,
// one track per core and per DMA channel, plus a synthesized track per
// large message showing its phase waterfall (wire-arrival, bottom-half,
// ioat-submit, dma-complete, copy-out, notify) and the Fig. 8 overlap.
//
// Build & run:   ./build/examples/trace_viewer [output.json]
// The output name defaults to trace.json; relative names land in
// $OMX_BENCH_OUT_DIR when set (absolute paths are used verbatim), so a
// smoke run never litters the working tree.
#include <cstdio>
#include <string>

#include "bench/common.hpp"
#include "core/cluster.hpp"
#include "core/endpoint.hpp"
#include "mem/aligned_buffer.hpp"
#include "obs/perfetto.hpp"
#include "obs/span.hpp"

using namespace openmx;

int main(int argc, char** argv) {
  const std::string out_path =
      bench::out_path(argc > 1 ? argv[1] : "trace.json");
  core::OmxConfig config;
  config.ioat_large = true;  // so the waterfall shows real DMA overlap

  core::Cluster cluster;
  cluster.add_nodes(2, config);

  // All three telemetry layers on: typed event trace, message-lifecycle
  // spans, and the per-core/per-channel utilization timeline.
  auto& engine = cluster.engine();
  engine.trace().enable();
  engine.spans().enable();
  engine.timeline().enable();
  engine.attrib().enable();

  const std::size_t len = 512 * sim::KiB;
  const int iters = 3;
  mem::Buffer buf0(len, 1), buf1(len, 2);

  cluster.spawn(cluster.node(0), 0, "ping", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    for (int i = 0; i < iters; ++i) {
      ep.wait(ep.isend(buf0.data(), len, core::Addr{1, 1}, 7));
      ep.wait(ep.irecv(buf0.data(), len, 7));
    }
  });
  cluster.spawn(cluster.node(1), 0, "pong", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    for (int i = 0; i < iters; ++i) {
      ep.wait(ep.irecv(buf1.data(), len, 7));
      ep.wait(ep.isend(buf1.data(), len, core::Addr{0, 0}, 7));
    }
  });
  cluster.run();

  // Per-message waterfalls on stdout...
  std::printf("=== message-lifecycle spans ===\n");
  obs::dump_waterfall(stdout, engine.spans());

  // ...the tail of the typed event trace...
  std::printf("\n=== event trace (%zu records, %llu dropped) ===\n",
              engine.trace().size(),
              static_cast<unsigned long long>(engine.trace().dropped()));
  engine.trace().dump(stdout, 24);

  // ...and the Perfetto file (with per-message blame slices).
  if (obs::write_chrome_trace_file(out_path, engine.timeline(),
                                   engine.spans(),
                                   static_cast<int>(cluster.num_nodes()),
                                   &engine.attrib()))
    std::printf("\nwrote %s (%zu timeline slices, %zu spans) — load "
                "it at https://ui.perfetto.dev\n",
                out_path.c_str(), engine.timeline().size(),
                engine.spans().size());
  else {
    std::fprintf(stderr, "failed to open %s for writing\n", out_path.c_str());
    return 1;
  }
  return 0;
}
