// Postmortem viewer: pretty-print the blame and tail-of-trace from a
// flight-recorder dump (postmortem_<seed>.json, written when a soak
// invariant trips, a fault plan exhausts a message's retries, or any
// Engine::on_panic hook fires).
//
//   omx_postmortem <dump.json>   parse and pretty-print an existing dump
//   omx_postmortem               self-contained demo: force a pull to
//                                fail under a kill-all-replies fault
//                                plan, dump the recorder, re-parse the
//                                file and map the tail to the faulting
//                                message (exit != 0 if the mapping or
//                                the dump is missing — the tier-1 smoke)
//
// The dump is line-oriented Chrome-trace JSON: the "postmortem" header
// carries the reason (which names the faulting message, e.g.
// "pull retries exhausted handle=1 len=262144 node=0") and each trace
// event sits alone on its line in a fixed field order, so this tool
// parses with sscanf — the same trick bench_guard uses for baselines.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/cluster.hpp"
#include "core/endpoint.hpp"
#include "fault/fault.hpp"
#include "mem/aligned_buffer.hpp"
#include "obs/flight.hpp"

using namespace openmx;

namespace {

struct DumpEvent {
  char name[64] = {0};
  char cat[32] = {0};
  unsigned shard = 0;
  double ts_us = 0.0;
  int node = -1;
  unsigned long long a0 = 0;
  unsigned long long a1 = 0;
};

struct Dump {
  char reason[128] = {0};
  unsigned long long seed = 0;
  std::vector<DumpEvent> events;
};

bool parse_dump(const char* path, Dump& out) {
  std::FILE* f = std::fopen(path, "r");
  if (!f) {
    std::fprintf(stderr, "omx_postmortem: cannot open %s\n", path);
    return false;
  }
  char line[512];
  bool have_header = false;
  while (std::fgets(line, sizeof line, f)) {
    if (!have_header &&
        std::sscanf(line, "{\"postmortem\":{\"reason\":\"%127[^\"]\",\"seed\":%llu",
                    out.reason, &out.seed) == 2) {
      have_header = true;
      continue;
    }
    DumpEvent e;
    int tid;
    if (std::sscanf(line,
                    "{\"name\":\"%63[^\"]\",\"cat\":\"%31[^\"]\",\"ph\":\"i\","
                    "\"s\":\"t\",\"pid\":%u,\"tid\":%d,\"ts\":%lf,"
                    "\"args\":{\"node\":%d,\"a0\":%llu,\"a1\":%llu",
                    e.name, e.cat, &e.shard, &tid, &e.ts_us, &e.node, &e.a0,
                    &e.a1) == 8)
      out.events.push_back(e);
  }
  std::fclose(f);
  if (!have_header)
    std::fprintf(stderr, "omx_postmortem: %s has no postmortem header\n",
                 path);
  return have_header;
}

/// Pulls the faulting-message identifier out of the panic reason
/// ("... handle=N ..." or "... seq=N ...").  Returns false if the reason
/// names no message (e.g. a soak invariant string).
bool faulting_id(const char* reason, unsigned long long& id) {
  for (const char* key : {"handle=", "seq="}) {
    if (const char* p = std::strstr(reason, key)) {
      id = std::strtoull(p + std::strlen(key), nullptr, 10);
      return true;
    }
  }
  return false;
}

/// True when a tail event belongs to the faulting message: the pull
/// lifecycle events carry the handle in a0.
bool maps_to(const DumpEvent& e, unsigned long long id) {
  return std::strncmp(e.name, "pull.", 5) == 0 && e.a0 == id;
}

int print_dump(const Dump& d) {
  std::printf("=== postmortem (seed %llu) ===\nreason: %s\n\n", d.seed,
              d.reason);

  std::map<std::string, std::size_t> by_cat;
  for (const DumpEvent& e : d.events) ++by_cat[e.cat];
  std::printf("%zu events retained:", d.events.size());
  for (const auto& [cat, n] : by_cat) std::printf("  %s=%zu", cat.c_str(), n);
  std::printf("\n\n");

  unsigned long long id = 0;
  const bool have_id = faulting_id(d.reason, id);

  const std::size_t tail = d.events.size() > 32 ? d.events.size() - 32 : 0;
  std::printf("=== tail of trace ===\n");
  std::size_t mapped = 0;
  for (std::size_t i = 0; i < d.events.size(); ++i) {
    const DumpEvent& e = d.events[i];
    const bool hit = have_id && maps_to(e, id);
    if (hit) ++mapped;
    if (i < tail && !hit) continue;  // always show faulting-message events
    std::printf("%12.3f us  shard%u n%-2d %-12s a0=%-10llu a1=%llu%s\n",
                e.ts_us, e.shard, e.node, e.name, e.a0, e.a1,
                hit ? "   <-- faulting message" : "");
  }

  if (have_id) {
    std::printf("\nfaulting message: id %llu, %zu matching event%s in the "
                "recorded tail\n",
                id, mapped, mapped == 1 ? "" : "s");
    if (!mapped) {
      std::fprintf(stderr,
                   "omx_postmortem: reason names message %llu but no tail "
                   "event maps to it\n",
                   id);
      return 2;
    }
  }
  return 0;
}

/// Demo / smoke mode: force a pull failure and round-trip the dump.
int run_demo() {
  constexpr std::uint64_t kSeed = 42;
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  cfg.retrans_timeout = 50 * sim::kMicrosecond;
  cfg.max_retries = 3;

  core::Cluster cluster;
  cluster.add_nodes(2, cfg);

  obs::FlightRecorder fr(1, 256);
  cluster.engine().trace().attach_flight(&fr, 0);

  const std::string dump_path =
      bench::out_path("postmortem_" + std::to_string(kSeed) + ".json");
  std::string reason_seen;
  cluster.engine().set_on_panic([&](const char* why) {
    reason_seen = why;
    fr.dump_json_file(dump_path, why, kSeed);
  });

  // Kill every pull reply: the receiver's pull can never progress, so
  // its retry budget burns down and the driver aborts the message —
  // firing the panic hook on the way.
  fault::Plan plan(kSeed);
  plan.drop_all(fault::Match::PullReply);
  cluster.network().set_fault_injector(&plan);

  const std::size_t len = 256 * sim::KiB;  // rendezvous-sized
  mem::Buffer src(len, 1), dst(len, 2);
  bool send_failed = false, recv_failed = false;
  cluster.spawn(cluster.node(0), 0, "sender", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    send_failed = ep.wait(ep.isend(src.data(), len, {1, 1}, 7)).failed;
  });
  cluster.spawn(cluster.node(1), 0, "receiver", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    recv_failed = ep.wait(ep.irecv(dst.data(), len, 7)).failed;
  });
  cluster.run();

  std::printf("demo run: send %s, recv %s, panic reason: %s\n\n",
              send_failed ? "FAILED (expected)" : "ok",
              recv_failed ? "FAILED (expected)" : "ok",
              reason_seen.empty() ? "<none>" : reason_seen.c_str());
  if (reason_seen.empty() || !recv_failed) {
    std::fprintf(stderr,
                 "omx_postmortem: demo did not trigger the panic path\n");
    return 1;
  }

  Dump d;
  if (!parse_dump(dump_path.c_str(), d)) return 1;
  const int rc = print_dump(d);
  std::printf("\ndump written to %s\n", dump_path.c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    Dump d;
    if (!parse_dump(argv[1], d)) return 1;
    return print_dump(d);
  }
  return run_demo();
}
