// omx_blame: causal latency attribution for large-message receives.
//
// Runs a ping-pong under one of the paper's bench configs with the span
// and wait-state layers enabled, then prints the Fig. 8/9-style blame
// breakdown: for every message and size class, how much of the
// end-to-end receive time is attributable to wire serialization,
// bottom-half queue wait vs. execution, DMA ring queue wait vs. actual
// transfer, memcpy execution vs. memory-bus contention stall, and the
// notify delay — plus the critical resource whose speedup would shorten
// latency.  Per-message blame sums are checked against the span totals.
//
// Usage: omx_blame [--config mx|omx|ioat|nocopy] [--size BYTES]
//                  [--iters N] [--json PATH]
// Defaults reproduce the Figure 8 configuration: Open-MX + I/OAT, 1 MB.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/common.hpp"
#include "obs/attrib.hpp"
#include "obs/perfetto.hpp"

using namespace openmx;

int main(int argc, char** argv) {
  std::string config_name = "ioat";
  std::size_t len = sim::MiB;
  int iters = 4;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--config") {
      config_name = next();
    } else if (arg == "--size") {
      len = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--iters") {
      iters = std::atoi(next());
    } else if (arg == "--json") {
      // Relative names land in $OMX_BENCH_OUT_DIR like every bench
      // artifact; absolute paths are used verbatim.
      json_path = bench::out_path(next());
    } else {
      std::fprintf(stderr,
                   "usage: omx_blame [--config mx|omx|ioat|nocopy] "
                   "[--size BYTES] [--iters N] [--json PATH]\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  core::OmxConfig cfg;
  if (config_name == "mx")
    cfg = bench::cfg_mx();
  else if (config_name == "omx")
    cfg = bench::cfg_omx();
  else if (config_name == "ioat")
    cfg = bench::cfg_omx_ioat();
  else if (config_name == "nocopy")
    cfg = bench::cfg_omx_nocopy();
  else {
    std::fprintf(stderr, "unknown config '%s'\n", config_name.c_str());
    return 2;
  }

  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  auto& eng = cluster.engine();
  eng.spans().enable();
  eng.attrib().enable();
  if (!json_path.empty()) eng.timeline().enable();

  const sim::Time oneway = bench::run_pingpong(cluster, len, iters,
                                               /*warmup=*/1);
  std::printf("omx_blame: config=%s size=%s iters=%d  oneway %.3f us "
              "(%.1f MiB/s)\n\n",
              config_name.c_str(), bench::size_label(len).c_str(), iters,
              sim::to_micros(oneway), sim::mib_per_second(len, oneway));

  // Per-message breakdown, with the partition checked against the span
  // total: every nanosecond of each receive is blamed on exactly one
  // resource.
  std::printf("=== per-message blame ===\n");
  std::printf("%-16s %10s", "message", "total us");
  for (std::size_t b = 0; b < obs::kNumBlames; ++b)
    std::printf("%10s", obs::blame_name(static_cast<obs::Blame>(b)));
  std::printf("  %s\n", "critical");
  std::size_t checked = 0, bad = 0, shown = 0;
  for (const auto& [key, s] : eng.spans().all()) {
    const obs::BlameVec blame = obs::attribute_blame(s, eng.attrib().find(key));
    ++checked;
    if (obs::blame_sum(blame) != s.total_ns()) ++bad;
    if (shown++ < 8) {
      char label[32];
      std::snprintf(label, sizeof label, "n%d #%u", s.node,
                    static_cast<unsigned>(key & 0xffffffffu));
      std::printf("%-16s %10.3f", label, sim::to_micros(s.total_ns()));
      for (std::size_t b = 0; b < obs::kNumBlames; ++b)
        std::printf("%10.3f", sim::to_micros(blame[b]));
      std::printf("  %s\n", obs::blame_name(obs::critical_blame(blame)));
    }
  }
  if (shown > 8) std::printf("  ... %zu more messages\n", shown - 8);

  std::printf("\n=== per-size-class attribution ===\n");
  obs::AttribReport report;
  report.build(eng.spans(), eng.attrib());
  report.print(stdout);

  if (!json_path.empty()) {
    if (obs::write_chrome_trace_file(json_path, eng.timeline(), eng.spans(),
                                     static_cast<int>(cluster.num_nodes()),
                                     &eng.attrib()))
      std::printf("\nperfetto trace with blame slices written to %s\n",
                  json_path.c_str());
    else {
      std::fprintf(stderr, "failed to open %s for writing\n",
                   json_path.c_str());
      return 1;
    }
  }

  if (bad || report.sum_mismatches()) {
    std::printf("\nsum-check FAILED: %zu/%zu messages do not partition\n", bad,
                checked);
    return 1;
  }
  std::printf("\nsum-check OK: all %zu blame partitions equal their span "
              "totals\n",
              checked);
  return 0;
}
