#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "sim/time.hpp"

namespace openmx::obs {

// ---------------------------------------------------------------------
// Causal latency attribution for large-message receives.
//
// The span layer (obs/span.hpp) records *when* the phases of a receive
// happened; this layer records *which resource the message was waiting
// on* and turns both into a per-message blame breakdown that exactly
// partitions the end-to-end receive time.  It is the machinery behind
// the paper's Figures 8/9 argument: CPU memcpy vs. I/OAT DMA vs.
// overlapped packet processing, now with queue waits and bus-contention
// stalls separated from actual work.
// ---------------------------------------------------------------------

/// Raw wait-state stamps, accumulated per message at the instrumented
/// sites (cpu::Machine run queue, dma::IoatEngine descriptor ring, the
/// driver's rx copy paths).  These are resource-time totals: most of
/// them overlap the wire window and each other, so they do NOT sum to
/// the end-to-end latency — attribute_blame() below uses them to split
/// the serial residual instead.
enum class Wait : std::uint8_t {
  BhQueueWait = 0,  // bottom-half work sat in a core's run queue
  BhExec,           // bottom-half protocol processing (driver-charged)
  DmaQueueWait,     // descriptor sat queued behind ring occupancy
  DmaTransfer,      // engine-side descriptor time (startup + streaming)
  DmaDrainWait,     // CPU blocked waiting for the slowest channel to drain
  MemcpyExec,       // CPU copy at the uncontended memcpy rate
  BusStall,         // extra memcpy time lost to memory-bus contention
  kCount,
};

inline constexpr std::size_t kNumWaits = static_cast<std::size_t>(Wait::kCount);

[[nodiscard]] inline const char* wait_name(Wait w) {
  switch (w) {
    case Wait::BhQueueWait: return "bh-queue-wait";
    case Wait::BhExec: return "bh-exec";
    case Wait::DmaQueueWait: return "dma-queue-wait";
    case Wait::DmaTransfer: return "dma-transfer";
    case Wait::DmaDrainWait: return "dma-drain-wait";
    case Wait::MemcpyExec: return "memcpy-exec";
    case Wait::BusStall: return "bus-stall";
    default: return "?";
  }
}

/// Blame categories of the end-to-end partition.  attribute_blame()
/// assigns every nanosecond of a span's total_ns() to exactly one of
/// these, so per-message blame sums equal the span total exactly.
enum class Blame : std::uint8_t {
  Wire = 0,      // fragments still serializing on the wire
  BhQueueWait,   // run-queue delay of bottom-half processing
  BhExec,        // bottom-half protocol execution
  DmaQueueWait,  // descriptors queued behind DMA ring occupancy
  DmaTransfer,   // actual DMA engine transfer time
  MemcpyExec,    // CPU copy execution (memcpy path)
  BusStall,      // memory-bus contention stall during CPU copies
  Notify,        // completion event posted but not yet observed
  kCount,
};

inline constexpr std::size_t kNumBlames = static_cast<std::size_t>(Blame::kCount);

[[nodiscard]] inline const char* blame_name(Blame b) {
  switch (b) {
    case Blame::Wire: return "wire";
    case Blame::BhQueueWait: return "bh-queue";
    case Blame::BhExec: return "bh-exec";
    case Blame::DmaQueueWait: return "dma-queue";
    case Blame::DmaTransfer: return "dma-xfer";
    case Blame::MemcpyExec: return "memcpy";
    case Blame::BusStall: return "bus-stall";
    case Blame::Notify: return "notify";
    default: return "?";
  }
}

/// Registry-safe variant (dots and dashes collide with the metric
/// naming convention).
[[nodiscard]] inline const char* blame_key(Blame b) {
  switch (b) {
    case Blame::Wire: return "wire";
    case Blame::BhQueueWait: return "bh_queue";
    case Blame::BhExec: return "bh_exec";
    case Blame::DmaQueueWait: return "dma_queue";
    case Blame::DmaTransfer: return "dma_transfer";
    case Blame::MemcpyExec: return "memcpy";
    case Blame::BusStall: return "bus_stall";
    case Blame::Notify: return "notify";
    default: return "?";
  }
}

/// Per-message raw wait-state totals, keyed like the spans
/// (obs::span_key of the receiving node and pull handle).
struct MsgWaits {
  std::uint64_t key = 0;
  int node = -1;
  std::uint64_t bytes = 0;
  std::array<sim::Time, kNumWaits> wait{};

  [[nodiscard]] sim::Time get(Wait w) const {
    return wait[static_cast<std::size_t>(w)];
  }
};

/// Table of per-message wait-state stamps plus the global per-stamp
/// distributions.  Disabled by default: a disabled table is one branch
/// per stamp site, schedules nothing, allocates nothing — attribution
/// fully off adds no events to the simulation (test_determinism runs
/// with it off and on and gets bit-identical timings).
class AttribTable {
 public:
  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Registers the message identity (called at pull start, mirroring
  /// SpanTable::begin).
  void begin(std::uint64_t key, int node, std::uint64_t bytes) {
    if (!enabled_) return;
    MsgWaits& m = msgs_[key];
    m.key = key;
    m.node = node;
    m.bytes = bytes;
  }

  /// Accumulates one wait-state stamp.  Zero-duration stamps still count
  /// toward the per-stamp distribution (a zero queue wait is a
  /// measurement, not noise).
  void add(std::uint64_t key, Wait w, sim::Time ns) {
    if (!enabled_ || ns < 0) return;
    MsgWaits& m = msgs_[key];
    if (m.key == 0) m.key = key;
    m.wait[static_cast<std::size_t>(w)] += ns;
    stamp_hist_[static_cast<std::size_t>(w)].add(static_cast<std::uint64_t>(ns));
  }

  [[nodiscard]] const std::map<std::uint64_t, MsgWaits>& all() const {
    return msgs_;
  }
  [[nodiscard]] std::size_t size() const { return msgs_.size(); }
  [[nodiscard]] const MsgWaits* find(std::uint64_t key) const {
    auto it = msgs_.find(key);
    return it == msgs_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Histogram& stamp_hist(Wait w) const {
    return stamp_hist_[static_cast<std::size_t>(w)];
  }

  /// Exports the global per-stamp distributions as
  /// `attrib.wait.<name>_ns` histograms.
  void to_registry(Registry& reg) const {
    for (std::size_t w = 0; w < kNumWaits; ++w) {
      if (stamp_hist_[w].count() == 0) continue;
      reg.histogram(std::string("attrib.wait.") +
                    wait_name(static_cast<Wait>(w)) + "_ns")
          .merge(stamp_hist_[w]);
    }
  }

  void clear() {
    msgs_.clear();
    for (auto& h : stamp_hist_) h.reset();
  }

 private:
  bool enabled_ = false;
  std::map<std::uint64_t, MsgWaits> msgs_;
  std::array<Histogram, kNumWaits> stamp_hist_{};
};

using BlameVec = std::array<sim::Time, kNumBlames>;

[[nodiscard]] inline sim::Time blame_sum(const BlameVec& v) {
  sim::Time t = 0;
  for (sim::Time b : v) t += b;
  return t;
}

/// The causal partition.  Walks the span's phase timeline and assigns
/// every nanosecond of [first stamp, last stamp] to exactly one blame
/// category — the resource the message was *serially* waiting on during
/// that interval:
///
///   [start .. last wire-arrival]          -> Wire.  Work that overlaps
///       fragment ingress (DMA transfers, per-fragment copies, bottom
///       halves of earlier fragments) is deliberately NOT blamed: while
///       bytes are still serializing, no host-side speedup can finish
///       the message sooner.  This is the Figure 8 overlap argument in
///       partition form.
///   [last wire-arrival .. driver notify]  -> the host-side residual.
///       First the measured DMA drain wait (the CPU blocking on the
///       slowest channel) is peeled off and split between DmaQueueWait
///       and DmaTransfer in proportion to this message's measured
///       descriptor queue-wait vs. engine-time totals; the remainder is
///       split across BhQueueWait / BhExec / MemcpyExec / BusStall in
///       proportion to their measured totals.
///   [driver notify .. library dequeue]    -> Notify.
///
/// Splits use integer proportions with the remainder assigned to the
/// largest component, so blame_sum() equals Span::total_ns() exactly.
[[nodiscard]] inline BlameVec attribute_blame(const Span& s,
                                              const MsgWaits* raw) {
  BlameVec out{};
  // Span window, as total_ns() computes it.
  sim::Time lo = -1, hi = -1;
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    if (s.first[p] < 0) continue;
    if (lo < 0 || s.first[p] < lo) lo = s.first[p];
    hi = std::max(hi, s.last[p]);
  }
  if (lo < 0) return out;

  auto at = [&out](Blame b) -> sim::Time& {
    return out[static_cast<std::size_t>(b)];
  };

  // 1. Wire serialization: until the last fragment reached host memory.
  const sim::Time w =
      s.has(Phase::WireArrival)
          ? std::clamp(s.last_at(Phase::WireArrival), lo, hi)
          : lo;
  at(Blame::Wire) = w - lo;

  // 3 (computed early). Notify delay: driver pushed the completion at the
  // first Notify stamp; the library observed it at the last.
  const sim::Time notify_start =
      s.has(Phase::Notify) ? std::clamp(s.first_at(Phase::Notify), w, hi) : hi;
  at(Blame::Notify) = hi - notify_start;

  // 2. Host-side residual between ingress end and completion push.
  sim::Time mid = notify_start - w;
  if (mid <= 0) return out;

  if (raw) {
    // 2a. DMA tail: the measured drain wait, split queue-wait vs.
    // transfer by this message's descriptor-level totals.
    const sim::Time tail = std::min(mid, raw->get(Wait::DmaDrainWait));
    if (tail > 0) {
      const sim::Time q = raw->get(Wait::DmaQueueWait);
      const sim::Time x = raw->get(Wait::DmaTransfer);
      if (q + x > 0) {
        const auto qpart = static_cast<sim::Time>(
            static_cast<double>(tail) * static_cast<double>(q) /
            static_cast<double>(q + x));
        at(Blame::DmaQueueWait) = qpart;
        at(Blame::DmaTransfer) = tail - qpart;
      } else {
        at(Blame::DmaTransfer) = tail;
      }
      mid -= tail;
    }
    // 2b. Remaining residual: proportional to the measured host-side
    // resource totals, remainder to the largest share (deterministic).
    struct Part {
      Blame blame;
      Wait wait;
    };
    static constexpr Part parts[] = {
        {Blame::BhQueueWait, Wait::BhQueueWait},
        {Blame::BhExec, Wait::BhExec},
        {Blame::MemcpyExec, Wait::MemcpyExec},
        {Blame::BusStall, Wait::BusStall},
    };
    sim::Time total = 0;
    for (const Part& p : parts) total += raw->get(p.wait);
    if (total > 0 && mid > 0) {
      sim::Time assigned = 0;
      std::size_t largest = 0;
      for (std::size_t i = 0; i < std::size(parts); ++i) {
        const auto share = static_cast<sim::Time>(
            static_cast<double>(mid) *
            static_cast<double>(raw->get(parts[i].wait)) /
            static_cast<double>(total));
        at(parts[i].blame) += share;
        assigned += share;
        if (raw->get(parts[i].wait) > raw->get(parts[largest].wait))
          largest = i;
      }
      at(parts[largest].blame) += mid - assigned;
    } else if (mid > 0) {
      at(Blame::BhExec) += mid;
    }
  } else {
    // No wait-state stamps (attribution enabled mid-run, or a span from
    // a foreign source): the residual is generic bottom-half time.
    at(Blame::BhExec) += mid;
  }
  return out;
}

/// The critical-path verdict: the single resource whose speedup would
/// shorten this message's end-to-end latency the most.  Because the
/// partition assigns overlapped work zero blame, this is simply the
/// largest partitioned category (ties break toward the earlier enum
/// value, deterministically).
[[nodiscard]] inline Blame critical_blame(const BlameVec& v) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < kNumBlames; ++i)
    if (v[i] > v[best]) best = i;
  return static_cast<Blame>(best);
}

/// Power-of-two ceiling used as the size-class key (matches the
/// doubling size sweeps of the paper's figures).
[[nodiscard]] inline std::uint64_t attrib_size_class(std::uint64_t bytes) {
  if (bytes <= 1) return 1;
  std::uint64_t c = 1;
  while (c < bytes) c <<= 1;
  return c;
}

[[nodiscard]] inline std::string attrib_class_label(std::uint64_t cls) {
  char buf[32];
  if (cls >= sim::MiB)
    std::snprintf(buf, sizeof buf, "%lluMB",
                  static_cast<unsigned long long>(cls / sim::MiB));
  else if (cls >= sim::KiB)
    std::snprintf(buf, sizeof buf, "%llukB",
                  static_cast<unsigned long long>(cls / sim::KiB));
  else
    std::snprintf(buf, sizeof buf, "%lluB",
                  static_cast<unsigned long long>(cls));
  return buf;
}

/// Aggregated blame per size class: deterministic percentile tables of
/// each category, total-latency distribution, and the critical-path
/// tally.  Built post-run from the span + wait tables; exported through
/// the existing Registry plumbing so the bench metrics JSON (and the
/// regression guard sitting on it) see attribution drift.
class AttribReport {
 public:
  struct ClassAgg {
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
    std::array<Histogram, kNumBlames> blame_hist{};
    std::array<std::uint64_t, kNumBlames> blame_sum{};
    std::array<std::uint64_t, kNumBlames> critical{};
    Histogram total_hist;
  };

  /// Folds one message in.  `raw` may be null (span without stamps).
  void add(const Span& s, const MsgWaits* raw) {
    const BlameVec blame = attribute_blame(s, raw);
    const sim::Time total = s.total_ns();
    ++checked_;
    if (blame_sum(blame) != total) ++mismatched_;
    ClassAgg& agg = classes_[attrib_size_class(s.bytes)];
    ++agg.msgs;
    agg.bytes += s.bytes;
    agg.total_hist.add(static_cast<std::uint64_t>(total));
    for (std::size_t b = 0; b < kNumBlames; ++b) {
      agg.blame_hist[b].add(static_cast<std::uint64_t>(blame[b]));
      agg.blame_sum[b] += static_cast<std::uint64_t>(blame[b]);
    }
    ++agg.critical[static_cast<std::size_t>(critical_blame(blame))];
  }

  /// Builds the report from a run's tables (span key order: deterministic).
  void build(const SpanTable& spans, const AttribTable& attrib) {
    for (const auto& [key, s] : spans.all()) add(s, attrib.find(key));
  }

  [[nodiscard]] const std::map<std::uint64_t, ClassAgg>& classes() const {
    return classes_;
  }
  [[nodiscard]] std::uint64_t messages() const { return checked_; }
  /// Messages whose partition did not sum to total_ns() — always 0 by
  /// construction; asserted by tests and omx_blame.
  [[nodiscard]] std::uint64_t sum_mismatches() const { return mismatched_; }

  /// Critical resource of a size class: the category most often found
  /// on the critical path (ties toward the earlier enum value).
  [[nodiscard]] static Blame class_critical(const ClassAgg& agg) {
    std::size_t best = 0;
    for (std::size_t b = 1; b < kNumBlames; ++b)
      if (agg.critical[b] > agg.critical[best]) best = b;
    return static_cast<Blame>(best);
  }

  /// Exports per-class percentile tables:
  ///   attrib.<class>.<blame>_ns   (histogram: count/min/mean/p50/p90/p99/max)
  ///   attrib.<class>.total_ns     (end-to-end distribution)
  ///   attrib.<class>.critical.<blame>  (counter: critical-path tally)
  void to_registry(Registry& reg) const {
    for (const auto& [cls, agg] : classes_) {
      const std::string base = "attrib." + attrib_class_label(cls) + ".";
      reg.histogram(base + "total_ns").merge(agg.total_hist);
      for (std::size_t b = 0; b < kNumBlames; ++b) {
        if (agg.blame_hist[b].count() == 0) continue;
        reg.histogram(base + blame_key(static_cast<Blame>(b)) + "_ns")
            .merge(agg.blame_hist[b]);
        if (agg.critical[b])
          reg.counter(base + "critical." + blame_key(static_cast<Blame>(b)))
              .add(agg.critical[b]);
      }
    }
  }

  /// The Figure 8/9-style table: one row per size class, one column per
  /// blame category (percent of end-to-end time), the p50 total, and
  /// the critical resource.
  void print(std::FILE* out) const {
    std::fprintf(out, "%-8s %5s", "class", "msgs");
    for (std::size_t b = 0; b < kNumBlames; ++b)
      std::fprintf(out, "%10s", blame_name(static_cast<Blame>(b)));
    std::fprintf(out, "  %12s  %s\n", "p50 total", "critical");
    for (const auto& [cls, agg] : classes_) {
      std::fprintf(out, "%-8s %5llu", attrib_class_label(cls).c_str(),
                   static_cast<unsigned long long>(agg.msgs));
      std::uint64_t total = 0;
      for (std::uint64_t s : agg.blame_sum) total += s;
      for (std::size_t b = 0; b < kNumBlames; ++b)
        std::fprintf(out, "%9.1f%%",
                     total ? 100.0 * static_cast<double>(agg.blame_sum[b]) /
                                 static_cast<double>(total)
                           : 0.0);
      std::fprintf(out, "  %9.3f us  %s\n",
                   sim::to_micros(static_cast<sim::Time>(agg.total_hist.p50())),
                   blame_name(class_critical(agg)));
    }
    if (mismatched_)
      std::fprintf(out, "WARNING: %llu/%llu blame partitions do not sum to "
                        "span totals\n",
                   static_cast<unsigned long long>(mismatched_),
                   static_cast<unsigned long long>(checked_));
  }

 private:
  std::map<std::uint64_t, ClassAgg> classes_;
  std::uint64_t checked_ = 0;
  std::uint64_t mismatched_ = 0;
};

}  // namespace openmx::obs
