#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <string_view>

namespace openmx::obs {

/// One named monotonically increasing counter.  Components look the
/// counter up once (by name, in their constructor) and keep the returned
/// reference, so the per-event cost is a single add — no map lookup, no
/// string hashing on the hot path.
struct Counter {
  std::uint64_t value = 0;

  void add(std::uint64_t delta = 1) { value += delta; }
  void reset() { value = 0; }
};

/// One named level gauge: a value that goes up and down (active flows,
/// ring occupancy), with its high-water mark tracked on every update.
/// Counters are monotone and merge by addition; gauges are instantaneous
/// and merge by taking the componentwise maximum — summing two shards'
/// peaks would overstate a level neither shard ever saw.
struct Gauge {
  std::int64_t value = 0;
  std::int64_t peak = 0;

  void set(std::int64_t v) {
    value = v;
    peak = std::max(peak, v);
  }
  void add(std::int64_t delta) { set(value + delta); }
  void reset() { value = peak = 0; }
};

/// Log-bucketed HDR-style histogram of non-negative integer samples
/// (latencies in ns, sizes in bytes).
///
/// Layout: values below 8 get exact buckets; above that each power of
/// two is split into 4 linear sub-buckets, bounding the relative error
/// of any reported quantile at ~25 %.  251 buckets cover the full u64
/// range, so the footprint is a fixed 2 KiB and add() is branch-light
/// integer arithmetic — cheap enough to leave enabled everywhere.
///
/// merge() adds bucket counts elementwise, which is associative and
/// commutative over integers: combining per-replica histograms after a
/// SweepRunner fan-out gives bit-identical results regardless of worker
/// count as long as the fold order is fixed (SweepRunner returns results
/// in index order).
class Histogram {
 public:
  static constexpr unsigned kSubBits = 2;                  // 4 sub-buckets
  static constexpr std::uint32_t kSub = 1u << kSubBits;
  static constexpr std::uint32_t kLinearMax = 2 * kSub;    // exact below this
  static constexpr std::size_t kNumBuckets = 256;

  /// Bucket index of a value.  Exact for v < kLinearMax; otherwise the
  /// msb selects the power-of-two range and the next kSubBits bits the
  /// linear sub-bucket within it.
  [[nodiscard]] static std::uint32_t bucket_of(std::uint64_t v) {
    if (v < kLinearMax) return static_cast<std::uint32_t>(v);
    const unsigned top = 63u - static_cast<unsigned>(std::countl_zero(v));
    const auto sub =
        static_cast<std::uint32_t>((v >> (top - kSubBits)) & (kSub - 1));
    return kLinearMax + (top - kSubBits - 1) * kSub + sub;
  }

  /// Smallest value mapping to bucket `b` (the quantile estimate we
  /// report: a deterministic lower bound of the true quantile).
  [[nodiscard]] static std::uint64_t bucket_lo(std::uint32_t b) {
    if (b < kLinearMax) return b;
    const std::uint32_t r = b - kLinearMax;
    const unsigned top = kSubBits + 1 + r / kSub;
    const std::uint64_t sub = r % kSub;
    return (std::uint64_t{1} << top) + (sub << (top - kSubBits));
  }

  void add(std::uint64_t v, std::uint64_t weight = 1) {
    buckets_[bucket_of(v)] += weight;
    count_ += weight;
    sum_ += v * weight;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return count_ ? max_ : 0; }
  [[nodiscard]] double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Lower-bound estimate of the p-quantile (p in [0, 1]).
  [[nodiscard]] std::uint64_t percentile(double p) const {
    if (count_ == 0) return 0;
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(p * static_cast<double>(count_) + 0.5));
    std::uint64_t seen = 0;
    for (std::uint32_t b = 0; b < kNumBuckets; ++b) {
      seen += buckets_[b];
      if (seen >= rank) return bucket_lo(b);
    }
    return max();
  }

  [[nodiscard]] std::uint64_t p50() const { return percentile(0.50); }
  [[nodiscard]] std::uint64_t p90() const { return percentile(0.90); }
  [[nodiscard]] std::uint64_t p99() const { return percentile(0.99); }

  void merge(const Histogram& o) {
    for (std::size_t b = 0; b < kNumBuckets; ++b) buckets_[b] += o.buckets_[b];
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  void reset() { *this = Histogram{}; }

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

/// Registry of named counters and histograms.
///
/// The contract components rely on:
///  - counter()/histogram() return references that stay valid for the
///    registry's lifetime (std::map nodes never move), so construction-time
///    interning makes later updates lookup-free;
///  - add()/get() keep the old sim::Counters string API alive for cold
///    paths and tests;
///  - merge() folds another registry in by name — with a fixed fold order
///    (e.g. SweepRunner index order) the result is deterministic;
///  - reset() zeroes values but never removes entries, so cached handles
///    survive.
class Registry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name) {
    auto it = counters_.find(name);
    if (it == counters_.end())
      it = counters_.emplace(std::string(name), Counter{}).first;
    return it->second;
  }

  [[nodiscard]] Histogram& histogram(std::string_view name) {
    auto it = histograms_.find(name);
    if (it == histograms_.end())
      it = histograms_.emplace(std::string(name), Histogram{}).first;
    return it->second;
  }

  [[nodiscard]] Gauge& gauge(std::string_view name) {
    auto it = gauges_.find(name);
    if (it == gauges_.end())
      it = gauges_.emplace(std::string(name), Gauge{}).first;
    return it->second;
  }

  // ----- sim::Counters-compatible string API (cold paths, tests) -----

  void add(std::string_view name, std::uint64_t delta = 1) {
    counter(name).add(delta);
  }

  [[nodiscard]] std::uint64_t get(std::string_view name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value;
  }

  [[nodiscard]] const std::map<std::string, Counter, std::less<>>&
  all_counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>&
  all_histograms() const {
    return histograms_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& all_gauges()
      const {
    return gauges_;
  }

  void merge(const Registry& o) {
    for (const auto& [name, c] : o.counters_)
      if (c.value) counter(name).add(c.value);
    for (const auto& [name, h] : o.histograms_)
      if (h.count()) histogram(name).merge(h);
    for (const auto& [name, g] : o.gauges_) {
      Gauge& mine = gauge(name);
      mine.value = std::max(mine.value, g.value);
      mine.peak = std::max(mine.peak, g.peak);
    }
  }

  void reset() {
    for (auto& kv : counters_) kv.second.reset();
    for (auto& kv : histograms_) kv.second.reset();
    for (auto& kv : gauges_) kv.second.reset();
  }

  /// Machine-readable dump: counters plus histogram summary statistics,
  /// in sorted name order (deterministic across runs and platforms).
  void dump_json(std::FILE* out, int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    const char* p = pad.c_str();
    std::fprintf(out, "%s{\n%s  \"counters\": {", p, p);
    bool first = true;
    for (const auto& [name, c] : counters_) {
      std::fprintf(out, "%s\n%s    \"%s\": %llu", first ? "" : ",", p,
                   name.c_str(), static_cast<unsigned long long>(c.value));
      first = false;
    }
    std::fprintf(out, "\n%s  },\n%s  \"histograms\": {", p, p);
    first = true;
    for (const auto& [name, h] : histograms_) {
      std::fprintf(
          out,
          "%s\n%s    \"%s\": {\"count\": %llu, \"min\": %llu, \"mean\": %.1f, "
          "\"p50\": %llu, \"p90\": %llu, \"p99\": %llu, \"max\": %llu}",
          first ? "" : ",", p, name.c_str(),
          static_cast<unsigned long long>(h.count()),
          static_cast<unsigned long long>(h.min()), h.mean(),
          static_cast<unsigned long long>(h.p50()),
          static_cast<unsigned long long>(h.p90()),
          static_cast<unsigned long long>(h.p99()),
          static_cast<unsigned long long>(h.max()));
      first = false;
    }
    std::fprintf(out, "\n%s  }", p);
    // Emitted only when present, so registries without gauges keep the
    // exact two-section JSON shape of the committed baselines.
    if (!gauges_.empty()) {
      std::fprintf(out, ",\n%s  \"gauges\": {", p);
      first = true;
      for (const auto& [name, g] : gauges_) {
        std::fprintf(out, "%s\n%s    \"%s\": {\"value\": %lld, \"peak\": %lld}",
                     first ? "" : ",", p, name.c_str(),
                     static_cast<long long>(g.value),
                     static_cast<long long>(g.peak));
        first = false;
      }
      std::fprintf(out, "\n%s  }", p);
    }
    std::fprintf(out, "\n%s}\n", p);
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, Gauge, std::less<>> gauges_;
};

}  // namespace openmx::obs
