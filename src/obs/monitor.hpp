#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/registry.hpp"
#include "sim/time.hpp"

namespace openmx::obs {

/// Live run monitor: periodic Registry snapshots plus SLO watchdogs.
///
/// The monitor is a pure observer.  It never schedules engine events —
/// harness code calls poll(now) from points it already passes through
/// (the LP scheduler's coordinator at each window plan, Cluster's step
/// loop, a bench's restart callback), and the monitor decides internally
/// whether a sample is due.  Because the poll sites and the sampled
/// counters are both deterministic functions of the simulation, the
/// snapshot stream is bit-identical across runs and worker counts;
/// enabling a monitor changes neither Engine::events_scheduled() nor any
/// simulated timestamp.
///
/// Sampling is keyed to *simulated* time (every `sim_period_ns`, aligned
/// to period multiples).  An optional wall-clock period can be layered
/// on for long-running jobs whose simulated clock crawls; wall samples
/// are flagged and checked only every 1024 polls so the fast path stays
/// one comparison.
///
/// SLO watchdogs are named probes over the watched registry with a bound
/// (breach when value > bound).  Each is evaluated at every sample and
/// logs exactly once, on its first breach, so a sick run announces
/// itself without flooding the log.
class Monitor {
 public:
  explicit Monitor(const Registry& reg, sim::Time sim_period_ns,
                   std::size_t max_snapshots = 4096)
      : reg_(reg),
        period_(sim_period_ns > 0 ? sim_period_ns : 1),
        max_snapshots_(max_snapshots ? max_snapshots : 1) {}

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  using Probe = std::function<double(const Registry&)>;

  struct Slo {
    std::string name;
    double bound = 0.0;
    Probe probe;
    bool breached = false;
    sim::Time breach_when = 0;
    double breach_value = 0.0;
  };

  /// One sampled point: watched values in watch() order.
  struct Snapshot {
    sim::Time when = 0;
    bool wall = false;  // true when triggered by the wall-clock period
    std::vector<double> values;
  };

  /// Adds a metric to the per-snapshot value vector.  Counters, gauges
  /// and histograms (sampled as their count) are all addressable.
  void watch(std::string_view name) { watched_.emplace_back(name); }

  void add_slo(std::string name, double bound, Probe probe) {
    slos_.push_back(Slo{std::move(name), bound, std::move(probe)});
  }

  void set_log(std::FILE* f) { log_ = f; }

  /// Enables the optional wall-clock sampling layer (off by default —
  /// wall samples are inherently nondeterministic).
  void enable_wall(std::chrono::milliseconds period) {
    wall_period_ = period;
    wall_last_ = std::chrono::steady_clock::now();
  }

  /// Cheap to call from any loop: one comparison when no sample is due.
  void poll(sim::Time now) {
    if (now >= next_due_) {
      sample(now, false);
      next_due_ = (now / period_ + 1) * period_;
      return;
    }
    if (wall_period_.count() && ++wall_gate_ >= 1024) {
      wall_gate_ = 0;
      const auto t = std::chrono::steady_clock::now();
      if (t - wall_last_ >= wall_period_) {
        wall_last_ = t;
        sample(now, true);
      }
    }
  }

  [[nodiscard]] const std::vector<std::string>& watched() const {
    return watched_;
  }
  [[nodiscard]] const std::vector<Slo>& slos() const { return slos_; }

  [[nodiscard]] std::size_t breaches() const {
    std::size_t n = 0;
    for (const Slo& s : slos_)
      if (s.breached) ++n;
    return n;
  }

  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }
  [[nodiscard]] std::size_t snapshot_count() const { return snaps_.size(); }

  /// i-th retained snapshot in chronological order.
  [[nodiscard]] const Snapshot& snapshot(std::size_t i) const {
    return snaps_[(head_ + i) % snaps_.size()];
  }

  /// Compact machine-readable dump of the snapshot stream + SLO states.
  void dump_json(std::FILE* out) const {
    std::fprintf(out, "{\"monitor\":{\"period_ns\":%lld,\"samples\":%llu",
                 static_cast<long long>(period_),
                 static_cast<unsigned long long>(samples_));
    std::fputs(",\"watched\":[", out);
    for (std::size_t i = 0; i < watched_.size(); ++i)
      std::fprintf(out, "%s\"%s\"", i ? "," : "", watched_[i].c_str());
    std::fputs("],\"snapshots\":[", out);
    for (std::size_t i = 0; i < snaps_.size(); ++i) {
      const Snapshot& s = snapshot(i);
      std::fprintf(out, "%s\n{\"t\":%lld,\"wall\":%s,\"v\":[", i ? "," : "",
                   static_cast<long long>(s.when), s.wall ? "true" : "false");
      for (std::size_t v = 0; v < s.values.size(); ++v)
        std::fprintf(out, "%s%.3f", v ? "," : "", s.values[v]);
      std::fputs("]}", out);
    }
    std::fputs("\n],\"slos\":[", out);
    for (std::size_t i = 0; i < slos_.size(); ++i) {
      const Slo& s = slos_[i];
      std::fprintf(out,
                   "%s\n{\"name\":\"%s\",\"bound\":%.3f,\"breached\":%s,"
                   "\"t\":%lld,\"value\":%.3f}",
                   i ? "," : "", s.name.c_str(), s.bound,
                   s.breached ? "true" : "false",
                   static_cast<long long>(s.breach_when), s.breach_value);
    }
    std::fputs("\n]}}\n", out);
  }

 private:
  [[nodiscard]] double lookup(const std::string& name) const {
    {
      const auto& m = reg_.all_counters();
      auto it = m.find(name);
      if (it != m.end()) return static_cast<double>(it->second.value);
    }
    {
      const auto& m = reg_.all_gauges();
      auto it = m.find(name);
      if (it != m.end()) return static_cast<double>(it->second.value);
    }
    {
      const auto& m = reg_.all_histograms();
      auto it = m.find(name);
      if (it != m.end()) return static_cast<double>(it->second.count());
    }
    return 0.0;
  }

  void sample(sim::Time now, bool wall) {
    ++samples_;
    Snapshot s;
    s.when = now;
    s.wall = wall;
    s.values.reserve(watched_.size());
    for (const std::string& name : watched_) s.values.push_back(lookup(name));
    if (snaps_.size() == max_snapshots_) {
      snaps_[head_] = std::move(s);
      head_ = (head_ + 1) % max_snapshots_;
    } else {
      snaps_.push_back(std::move(s));
    }
    for (Slo& slo : slos_) {
      if (slo.breached) continue;
      const double v = slo.probe ? slo.probe(reg_) : 0.0;
      if (v > slo.bound) {
        slo.breached = true;
        slo.breach_when = now;
        slo.breach_value = v;
        if (log_)
          std::fprintf(log_,
                       "[monitor] SLO '%s' breached at t=%.3f us: "
                       "%.3f > bound %.3f\n",
                       slo.name.c_str(), sim::to_micros(now), v, slo.bound);
      }
    }
  }

  const Registry& reg_;
  sim::Time period_;
  std::size_t max_snapshots_;
  sim::Time next_due_ = 0;
  std::uint64_t samples_ = 0;
  std::vector<std::string> watched_;
  std::vector<Slo> slos_;
  std::vector<Snapshot> snaps_;
  std::size_t head_ = 0;
  std::FILE* log_ = stderr;
  std::chrono::milliseconds wall_period_{0};
  std::chrono::steady_clock::time_point wall_last_{};
  std::uint32_t wall_gate_ = 0;
};

}  // namespace openmx::obs
