#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace openmx::obs {

// Track numbering: each simulated node owns a block of kTracksPerNode
// consecutive tracks — CPU cores at the base, DMA channels at
// kDmaTrackOffset, exporter-synthesized tracks (span waterfalls) above
// kSpanTrackOffset.  Components are handed their base track at node
// construction; default-constructed components (unit tests) use node 0's.
inline constexpr int kTracksPerNode = 64;
inline constexpr int kDmaTrackOffset = 32;
inline constexpr int kSpanTrackOffset = 48;

[[nodiscard]] constexpr int cpu_track(int node, int core) {
  return node * kTracksPerNode + core;
}
[[nodiscard]] constexpr int dma_track(int node, int chan) {
  return node * kTracksPerNode + kDmaTrackOffset + chan;
}
[[nodiscard]] constexpr int track_node(int track) {
  return track / kTracksPerNode;
}
[[nodiscard]] constexpr int track_local(int track) {
  return track % kTracksPerNode;
}
[[nodiscard]] constexpr bool track_is_dma(int track) {
  return track_local(track) >= kDmaTrackOffset &&
         track_local(track) < kSpanTrackOffset;
}

// Slice categories.  0..3 mirror cpu::Cat (asserted in cpu/machine.hpp so
// the two never drift); kCatDma marks DMA-channel slices.
inline constexpr std::uint8_t kCatApp = 0;
inline constexpr std::uint8_t kCatUserLib = 1;
inline constexpr std::uint8_t kCatDriver = 2;
inline constexpr std::uint8_t kCatBottomHalf = 3;
inline constexpr std::uint8_t kCatDma = 0xFF;

[[nodiscard]] inline const char* slice_cat_name(std::uint8_t cat) {
  switch (cat) {
    case kCatApp: return "app";
    case kCatUserLib: return "user-library";
    case kCatDriver: return "driver";
    case kCatBottomHalf: return "bottom-half";
    case kCatDma: return "dma-copy";
    default: return "?";
  }
}

/// One busy interval of a core or DMA channel.
struct Slice {
  std::int32_t track = 0;
  std::uint8_t cat = 0;
  sim::Time start = 0;
  sim::Time dur = 0;
};

/// Utilization timeline: the busy intervals of every core and DMA
/// channel, recorded in dispatch order (deterministic).  Disabled by
/// default; when disabled, record() is a single branch.
///
/// This is the telemetry behind the Figure 9 CPU-usage breakdown: the
/// receive-side busy fraction per category over a measurement window is
/// busy_in_window() / window, replacing bespoke busy-counter deltas in
/// bench code.
class Timeline {
 public:
  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(int track, std::uint8_t cat, sim::Time start, sim::Time dur) {
    if (!enabled_ || dur <= 0) return;
    slices_.push_back(Slice{track, cat, start, dur});
  }

  [[nodiscard]] const std::vector<Slice>& slices() const { return slices_; }
  [[nodiscard]] std::size_t size() const { return slices_.size(); }
  void clear() { slices_.clear(); }

  /// Total busy time of category `cat` on `node`'s CPU tracks, clipped to
  /// the window [t0, t1).
  [[nodiscard]] sim::Time busy_in_window(int node, std::uint8_t cat,
                                         sim::Time t0, sim::Time t1) const {
    sim::Time sum = 0;
    for (const Slice& s : slices_) {
      if (s.cat != cat || track_node(s.track) != node) continue;
      sum += clip(s, t0, t1);
    }
    return sum;
  }

  /// Total DMA-channel busy time on `node`, clipped to [t0, t1).
  [[nodiscard]] sim::Time dma_busy_in_window(int node, sim::Time t0,
                                             sim::Time t1) const {
    sim::Time sum = 0;
    for (const Slice& s : slices_) {
      if (!track_is_dma(s.track) || track_node(s.track) != node) continue;
      sum += clip(s, t0, t1);
    }
    return sum;
  }

  /// Unclipped busy total of one (track, cat) pair; equals the machine's
  /// own busy-time accounting when the timeline was enabled for the whole
  /// run (asserted by the fig09 regression test).
  [[nodiscard]] sim::Time busy_total(int track, std::uint8_t cat) const {
    sim::Time sum = 0;
    for (const Slice& s : slices_)
      if (s.track == track && s.cat == cat) sum += s.dur;
    return sum;
  }

 private:
  [[nodiscard]] static sim::Time clip(const Slice& s, sim::Time t0,
                                      sim::Time t1) {
    const sim::Time lo = std::max(s.start, t0);
    const sim::Time hi = std::min(s.start + s.dur, t1);
    return hi > lo ? hi - lo : 0;
  }

  bool enabled_ = false;
  std::vector<Slice> slices_;
};

}  // namespace openmx::obs
