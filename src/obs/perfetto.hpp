#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/attrib.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "obs/wallprof.hpp"
#include "sim/time.hpp"

namespace openmx::obs {

/// Chrome trace-event / Perfetto JSON exporter.
///
/// Layout: one Perfetto process per simulated node (pid = node id), one
/// thread per core (tid = core index), one per DMA channel (tid =
/// kDmaTrackOffset + channel), and one synthesized thread per message
/// span (tid from kSpanTrackOffset up) carrying the phase waterfall.
/// Timestamps are microseconds with nanosecond resolution ("%.3f"), the
/// native unit of the trace-event format.  Output is fully deterministic:
/// metadata in (pid, tid) order, slices in recording order, spans in key
/// order.  Load the file at https://ui.perfetto.dev or chrome://tracing.
/// When `attrib` is non-null, each span track additionally carries one
/// "blame:<critical-resource>" slice over the whole message whose args
/// are the per-category latency attribution (attribute_blame) in
/// microseconds — the causal breakdown right next to the waterfall.
inline void write_chrome_trace_events(std::FILE* out, bool& first,
                                      const Timeline& tl,
                                      const SpanTable& spans, int num_nodes,
                                      const AttribTable* attrib = nullptr) {
  auto sep = [&] {
    std::fputs(first ? "\n" : ",\n", out);
    first = false;
  };

  for (int n = 0; n < num_nodes; ++n) {
    sep();
    std::fprintf(
        out,
        "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
        "\"args\":{\"name\":\"node%d\"}}",
        n, n);
  }

  // Thread metadata for every track that actually recorded a slice.
  std::set<int> used;
  for (const Slice& s : tl.slices()) used.insert(s.track);
  for (int track : used) {
    const int node = track_node(track);
    const int local = track_local(track);
    char name[32];
    if (track_is_dma(track))
      std::snprintf(name, sizeof name, "dma ch%d", local - kDmaTrackOffset);
    else
      std::snprintf(name, sizeof name, "core %d", local);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                 "\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                 node, local, name);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                 "\"thread_sort_index\",\"args\":{\"sort_index\":%d}}",
                 node, local, local);
  }

  // Span tracks: one synthesized thread per message, numbered upward from
  // kSpanTrackOffset within its node.
  std::map<int, int> next_span_tid;  // node -> next free tid
  std::map<std::uint64_t, int> span_tid;
  for (const auto& [key, s] : spans.all()) {
    auto [it, inserted] = next_span_tid.emplace(s.node, kSpanTrackOffset);
    const int tid = it->second++;
    span_tid[key] = tid;
    sep();
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                 "\"thread_name\",\"args\":{\"name\":\"msg #%u (%lluB)\"}}",
                 s.node, tid, static_cast<unsigned>(key & 0xffffffffu),
                 static_cast<unsigned long long>(s.bytes));
    sep();
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                 "\"thread_sort_index\",\"args\":{\"sort_index\":%d}}",
                 s.node, tid, tid);
  }

  // Core and DMA-channel busy slices.
  for (const Slice& s : tl.slices()) {
    sep();
    std::fprintf(out,
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,"
                 "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}",
                 slice_cat_name(s.cat), track_is_dma(s.track) ? "dma" : "cpu",
                 track_node(s.track), track_local(s.track),
                 sim::to_micros(s.start), sim::to_micros(s.dur));
  }

  // Span waterfalls: one slice per phase, spanning first..last stamp.
  for (const auto& [key, s] : spans.all()) {
    const int tid = span_tid[key];
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      if (s.first[p] < 0) continue;
      const sim::Time dur = std::max<sim::Time>(s.last[p] - s.first[p], 1);
      sep();
      std::fprintf(out,
                   "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":%d,"
                   "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
                   "\"args\":{\"overlap_us\":%.3f}}",
                   phase_name(static_cast<Phase>(p)), s.node, tid,
                   sim::to_micros(s.first[p]), sim::to_micros(dur),
                   sim::to_micros(s.overlap_ns()));
    }
    if (attrib) {
      const BlameVec blame = attribute_blame(s, attrib->find(key));
      sim::Time lo = -1;
      for (std::size_t p = 0; p < kNumPhases; ++p)
        if (s.first[p] >= 0 && (lo < 0 || s.first[p] < lo)) lo = s.first[p];
      if (lo >= 0) {
        sep();
        std::fprintf(out,
                     "{\"name\":\"blame:%s\",\"cat\":\"attrib\",\"ph\":\"X\","
                     "\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
                     "\"args\":{",
                     blame_name(critical_blame(blame)), s.node, tid,
                     sim::to_micros(lo),
                     sim::to_micros(std::max<sim::Time>(s.total_ns(), 1)));
        for (std::size_t b = 0; b < kNumBlames; ++b)
          std::fprintf(out, "%s\"%s_us\":%.3f", b ? "," : "",
                       blame_key(static_cast<Blame>(b)),
                       sim::to_micros(blame[b]));
        std::fputs("}}", out);
      }
    }
  }
}

/// Complete single-clock trace document (the historical entry point):
/// the virtual-time event body wrapped in the traceEvents envelope.
inline void write_chrome_trace(std::FILE* out, const Timeline& tl,
                               const SpanTable& spans, int num_nodes,
                               const AttribTable* attrib = nullptr) {
  bool first = true;
  std::fputs("{\"traceEvents\":[", out);
  write_chrome_trace_events(out, first, tl, spans, num_nodes, attrib);
  std::fputs("\n],\"displayTimeUnit\":\"ns\"}\n", out);
}

/// Convenience wrapper writing straight to `path`; returns false if the
/// file could not be opened.
inline bool write_chrome_trace_file(const std::string& path,
                                    const Timeline& tl, const SpanTable& spans,
                                    int num_nodes,
                                    const AttribTable* attrib = nullptr) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  write_chrome_trace(f, tl, spans, num_nodes, attrib);
  std::fclose(f);
  return true;
}

/// Dual-clock trace: the virtual-time node timeline plus one host-time
/// process per profiled thread (WallProfiler slices, pids from
/// WallProfiler::kWallTracePidBase), in a single document.  The two
/// clocks share the microsecond axis but not an origin — the host tracks
/// start at the profiler epoch — so the view reads as "what the
/// simulated cluster did" next to "what the simulator's threads paid for
/// it".  Requires slice capture (WallProfiler::set_slice_capacity) to
/// have been enabled before the run; with it off the host tracks are
/// simply absent and the document equals write_chrome_trace's.
inline void write_dual_clock_trace(std::FILE* out, const Timeline& tl,
                                   const SpanTable& spans, int num_nodes,
                                   const AttribTable* attrib = nullptr) {
  bool first = true;
  std::fputs("{\"traceEvents\":[", out);
  write_chrome_trace_events(out, first, tl, spans, num_nodes, attrib);
  WallProfiler::instance().write_trace_events(out, first);
  std::fputs("\n],\"displayTimeUnit\":\"ns\"}\n", out);
}

/// Convenience wrapper writing the dual-clock trace straight to `path`.
inline bool write_dual_clock_trace_file(const std::string& path,
                                        const Timeline& tl,
                                        const SpanTable& spans, int num_nodes,
                                        const AttribTable* attrib = nullptr) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  write_dual_clock_trace(f, tl, spans, num_nodes, attrib);
  std::fclose(f);
  return true;
}

// ---------------------------------------------------------------------------
// Per-LP scheduler tracks
// ---------------------------------------------------------------------------

/// One LP's share of a synchronization window (filled by the worker that
/// executed the LP; the scheduler barrier orders the writes).
struct LpWindowStat {
  std::uint32_t events = 0;      // events dispatched this window
  std::uint32_t inbox = 0;       // cross-LP messages delivered at start
  sim::Time busy_until = 0;      // last dispatch time (start if idle)
};

/// One conservative synchronization window across all LPs.
struct LpWindow {
  sim::Time start = 0;
  sim::Time end = 0;             // exclusive: events ran in [start, end)
  std::int32_t critical_lp = -1; // the LP whose next action set `start`
  sim::Time slack_ns = 0;        // margin to the runner-up LP's next action
  std::vector<LpWindowStat> per_lp;
};

/// Bounded chronological ring of LpWindows — the raw material for the
/// per-LP Perfetto tracks and the critical-LP attribution.  Opt-in (the
/// scheduler only appends when a capacity was configured); when full the
/// oldest windows are overwritten so long runs keep their tail.
class LpWindowLog {
 public:
  void reset(std::size_t num_lps, std::size_t capacity) {
    num_lps_ = num_lps;
    cap_ = capacity ? capacity : 1;
    ring_.clear();
    head_ = 0;
    total_ = 0;
  }

  LpWindow& append(sim::Time start, sim::Time end, int critical_lp,
                   sim::Time slack_ns) {
    LpWindow* w;
    if (ring_.size() == cap_) {
      w = &ring_[head_];
      head_ = (head_ + 1) % cap_;
    } else {
      ring_.emplace_back();
      w = &ring_.back();
    }
    w->start = start;
    w->end = end;
    w->critical_lp = critical_lp;
    w->slack_ns = slack_ns;
    w->per_lp.assign(num_lps_, LpWindowStat{});
    ++total_;
    return *w;
  }

  [[nodiscard]] std::size_t num_lps() const { return num_lps_; }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// i-th retained window in chronological order.
  [[nodiscard]] const LpWindow& window(std::size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }

 private:
  std::size_t num_lps_ = 0;
  std::size_t cap_ = 1;
  std::vector<LpWindow> ring_;
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
};

/// Perfetto pids for LP tracks sit far above node pids so a scheduler
/// trace can be concatenated with a node-level trace without collision.
inline constexpr int kLpTracePidBase = 1000;

/// Renders the window log as one Perfetto timeline per LP: a "busy"
/// slice over each window's dispatching prefix (args: events delivered /
/// inbox depth), a "stall" slice over the idle remainder — the
/// virtual-time barrier wait — and a "critical" instant on the LP that
/// bounded the window (args: slack to the runner-up).  Deterministic:
/// windows in chronological order, LPs in id order within each window.
inline void write_lp_trace(std::FILE* out, const LpWindowLog& log) {
  bool first = true;
  auto sep = [&] {
    std::fputs(first ? "\n" : ",\n", out);
    first = false;
  };

  std::fputs("{\"traceEvents\":[", out);
  for (std::size_t lp = 0; lp < log.num_lps(); ++lp) {
    sep();
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                 "\"args\":{\"name\":\"lp%zu\"}}",
                 kLpTracePidBase + static_cast<int>(lp), lp);
  }

  for (std::size_t i = 0; i < log.size(); ++i) {
    const LpWindow& w = log.window(i);
    for (std::size_t lp = 0; lp < w.per_lp.size(); ++lp) {
      const LpWindowStat& s = w.per_lp[lp];
      const int pid = kLpTracePidBase + static_cast<int>(lp);
      if (s.events) {
        const sim::Time busy =
            std::max<sim::Time>(s.busy_until - w.start, 1);
        sep();
        std::fprintf(out,
                     "{\"name\":\"busy\",\"cat\":\"lp\",\"ph\":\"X\","
                     "\"pid\":%d,\"tid\":0,\"ts\":%.3f,\"dur\":%.3f,"
                     "\"args\":{\"events\":%u,\"inbox\":%u}}",
                     pid, sim::to_micros(w.start), sim::to_micros(busy),
                     s.events, s.inbox);
      }
      const sim::Time busy_end =
          std::max(w.start, s.busy_until);
      if (w.end - 1 > busy_end) {
        sep();
        std::fprintf(out,
                     "{\"name\":\"stall\",\"cat\":\"lp\",\"ph\":\"X\","
                     "\"pid\":%d,\"tid\":0,\"ts\":%.3f,\"dur\":%.3f}",
                     pid, sim::to_micros(busy_end),
                     sim::to_micros(w.end - 1 - busy_end));
      }
      if (w.critical_lp == static_cast<std::int32_t>(lp)) {
        sep();
        std::fprintf(out,
                     "{\"name\":\"critical\",\"cat\":\"lp\",\"ph\":\"i\","
                     "\"s\":\"t\",\"pid\":%d,\"tid\":0,\"ts\":%.3f,"
                     "\"args\":{\"slack_us\":%.3f}}",
                     pid, sim::to_micros(w.start),
                     sim::to_micros(w.slack_ns));
      }
    }
  }
  std::fputs("\n],\"displayTimeUnit\":\"ns\"}\n", out);
}

/// Convenience wrapper writing the per-LP tracks straight to `path`.
inline bool write_lp_trace_file(const std::string& path,
                                const LpWindowLog& log) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  write_lp_trace(f, log);
  std::fclose(f);
  return true;
}

}  // namespace openmx::obs
