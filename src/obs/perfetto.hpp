#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "obs/attrib.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "sim/time.hpp"

namespace openmx::obs {

/// Chrome trace-event / Perfetto JSON exporter.
///
/// Layout: one Perfetto process per simulated node (pid = node id), one
/// thread per core (tid = core index), one per DMA channel (tid =
/// kDmaTrackOffset + channel), and one synthesized thread per message
/// span (tid from kSpanTrackOffset up) carrying the phase waterfall.
/// Timestamps are microseconds with nanosecond resolution ("%.3f"), the
/// native unit of the trace-event format.  Output is fully deterministic:
/// metadata in (pid, tid) order, slices in recording order, spans in key
/// order.  Load the file at https://ui.perfetto.dev or chrome://tracing.
/// When `attrib` is non-null, each span track additionally carries one
/// "blame:<critical-resource>" slice over the whole message whose args
/// are the per-category latency attribution (attribute_blame) in
/// microseconds — the causal breakdown right next to the waterfall.
inline void write_chrome_trace(std::FILE* out, const Timeline& tl,
                               const SpanTable& spans, int num_nodes,
                               const AttribTable* attrib = nullptr) {
  bool first = true;
  auto sep = [&] {
    std::fputs(first ? "\n" : ",\n", out);
    first = false;
  };

  std::fputs("{\"traceEvents\":[", out);

  for (int n = 0; n < num_nodes; ++n) {
    sep();
    std::fprintf(
        out,
        "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
        "\"args\":{\"name\":\"node%d\"}}",
        n, n);
  }

  // Thread metadata for every track that actually recorded a slice.
  std::set<int> used;
  for (const Slice& s : tl.slices()) used.insert(s.track);
  for (int track : used) {
    const int node = track_node(track);
    const int local = track_local(track);
    char name[32];
    if (track_is_dma(track))
      std::snprintf(name, sizeof name, "dma ch%d", local - kDmaTrackOffset);
    else
      std::snprintf(name, sizeof name, "core %d", local);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                 "\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                 node, local, name);
    sep();
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                 "\"thread_sort_index\",\"args\":{\"sort_index\":%d}}",
                 node, local, local);
  }

  // Span tracks: one synthesized thread per message, numbered upward from
  // kSpanTrackOffset within its node.
  std::map<int, int> next_span_tid;  // node -> next free tid
  std::map<std::uint64_t, int> span_tid;
  for (const auto& [key, s] : spans.all()) {
    auto [it, inserted] = next_span_tid.emplace(s.node, kSpanTrackOffset);
    const int tid = it->second++;
    span_tid[key] = tid;
    sep();
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                 "\"thread_name\",\"args\":{\"name\":\"msg #%u (%lluB)\"}}",
                 s.node, tid, static_cast<unsigned>(key & 0xffffffffu),
                 static_cast<unsigned long long>(s.bytes));
    sep();
    std::fprintf(out,
                 "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                 "\"thread_sort_index\",\"args\":{\"sort_index\":%d}}",
                 s.node, tid, tid);
  }

  // Core and DMA-channel busy slices.
  for (const Slice& s : tl.slices()) {
    sep();
    std::fprintf(out,
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,"
                 "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}",
                 slice_cat_name(s.cat), track_is_dma(s.track) ? "dma" : "cpu",
                 track_node(s.track), track_local(s.track),
                 sim::to_micros(s.start), sim::to_micros(s.dur));
  }

  // Span waterfalls: one slice per phase, spanning first..last stamp.
  for (const auto& [key, s] : spans.all()) {
    const int tid = span_tid[key];
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      if (s.first[p] < 0) continue;
      const sim::Time dur = std::max<sim::Time>(s.last[p] - s.first[p], 1);
      sep();
      std::fprintf(out,
                   "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":%d,"
                   "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
                   "\"args\":{\"overlap_us\":%.3f}}",
                   phase_name(static_cast<Phase>(p)), s.node, tid,
                   sim::to_micros(s.first[p]), sim::to_micros(dur),
                   sim::to_micros(s.overlap_ns()));
    }
    if (attrib) {
      const BlameVec blame = attribute_blame(s, attrib->find(key));
      sim::Time lo = -1;
      for (std::size_t p = 0; p < kNumPhases; ++p)
        if (s.first[p] >= 0 && (lo < 0 || s.first[p] < lo)) lo = s.first[p];
      if (lo >= 0) {
        sep();
        std::fprintf(out,
                     "{\"name\":\"blame:%s\",\"cat\":\"attrib\",\"ph\":\"X\","
                     "\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
                     "\"args\":{",
                     blame_name(critical_blame(blame)), s.node, tid,
                     sim::to_micros(lo),
                     sim::to_micros(std::max<sim::Time>(s.total_ns(), 1)));
        for (std::size_t b = 0; b < kNumBlames; ++b)
          std::fprintf(out, "%s\"%s_us\":%.3f", b ? "," : "",
                       blame_key(static_cast<Blame>(b)),
                       sim::to_micros(blame[b]));
        std::fputs("}}", out);
      }
    }
  }

  std::fputs("\n],\"displayTimeUnit\":\"ns\"}\n", out);
}

/// Convenience wrapper writing straight to `path`; returns false if the
/// file could not be opened.
inline bool write_chrome_trace_file(const std::string& path,
                                    const Timeline& tl, const SpanTable& spans,
                                    int num_nodes,
                                    const AttribTable* attrib = nullptr) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  write_chrome_trace(f, tl, spans, num_nodes, attrib);
  std::fclose(f);
  return true;
}

}  // namespace openmx::obs
