#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "sim/time.hpp"

namespace openmx::obs {

/// Coarse event taxonomy.  The category lives on the record as one byte
/// so post-processing can bucket events without touching the string
/// tables; the precise event name is the interned `id`.
enum class Cat : std::uint8_t {
  Wire = 0,  // frame transmissions / arrivals
  Bh,        // bottom-half protocol processing
  Ioat,      // DMA engine activity
  Pull,      // large-message pull protocol lifecycle
  Lib,       // user-library activity
  Other,
};

[[nodiscard]] inline const char* cat_name(Cat c) {
  switch (c) {
    case Cat::Wire: return "wire";
    case Cat::Bh: return "bh";
    case Cat::Ioat: return "ioat";
    case Cat::Pull: return "pull";
    case Cat::Lib: return "lib";
    default: return "other";
  }
}

/// Classify an event name by its prefix ("wire.tx" -> Wire, ...).
[[nodiscard]] inline Cat classify(std::string_view name) {
  if (name.starts_with("wire")) return Cat::Wire;
  if (name.starts_with("bh")) return Cat::Bh;
  if (name.starts_with("ioat") || name.starts_with("dma")) return Cat::Ioat;
  if (name.starts_with("pull")) return Cat::Pull;
  if (name.starts_with("lib")) return Cat::Lib;
  return Cat::Other;
}

/// Set in TraceEvent::flags when a0 is an id into the message interner
/// (string-API compatibility path) rather than a raw argument.
inline constexpr std::uint8_t kMsgInterned = 1;

/// One trace record: fixed-size POD, no strings, no allocation on the
/// record path.  32 bytes.
struct TraceEvent {
  sim::Time when = 0;
  std::int32_t node = -1;
  Cat cat = Cat::Other;
  std::uint8_t flags = 0;
  std::uint16_t id = 0;  // interned event name
  std::uint64_t a0 = 0;  // event argument (or interned message id)
  std::uint64_t a1 = 0;  // event argument
};
static_assert(std::is_trivially_copyable_v<TraceEvent>);
static_assert(sizeof(TraceEvent) == 32);

/// Pre-interned event identity handed out once (at component
/// construction) so the hot path records a u16 + enum with no lookup.
struct EventId {
  std::uint16_t id = 0;
  Cat cat = Cat::Other;
};

/// String interner: name -> dense id, with stable storage for the names
/// (a deque never moves its elements, so the map may key string_views
/// into it).  Interning is idempotent; ids are assigned in first-seen
/// order, which is deterministic for a deterministic simulation.
class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  std::uint32_t intern(std::string_view s) {
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    names_.emplace_back(s);
    const auto id = static_cast<std::uint32_t>(names_.size() - 1);
    index_.emplace(names_.back(), id);
    return id;
  }

  [[nodiscard]] const std::string& name(std::uint32_t id) const {
    if (id >= names_.size()) throw std::out_of_range("Interner: bad id");
    return names_[id];
  }

  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  std::deque<std::string> names_;
  std::map<std::string_view, std::uint32_t> index_;
};

/// Bounded ring of TraceEvents.  When full, the oldest records are
/// overwritten (and counted as dropped) so long experiments keep their
/// tail.  Storage grows lazily: a never-enabled trace costs nothing.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity) : capacity_(capacity) {}

  void push(const TraceEvent& e) {
    if (events_.size() == capacity_) {
      events_[head_] = e;
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// i-th record in chronological order.
  [[nodiscard]] const TraceEvent& chrono(std::size_t i) const {
    return events_[(head_ + i) % events_.size()];
  }

  void clear() {
    events_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace openmx::obs
