#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <map>

#include "sim/time.hpp"

namespace openmx::obs {

/// Lifecycle phases of one large-message receive, in protocol order.
/// Each fragment of the message may stamp a phase several times; the
/// span keeps the first and last stamp per phase, which is exactly what
/// the paper's Figure 8 analysis needs: the window during which the DMA
/// engine worked concurrently with fragment arrival.
enum class Phase : std::uint8_t {
  WireArrival = 0,  // a pull reply reached the NIC
  BottomHalf,       // bottom-half processing of a fragment
  IoatSubmit,       // copy descriptors handed to the DMA engine
  DmaComplete,      // a fragment's offloaded copy finished
  CopyOut,          // CPU copy into the application buffer (memcpy path)
  Notify,           // completion event pushed / observed by the library
  kCount,
};

inline constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);

[[nodiscard]] inline const char* phase_name(Phase p) {
  switch (p) {
    case Phase::WireArrival: return "wire-arrival";
    case Phase::BottomHalf: return "bottom-half";
    case Phase::IoatSubmit: return "ioat-submit";
    case Phase::DmaComplete: return "dma-complete";
    case Phase::CopyOut: return "copy-out";
    case Phase::Notify: return "notify";
    default: return "?";
  }
}

/// Span key: one large-message receive is identified by (receiving node,
/// driver pull handle) — unique for the lifetime of a simulation because
/// drivers never reuse handles.
[[nodiscard]] constexpr std::uint64_t span_key(int node, std::uint32_t handle) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 32) |
         handle;
}

/// First/last timestamp of every phase of one message receive.
struct Span {
  std::uint64_t key = 0;
  int node = -1;
  std::uint64_t bytes = 0;
  std::array<sim::Time, kNumPhases> first;
  std::array<sim::Time, kNumPhases> last;

  Span() {
    first.fill(-1);
    last.fill(-1);
  }

  [[nodiscard]] bool has(Phase p) const {
    return first[static_cast<std::size_t>(p)] >= 0;
  }
  [[nodiscard]] sim::Time first_at(Phase p) const {
    return first[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] sim::Time last_at(Phase p) const {
    return last[static_cast<std::size_t>(p)];
  }

  void mark(Phase p, sim::Time t) {
    auto& f = first[static_cast<std::size_t>(p)];
    auto& l = last[static_cast<std::size_t>(p)];
    if (f < 0 || t < f) f = t;
    if (t > l) l = t;
  }

  /// The Figure 8 overlap window: how long the DMA engine was moving this
  /// message's bytes while fragments were still arriving and being
  /// processed — the intersection of the DMA activity window
  /// [first ioat-submit, last dma-complete] with the ingress window
  /// [first wire-arrival, last bottom-half].  Zero for the memcpy path.
  [[nodiscard]] sim::Time overlap_ns() const {
    if (!has(Phase::IoatSubmit) || !has(Phase::DmaComplete) ||
        !has(Phase::WireArrival) || !has(Phase::BottomHalf))
      return 0;
    const sim::Time lo =
        std::max(first_at(Phase::IoatSubmit), first_at(Phase::WireArrival));
    const sim::Time hi =
        std::min(last_at(Phase::DmaComplete), last_at(Phase::BottomHalf));
    return std::max<sim::Time>(0, hi - lo);
  }

  /// End-to-end receive time: first wire arrival to the last stamp.
  [[nodiscard]] sim::Time total_ns() const {
    sim::Time lo = -1, hi = -1;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      if (first[p] < 0) continue;
      if (lo < 0 || first[p] < lo) lo = first[p];
      hi = std::max(hi, last[p]);
    }
    return lo < 0 ? 0 : hi - lo;
  }
};

/// Table of message-lifecycle spans, keyed by span_key().  Disabled by
/// default: a disabled table is one branch per stamp site.  Spans are
/// kept after the message completes — they are the post-run waterfall.
class SpanTable {
 public:
  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Registers the message's identity (called once, at pull start).
  void begin(std::uint64_t key, int node, std::uint64_t bytes) {
    if (!enabled_) return;
    Span& s = spans_[key];
    s.key = key;
    s.node = node;
    s.bytes = bytes;
  }

  void mark(std::uint64_t key, Phase p, sim::Time t) {
    if (!enabled_) return;
    Span& s = spans_[key];
    if (s.key == 0) s.key = key;
    s.mark(p, t);
  }

  [[nodiscard]] const std::map<std::uint64_t, Span>& all() const {
    return spans_;
  }
  [[nodiscard]] std::size_t size() const { return spans_.size(); }
  [[nodiscard]] const Span* find(std::uint64_t key) const {
    auto it = spans_.find(key);
    return it == spans_.end() ? nullptr : &it->second;
  }

  void clear() { spans_.clear(); }

 private:
  bool enabled_ = false;
  std::map<std::uint64_t, Span> spans_;
};

/// Per-message waterfall: phase offsets relative to the first wire
/// arrival, plus the measured overlap window.
inline void dump_waterfall(std::FILE* out, const SpanTable& spans,
                           std::size_t max_spans = 16) {
  std::size_t shown = 0;
  for (const auto& [key, s] : spans.all()) {
    if (shown++ == max_spans) {
      std::fprintf(out, "  ... %zu more spans\n", spans.size() - max_spans);
      break;
    }
    sim::Time base = -1;
    for (std::size_t p = 0; p < kNumPhases; ++p)
      if (s.first[p] >= 0 && (base < 0 || s.first[p] < base)) base = s.first[p];
    if (base < 0) continue;
    std::fprintf(out, "span n%d #%u  %llu bytes\n", s.node,
                 static_cast<unsigned>(key & 0xffffffffu),
                 static_cast<unsigned long long>(s.bytes));
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      if (s.first[p] < 0) continue;
      std::fprintf(out, "  %-14s +%10.3f us .. +%10.3f us\n",
                   phase_name(static_cast<Phase>(p)),
                   sim::to_micros(s.first[p] - base),
                   sim::to_micros(s.last[p] - base));
    }
    std::fprintf(out, "  %-14s %11.3f us of %.3f us total\n", "dma-overlap",
                 sim::to_micros(s.overlap_ns()), sim::to_micros(s.total_ns()));
  }
}

}  // namespace openmx::obs
