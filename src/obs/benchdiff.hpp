#pragma once

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace openmx::obs::benchdiff {

/// Cross-run bench analytics: diff two trees of BENCH_*_metrics.json
/// files (obs::Registry::dump_json output, as committed under
/// bench/baselines/ and emitted by every bench run) and classify each
/// metric's change as regression / improvement / neutral drift.
///
/// Three ingredients keep the report noise-aware rather than a raw diff:
///  - direction: a metric name implies whether up is good ("..._mibs",
///    "..._per_sec"), bad ("..._ns", "...stall..."), or neutral (plain
///    event counters — deterministic, so any drift is *behavioral* and
///    reported as "changed" without a better/worse verdict);
///  - tolerance bands: the guard baseline's per-row "tol" values are
///    honored for matching names, wall-clock-derived metrics get a wide
///    band (host noise), everything else the caller's default band;
///  - identical inputs produce an empty diff by construction — the
///    deterministic counters byte-match, so a same-commit re-run can
///    never report a spurious regression.

struct Tolerances {
  double default_band = 0.05;  // fractional change considered noise
  double wall_band = 0.25;     // for wall-clock-derived metrics
  std::map<std::string, double> per_metric;  // guard.json overrides

  [[nodiscard]] double band_for(const std::string& name) const;
};

/// Flattened metric values of one BENCH_*_metrics.json file: counters as
/// "name", histogram fields as "name.count"/"name.mean"/"name.p99"/...,
/// gauges as "name.value"/"name.peak".
using MetricMap = std::map<std::string, double>;

enum class Status { kRegression, kImprovement, kChanged, kAdded, kRemoved };

struct Row {
  std::string bench;   // file stem, e.g. "fig08_pingpong_ioat"
  std::string metric;  // flattened metric name
  double base = 0;
  double cur = 0;
  double delta = 0;  // fractional change vs. base (0 when base == 0)
  double band = 0;   // tolerance band applied
  Status status = Status::kChanged;
};

struct Report {
  std::vector<Row> rows;  // only metrics outside their band (or added/removed)
  std::size_t files_compared = 0;
  std::size_t metrics_compared = 0;
  std::size_t in_band = 0;

  [[nodiscard]] std::size_t count(Status s) const {
    std::size_t n = 0;
    for (const Row& r : rows) n += r.status == s;
    return n;
  }
};

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Extracts the quoted key at the start of a dump_json line ("name": ...).
inline bool parse_key(const char* line, std::string& key, const char** rest) {
  const char* p = line;
  while (*p == ' ' || *p == '\t') ++p;
  if (*p != '"') return false;
  const char* end = std::strchr(p + 1, '"');
  if (!end) return false;
  key.assign(p + 1, end);
  p = end + 1;
  if (*p != ':') return false;
  *rest = p + 1;
  return true;
}

/// Parses one Registry::dump_json document into flattened metrics.
/// Line-oriented over the exact shape dump_json emits — not a general
/// JSON parser, by design (same idiom as bench_guard's baseline reader).
inline bool parse_metrics_file(const std::string& path, MetricMap& out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return false;
  char line[1024];
  std::string section;
  std::string key;
  while (std::fgets(line, sizeof line, f)) {
    const char* rest = nullptr;
    if (!parse_key(line, key, &rest)) continue;
    while (*rest == ' ') ++rest;
    if (*rest == '{' && !std::strchr(rest, '"')) {
      section = key;  // "counters": { ... section opener
      continue;
    }
    if (section == "counters") {
      out[key] = std::strtod(rest, nullptr);
    } else if (!section.empty()) {
      // histogram / gauge object on one line: {"count": 1, "mean": 2.5, ...}
      const char* p = rest;
      std::string field;
      while ((p = std::strchr(p, '"'))) {
        const char* fe = std::strchr(p + 1, '"');
        if (!fe || fe[1] != ':') break;
        field.assign(p + 1, fe);
        out[key + "." + field] = std::strtod(fe + 2, nullptr);
        p = fe + 2;
      }
    }
  }
  std::fclose(f);
  return true;
}

/// Loads the guard baseline's per-row tolerance bands ("name": {"value":
/// v, "tol": t}) into `tol.per_metric`.  Missing file is not an error —
/// the defaults simply apply everywhere.
inline void load_guard_tolerances(const std::string& path, Tolerances& tol) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return;
  char line[512];
  char name[256];
  double value = 0, t = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::sscanf(line, " \"%255[^\"]\": {\"value\": %lf, \"tol\": %lf}",
                    name, &value, &t) == 3)
      tol.per_metric[name] = t;
  }
  std::fclose(f);
}

/// All BENCH_*_metrics.json files directly inside `dir`, keyed by bench
/// stem ("BENCH_<stem>_metrics.json" -> "<stem>"), sorted by key.
inline std::map<std::string, MetricMap> load_tree(const std::string& dir) {
  std::map<std::string, MetricMap> tree;
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    if (!e.is_regular_file()) continue;
    const std::string fn = e.path().filename().string();
    constexpr std::string_view kPre = "BENCH_", kSuf = "_metrics.json";
    if (fn.size() <= kPre.size() + kSuf.size() || fn.compare(0, kPre.size(), kPre) ||
        fn.compare(fn.size() - kSuf.size(), kSuf.size(), kSuf))
      continue;
    const std::string stem =
        fn.substr(kPre.size(), fn.size() - kPre.size() - kSuf.size());
    parse_metrics_file(e.path().string(), tree[stem]);
  }
  return tree;
}

// ---------------------------------------------------------------------------
// Direction + tolerance heuristics
// ---------------------------------------------------------------------------

inline bool name_contains(const std::string& name, std::string_view needle) {
  return name.find(needle) != std::string::npos;
}

/// +1 when larger is better, -1 when smaller is better, 0 when the
/// metric is a neutral behavioral counter (drift is "changed", not
/// better/worse).
inline int direction(const std::string& name) {
  for (const char* up : {"mibs", "per_sec", "speedup", "overlap",
                         "hit_frac", "regcache.hit", "coverage"})
    if (name_contains(name, up)) return +1;
  for (const char* down : {"_ns", ".ns", "_us", "stall", "wait", "drop",
                           "retrans", "failure", "fault", "dup", "nack",
                           "cpu_frac", "excl_ns", "timeout"})
    if (name_contains(name, down)) return -1;
  return 0;
}

/// Wall-clock-derived metrics: host-noise dominated, wide band.
inline bool is_wall_metric(const std::string& name) {
  return name_contains(name, "wall.") || name_contains(name, "per_sec") ||
         name_contains(name, "speedup") ||
         name_contains(name, "hardware_threads");
}

inline double Tolerances::band_for(const std::string& name) const {
  auto it = per_metric.find(name);
  if (it != per_metric.end()) return it->second;
  return is_wall_metric(name) ? wall_band : default_band;
}

// ---------------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------------

/// Compares two loaded trees: `base` (the reference, e.g. committed
/// baselines) vs `cur` (the fresh run).  Only benches present in *both*
/// trees are compared — baselines typically cover a subset of what a
/// full run emits, and an extra file in either tree is not a finding.
inline Report diff_trees(const std::map<std::string, MetricMap>& base,
                         const std::map<std::string, MetricMap>& cur,
                         const Tolerances& tol) {
  Report rep;
  for (const auto& [bench, bm] : base) {
    auto ci = cur.find(bench);
    if (ci == cur.end()) continue;
    ++rep.files_compared;
    const MetricMap& cm = ci->second;
    for (const auto& [name, bv] : bm) {
      auto mi = cm.find(name);
      if (mi == cm.end()) {
        rep.rows.push_back({bench, name, bv, 0, 0, 0, Status::kRemoved});
        continue;
      }
      ++rep.metrics_compared;
      const double cv = mi->second;
      const double band = tol.band_for(name);
      const double delta =
          bv != 0 ? (cv - bv) / std::fabs(bv) : (cv != 0 ? 1.0 : 0.0);
      if (std::fabs(delta) <= band) {
        ++rep.in_band;
        continue;
      }
      const int dir = direction(name);
      Status st = Status::kChanged;
      if (dir > 0) st = delta < 0 ? Status::kRegression : Status::kImprovement;
      if (dir < 0) st = delta > 0 ? Status::kRegression : Status::kImprovement;
      rep.rows.push_back({bench, name, bv, cv, delta, band, st});
    }
    for (const auto& [name, cv] : cm)
      if (!bm.count(name))
        rep.rows.push_back({bench, name, 0, cv, 0, 0, Status::kAdded});
  }
  // Most severe first: regressions, improvements, changed, added/removed;
  // by |delta| within each class.
  std::stable_sort(rep.rows.begin(), rep.rows.end(),
                   [](const Row& a, const Row& b) {
                     if (a.status != b.status)
                       return static_cast<int>(a.status) <
                              static_cast<int>(b.status);
                     return std::fabs(a.delta) > std::fabs(b.delta);
                   });
  return rep;
}

// ---------------------------------------------------------------------------
// Markdown report
// ---------------------------------------------------------------------------

inline const char* status_name(Status s) {
  switch (s) {
    case Status::kRegression: return "regression";
    case Status::kImprovement: return "improvement";
    case Status::kChanged: return "changed";
    case Status::kAdded: return "added";
    case Status::kRemoved: return "removed";
  }
  return "?";
}

inline void write_markdown(std::FILE* out, const Report& rep,
                           const std::string& base_label,
                           const std::string& cur_label) {
  std::fprintf(out, "# omx_benchdiff report\n\n");
  std::fprintf(out, "- base: `%s`\n- current: `%s`\n", base_label.c_str(),
               cur_label.c_str());
  std::fprintf(out,
               "- %zu benches, %zu metrics compared, %zu within tolerance\n",
               rep.files_compared, rep.metrics_compared, rep.in_band);
  std::fprintf(out,
               "- **%zu regressions**, %zu improvements, %zu neutral "
               "changes, %zu added, %zu removed\n\n",
               rep.count(Status::kRegression), rep.count(Status::kImprovement),
               rep.count(Status::kChanged), rep.count(Status::kAdded),
               rep.count(Status::kRemoved));
  if (rep.rows.empty()) {
    std::fprintf(out, "No metrics moved outside their tolerance bands.\n");
    return;
  }
  std::fprintf(out, "| verdict | bench | metric | base | current | delta | band |\n");
  std::fprintf(out, "|---|---|---|---:|---:|---:|---:|\n");
  for (const Row& r : rep.rows) {
    if (r.status == Status::kAdded || r.status == Status::kRemoved) {
      std::fprintf(out, "| %s | %s | %s | %.6g | %.6g | - | - |\n",
                   status_name(r.status), r.bench.c_str(), r.metric.c_str(),
                   r.base, r.cur);
      continue;
    }
    std::fprintf(out, "| %s%s%s | %s | %s | %.6g | %.6g | %+.1f%% | %.0f%% |\n",
                 r.status == Status::kRegression ? "**" : "",
                 status_name(r.status),
                 r.status == Status::kRegression ? "**" : "", r.bench.c_str(),
                 r.metric.c_str(), r.base, r.cur, 100.0 * r.delta,
                 100.0 * r.band);
  }
}

}  // namespace openmx::obs::benchdiff
