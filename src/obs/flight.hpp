#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace openmx::obs {

/// Always-on postmortem ring of trace events, one ring per LP shard.
///
/// The full sim::Trace is opt-in because an unbounded-rate record stream
/// is not free; the flight recorder is the complement: a fixed-size ring
/// of the same 32-byte POD TraceEvents that is cheap enough to leave on
/// in production runs (one masked store per event, no strings, no
/// allocation after construction) and whose only job is to still hold
/// the *tail* of the event stream when something goes wrong.  Each shard
/// ring is written exclusively by the thread executing that LP's window
/// — the LP scheduler's barrier protocol provides the happens-before
/// edges — so recording needs no atomics and no locks.
///
/// dump_json() writes a Chrome-trace/Perfetto file (one process per
/// shard) with a "postmortem" header carrying the failure reason and
/// seed; it is wired into soak invariant failures, the driver's
/// retries-exhausted fatal paths and Engine::on_panic.  Events are
/// emitted one per line in a fixed field order so `omx_postmortem` can
/// parse the dump with sscanf — no JSON library needed on either side.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t num_shards = 1,
                          std::size_t per_shard = 256) {
    per_shard_ = 1;
    while (per_shard_ < per_shard) per_shard_ <<= 1;  // power of two: mask,
    mask_ = per_shard_ - 1;                           // not modulo, per event
    shards_.resize(num_shards);
    for (Shard& s : shards_) s.ring.resize(per_shard_);
  }

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] std::size_t per_shard_capacity() const { return per_shard_; }

  /// Hot path: overwrite-oldest store into the shard's ring.  Only the
  /// thread currently executing shard `shard` may call this.
  void record(std::uint32_t shard, const TraceEvent& e) {
    Shard& s = shards_[shard];
    s.ring[s.total & mask_] = e;
    ++s.total;
  }

  /// Binds the name tables used to render shard `shard`'s interned event
  /// ids at dump time (called by sim::Trace::attach_flight).  The
  /// recorder stores the pointers, not a copy: dump while the owning
  /// Trace is still alive (every built-in hook — on_panic, the soak's
  /// invariant dump — runs inside the cluster's lifetime).
  void bind_names(std::uint32_t shard, const Interner* events,
                  const Interner* msgs) {
    shards_[shard].events = events;
    shards_[shard].msgs = msgs;
  }

  /// Events ever recorded on a shard (≥ retained count once wrapped).
  [[nodiscard]] std::uint64_t recorded(std::uint32_t shard) const {
    return shards_[shard].total;
  }

  /// Retained tail of a shard, in chronological order.
  [[nodiscard]] std::vector<TraceEvent> tail(std::uint32_t shard) const {
    const Shard& s = shards_[shard];
    const std::uint64_t n = s.total < per_shard_ ? s.total : per_shard_;
    std::vector<TraceEvent> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = s.total - n; i < s.total; ++i)
      out.push_back(s.ring[i & mask_]);
    return out;
  }

  /// Chrome-trace postmortem dump: "postmortem" header first (reason,
  /// seed, per-shard recorded/retained counts), then one instant event
  /// per line, shards in id order, each shard chronological.
  void dump_json(std::FILE* out, const char* reason,
                 std::uint64_t seed) const {
    std::fprintf(out,
                 "{\"postmortem\":{\"reason\":\"%s\",\"seed\":%llu,"
                 "\"shards\":%zu,\"capacity\":%zu",
                 escape(reason).c_str(), static_cast<unsigned long long>(seed),
                 shards_.size(), per_shard_);
    std::fputs(",\"recorded\":[", out);
    for (std::size_t i = 0; i < shards_.size(); ++i)
      std::fprintf(out, "%s%llu", i ? "," : "",
                   static_cast<unsigned long long>(shards_[i].total));
    std::fputs("]},\n\"traceEvents\":[", out);
    bool first = true;
    for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
      std::fprintf(out,
                   "%s\n{\"ph\":\"M\",\"pid\":%zu,\"name\":\"process_name\","
                   "\"args\":{\"name\":\"shard%zu\"}}",
                   first ? "" : ",", sh, sh);
      first = false;
      const Shard& s = shards_[sh];
      const std::uint64_t n = s.total < per_shard_ ? s.total : per_shard_;
      for (std::uint64_t i = s.total - n; i < s.total; ++i) {
        const TraceEvent& e = s.ring[i & mask_];
        const bool interned_msg =
            (e.flags & kMsgInterned) && s.msgs != nullptr;
        std::fprintf(
            out,
            ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
            "\"pid\":%zu,\"tid\":%d,\"ts\":%.3f,"
            "\"args\":{\"node\":%d,\"a0\":%llu,\"a1\":%llu",
            s.events ? escape(s.events->name(e.id).c_str()).c_str() : "ev",
            cat_name(e.cat), sh, e.node >= 0 ? e.node : 0,
            sim::to_micros(e.when), e.node,
            static_cast<unsigned long long>(e.a0),
            static_cast<unsigned long long>(e.a1));
        if (interned_msg)
          std::fprintf(
              out, ",\"msg\":\"%s\"",
              escape(s.msgs->name(static_cast<std::uint32_t>(e.a0)).c_str())
                  .c_str());
        std::fputs("}}", out);
      }
    }
    std::fputs("\n],\"displayTimeUnit\":\"ns\"}\n", out);
  }

  /// Writes the dump to `path`; returns false if the file cannot be
  /// opened (the caller is already on a failure path — never throw).
  bool dump_json_file(const std::string& path, const char* reason,
                      std::uint64_t seed) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    dump_json(f, reason, seed);
    std::fclose(f);
    return true;
  }

 private:
  struct Shard {
    std::vector<TraceEvent> ring;
    std::uint64_t total = 0;
    const Interner* events = nullptr;
    const Interner* msgs = nullptr;
  };

  /// Minimal JSON string sanitizer for reasons and interned names (both
  /// come from our own code, so mapping the rare quote/backslash/control
  /// byte to a safe character beats dragging in real escaping).
  [[nodiscard]] static std::string escape(const char* s) {
    std::string out(s ? s : "");
    for (char& c : out)
      if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
        c = '\'';
    return out;
  }

  std::size_t per_shard_ = 0;
  std::uint64_t mask_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace openmx::obs
