#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

/// Build-time gate: configure with -DENABLE_WALLPROF=OFF (which defines
/// OMX_WALLPROF_BUILD=0) and every OMX_WALL_ZONE expands to nothing — no
/// statics, no branches, byte-identical codegen to an uninstrumented tree.
#ifndef OMX_WALLPROF_BUILD
#define OMX_WALLPROF_BUILD 1
#endif

namespace openmx::obs {

/// Host wall-clock self-profiler: where does the *simulator's own* time go?
///
/// Everything else in obs/ observes virtual time and is deterministic by
/// contract.  This class is its host-time mirror: RAII scoped zones
/// (OMX_WALL_ZONE("engine.dispatch")) aggregate count / inclusive-ns /
/// exclusive-ns per zone into thread-local tables — no locks, no shared
/// writes on the hot path — so the cost of a zone is two timestamp reads
/// (rdtsc where available) plus a handful of thread-local adds.  Zone ids
/// are interned once per call site through a function-local static, and a
/// per-thread zone *stack* subtracts child time from the parent, so
/// exclusive times always satisfy excl == incl - sum(child incl) exactly.
///
/// Wall numbers are inherently nondeterministic, so they live strictly
/// apart from the deterministic metrics stream: export_metrics() writes
/// wall.<zone>.{ns,count,excl_ns} into a *caller-chosen* registry (the
/// same segregation contract as LpScheduler::wall_metrics()) and nothing
/// in the library ever merges them into a simulation registry, replay
/// digest, or committed baseline (asserted by test_wallprof).
///
/// Gates:
///  - build time: ENABLE_WALLPROF=OFF compiles zones out entirely;
///  - run time: OMX_WALLPROF=0 in the environment (or set_enabled(false))
///    reduces a zone to one relaxed atomic load — no clock reads, no
///    thread-table allocation, nothing recorded.
///
/// Each zone exit additionally appends a {zone, t0, t1} slice to a
/// bounded per-thread ring, from which write_trace_events() renders one
/// host-time Perfetto process per thread — the dual-clock view next to
/// the virtual-time timeline (see obs::write_dual_clock_trace_file).
///
/// reset() and the read-side APIs (export_metrics, totals, coverage,
/// write_trace_events) touch other threads' tables and must only run
/// while no instrumented code executes concurrently (between runs, after
/// ThreadPool::join) — the same quiescence the LP scheduler's metric
/// export already requires.
class WallProfiler {
 public:
  struct ZoneTotals {
    std::uint64_t count = 0;
    std::uint64_t ns = 0;       // inclusive
    std::uint64_t excl_ns = 0;  // inclusive minus time in nested zones
  };

  /// One completed zone occurrence, for the host-time Perfetto track.
  /// Timestamps are raw clock ticks; to_ns() converts at export time.
  struct Slice {
    std::uint32_t zone = 0;
    std::uint32_t depth = 0;
    std::uint64_t t0 = 0;
    std::uint64_t t1 = 0;
  };

  static WallProfiler& instance() {
    static WallProfiler p;
    return p;
  }

  /// Interns a zone name; ids are dense and stable for the process
  /// lifetime.  Called once per call site via OMX_WALL_ZONE's static.
  [[nodiscard]] static std::uint32_t intern(std::string_view name) {
    WallProfiler& p = instance();
    const std::lock_guard<std::mutex> lock(p.mu_);
    for (std::size_t i = 0; i < p.names_.size(); ++i)
      if (p.names_[i] == name) return static_cast<std::uint32_t>(i);
    p.names_.emplace_back(name);
    return static_cast<std::uint32_t>(p.names_.size() - 1);
  }

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Runtime toggle (the OMX_WALLPROF env var sets the initial state).
  /// Disabling mid-zone is safe: an open zone finishes against the table
  /// it captured at entry; new zones become no-ops.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  [[nodiscard]] static constexpr bool compiled_in() {
    return OMX_WALLPROF_BUILD != 0;
  }

  [[nodiscard]] const char* clock_name() const {
#if defined(__x86_64__) || defined(__i386__)
    return "rdtsc";
#else
    return "steady_clock";
#endif
  }

  /// Raw timestamp (ticks of clock_name()).  rdtsc on x86 — ~20 cycles,
  /// an order of magnitude cheaper than a clock_gettime vsyscall, which
  /// is what keeps per-event zones inside the <=3 % overhead budget.
  [[nodiscard]] static std::uint64_t now_raw() {
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
  }

  /// Ticks → nanoseconds.  Calibrated once, lazily, on the first
  /// read-side call: the constant-rate TSC is measured against
  /// steady_clock over the time since profiler construction (spinning
  /// briefly if that baseline is still under 1 ms), then cached — so
  /// every later conversion uses the *same* rate and cross-call
  /// arithmetic like excl == incl - child stays exact in nanoseconds
  /// too, not just in ticks.
  [[nodiscard]] double ns_per_tick() const {
#if defined(__x86_64__) || defined(__i386__)
    double cached = npt_cache_.load(std::memory_order_relaxed);
    if (cached > 0.0) return cached;
    double dns = 0.0;
    do {
      dns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - epoch_wall_)
              .count());
    } while (dns < 1e6);
    const double dticks = static_cast<double>(now_raw() - epoch_raw_);
    cached = dticks > 0 ? dns / dticks : 1.0;
    npt_cache_.store(cached, std::memory_order_relaxed);
    return cached;
#else
    return 1.0;
#endif
  }

  [[nodiscard]] std::uint64_t to_ns(std::uint64_t ticks, double npt) const {
    return static_cast<std::uint64_t>(static_cast<double>(ticks) * npt);
  }

  // ----- read side (quiescent only) --------------------------------------

  [[nodiscard]] std::size_t num_zones() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return names_.size();
  }

  [[nodiscard]] std::size_t num_threads() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return tables_.size();
  }

  /// Aggregated totals of one zone across every thread, in nanoseconds.
  [[nodiscard]] ZoneTotals totals(std::string_view name) const {
    const double npt = ns_per_tick();
    const std::lock_guard<std::mutex> lock(mu_);
    ZoneTotals out;
    const std::size_t zid = find_zone(name);
    if (zid == names_.size()) return out;
    for (const auto& t : tables_) {
      if (zid >= t->stats.size()) continue;
      const ZoneStat& s = t->stats[zid];
      out.count += s.count;
      out.ns += to_ns(s.incl_ticks, npt);
      out.excl_ns += to_ns(s.incl_ticks - s.child_ticks, npt);
    }
    return out;
  }

  /// Total time in top-level (unnested) zones across all threads — the
  /// denominator for shares like "what fraction of instrumented wall
  /// time went to barrier waits".
  [[nodiscard]] std::uint64_t toplevel_ns() const {
    const double npt = ns_per_tick();
    const std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t total = 0;
    for (const auto& t : tables_) total += to_ns(t->toplevel_ticks, npt);
    return total;
  }

  /// Fraction of `root`'s inclusive time attributed to nested zones
  /// (1 - excl/incl): how much of a run the instrumentation actually
  /// explains.  The bench_sim_speed KPI asserts this >= 0.90 for the
  /// sequential engine run.
  [[nodiscard]] double coverage(std::string_view root) const {
    const ZoneTotals t = totals(root);
    if (t.ns == 0) return 0.0;
    return 1.0 -
           static_cast<double>(t.excl_ns) / static_cast<double>(t.ns);
  }

  /// Writes wall.<scope><zone>.{ns,count,excl_ns} counters into `out` —
  /// which must be a wall-side registry, never the deterministic metrics
  /// one.  `scope` (e.g. "seq.") namespaces repeated exports of the same
  /// process, as when a bench profiles several modes back to back with a
  /// reset() in between.  Zones in interned-id order; Registry sorts by
  /// name on dump.
  void export_metrics(Registry& out, const char* scope = "") const {
    const double npt = ns_per_tick();
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<ZoneTotals> agg(names_.size());
    for (const auto& t : tables_) {
      for (std::size_t z = 0; z < t->stats.size() && z < agg.size(); ++z) {
        agg[z].count += t->stats[z].count;
        agg[z].ns += to_ns(t->stats[z].incl_ticks, npt);
        agg[z].excl_ns +=
            to_ns(t->stats[z].incl_ticks - t->stats[z].child_ticks, npt);
      }
    }
    char name[96];
    for (std::size_t z = 0; z < agg.size(); ++z) {
      if (!agg[z].count) continue;
      std::snprintf(name, sizeof name, "wall.%s%s.ns", scope,
                    names_[z].c_str());
      out.counter(name).add(agg[z].ns);
      std::snprintf(name, sizeof name, "wall.%s%s.count", scope,
                    names_[z].c_str());
      out.counter(name).add(agg[z].count);
      std::snprintf(name, sizeof name, "wall.%s%s.excl_ns", scope,
                    names_[z].c_str());
      out.counter(name).add(agg[z].excl_ns);
    }
  }

  /// Zeroes every thread's aggregates and slice ring (zone names and
  /// thread registrations survive).  Quiescent-only, like the exports.
  void reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& t : tables_) {
      for (ZoneStat& s : t->stats) s = ZoneStat{};
      t->toplevel_ticks = 0;
      t->ring_size = 0;
      t->ring_head = 0;
      t->slices_seen = 0;
    }
  }

  /// Per-thread slice-ring capacity.  Off by default — the ring write is
  /// the one hot-path cost that is pure tracing, so only trace-producing
  /// harnesses turn it on (before the run: it resizes every registered
  /// thread's ring, so quiescent-only like the other read-side calls).
  void set_slice_capacity(std::size_t cap) {
    const std::lock_guard<std::mutex> lock(mu_);
    slice_cap_ = cap;
    for (const auto& t : tables_) {
      t->ring.assign(cap, Slice{});
      t->ring_head = 0;
      t->ring_size = 0;
    }
  }

  /// Emits the captured slices as Chrome-trace events: one Perfetto
  /// process per host thread (pid = kWallTracePidBase + thread index,
  /// named "host-thread<i>"), slices in ring-chronological order with
  /// timestamps in microseconds since the profiler epoch.  `first`
  /// carries the caller's separator state so the events can be appended
  /// to an existing traceEvents array (the dual-clock writer does this).
  static constexpr int kWallTracePidBase = 2000;

  void write_trace_events(std::FILE* out, bool& first) const {
    const double npt = ns_per_tick();
    const std::lock_guard<std::mutex> lock(mu_);
    auto sep = [&] {
      std::fputs(first ? "\n" : ",\n", out);
      first = false;
    };
    for (std::size_t ti = 0; ti < tables_.size(); ++ti) {
      const ThreadTable& t = *tables_[ti];
      if (!t.ring_size) continue;
      const int pid = kWallTracePidBase + static_cast<int>(ti);
      sep();
      std::fprintf(out,
                   "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                   "\"args\":{\"name\":\"host-thread%zu\"}}",
                   pid, ti);
      // ring_head is the *next write* slot: a full ring's oldest entry
      // lives there, a partially-filled one starts ring_size slots back.
      const std::size_t start =
          (t.ring_head + t.ring.size() - t.ring_size) % t.ring.size();
      for (std::size_t i = 0; i < t.ring_size; ++i) {
        const Slice& s = t.ring[(start + i) % t.ring.size()];
        const double ts =
            static_cast<double>(to_ns(s.t0 - epoch_raw_, npt)) / 1e3;
        const double dur =
            static_cast<double>(to_ns(s.t1 - s.t0, npt)) / 1e3;
        sep();
        std::fprintf(out,
                     "{\"name\":\"%s\",\"cat\":\"wall\",\"ph\":\"X\","
                     "\"pid\":%d,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                     names_[s.zone].c_str(), pid, s.depth, ts, dur);
      }
    }
  }

  /// Standalone host-time trace file (the dual-clock composition lives
  /// in obs/perfetto.hpp to keep this header engine-independent).
  bool write_trace_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    bool first = true;
    std::fputs("{\"traceEvents\":[", f);
    write_trace_events(f, first);
    std::fputs("\n],\"displayTimeUnit\":\"ns\"}\n", f);
    std::fclose(f);
    return true;
  }

 private:
  friend class WallZone;

  struct ZoneStat {
    std::uint64_t count = 0;
    std::uint64_t incl_ticks = 0;
    std::uint64_t child_ticks = 0;
  };

  struct StackFrame {
    std::uint32_t zone = 0;
    std::uint64_t t0 = 0;
    std::uint64_t child_ticks = 0;
  };

  /// All hot-path state of one thread.  Owned by the profiler's table
  /// list (the thread only caches a raw pointer), so the aggregates
  /// survive thread exit (LP helper threads come and go).
  struct ThreadTable {
    std::vector<ZoneStat> stats;       // indexed by zone id
    std::vector<StackFrame> stack;     // open zones, innermost last
    std::uint64_t toplevel_ticks = 0;  // inclusive ticks of depth-0 zones
    std::vector<Slice> ring;           // bounded slice capture
    std::size_t ring_head = 0;
    std::size_t ring_size = 0;
    std::uint64_t slices_seen = 0;
  };

  WallProfiler() {
    epoch_raw_ = now_raw();
    epoch_wall_ = std::chrono::steady_clock::now();
    const char* env = std::getenv("OMX_WALLPROF");
    enabled_.store(compiled_in() && !(env && env[0] == '0' && !env[1]),
                   std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t find_zone(std::string_view name) const {
    for (std::size_t i = 0; i < names_.size(); ++i)
      if (names_[i] == name) return i;
    return names_.size();
  }

  /// The hot-path accessor: one relaxed load when disabled; otherwise
  /// the thread's table, registered (and its ring sized) on first use.
  /// The cache is a constant-initialized raw pointer, not the owning
  /// shared_ptr — a zero-initialized thread_local has no dynamic-init
  /// guard check, which matters at ~2 zones per engine event.  The
  /// profiler's tables_ list keeps the table alive past thread exit.
  [[nodiscard]] static ThreadTable* tls() {
    WallProfiler& p = instance();
    if (!p.enabled_.load(std::memory_order_relaxed)) return nullptr;
    thread_local ThreadTable* table = nullptr;
    if (!table) table = p.register_thread();
    return table;
  }

  [[nodiscard]] ThreadTable* register_thread() {
    auto t = std::make_shared<ThreadTable>();
    const std::lock_guard<std::mutex> lock(mu_);
    t->stats.resize(names_.size() + 8);
    t->stack.reserve(32);
    t->ring.resize(slice_cap_);
    tables_.push_back(t);
    return t.get();
  }

  std::atomic<bool> enabled_{false};
  mutable std::atomic<double> npt_cache_{0.0};
  mutable std::mutex mu_;
  std::vector<std::string> names_;
  std::vector<std::shared_ptr<ThreadTable>> tables_;
  std::size_t slice_cap_ = 0;
  std::uint64_t epoch_raw_ = 0;
  std::chrono::steady_clock::time_point epoch_wall_{};
};

/// RAII scoped zone.  Constructed with an interned zone id (see
/// OMX_WALL_ZONE); destruction folds the occurrence into the thread's
/// table and charges the inclusive time to the parent frame's child
/// accumulator — the exact-exclusive-time invariant.
class WallZone {
 public:
  explicit WallZone(std::uint32_t zone) : table_(WallProfiler::tls()) {
    if (!table_) return;
    table_->stack.push_back(
        {zone, WallProfiler::now_raw(), 0});
  }

  WallZone(const WallZone&) = delete;
  WallZone& operator=(const WallZone&) = delete;

  ~WallZone() {
    if (!table_) return;
    const std::uint64_t t1 = WallProfiler::now_raw();
    const WallProfiler::StackFrame f = table_->stack.back();
    table_->stack.pop_back();
    const std::uint64_t incl = t1 - f.t0;
    if (f.zone >= table_->stats.size())
      table_->stats.resize(f.zone + 8);
    WallProfiler::ZoneStat& s = table_->stats[f.zone];
    ++s.count;
    s.incl_ticks += incl;
    s.child_ticks += f.child_ticks;
    if (table_->stack.empty())
      table_->toplevel_ticks += incl;
    else
      table_->stack.back().child_ticks += incl;
    if (!table_->ring.empty()) {
      table_->ring[table_->ring_head] = WallProfiler::Slice{
          f.zone, static_cast<std::uint32_t>(table_->stack.size()), f.t0, t1};
      table_->ring_head = (table_->ring_head + 1) % table_->ring.size();
      if (table_->ring_size < table_->ring.size()) ++table_->ring_size;
      ++table_->slices_seen;
    }
  }

 private:
  WallProfiler::ThreadTable* table_;
};

}  // namespace openmx::obs

#if OMX_WALLPROF_BUILD
#define OMX_WALL_CAT2(a, b) a##b
#define OMX_WALL_CAT(a, b) OMX_WALL_CAT2(a, b)
#define OMX_WALL_ZONE_IMPL(name, id_var, zone_var)                     \
  static const std::uint32_t id_var =                                  \
      ::openmx::obs::WallProfiler::intern(name);                       \
  const ::openmx::obs::WallZone zone_var { id_var }
/// Opens a scoped wall-clock zone for the rest of the enclosing block.
/// The name is interned once (function-local static); when the profiler
/// is disabled at runtime the whole zone is one relaxed atomic load, and
/// when compiled out (ENABLE_WALLPROF=OFF) it is nothing at all.
#define OMX_WALL_ZONE(name)                                            \
  OMX_WALL_ZONE_IMPL(name, OMX_WALL_CAT(omx_wzid_, __COUNTER__),       \
                     OMX_WALL_CAT(omx_wz_, __COUNTER__))
#else
#define OMX_WALL_ZONE(name) \
  do {                      \
  } while (0)
#endif
