#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "core/wire.hpp"
#include "dma/ioat.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace openmx::fault {

/// Which frames a rule applies to.  The classifier looks through the
/// opaque net::Payload at the Open-MX packet type, so plans are written
/// in protocol terms ("drop the third pull reply", "eat every ack").
enum class Match : std::uint8_t {
  Any = 0,
  Eager,      // eager data fragments
  Rndv,       // rendezvous announcements
  PullReq,    // pull-block requests
  PullReply,  // large-message data fragments
  MsgAck,     // eager acks
  LargeAck,   // pull-completion acks
  Nack,       // unreachable-endpoint nacks
  AnyAck,     // MsgAck or LargeAck
  Data,       // Eager or PullReply (anything carrying payload bytes)
};

[[nodiscard]] inline const char* match_name(Match m) {
  switch (m) {
    case Match::Any: return "any";
    case Match::Eager: return "eager";
    case Match::Rndv: return "rndv";
    case Match::PullReq: return "pull-req";
    case Match::PullReply: return "pull-reply";
    case Match::MsgAck: return "msg-ack";
    case Match::LargeAck: return "large-ack";
    case Match::Nack: return "nack";
    case Match::AnyAck: return "any-ack";
    case Match::Data: return "data";
    default: return "?";
  }
}

/// Classifies a frame by its Open-MX packet type; non-OMX payloads (raw
/// net-layer tests) classify as Any and only match Match::Any rules.
[[nodiscard]] inline std::optional<core::PktType> pkt_type_of(
    const net::Frame& f) {
  const auto* pkt = dynamic_cast<const core::OmxPkt*>(f.payload.get());
  if (!pkt) return std::nullopt;
  return pkt->type;
}

[[nodiscard]] inline bool matches(Match m, const net::Frame& f) {
  if (m == Match::Any) return true;
  const auto t = pkt_type_of(f);
  if (!t) return false;
  switch (m) {
    case Match::Eager: return *t == core::PktType::EagerFrag;
    case Match::Rndv: return *t == core::PktType::Rndv;
    case Match::PullReq: return *t == core::PktType::PullReq;
    case Match::PullReply: return *t == core::PktType::PullReply;
    case Match::MsgAck: return *t == core::PktType::MsgAck;
    case Match::LargeAck: return *t == core::PktType::LargeAck;
    case Match::Nack: return *t == core::PktType::Nack;
    case Match::AnyAck:
      return *t == core::PktType::MsgAck || *t == core::PktType::LargeAck;
    case Match::Data:
      return *t == core::PktType::EagerFrag ||
             *t == core::PktType::PullReply;
    default: return false;
  }
}

enum class Action : std::uint8_t { Drop, Duplicate, Delay, Corrupt };

/// One scripted per-frame fault: applies `action` to matching frames
/// number [from, from+count) (0-based occurrence order among matching
/// frames), each with probability `prob` drawn from the plan's seeded
/// RNG.  Scripted rules with prob=1 are fully deterministic.
struct Rule {
  Match match = Match::Any;
  Action action = Action::Drop;
  std::uint64_t from = 0;
  std::uint64_t count = std::numeric_limits<std::uint64_t>::max();
  double prob = 1.0;
  sim::Time delay_ns = 0;  // Action::Delay
  int copies = 1;          // Action::Duplicate
};

/// Gilbert–Elliott burst-loss channel: a two-state Markov chain stepped
/// once per frame; the loss probability depends on the state, which is
/// what makes the losses bursty rather than Bernoulli-uniform.
struct GilbertElliott {
  double p_good_to_bad = 0.01;
  double p_bad_to_good = 0.25;
  double loss_good = 0.0;
  double loss_bad = 0.6;
};

/// Scripted DMA faults, counted over every descriptor submission of the
/// engine the plan is installed on.
struct DmaScript {
  std::uint64_t fail_from = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t fail_count = 0;  // descriptors [fail_from, fail_from+count)
  double fail_prob = 0.0;        // additionally, each descriptor may fail
  int stall_chan = -1;           // -1 = any channel
  std::uint64_t stall_from = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t stall_count = 0;
  sim::Time stall_ns = 0;
};

/// A deterministic fault schedule: an ordered list of per-frame rules,
/// an optional Gilbert–Elliott burst-loss channel, and a DMA script.
/// One Plan instance can be installed on a Network and on any number of
/// IoatEngines at once (single-threaded simulation — no locking).
///
/// Rules combine per frame: any Drop wins; Delay durations add; Duplicate
/// copies add; Corrupt ORs.  All randomness comes from the plan's own
/// SplitMix64 stream, so a (seed, plan) pair replays bit-identically.
class Plan : public net::FaultInjector, public dma::DmaFaultInjector {
 public:
  explicit Plan(std::uint64_t seed = 1) : rng_(seed) {}

  Plan& add(Rule r) {
    rules_.push_back(RuleState{r, 0});
    return *this;
  }

  // ----- convenience builders (scripted, fully deterministic) -----
  Plan& drop_nth(Match m, std::uint64_t nth, std::uint64_t count = 1) {
    return add({m, Action::Drop, nth, count});
  }
  Plan& drop_all(Match m) {
    return add({m, Action::Drop, 0,
                std::numeric_limits<std::uint64_t>::max()});
  }
  Plan& drop_prob(Match m, double p) {
    return add({m, Action::Drop, 0,
                std::numeric_limits<std::uint64_t>::max(), p});
  }
  Plan& duplicate_nth(Match m, std::uint64_t nth, int copies = 1,
                      std::uint64_t count = 1) {
    Rule r{m, Action::Duplicate, nth, count};
    r.copies = copies;
    return add(r);
  }
  Plan& delay_nth(Match m, std::uint64_t nth, sim::Time ns,
                  std::uint64_t count = 1) {
    Rule r{m, Action::Delay, nth, count};
    r.delay_ns = ns;
    return add(r);
  }
  Plan& corrupt_nth(Match m, std::uint64_t nth, std::uint64_t count = 1) {
    return add({m, Action::Corrupt, nth, count});
  }
  Plan& burst_loss(GilbertElliott ge) {
    ge_ = ge;
    return *this;
  }

  // ----- DMA script -----
  Plan& fail_descriptors(std::uint64_t from, std::uint64_t count = 1) {
    dma_.fail_from = from;
    dma_.fail_count = count;
    return *this;
  }
  Plan& fail_descriptors_prob(double p) {
    dma_.fail_prob = p;
    return *this;
  }
  Plan& stall_channel(int chan, std::uint64_t from, std::uint64_t count,
                      sim::Time ns) {
    dma_.stall_chan = chan;
    dma_.stall_from = from;
    dma_.stall_count = count;
    dma_.stall_ns = ns;
    return *this;
  }

  // ----- net::FaultInjector -----
  net::FaultDecision on_transmit(const net::Frame& f) override {
    net::FaultDecision d;
    for (RuleState& rs : rules_) {
      if (!matches(rs.rule.match, f)) continue;
      const std::uint64_t idx = rs.seen++;
      if (idx < rs.rule.from || idx - rs.rule.from >= rs.rule.count)
        continue;
      if (rs.rule.prob < 1.0 && !rng_.chance(rs.rule.prob)) continue;
      switch (rs.rule.action) {
        case Action::Drop: d.drop = true; break;
        case Action::Duplicate: d.duplicates += rs.rule.copies; break;
        case Action::Delay: d.delay_ns += rs.rule.delay_ns; break;
        case Action::Corrupt: d.corrupt = true; break;
      }
    }
    if (ge_) {
      // Step the channel state once per frame, then draw by state.
      if (bad_state_) {
        if (rng_.chance(ge_->p_bad_to_good)) bad_state_ = false;
      } else {
        if (rng_.chance(ge_->p_good_to_bad)) bad_state_ = true;
      }
      const double p = bad_state_ ? ge_->loss_bad : ge_->loss_good;
      if (p > 0.0 && rng_.chance(p)) {
        d.drop = true;
        counters_.add("fault.burst_drops");
      }
    }
    if (d.drop) counters_.add("fault.drops");
    if (d.duplicates) counters_.add("fault.duplicates",
                                    static_cast<std::uint64_t>(d.duplicates));
    if (d.delay_ns) counters_.add("fault.delays");
    if (d.corrupt) counters_.add("fault.corruptions");
    return d;
  }

  // ----- dma::DmaFaultInjector -----
  dma::DmaFault on_submit(int chan, std::size_t /*len*/) override {
    dma::DmaFault f;
    const std::uint64_t idx = descs_seen_++;
    if (idx >= dma_.fail_from && idx - dma_.fail_from < dma_.fail_count)
      f.fail = true;
    if (!f.fail && dma_.fail_prob > 0.0 && rng_.chance(dma_.fail_prob))
      f.fail = true;
    if ((dma_.stall_chan < 0 || dma_.stall_chan == chan) &&
        idx >= dma_.stall_from && idx - dma_.stall_from < dma_.stall_count)
      f.stall_ns = dma_.stall_ns;
    if (f.fail) counters_.add("fault.dma_desc_failures");
    if (f.stall_ns) counters_.add("fault.dma_stalls");
    return f;
  }

  [[nodiscard]] const sim::Counters& counters() const { return counters_; }
  [[nodiscard]] std::uint64_t frames_seen() const {
    std::uint64_t n = 0;
    for (const RuleState& rs : rules_) n = std::max(n, rs.seen);
    return n;
  }

 private:
  struct RuleState {
    Rule rule;
    std::uint64_t seen = 0;  // matching frames observed so far
  };

  sim::Rng rng_;
  std::vector<RuleState> rules_;
  std::optional<GilbertElliott> ge_;
  bool bad_state_ = false;
  DmaScript dma_;
  std::uint64_t descs_seen_ = 0;
  sim::Counters counters_;
};

}  // namespace openmx::fault
