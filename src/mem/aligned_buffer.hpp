#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "mem/cache_model.hpp"

namespace openmx::mem {

/// Page-aligned allocator for simulated message buffers.
///
/// The cache model keys residency on host virtual pages, so a buffer's
/// page span depends on where malloc happened to place it: a 128 kB
/// vector straddles 32 or 33 pages depending on its offset within a
/// page, which makes copy costs — and therefore whole experiment
/// results — vary run to run and thread to thread.  Allocating every
/// experiment buffer page-aligned removes the placement sensitivity:
/// each buffer spans exactly ceil(len / page) pages and never shares a
/// page with another buffer, so results are bit-identical across runs
/// and across SweepRunner worker counts.
template <typename T>
struct PageAlignedAllocator {
  using value_type = T;

  PageAlignedAllocator() = default;
  template <typename U>
  PageAlignedAllocator(const PageAlignedAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{CacheModel::kPageSize}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{CacheModel::kPageSize});
  }

  template <typename U>
  bool operator==(const PageAlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// std::vector with page-aligned storage; drop-in for the buffers that
/// experiments hand to Endpoint::isend/irecv.
template <typename T>
using AlignedVec = std::vector<T, PageAlignedAllocator<T>>;

/// The common case: a byte message buffer.
using Buffer = AlignedVec<std::uint8_t>;

}  // namespace openmx::mem
