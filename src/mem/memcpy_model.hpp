#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"

namespace openmx::mem {

/// Tracks pressure on the node's memory/I/O chipset.
///
/// The only contention the experiments are sensitive to is the one the
/// paper runs into: a CPU memcpy of receive data competes with the NIC's
/// own DMA stream into the rx ring.  While the NIC is actively depositing
/// frames, an uncached memcpy runs at a degraded rate — this is what caps
/// the no-I/OAT receive path near 800 MiB/s instead of the ~1.6 GiB/s a
/// quiet-machine memcpy would suggest (paper Figure 3 vs Section IV-A).
class MemBus {
 public:
  /// NIC reports that its DMA engine is writing to host memory until `t`.
  void note_nic_dma_until(sim::Time t) { nic_dma_until_ = std::max(nic_dma_until_, t); }

  [[nodiscard]] bool nic_dma_active(sim::Time now) const {
    return now < nic_dma_until_;
  }

 private:
  sim::Time nic_dma_until_ = 0;
};

/// Cost model for a CPU memcpy on the paper's 2.33 GHz Xeon E5345.
///
/// Calibrated against Section IV-A: ~1.6 GiB/s for uncached data, up to
/// ~12 GiB/s when the source is in the local cache, negligible per-chunk
/// start-up (Figure 7's memcpy curves barely move with chunk size), and a
/// degraded rate while the NIC is streaming into memory (see MemBus).
struct MemcpyModel {
  double cached_bw = 12.0 * static_cast<double>(sim::GiB);    // B/s
  double uncached_bw = 1.6 * static_cast<double>(sim::GiB);   // B/s
  double contended_bw = 1.05 * static_cast<double>(sim::GiB); // B/s, NIC DMA live
  sim::Time per_chunk_ns = 10;  // loop/setup cost per discontiguous chunk

  /// Duration of copying `len` bytes split into `chunk`-byte pieces, with
  /// `hit_fraction` of the source resident in the local cache.
  [[nodiscard]] sim::Time duration(std::size_t len, std::size_t chunk,
                                   double hit_fraction,
                                   bool bus_contended) const {
    if (len == 0) return 0;
    if (chunk == 0 || chunk > len) chunk = len;
    const double miss_bw = bus_contended ? contended_bw : uncached_bw;
    const double hf = std::clamp(hit_fraction, 0.0, 1.0);
    // Per-byte time is the blend of cached and uncached transfer speeds.
    const double per_byte_ns = hf * (1e9 / cached_bw) + (1.0 - hf) * (1e9 / miss_bw);
    const std::size_t nchunks = (len + chunk - 1) / chunk;
    const double ns = static_cast<double>(len) * per_byte_ns +
                      static_cast<double>(nchunks) *
                          static_cast<double>(per_chunk_ns);
    const auto t = static_cast<sim::Time>(ns + 0.5);
    return t > 0 ? t : 1;
  }

  /// Effective throughput (B/s) for a given configuration; used by the
  /// threshold auto-tuner (paper Section VI future work).
  [[nodiscard]] double throughput(std::size_t len, std::size_t chunk,
                                  double hit_fraction,
                                  bool bus_contended) const {
    const sim::Time d = duration(len, chunk, hit_fraction, bus_contended);
    return d > 0 ? static_cast<double>(len) * 1e9 / static_cast<double>(d) : 0.0;
  }
};

}  // namespace openmx::mem
