#pragma once

#include <cstdint>
#include <map>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace openmx::mem {

/// Cost model for pinning user pages (get_user_pages) before DMA.
///
/// Open-MX registration is cheap compared to high-speed NICs because no
/// address translation needs to be pushed to NIC SRAM (paper Section IV-D);
/// only the kernel-side page walk and refcounting remain.
struct PinModel {
  sim::Time base_ns = 300;      // syscall-side setup per region
  sim::Time per_page_ns = 220;  // page-table walk + get_page per 4 KiB page

  [[nodiscard]] sim::Time cost(std::size_t len) const {
    const std::size_t pages = (len + 4095) / 4096;
    return base_ns + per_page_ns * static_cast<sim::Time>(pages);
  }
};

/// Registration cache: defers deregistration so that re-sending from the
/// same buffer skips the pinning cost (paper Section IV-D, [20]).
///
/// Mirrors the classic pin-down cache: exact-range hits only, unbounded
/// (experiments reuse a handful of buffers), explicitly invalidated when a
/// test wants cold-start behaviour.
class RegCache {
 public:
  explicit RegCache(bool enabled) : enabled_(enabled) {
    c_hit_ = &counters_.counter("regcache.hit");
    c_miss_ = &counters_.counter("regcache.miss");
    c_bypass_ = &counters_.counter("regcache.bypass");
  }

  /// Returns true if [addr, addr+len) is already registered (cache hit,
  /// pinning cost avoided).  On miss the region is recorded as pinned.
  bool lookup_or_insert(const void* addr, std::size_t len) {
    if (!enabled_) {
      c_bypass_->add();
      return false;
    }
    const Key k{reinterpret_cast<std::uintptr_t>(addr), len};
    auto [it, inserted] = regions_.insert({k, 1});
    if (!inserted) {
      ++it->second;
      c_hit_->add();
      return true;
    }
    c_miss_->add();
    return false;
  }

  /// Drops every cached registration (address-space change, test reset).
  void invalidate_all() { regions_.clear(); }

  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool e) {
    enabled_ = e;
    if (!e) invalidate_all();
  }

  [[nodiscard]] std::size_t size() const { return regions_.size(); }
  [[nodiscard]] const sim::Counters& counters() const { return counters_; }

 private:
  struct Key {
    std::uintptr_t addr;
    std::size_t len;
    bool operator<(const Key& o) const {
      return addr != o.addr ? addr < o.addr : len < o.len;
    }
  };

  bool enabled_;
  std::map<Key, std::uint64_t> regions_;
  sim::Counters counters_;
  obs::Counter* c_hit_ = nullptr;
  obs::Counter* c_miss_ = nullptr;
  obs::Counter* c_bypass_ = nullptr;
};

}  // namespace openmx::mem
