#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/time.hpp"

namespace openmx::mem {

/// Page-granular LRU model of one shared L2 cache (one Clovertown subchip:
/// 4 MiB shared by two cores).
///
/// The model answers the only question the copy-cost model asks: "what
/// fraction of this address range is currently cache-resident?"  That is
/// what produces the paper's Figure 10 cliff — ping-pong on a reused buffer
/// runs at ~6 GiB/s while the buffer fits in the shared L2 and collapses to
/// uncached speed beyond it or across sockets — and the 12 GiB/s vs
/// 1.6 GiB/s memcpy split of Section IV-A.
class CacheModel {
 public:
  static constexpr std::size_t kPageShift = 12;  // 4 KiB pages
  static constexpr std::size_t kPageSize = std::size_t{1} << kPageShift;

  /// `capacity_bytes`: cache size (default 4 MiB, the Xeon E5345 L2).
  explicit CacheModel(std::size_t capacity_bytes = 4 * sim::MiB)
      : capacity_pages_(capacity_bytes >> kPageShift) {}

  /// Records that [addr, addr+len) was read or written through this cache.
  void touch(const void* addr, std::size_t len) {
    if (len == 0) return;
    const std::uintptr_t first = page_of(addr);
    const std::uintptr_t last = page_of_end(addr, len);
    for (std::uintptr_t p = first; p <= last; ++p) touch_page(p);
  }

  /// Fraction of [addr, addr+len) resident in the cache, in [0, 1].
  [[nodiscard]] double hit_fraction(const void* addr, std::size_t len) const {
    if (len == 0) return 1.0;
    const std::uintptr_t first = page_of(addr);
    const std::uintptr_t last = page_of_end(addr, len);
    std::size_t hits = 0;
    for (std::uintptr_t p = first; p <= last; ++p)
      hits += map_.count(p) ? 1 : 0;
    return static_cast<double>(hits) / static_cast<double>(last - first + 1);
  }

  /// Invalidates [addr, addr+len): coherence traffic when another core's
  /// store takes exclusive ownership of these lines.
  void invalidate(const void* addr, std::size_t len) {
    if (len == 0) return;
    const std::uintptr_t first = page_of(addr);
    const std::uintptr_t last = page_of_end(addr, len);
    for (std::uintptr_t p = first; p <= last; ++p) {
      auto it = map_.find(p);
      if (it == map_.end()) continue;
      lru_.erase(it->second);
      map_.erase(it);
    }
  }

  /// Drops everything (e.g. between benchmark repetitions that want cold
  /// caches, matching IMB's off-cache mode).
  void flush() {
    lru_.clear();
    map_.clear();
  }

  [[nodiscard]] std::size_t resident_pages() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity_pages() const { return capacity_pages_; }

 private:
  static std::uintptr_t page_of(const void* addr) {
    return reinterpret_cast<std::uintptr_t>(addr) >> kPageShift;
  }
  static std::uintptr_t page_of_end(const void* addr, std::size_t len) {
    return (reinterpret_cast<std::uintptr_t>(addr) + len - 1) >> kPageShift;
  }

  void touch_page(std::uintptr_t page) {
    auto it = map_.find(page);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(page);
    map_[page] = lru_.begin();
    if (map_.size() > capacity_pages_) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
  }

  std::size_t capacity_pages_;
  std::list<std::uintptr_t> lru_;  // front = most recent
  std::unordered_map<std::uintptr_t, std::list<std::uintptr_t>::iterator> map_;
};

}  // namespace openmx::mem
