#include "sim/sim_thread.hpp"

namespace openmx::sim {

SimThread::SimThread(Engine& engine, std::string name,
                     std::function<void()> body)
    : engine_(engine), name_(std::move(name)), body_(std::move(body)) {
  thread_ = std::thread([this] {
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return turn_ == Turn::Thread; });
    }
    try {
      if (!aborting_) body_();
    } catch (const SimAborted&) {
      // Clean teardown of a stuck process.
    } catch (...) {
      error_ = std::current_exception();
    }
    std::unique_lock lock(mutex_);
    finished_ = true;
    turn_ = Turn::Engine;
    cv_.notify_all();
  });
}

SimThread::~SimThread() {
  if (thread_.joinable()) {
    {
      std::unique_lock lock(mutex_);
      aborting_ = true;
      if (!finished_) {
        turn_ = Turn::Thread;
        cv_.notify_all();
        cv_.wait(lock, [this] { return finished_; });
      }
    }
    thread_.join();
  }
}

void SimThread::start() {
  if (started_) throw std::logic_error("SimThread started twice: " + name_);
  started_ = true;
  engine_.schedule(0, [this] { resume(); });
}

void SimThread::resume() {
  std::unique_lock lock(mutex_);
  if (finished_) return;
  turn_ = Turn::Thread;
  cv_.notify_all();
  cv_.wait(lock, [this] { return turn_ == Turn::Engine; });
}

void SimThread::yield_to_engine() {
  std::unique_lock lock(mutex_);
  turn_ = Turn::Engine;
  cv_.notify_all();
  cv_.wait(lock, [this] { return turn_ == Turn::Thread; });
  if (aborting_) throw SimAborted{};
}

void SimThread::advance(Time dt) {
  engine_.schedule(dt, [this] { resume(); });
  yield_to_engine();
}

void SimThread::pause() {
  if (pending_wake_) {
    pending_wake_ = false;
    return;
  }
  paused_ = true;
  yield_to_engine();
}

void SimThread::wake(Time delay) {
  if (!paused_) {
    pending_wake_ = true;
    return;
  }
  paused_ = false;
  engine_.schedule(delay, [this] { resume(); });
}

}  // namespace openmx::sim
