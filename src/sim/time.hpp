#pragma once

#include <cmath>
#include <cstdint>

namespace openmx::sim {

/// Virtual simulation time in nanoseconds.
///
/// All timing in the simulator is expressed as signed 64-bit nanosecond
/// counts, which covers ~292 years of simulated time — far beyond any
/// experiment in this repository.  Durations use the same type.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000;
inline constexpr Time kMillisecond = 1000 * 1000;
inline constexpr Time kSecond = 1000 * 1000 * 1000;

/// One binary kilo/mega/gibibyte, used throughout for buffer sizes.
inline constexpr std::size_t KiB = 1024;
inline constexpr std::size_t MiB = 1024 * 1024;
inline constexpr std::size_t GiB = 1024ULL * 1024 * 1024;

/// Converts a transfer of `bytes` at `bytes_per_second` into a duration.
///
/// Rounds to the nearest nanosecond; a transfer never takes zero time
/// unless it is zero bytes, so callers can rely on strict event ordering
/// along a serialized resource.
inline Time duration_for_bytes(std::size_t bytes, double bytes_per_second) {
  if (bytes == 0) return 0;
  const double ns = static_cast<double>(bytes) * 1e9 / bytes_per_second;
  const Time t = static_cast<Time>(std::llround(ns));
  return t > 0 ? t : 1;
}

/// Converts a duration spent moving `bytes` into a throughput in MiB/s,
/// the unit used by every figure in the paper.
inline double mib_per_second(std::size_t bytes, Time elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) / static_cast<double>(MiB) /
         (static_cast<double>(elapsed) / 1e9);
}

inline double to_seconds(Time t) { return static_cast<double>(t) / 1e9; }
inline double to_micros(Time t) { return static_cast<double>(t) / 1e3; }

}  // namespace openmx::sim
