#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/event_slab.hpp"
#include "sim/time.hpp"

namespace openmx::sim {

/// Hierarchical timer wheel for the short-delay timer traffic that
/// dominates the driver (retransmit / rendezvous / block timers, NIC
/// delivery, DMA completions).
///
/// Four levels of 64 slots; level `l` buckets cover 64^l ticks, one tick
/// being `1 << granularity_shift` nanoseconds.  Insert is O(1): pick the
/// lowest level on which the event's bucket is less than one full
/// rotation (64 buckets) ahead of the cursor's bucket, OR a bit into
/// that level's occupancy bitmap.  Unlike a kernel-style wheel there is
/// **no cascade** step: an entry stays in its insertion bucket forever,
/// and the minimum is found by comparing the earliest non-empty bucket
/// of every level (4 × ctz on the occupancy bitmaps plus a scan of
/// those — small — buckets).  This works because the bucket-distance
/// insert rule keeps every live entry of a level strictly within one
/// rotation of the cursor (the distance only shrinks as time advances),
/// so "rotate bitmap by the cursor's slot index, take the first set
/// bit" is exactly bucket order — no aliasing is possible — and a
/// bucket never mixes entries from different rotations.
///
/// Determinism: the wheel never orders events itself; the minimum is
/// selected by the same total (when, seq) key the 4-ary heap uses, so an
/// Engine running on the wheel dispatches in bit-identical order.
///
/// Events beyond the horizon (64^4 ticks ahead) are rejected by
/// insert(); the Engine keeps those in its overflow heap.
class TimerWheel {
 public:
  static constexpr unsigned kSlotBits = 6;
  static constexpr unsigned kSlots = 1u << kSlotBits;  // 64
  static constexpr unsigned kLevels = 4;

  explicit TimerWheel(unsigned granularity_shift = 6)
      : gshift_(granularity_shift) {}

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// Approximate horizon in nanoseconds (64^4 ticks); insert() accepts
  /// slightly less when the cursor sits mid-bucket on the top level.
  [[nodiscard]] Time horizon() const {
    return static_cast<Time>(1ull << (kSlotBits * kLevels + gshift_));
  }

  /// Files `k` into its bucket.  Returns false (caller keeps the event
  /// elsewhere) when `k.when` is at or beyond the horizon.  `now` is the
  /// engine's current virtual time; `k.when >= now` is a precondition.
  bool insert(const EventKey& k, Time now) {
    sync(now);
    const Tick t = tick_of(k.when);
    unsigned level = 0;
    while (level < kLevels &&
           ((t >> (kSlotBits * level)) - (cur_ >> (kSlotBits * level))) >=
               kSlots)
      ++level;
    if (level >= kLevels) return false;
    const unsigned slot =
        static_cast<unsigned>((t >> (kSlotBits * level)) & (kSlots - 1));
    buckets_[level * kSlots + slot].push_back(k);
    bitmap_[level] |= 1ull << slot;
    ++count_;
    return true;
  }

  /// Earliest entry by (when, seq), or nullptr when empty.  May advance
  /// the internal cursor (never reorders anything).
  [[nodiscard]] const EventKey* peek_min(Time now) {
    sync(now);
    Pos p;
    return find_min(p) ? &buckets_[p.bucket][p.idx] : nullptr;
  }

  /// Removes and returns the earliest entry.  Precondition: !empty().
  EventKey pop_min(Time now) {
    sync(now);
    Pos p;
    find_min(p);
    auto& b = buckets_[p.bucket];
    const EventKey k = b[p.idx];
    b[p.idx] = b.back();
    b.pop_back();
    if (b.empty()) bitmap_[p.bucket / kSlots] &= ~(1ull << (p.bucket % kSlots));
    --count_;
    const Tick t = tick_of(k.when);
    if (t > cur_) cur_ = t;
    return k;
  }

 private:
  using Tick = std::uint64_t;

  struct Pos {
    std::size_t bucket = 0;
    std::size_t idx = 0;
  };

  [[nodiscard]] Tick tick_of(Time t) const {
    return static_cast<Tick>(t) >> gshift_;
  }

  void sync(Time now) {
    const Tick t = tick_of(now);
    if (t > cur_) cur_ = t;
  }

  /// Scans the earliest non-empty bucket of each level and selects the
  /// global (when, seq) minimum across them.
  bool find_min(Pos& out) {
    const EventKey* best = nullptr;
    for (unsigned l = 0; l < kLevels; ++l) {
      if (bitmap_[l] == 0) continue;
      const auto rot =
          static_cast<unsigned>((cur_ >> (kSlotBits * l)) & (kSlots - 1));
      const std::uint64_t rotated = std::rotr(bitmap_[l], rot);
      const unsigned slot =
          (rot + static_cast<unsigned>(std::countr_zero(rotated))) &
          (kSlots - 1);
      const std::size_t bucket = l * kSlots + slot;
      const auto& b = buckets_[bucket];
      for (std::size_t i = 0; i < b.size(); ++i) {
        if (!best || b[i].before(*best)) {
          best = &b[i];
          out.bucket = bucket;
          out.idx = i;
        }
      }
    }
    return best != nullptr;
  }

  unsigned gshift_;
  Tick cur_ = 0;
  std::size_t count_ = 0;
  std::array<std::uint64_t, kLevels> bitmap_{};
  std::array<std::vector<EventKey>, kLevels * kSlots> buckets_;
};

}  // namespace openmx::sim
