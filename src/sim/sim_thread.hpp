#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace openmx::sim {

/// Thrown inside a SimThread body when the simulation is torn down while
/// the thread is still blocked (e.g. a test that expects a deadlock).
struct SimAborted : std::runtime_error {
  SimAborted() : std::runtime_error("simulated process aborted") {}
};

/// A simulated process running on a real std::thread.
///
/// Exactly one entity executes at a time: either the engine's event loop or
/// one SimThread.  Control is handed over with a mutex/condvar handshake, so
/// process code can be written in the natural blocking style (`wait()` loops
/// in the MX library, blocking MPI_Recv, ...) while the simulation stays
/// fully deterministic — all wake-ups are routed through engine events and
/// therefore ordered by (time, schedule sequence).
///
/// While a SimThread runs, it owns the simulation: it may call
/// Engine::schedule and mutate any simulation state without synchronization.
class SimThread {
 public:
  /// Creates a simulated process; `body` runs on its own OS thread once
  /// start() has been called and the engine dispatches its first resume.
  SimThread(Engine& engine, std::string name, std::function<void()> body);

  /// Joins the underlying thread.  If the body never finished (stuck
  /// blocked), it is aborted by throwing SimAborted into it.
  ~SimThread();

  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  /// Schedules the first execution of the body at the current virtual time.
  /// Must be called from engine context.
  void start();

  /// --- Calls below are made from *inside* the thread body. ---

  /// Consumes `dt` of virtual time, then continues.  Does not model core
  /// occupancy; see cpu::Machine::thread_advance for the core-aware version.
  void advance(Time dt);

  /// Blocks until some engine-context code calls wake().  Spurious wake-ups
  /// do not occur; one wake() releases one pause().
  void pause();

  /// --- Calls below are made from engine context (or another thread that
  ///     currently owns the simulation). ---

  /// Wakes a paused thread by scheduling its resume `delay` ns from now.
  /// If the thread is not currently paused the wake is remembered and the
  /// next pause() returns immediately (no lost-wake-up race).
  void wake(Time delay = 0);

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] bool failed() const { return static_cast<bool>(error_); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Rethrows any exception that escaped the body.
  void rethrow_if_failed() const {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  enum class Turn { Engine, Thread };

  void resume();           // engine side: run the thread until it yields
  void yield_to_engine();  // thread side: hand control back

  Engine& engine_;
  std::string name_;
  std::function<void()> body_;

  std::mutex mutex_;
  std::condition_variable cv_;
  Turn turn_ = Turn::Engine;
  bool started_ = false;
  bool finished_ = false;
  bool aborting_ = false;
  bool pending_wake_ = false;
  bool paused_ = false;
  std::exception_ptr error_;
  std::thread thread_;
};

/// A FIFO of paused SimThreads, used wherever the real stack would use a
/// kernel wait queue (event rings, request completion).
class WaitQueue {
 public:
  /// Registers the calling thread and pauses it.  Engine-context code calls
  /// wake_one/wake_all to release waiters.
  void sleep(SimThread& t) {
    waiters_.push_back(&t);
    t.pause();
  }

  void wake_one(Time delay = 0) {
    if (waiters_.empty()) return;
    SimThread* t = waiters_.front();
    waiters_.erase(waiters_.begin());
    t->wake(delay);
  }

  void wake_all(Time delay = 0) {
    auto ws = std::move(waiters_);
    waiters_.clear();
    for (SimThread* t : ws) t->wake(delay);
  }

  [[nodiscard]] bool empty() const { return waiters_.empty(); }
  [[nodiscard]] std::size_t size() const { return waiters_.size(); }

 private:
  std::vector<SimThread*> waiters_;
};

}  // namespace openmx::sim
