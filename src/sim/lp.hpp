#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/thread_pool.hpp"
#include "sim/time.hpp"

namespace openmx::sim {

/// One timestamped message crossing from one logical process to another.
///
/// `apply` runs on the destination LP (from the window loop, never from
/// engine context) and typically schedules engine work at `when`; it may
/// only touch destination-LP state.  (when, origin, seq) is a total
/// order — `origin` is a globally unique source id (the sending node)
/// and `seq` a per-origin monotonic counter — so sorting each window's
/// inbound batch makes delivery order, and therefore engine sequence
/// assignment, independent of worker count and OS scheduling.
struct LpMessage {
  Time when = 0;
  std::uint32_t origin = 0;
  std::uint64_t seq = 0;
  std::function<void()> apply;

  [[nodiscard]] bool before(const LpMessage& o) const {
    if (when != o.when) return when < o.when;
    if (origin != o.origin) return origin < o.origin;
    return seq < o.seq;
  }
};

/// One logical process: an Engine plus in/out message queues.  The LP id
/// must equal its registration index with the scheduler.  All engine and
/// outbox access is confined to the worker currently executing this LP's
/// window (or the coordinator between windows); the barrier protocol
/// provides the necessary happens-before edges, so no per-LP locking is
/// needed anywhere.
class Lp {
 public:
  explicit Lp(int id, EngineConfig cfg = {}) : id_(id), engine_(cfg) {}

  Lp(const Lp&) = delete;
  Lp& operator=(const Lp&) = delete;

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const Engine& engine() const { return engine_; }

  /// Queues a message for another LP.  Only legal while this LP's window
  /// executes.  `msg.when` must be at or beyond the current window's end
  /// — that is the conservative-lookahead contract; violating it means
  /// the lookahead passed to the scheduler exceeds the real minimum
  /// latency of the model, which would silently break causality, so it
  /// throws instead.
  void post(int dst_lp, LpMessage msg) {
    if (msg.when < min_safe_when_)
      throw std::logic_error("Lp: message violates conservative lookahead");
    outbox_.at(static_cast<std::size_t>(dst_lp)).push_back(std::move(msg));
  }

 private:
  friend class LpScheduler;

  int id_;
  Engine engine_;
  std::vector<std::vector<LpMessage>> outbox_;  // indexed by destination LP
  std::vector<LpMessage> inbox_;
  Time min_safe_when_ = 0;  // current window end; set by the scheduler
};

/// Pause hint for spin loops: tells the core (and on SMT, the sibling
/// thread) that we are busy-waiting, without giving up the timeslice.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Centralized sense-reversing spin barrier for the window loop, with a
/// spin→yield backoff sized to the hardware.
///
/// The window loop hits this barrier twice per window, so when workers ≤
/// hardware threads the waiter stays hot: stage one spins briefly with a
/// pause hint (short — `pause` runs ~140 cycles on recent x86, so even
/// 256 of them is only ~10 µs; a longer spin stage measurably starves an
/// oversubscribed peer of its timeslice).  When the party count exceeds
/// the hardware threads the spin stage is skipped outright — a waiter
/// can only open the barrier by letting the runnable peer onto the core,
/// so stage two yields on every probe.  Deliberately no sleep stage: a
/// parked waiter cannot wake before its timer even when the barrier
/// opened long ago, and that timer floor dwarfs a window — measured on
/// the 1-core container, a 1–64 µs escalating sleep stage dropped w2
/// parity from ~1.0x to 0.45x.
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned parties = 1) { reset(parties); }

  /// Must only be called while no thread is inside arrive_and_wait().
  void reset(unsigned parties) {
    parties_ = parties;
    const unsigned hw = std::thread::hardware_concurrency();
    spin_limit_ = (hw && parties_ > hw) ? 0 : 256;
  }

  void arrive_and_wait() {
    if (parties_ <= 1) return;
    const std::uint64_t gen = gen_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      gen_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      unsigned waits = 0;
      while (gen_.load(std::memory_order_acquire) == gen) {
        if (waits < spin_limit_)
          cpu_relax();  // stage 1: short hot spin
        else
          std::this_thread::yield();  // stage 2: give up the timeslice
        ++waits;
      }
    }
  }

 private:
  unsigned parties_ = 1;
  unsigned spin_limit_ = 256;
  std::atomic<unsigned> arrived_{0};
  std::atomic<std::uint64_t> gen_{0};
};

/// Conservative parallel discrete-event scheduler over logical processes.
///
/// Classic null-message-free window synchronization (the SimBricks /
/// CMB-window scheme): with lookahead L — the minimum latency of any
/// inter-LP link — every event in [T, T+L) is independent of events
/// other LPs execute in the same window, because anything an LP sends
/// from inside the window cannot take effect before T+L.  The loop is:
///
///   1. coordinator: route every outbox message to its destination
///      inbox, pick T = min(next event, earliest queued message) over
///      all LPs; done when queues and engines are all empty,
///   2. barrier,
///   3. all workers: for each owned LP, sort + apply inbound messages,
///      then Engine::run_until just before T+L,
///   4. barrier, repeat.
///
/// Determinism does not depend on the worker count: each LP's window is
/// single-threaded over private state, inbound batches are sorted by the
/// total (when, origin, seq) order before delivery, and routing runs on
/// the coordinator in LP-id order.  The same loop executes for one
/// worker and for eight — byte-identical results either way (asserted
/// by test_determinism's multi-LP suite).
class LpScheduler {
 public:
  /// `lookahead` must not exceed the true minimum inter-LP latency.
  explicit LpScheduler(Time lookahead) : lookahead_(lookahead) {
    if (lookahead_ <= 0)
      throw std::logic_error("LpScheduler: lookahead must be positive");
  }

  /// Registers an LP; lp.id() must equal the registration index.
  void add(Lp& lp) {
    if (lp.id() != static_cast<int>(lps_.size()))
      throw std::logic_error("LpScheduler: LP id must equal its index");
    lps_.push_back(&lp);
  }

  [[nodiscard]] Time lookahead() const { return lookahead_; }
  [[nodiscard]] std::size_t num_lps() const { return lps_.size(); }

  /// Windows executed so far (monotone; for benches and tests).
  [[nodiscard]] std::uint64_t windows_run() const { return windows_; }
  /// Cross-LP messages routed so far.
  [[nodiscard]] std::uint64_t messages_routed() const { return messages_; }

  /// Runs every LP to global quiescence.  `workers` = 0 sizes the team
  /// automatically (shared pool soft capacity); an explicit count is
  /// honoured exactly, as SweepRunner does.  Helpers come from
  /// ThreadPool::shared(), so LP teams and sweep fan-out share one
  /// thread budget.
  void run(unsigned workers = 0) {
    if (lps_.empty()) return;
    for (Lp* lp : lps_)
      lp->outbox_.resize(lps_.size());

    unsigned want =
        workers ? workers : ThreadPool::shared().soft_cap();
    want = static_cast<unsigned>(
        std::min<std::size_t>(want, lps_.size()));
    if (want == 0) want = 1;

    error_ = nullptr;
    done_ = false;

    if (want == 1) {
      nworkers_ = 1;
      worker_loop(0);
    } else {
      // The grant decides the team size, so helpers must not start the
      // loop until the barrier is sized: hold them at a go-latch.
      std::atomic<int> go{0};
      auto helper = [this, &go](unsigned slot) {
        while (go.load(std::memory_order_acquire) == 0)
          std::this_thread::yield();
        worker_loop(slot + 1);
      };
      ThreadPool::Team team = ThreadPool::shared().spawn(
          want - 1, /*exact=*/workers != 0, helper);
      nworkers_ = team.size() + 1;
      barrier_.reset(nworkers_);
      go.store(1, std::memory_order_release);
      worker_loop(0);
      ThreadPool::shared().join(team);
    }
    if (error_) std::rethrow_exception(error_);
  }

 private:
  void worker_loop(unsigned w) {
    for (;;) {
      if (w == 0) plan_window();
      barrier_.arrive_and_wait();
      if (done_) return;
      try {
        for (std::size_t i = w; i < lps_.size(); i += nworkers_)
          run_window(*lps_[i]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu_);
        if (!error_) error_ = std::current_exception();
      }
      barrier_.arrive_and_wait();
    }
  }

  /// Coordinator step between windows: route outboxes (source-id order,
  /// deterministic), then pick the next window or decide quiescence.
  void plan_window() {
    {
      const std::lock_guard<std::mutex> lock(error_mu_);
      if (error_) {
        done_ = true;
        return;
      }
    }
    for (Lp* src : lps_) {
      for (std::size_t d = 0; d < src->outbox_.size(); ++d) {
        auto& out = src->outbox_[d];
        if (out.empty()) continue;
        messages_ += out.size();
        auto& in = lps_[d]->inbox_;
        in.insert(in.end(), std::make_move_iterator(out.begin()),
                  std::make_move_iterator(out.end()));
        out.clear();
      }
    }

    Time start = std::numeric_limits<Time>::max();
    for (Lp* lp : lps_) {
      Time next;
      if (lp->engine_.next_event_time(next)) start = std::min(start, next);
      for (const LpMessage& m : lp->inbox_)
        start = std::min(start, m.when);
    }
    if (start == std::numeric_limits<Time>::max()) {
      done_ = true;
      return;
    }
    window_end_ = start + lookahead_;
    for (Lp* lp : lps_) lp->min_safe_when_ = window_end_;
    ++windows_;
  }

  /// One LP's slice of the window: deliver the sorted inbound batch,
  /// then run the engine up to (excluding) the window end.
  void run_window(Lp& lp) {
    if (!lp.inbox_.empty()) {
      std::sort(lp.inbox_.begin(), lp.inbox_.end(),
                [](const LpMessage& a, const LpMessage& b) {
                  return a.before(b);
                });
      for (LpMessage& m : lp.inbox_) m.apply();
      lp.inbox_.clear();
    }
    lp.engine_.run_until(window_end_ - 1);
  }

  Time lookahead_;
  std::vector<Lp*> lps_;
  SpinBarrier barrier_;
  unsigned nworkers_ = 1;
  Time window_end_ = 0;
  bool done_ = false;
  std::uint64_t windows_ = 0;
  std::uint64_t messages_ = 0;
  std::mutex error_mu_;
  std::exception_ptr error_;
};

}  // namespace openmx::sim
