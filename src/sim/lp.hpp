#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "obs/monitor.hpp"
#include "obs/perfetto.hpp"
#include "obs/registry.hpp"
#include "obs/wallprof.hpp"
#include "sim/engine.hpp"
#include "sim/thread_pool.hpp"
#include "sim/time.hpp"

namespace openmx::sim {

/// One timestamped message crossing from one logical process to another.
///
/// `apply` runs on the destination LP (from the window loop, never from
/// engine context) and typically schedules engine work at `when`; it may
/// only touch destination-LP state.  (when, origin, seq) is a total
/// order — `origin` is a globally unique source id (the sending node)
/// and `seq` a per-origin monotonic counter — so sorting each window's
/// inbound batch makes delivery order, and therefore engine sequence
/// assignment, independent of worker count and OS scheduling.
struct LpMessage {
  Time when = 0;
  std::uint32_t origin = 0;
  std::uint64_t seq = 0;
  std::function<void()> apply;

  [[nodiscard]] bool before(const LpMessage& o) const {
    if (when != o.when) return when < o.when;
    if (origin != o.origin) return origin < o.origin;
    return seq < o.seq;
  }
};

/// One logical process: an Engine plus in/out message queues.  The LP id
/// must equal its registration index with the scheduler.  All engine and
/// outbox access is confined to the worker currently executing this LP's
/// window (or the coordinator between windows); the barrier protocol
/// provides the necessary happens-before edges, so no per-LP locking is
/// needed anywhere.
class Lp {
 public:
  explicit Lp(int id, EngineConfig cfg = {}) : id_(id), engine_(cfg) {}

  Lp(const Lp&) = delete;
  Lp& operator=(const Lp&) = delete;

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const Engine& engine() const { return engine_; }

  /// Queues a message for another LP.  Only legal while this LP's window
  /// executes.  `msg.when` must be at or beyond the current window's end
  /// — that is the conservative-lookahead contract; violating it means
  /// the lookahead passed to the scheduler exceeds the real minimum
  /// latency of the model, which would silently break causality, so it
  /// throws instead.
  void post(int dst_lp, LpMessage msg) {
    if (msg.when < min_safe_when_)
      throw std::logic_error("Lp: message violates conservative lookahead");
    outbox_.at(static_cast<std::size_t>(dst_lp)).push_back(std::move(msg));
  }

 private:
  friend class LpScheduler;

  int id_;
  Engine engine_;
  std::vector<std::vector<LpMessage>> outbox_;  // indexed by destination LP
  std::vector<LpMessage> inbox_;
  Time min_safe_when_ = 0;  // current window end; set by the scheduler

  // Per-LP scheduler telemetry, accumulated across windows.  Everything
  // here lives in the *virtual-time* domain — window boundaries, event
  // counts, message counts, last-dispatch times — so the numbers are
  // bit-identical across runs and worker counts; the counter fields are
  // written either by the worker owning this LP's window or by the
  // coordinator between windows (never both in the same phase), so the
  // barrier protocol makes them race-free without atomics.  Exported in
  // LP-id order by LpScheduler::export_metrics as lp.<id>.*.
  std::uint64_t tl_windows_active_ = 0;  // windows with any event or inbox
  std::uint64_t tl_events_ = 0;          // events dispatched inside windows
  std::uint64_t tl_msgs_in_ = 0;         // cross-LP messages received
  std::uint64_t tl_msgs_out_ = 0;        // cross-LP messages sent
  std::uint64_t tl_critical_ = 0;        // windows this LP bounded
  Time tl_stall_ns_ = 0;                 // summed virtual barrier stall
  obs::Histogram tl_events_per_window_;
  obs::Histogram tl_inbox_depth_;
  obs::Histogram tl_stall_hist_;
};

/// Pause hint for spin loops: tells the core (and on SMT, the sibling
/// thread) that we are busy-waiting, without giving up the timeslice.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Centralized sense-reversing spin barrier for the window loop, with a
/// spin→yield backoff sized to the hardware.
///
/// The window loop hits this barrier twice per window, so when workers ≤
/// hardware threads the waiter stays hot: stage one spins briefly with a
/// pause hint (short — `pause` runs ~140 cycles on recent x86, so even
/// 256 of them is only ~10 µs; a longer spin stage measurably starves an
/// oversubscribed peer of its timeslice).  When the party count exceeds
/// the hardware threads the spin stage is skipped outright — a waiter
/// can only open the barrier by letting the runnable peer onto the core,
/// so stage two yields on every probe.  Deliberately no sleep stage: a
/// parked waiter cannot wake before its timer even when the barrier
/// opened long ago, and that timer floor dwarfs a window — measured on
/// the 1-core container, a 1–64 µs escalating sleep stage dropped w2
/// parity from ~1.0x to 0.45x.
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned parties = 1) { reset(parties); }

  /// Must only be called while no thread is inside arrive_and_wait().
  void reset(unsigned parties) {
    parties_ = parties;
    const unsigned hw = std::thread::hardware_concurrency();
    spin_limit_ = (hw && parties_ > hw) ? 0 : 256;
  }

  void arrive_and_wait() {
    if (parties_ <= 1) return;
    const std::uint64_t gen = gen_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      gen_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      unsigned waits = 0;
      while (gen_.load(std::memory_order_acquire) == gen) {
        if (waits < spin_limit_)
          cpu_relax();  // stage 1: short hot spin
        else
          std::this_thread::yield();  // stage 2: give up the timeslice
        ++waits;
      }
    }
  }

 private:
  unsigned parties_ = 1;
  unsigned spin_limit_ = 256;
  std::atomic<unsigned> arrived_{0};
  std::atomic<std::uint64_t> gen_{0};
};

/// Conservative parallel discrete-event scheduler over logical processes.
///
/// Classic null-message-free window synchronization (the SimBricks /
/// CMB-window scheme): with lookahead L — the minimum latency of any
/// inter-LP link — every event in [T, T+L) is independent of events
/// other LPs execute in the same window, because anything an LP sends
/// from inside the window cannot take effect before T+L.  The loop is:
///
///   1. coordinator: route every outbox message to its destination
///      inbox, pick T = min(next event, earliest queued message) over
///      all LPs; done when queues and engines are all empty,
///   2. barrier,
///   3. all workers: for each owned LP, sort + apply inbound messages,
///      then Engine::run_until just before T+L,
///   4. barrier, repeat.
///
/// Determinism does not depend on the worker count: each LP's window is
/// single-threaded over private state, inbound batches are sorted by the
/// total (when, origin, seq) order before delivery, and routing runs on
/// the coordinator in LP-id order.  The same loop executes for one
/// worker and for eight — byte-identical results either way (asserted
/// by test_determinism's multi-LP suite).
class LpScheduler {
 public:
  /// `lookahead` must not exceed the true minimum inter-LP latency.
  explicit LpScheduler(Time lookahead) : lookahead_(lookahead) {
    if (lookahead_ <= 0)
      throw std::logic_error("LpScheduler: lookahead must be positive");
  }

  /// Registers an LP; lp.id() must equal the registration index.
  void add(Lp& lp) {
    if (lp.id() != static_cast<int>(lps_.size()))
      throw std::logic_error("LpScheduler: LP id must equal its index");
    lps_.push_back(&lp);
  }

  [[nodiscard]] Time lookahead() const { return lookahead_; }
  [[nodiscard]] std::size_t num_lps() const { return lps_.size(); }

  /// Windows executed so far (monotone; for benches and tests).
  [[nodiscard]] std::uint64_t windows_run() const { return windows_; }
  /// Cross-LP messages routed so far.
  [[nodiscard]] std::uint64_t messages_routed() const { return messages_; }

  // ----- scale-out telemetry ---------------------------------------------

  /// Keeps the last `capacity` windows in a chronological log from which
  /// write_lp_trace renders one Perfetto timeline per LP (busy / stall /
  /// critical slices).  Call before run(); off by default.
  void enable_window_log(std::size_t capacity = 4096) {
    log_cap_ = capacity;
  }
  [[nodiscard]] const obs::LpWindowLog& window_log() const {
    return window_log_;
  }

  /// Attaches a live monitor, polled by the coordinator at every window
  /// plan with the window's start time — deterministic poll points, so
  /// the sampled stream is worker-count invariant.
  void set_monitor(obs::Monitor* m) { monitor_ = m; }

  /// Opt-in wall-clock barrier-wait accounting (two steady_clock reads
  /// per window per worker).  Inherently nondeterministic, so it lives
  /// in the separate wall_metrics() registry and never contaminates the
  /// deterministic export_metrics() stream.
  void enable_wall_stats(bool on = true) { wall_stats_ = on; }
  [[nodiscard]] obs::Registry& wall_metrics() { return wall_metrics_; }

  /// Folds the per-LP telemetry into `out` in LP-id order (deterministic
  /// for any worker count): per-LP counters/histograms under lp.<id>.*,
  /// the critical-LP summary under lp.critical.*, and scheduler-wide
  /// totals (lp.windows, lp.messages_routed, lp.window_advance_ns,
  /// lp.max_inbox_depth).
  void export_metrics(obs::Registry& out) const {
    char name[64];
    for (const Lp* lp : lps_) {
      const int id = lp->id_;
      const auto put = [&](const char* suffix, std::uint64_t v) {
        std::snprintf(name, sizeof name, "lp.%d.%s", id, suffix);
        if (v) out.counter(name).add(v);
      };
      put("windows_active", lp->tl_windows_active_);
      put("events", lp->tl_events_);
      put("msgs_in", lp->tl_msgs_in_);
      put("msgs_out", lp->tl_msgs_out_);
      put("critical_windows", lp->tl_critical_);
      put("stall_ns", static_cast<std::uint64_t>(lp->tl_stall_ns_));
      std::snprintf(name, sizeof name, "lp.%d.events_per_window", id);
      out.histogram(name).merge(lp->tl_events_per_window_);
      std::snprintf(name, sizeof name, "lp.%d.inbox_depth", id);
      out.histogram(name).merge(lp->tl_inbox_depth_);
      std::snprintf(name, sizeof name, "lp.%d.barrier_stall_ns", id);
      out.histogram(name).merge(lp->tl_stall_hist_);
      out.gauge("lp.max_inbox_depth")
          .set(static_cast<std::int64_t>(lp->tl_inbox_depth_.max()));
    }
    if (windows_) out.counter("lp.windows").add(windows_);
    if (messages_) out.counter("lp.messages_routed").add(messages_);
    out.histogram("lp.critical.slack_ns").merge(crit_slack_);
    out.histogram("lp.window_advance_ns").merge(advance_hist_);
  }

  /// Runs every LP to global quiescence.  `workers` = 0 sizes the team
  /// automatically (shared pool soft capacity); an explicit count is
  /// honoured exactly, as SweepRunner does.  Helpers come from
  /// ThreadPool::shared(), so LP teams and sweep fan-out share one
  /// thread budget.
  void run(unsigned workers = 0) {
    if (lps_.empty()) return;
    for (Lp* lp : lps_)
      lp->outbox_.resize(lps_.size());
    if (log_cap_ && window_log_.num_lps() != lps_.size())
      window_log_.reset(lps_.size(), log_cap_);

    unsigned want =
        workers ? workers : ThreadPool::shared().soft_cap();
    want = static_cast<unsigned>(
        std::min<std::size_t>(want, lps_.size()));
    if (want == 0) want = 1;

    error_ = nullptr;
    done_ = false;

    if (want == 1) {
      nworkers_ = 1;
      worker_loop(0);
    } else {
      // The grant decides the team size, so helpers must not start the
      // loop until the barrier is sized: hold them at a go-latch.
      std::atomic<int> go{0};
      auto helper = [this, &go](unsigned slot) {
        while (go.load(std::memory_order_acquire) == 0)
          std::this_thread::yield();
        worker_loop(slot + 1);
      };
      ThreadPool::Team team = ThreadPool::shared().spawn(
          want - 1, /*exact=*/workers != 0, helper);
      nworkers_ = team.size() + 1;
      barrier_.reset(nworkers_);
      go.store(1, std::memory_order_release);
      worker_loop(0);
      ThreadPool::shared().join(team);
    }
    if (error_) std::rethrow_exception(error_);
  }

 private:
  void worker_loop(unsigned w) {
    using Clock = std::chrono::steady_clock;
    std::uint64_t wait_ns = 0;
    for (;;) {
      if (w == 0) {
        OMX_WALL_ZONE("lp.plan");
        plan_window();
      }
      if (wall_stats_) {
        const auto t0 = Clock::now();
        {
          OMX_WALL_ZONE("lp.barrier_wait");
          barrier_.arrive_and_wait();
        }
        wait_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count());
      } else {
        OMX_WALL_ZONE("lp.barrier_wait");
        barrier_.arrive_and_wait();
      }
      if (done_) break;
      try {
        OMX_WALL_ZONE("lp.window_compute");
        for (std::size_t i = w; i < lps_.size(); i += nworkers_)
          run_window(*lps_[i]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu_);
        if (!error_) error_ = std::current_exception();
      }
      if (wall_stats_) {
        const auto t0 = Clock::now();
        {
          OMX_WALL_ZONE("lp.barrier_wait");
          barrier_.arrive_and_wait();
        }
        wait_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count());
      } else {
        OMX_WALL_ZONE("lp.barrier_wait");
        barrier_.arrive_and_wait();
      }
    }
    if (wall_stats_ && wait_ns) {
      char name[48];
      std::snprintf(name, sizeof name, "lp.wall.worker%u.barrier_ns", w);
      const std::lock_guard<std::mutex> lock(error_mu_);
      wall_metrics_.counter(name).add(wait_ns);
    }
  }

  /// Coordinator step between windows: route outboxes (source-id order,
  /// deterministic), then pick the next window or decide quiescence.
  void plan_window() {
    {
      const std::lock_guard<std::mutex> lock(error_mu_);
      if (error_) {
        done_ = true;
        return;
      }
    }
    for (Lp* src : lps_) {
      for (std::size_t d = 0; d < src->outbox_.size(); ++d) {
        auto& out = src->outbox_[d];
        if (out.empty()) continue;
        messages_ += out.size();
        src->tl_msgs_out_ += out.size();
        lps_[d]->tl_msgs_in_ += out.size();
        auto& in = lps_[d]->inbox_;
        in.insert(in.end(), std::make_move_iterator(out.begin()),
                  std::make_move_iterator(out.end()));
        out.clear();
      }
    }

    // The window start is the global minimum next action; the LP holding
    // that minimum is the window's *critical* LP — it alone determined
    // how far everyone may advance — and the runner-up's distance is the
    // slack: how much further the window could have reached without it.
    constexpr Time kInf = std::numeric_limits<Time>::max();
    Time start = kInf;
    Time second = kInf;
    Lp* critical = nullptr;
    for (Lp* lp : lps_) {
      Time t = kInf;
      Time next;
      if (lp->engine_.next_event_time(next)) t = next;
      for (const LpMessage& m : lp->inbox_) t = std::min(t, m.when);
      if (t < start) {
        second = start;
        start = t;
        critical = lp;
      } else if (t < second) {
        second = t;
      }
    }
    if (start == kInf) {
      done_ = true;
      return;
    }
    const Time slack = second == kInf ? 0 : second - start;
    critical->tl_critical_ += 1;
    crit_slack_.add(static_cast<std::uint64_t>(slack));
    if (windows_)
      advance_hist_.add(static_cast<std::uint64_t>(start - prev_start_));
    prev_start_ = start;
    window_end_ = start + lookahead_;
    for (Lp* lp : lps_) lp->min_safe_when_ = window_end_;
    ++windows_;
    cur_win_ = log_cap_ ? &window_log_.append(start, window_end_,
                                              critical->id_, slack)
                        : nullptr;
    if (monitor_) monitor_->poll(start);
  }

  /// One LP's slice of the window: deliver the sorted inbound batch,
  /// then run the engine up to (excluding) the window end.  The trailing
  /// accounting block is the per-LP telemetry: events and inbox depth
  /// are exact, and the *virtual* barrier stall is the gap between the
  /// LP's last dispatch and the window end — the simulated-time span the
  /// LP spent finished while the window stayed open.  Defining stall in
  /// virtual time (not wall time) keeps it bit-identical across runs and
  /// worker counts.
  void run_window(Lp& lp) {
    const Time wstart = window_end_ - lookahead_;
    const std::uint64_t ev_before = lp.engine_.events_dispatched();
    const std::size_t depth = lp.inbox_.size();
    if (!lp.inbox_.empty()) {
      OMX_WALL_ZONE("lp.inbox_merge");
      std::sort(lp.inbox_.begin(), lp.inbox_.end(),
                [](const LpMessage& a, const LpMessage& b) {
                  return a.before(b);
                });
      for (LpMessage& m : lp.inbox_) m.apply();
      lp.inbox_.clear();
    }
    lp.engine_.run_until(window_end_ - 1);

    const std::uint64_t ev = lp.engine_.events_dispatched() - ev_before;
    const Time busy =
        ev ? std::max(lp.engine_.last_dispatch_when(), wstart) : wstart;
    const Time stall = (window_end_ - 1) - busy;
    lp.tl_events_ += ev;
    lp.tl_stall_ns_ += stall;
    lp.tl_events_per_window_.add(ev);
    lp.tl_inbox_depth_.add(depth);
    lp.tl_stall_hist_.add(static_cast<std::uint64_t>(stall));
    if (ev || depth) ++lp.tl_windows_active_;
    if (cur_win_) {
      obs::LpWindowStat& s =
          cur_win_->per_lp[static_cast<std::size_t>(lp.id_)];
      s.events = static_cast<std::uint32_t>(ev);
      s.inbox = static_cast<std::uint32_t>(depth);
      s.busy_until = busy;
    }
  }

  Time lookahead_;
  std::vector<Lp*> lps_;
  SpinBarrier barrier_;
  unsigned nworkers_ = 1;
  Time window_end_ = 0;
  bool done_ = false;
  std::uint64_t windows_ = 0;
  std::uint64_t messages_ = 0;
  std::mutex error_mu_;
  std::exception_ptr error_;

  // Telemetry state.  crit_slack_/advance_hist_/prev_start_ are written
  // by the coordinator only; cur_win_ points at the current window's log
  // record, whose per-LP slots the workers fill (disjoint indices, with
  // the barrier ordering the coordinator's append against the writes).
  obs::Histogram crit_slack_;
  obs::Histogram advance_hist_;
  Time prev_start_ = 0;
  std::size_t log_cap_ = 0;
  obs::LpWindowLog window_log_;
  obs::LpWindow* cur_win_ = nullptr;
  obs::Monitor* monitor_ = nullptr;
  bool wall_stats_ = false;
  obs::Registry wall_metrics_;
};

}  // namespace openmx::sim
