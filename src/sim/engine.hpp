#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace openmx::sim {

/// Handle to a scheduled event that may be cancelled before it fires.
///
/// Cancellation is O(1): the event stays in the queue but its shared
/// liveness flag is cleared, and the dispatch loop skips dead events.
/// Used by retransmission timers, which are cancelled far more often
/// than they fire.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet.  Idempotent.
  void cancel() {
    if (alive_) *alive_ = false;
  }

  /// True if the event is still pending (scheduled, not fired or cancelled).
  [[nodiscard]] bool pending() const { return alive_ && *alive_; }

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// Deterministic discrete-event engine with nanosecond virtual time.
///
/// Events scheduled for the same instant fire in schedule order (FIFO via a
/// monotonically increasing sequence number), which makes every experiment
/// bit-reproducible.  The engine is strictly single-threaded: only the
/// currently running entity (the engine itself, or the one SimThread it has
/// handed control to) may call schedule().
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` to run `delay` nanoseconds from now.
  void schedule(Time delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `when` (must not be in the past).
  void schedule_at(Time when, std::function<void()> fn) {
    if (when < now_) throw std::logic_error("Engine: scheduling in the past");
    queue_.push(Event{when, next_seq_++, std::move(fn), nullptr});
    ++pending_;
  }

  /// Schedules a cancellable event; see EventHandle.
  EventHandle schedule_cancellable(Time delay, std::function<void()> fn) {
    auto alive = std::make_shared<bool>(true);
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn), alive});
    ++pending_;
    return EventHandle{alive};
  }

  /// Runs until the event queue is empty (cancelled events do not keep the
  /// engine alive).  Returns the final virtual time.
  Time run() {
    while (step()) {
    }
    return now_;
  }

  /// Runs events up to and including time `deadline`.  Events scheduled
  /// after the deadline remain queued.  Returns current virtual time.
  Time run_until(Time deadline) {
    while (!queue_.empty() && queue_.top().when <= deadline) step();
    if (now_ < deadline) now_ = deadline;
    return now_;
  }

  /// Dispatches the single next live event.  Returns false when drained.
  bool step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      --pending_;
      if (ev.alive && !*ev.alive) continue;  // cancelled
      now_ = ev.when;
      ev.fn();
      return true;
    }
    return false;
  }

  /// Number of scheduled-but-not-yet-dispatched events, including
  /// cancelled ones that have not been skipped yet.
  [[nodiscard]] std::size_t pending_events() const { return pending_; }

  /// Event trace shared by every component driven by this engine
  /// (disabled by default; see sim::Trace).
  [[nodiscard]] Trace& trace() { return trace_; }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;  // null for non-cancellable events

    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Trace trace_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_ = 0;
};

}  // namespace openmx::sim
