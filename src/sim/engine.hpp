#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "obs/attrib.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "obs/wallprof.hpp"
#include "sim/event_slab.hpp"
#include "sim/inline_fn.hpp"
#include "sim/time.hpp"
#include "sim/timer_wheel.hpp"
#include "sim/trace.hpp"

namespace openmx::sim {

class Engine;

/// Callback type stored per event: 48 bytes of inline capture storage
/// covers every lambda the simulator schedules (the largest, the NIC
/// delivery closure, is exactly 48 bytes); bigger captures silently fall
/// back to one heap allocation.
using EventFn = InlineFn<48>;

/// Sub-timestamp dispatch band.
///
/// Events at the same instant normally fire in schedule order (FIFO), but
/// that order is a *global* property of one engine — it cannot survive
/// partitioning the simulation into logical processes, where each LP
/// assigns its own sequence numbers.  Resource-claim events (the network's
/// rx-port claims) therefore run in a dedicated band that fires before all
/// normal events at the same timestamp, and order claims among themselves
/// by an explicit location-independent key (see net::Network's claim
/// heaps).  With claims lifted out of FIFO tie-breaking, a partitioned
/// run dispatches bit-identically to the single-engine run.
///
/// kFlow sits between claims and normal events: the fluid network's
/// flow-completion events fire there, so any normal event at the same
/// nanosecond observes post-completion fair-share rates (and, like
/// claims, completions keep a location-independent identity — the flow
/// id — when the fluid fabric is sharded across LPs).
enum class Band : std::uint8_t { kClaim = 0, kFlow = 1, kNormal = 2 };

/// Engine queue configuration.
///
/// The default is the owned 4-ary heap.  `timer_wheel` routes every
/// event within the wheel horizon through a hierarchical timer wheel
/// (O(1) insert) with the heap as far-future overflow; dispatch order is
/// bit-identical between the two structures (asserted by
/// test_determinism), so the choice is purely a throughput knob.
struct EngineConfig {
  bool timer_wheel = false;
  unsigned wheel_granularity_shift = 6;  // one wheel tick = 64 ns
};

/// Handle to a scheduled event that may be cancelled before it fires.
///
/// A handle is a weak {slot, generation} reference into the engine's
/// event slab: cancel() and pending() are O(1) pointer-free lookups, and
/// allocation-free — the seed engine's `shared_ptr<bool>` liveness flag
/// is gone.  When the event fires (or the slot is recycled for a newer
/// event) the generation no longer matches and the handle becomes an
/// inert no-op.  Copies share fate: they all refer to the same slot.
/// Used by retransmission timers, which are cancelled far more often
/// than they fire.  A handle must not outlive its Engine.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet.  Idempotent.
  inline void cancel();

  /// True if the event is still pending (scheduled, not fired or cancelled).
  [[nodiscard]] inline bool pending() const;

 private:
  friend class Engine;
  EventHandle(Engine* engine, EventRecord* rec, std::uint32_t gen)
      : engine_(engine), rec_(rec), gen_(gen) {}

  Engine* engine_ = nullptr;
  EventRecord* rec_ = nullptr;
  std::uint32_t gen_ = 0;
};

/// Deterministic discrete-event engine with nanosecond virtual time.
///
/// Events scheduled for the same instant fire in schedule order (FIFO via a
/// monotonically increasing sequence number), which makes every experiment
/// bit-reproducible.  The engine is strictly single-threaded: only the
/// currently running entity (the engine itself, or the one SimThread it has
/// handed control to) may call schedule().
///
/// Hot-path layout (see DESIGN.md "Scheduler architecture"): callbacks
/// are slab-allocated EventRecords with small-buffer-optimized storage;
/// the priority structure — a 4-ary heap, optionally fronted by a
/// hierarchical timer wheel — orders 24-byte {when, seq, slot} keys, so
/// scheduling and dispatch are allocation-free in steady state and no
/// callback is ever copied.
class Engine {
 public:
  Engine() = default;
  explicit Engine(EngineConfig cfg) : cfg_(cfg) {
    if (cfg.timer_wheel)
      wheel_ = std::make_unique<TimerWheel>(cfg.wheel_granularity_shift);
  }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] const EngineConfig& config() const { return cfg_; }

  /// Current virtual time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` to run `delay` nanoseconds from now.  Accepts any
  /// void() callable, including move-only ones.
  template <typename F>
  void schedule(Time delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` at absolute time `when` (must not be in the past).
  template <typename F>
  void schedule_at(Time when, F&& fn) {
    schedule_at(when, Band::kNormal, std::forward<F>(fn));
  }

  /// Band-explicit variant: Band::kClaim events fire before every normal
  /// event at the same timestamp, regardless of schedule order.
  template <typename F>
  void schedule_at(Time when, Band band, F&& fn) {
    if (when < now_) throw std::logic_error("Engine: scheduling in the past");
    push_event(when, band, std::forward<F>(fn));
  }

  /// Schedules a cancellable event; see EventHandle.
  template <typename F>
  EventHandle schedule_cancellable(Time delay, F&& fn) {
    return schedule_cancellable(delay, Band::kNormal, std::forward<F>(fn));
  }

  /// Band-explicit cancellable variant (the fluid network reschedules its
  /// Band::kFlow completion events whenever fair-share rates change).
  template <typename F>
  EventHandle schedule_cancellable(Time delay, Band band, F&& fn) {
    const Time when = now_ + delay;
    if (when < now_) throw std::logic_error("Engine: scheduling in the past");
    EventRecord* rec = push_event(when, band, std::forward<F>(fn));
    return EventHandle{this, rec, rec->gen};
  }

  /// Runs until the event queue is empty (cancelled events do not keep the
  /// engine alive).  Returns the final virtual time.
  Time run() {
    OMX_WALL_ZONE("engine.run");
    while (step()) {
    }
    return now_;
  }

  /// Runs events up to and including time `deadline`.  Events scheduled
  /// after the deadline remain queued.  Returns current virtual time.
  Time run_until(Time deadline) {
    OMX_WALL_ZONE("engine.run");
    Time next;
    while (peek_next_when(next) && next <= deadline) step();
    if (now_ < deadline) now_ = deadline;
    return now_;
  }

  /// Dispatches the single next live event.  Returns false when drained.
  /// The callback runs in place in its slab slot — never moved, never
  /// copied: the slot is not on the free list while it runs, so
  /// re-entrant scheduling cannot recycle it.  `cancelled` is flipped
  /// first so the event's own handle reads as not pending inside the
  /// callback, and the guard releases the slot even if the callback
  /// throws.
  bool step() {
    // One zone per dispatched event, covering the queue pop, the callback
    // and the slab release — so "engine.dispatch" time plus
    // "engine.schedule" time is (nearly) the whole engine.run body, which
    // is what makes the >=90 % wall-coverage KPI hold.
    OMX_WALL_ZONE("engine.dispatch");
    EventKey k;
    while (pop_next(k)) {
      EventRecord* r = k.rec;
      if (r->cancelled) {  // reap lazily
        slab_.release(r);
        continue;
      }
      --live_;
      now_ = k.when;
      ++dispatched_;
      last_dispatch_when_ = k.when;
      r->cancelled = true;
      const ReleaseGuard guard{&slab_, r};
      try {
        r->fn();
      } catch (...) {
        panic("event callback threw");
        throw;
      }
      return true;
    }
    return false;
  }

  /// Number of events still occupying a slab slot.  This includes
  /// cancelled events that still occupy a queue entry (they are reaped
  /// lazily, at the head of the queue) and the event currently being
  /// dispatched, if any; use live_events() for the count of events that
  /// will still fire.
  [[nodiscard]] std::size_t pending_events() const { return slab_.in_use(); }

  /// Number of scheduled events that will actually fire (cancelled
  /// events excluded the moment cancel() is called).
  [[nodiscard]] std::size_t live_events() const { return live_; }

  /// Total number of events ever scheduled (the FIFO sequence counter).
  /// Two runs of the same workload must agree on this exactly — used to
  /// assert that telemetry layers add no events to the simulation, and
  /// summed in LP-id order by ParallelCluster for cross-worker-count
  /// determinism checks.
  [[nodiscard]] std::uint64_t events_scheduled() const { return next_seq_; }

  /// Total number of events dispatched (cancelled events never count).
  /// Deterministic; the LP scheduler differences it across windows for
  /// per-LP events-per-window telemetry.
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

  /// Timestamp of the most recently dispatched event (0 before the
  /// first).  With events_dispatched() this lets the LP scheduler locate
  /// the busy prefix of a window — the basis of the *virtual-time*
  /// barrier-stall metric, which unlike a wall-clock wait is
  /// bit-identical across runs and worker counts.
  [[nodiscard]] Time last_dispatch_when() const { return last_dispatch_when_; }

  /// Installs the postmortem hook: panic(why) invokes it at most once
  /// (re-armed by installing a new hook).  Harnesses point it at
  /// obs::FlightRecorder::dump_json_file so the event tail survives any
  /// fatal path — a throwing event callback triggers it automatically,
  /// and components call panic() at their own unrecoverable sites (e.g.
  /// the driver when a fault plan exhausts a message's retry budget).
  void set_on_panic(std::function<void(const char*)> fn) {
    on_panic_ = std::move(fn);
    panicked_ = false;
  }

  /// Fires the on_panic hook (if installed and not already fired).
  /// Never throws: every caller is already on a failure path.
  void panic(const char* why) noexcept {
    if (panicked_ || !on_panic_) return;
    panicked_ = true;
    try {
      on_panic_(why);
    } catch (...) {
    }
  }

  /// Timestamp of the next live event, or false when the queue is
  /// drained.  Used by the LP scheduler to pick the next conservative
  /// synchronization window.
  [[nodiscard]] bool next_event_time(Time& when) { return peek_next_when(when); }

  /// Event trace shared by every component driven by this engine
  /// (disabled by default; see sim::Trace).
  [[nodiscard]] Trace& trace() { return trace_; }

  /// Message-lifecycle spans (disabled by default; see obs::SpanTable).
  [[nodiscard]] obs::SpanTable& spans() { return spans_; }

  /// Per-message wait-state stamps for latency attribution (disabled by
  /// default; see obs::AttribTable).
  [[nodiscard]] obs::AttribTable& attrib() { return attrib_; }

  /// Core/DMA utilization timeline (disabled by default; see
  /// obs::Timeline).
  [[nodiscard]] obs::Timeline& timeline() { return timeline_; }

 private:
  friend class EventHandle;

  struct ReleaseGuard {
    EventSlab* slab;
    EventRecord* rec;
    ~ReleaseGuard() { slab->release(rec); }
  };

  /// The queue key's sequence field carries the band in its top bits, so
  /// (when, seq) lexicographic order yields claims-before-normal per
  /// timestamp with plain FIFO inside each band.  next_seq_ stays a pure
  /// schedule counter (events_scheduled()).
  static constexpr unsigned kBandShift = 62;

  template <typename F>
  EventRecord* push_event(Time when, Band band, F&& fn) {
    OMX_WALL_ZONE("engine.schedule");
    EventRecord* rec = slab_.alloc();
    rec->fn.emplace(std::forward<F>(fn));
    const std::uint64_t seq =
        (static_cast<std::uint64_t>(band) << kBandShift) | next_seq_++;
    const EventKey k{when, seq, rec};
    if (!wheel_ || !wheel_->insert(k, now_)) heap_.push(k);
    ++live_;
    return rec;
  }

  /// Global minimum across wheel and overflow heap, by (when, seq).
  [[nodiscard]] const EventKey* peek_key() {
    const EventKey* best = heap_.empty() ? nullptr : &heap_.min();
    if (wheel_) {
      const EventKey* w = wheel_->peek_min(now_);
      if (w && (!best || w->before(*best))) best = w;
    }
    return best;
  }

  bool pop_next(EventKey& out) {
    if (wheel_) {
      const EventKey* w = wheel_->peek_min(now_);
      if (w && (heap_.empty() || w->before(heap_.min()))) {
        out = wheel_->pop_min(now_);
        return true;
      }
    }
    if (heap_.empty()) return false;
    out = heap_.pop_min();
    return true;
  }

  /// Pops cancelled events off the head of the queue so that peeks see
  /// the true next live event.
  void reap_cancelled() {
    for (const EventKey* k = peek_key(); k != nullptr; k = peek_key()) {
      if (!k->rec->cancelled) return;
      EventKey dead;
      pop_next(dead);
      slab_.release(dead.rec);
    }
  }

  bool peek_next_when(Time& when) {
    reap_cancelled();
    const EventKey* k = peek_key();
    if (!k) return false;
    when = k->when;
    return true;
  }

  void cancel_event(EventRecord* rec, std::uint32_t gen) {
    if (rec->gen != gen || rec->cancelled) return;
    rec->cancelled = true;
    --live_;
  }

  [[nodiscard]] static bool event_pending(const EventRecord* rec,
                                          std::uint32_t gen) {
    return rec->gen == gen && !rec->cancelled;
  }

  EngineConfig cfg_;
  EventSlab slab_;
  EventHeap heap_;
  std::unique_ptr<TimerWheel> wheel_;
  Trace trace_;
  obs::SpanTable spans_;
  obs::AttribTable attrib_;
  obs::Timeline timeline_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::uint64_t dispatched_ = 0;
  Time last_dispatch_when_ = 0;
  std::function<void(const char*)> on_panic_;
  bool panicked_ = false;
};

inline void EventHandle::cancel() {
  if (engine_) engine_->cancel_event(rec_, gen_);
}

inline bool EventHandle::pending() const {
  return engine_ != nullptr && Engine::event_pending(rec_, gen_);
}

}  // namespace openmx::sim
