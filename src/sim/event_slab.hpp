#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace openmx::sim {

/// One scheduled event.  The callback lives here — never inside the
/// priority structure — so queue rebalancing moves 24-byte index entries
/// instead of type-erased closures.
///
/// `gen` implements ABA-safe weak handles: it is bumped every time the
/// slot is released, so an EventHandle{slot, gen} taken earlier can tell
/// that "its" event is gone even after the slot has been recycled for a
/// different event.  This replaces the seed engine's per-event
/// `std::make_shared<bool>` liveness flag with zero allocation.
struct EventRecord {
  InlineFn<48> fn;
  std::uint32_t gen = 0;
  bool cancelled = false;
};

/// Chunked slab of EventRecords with a free list.
///
/// Records are allocated in fixed chunks, so they have stable addresses
/// and the engine never pays a per-event malloc once warm; queue entries
/// and EventHandles carry the record pointer directly (no index
/// arithmetic on the hot path).  Release bumps the record's generation
/// and recycles the slot LIFO, which keeps the working set cache-hot
/// for the dominant schedule-dispatch-schedule pattern.
class EventSlab {
 public:
  static constexpr std::size_t kChunkSize = 256;  // records per chunk

  EventSlab() = default;
  EventSlab(const EventSlab&) = delete;
  EventSlab& operator=(const EventSlab&) = delete;

  /// Pops a free slot (growing by one chunk when exhausted).  The
  /// returned record's fn is empty and `cancelled` is false.
  [[nodiscard]] EventRecord* alloc() {
    if (free_.empty()) grow();
    EventRecord* r = free_.back();
    free_.pop_back();
    return r;
  }

  /// Returns the record to the free list and invalidates all handles
  /// that captured its current generation.  The callback must already
  /// have been moved out or abandoned.
  void release(EventRecord* r) {
    r->fn.reset();
    r->cancelled = false;
    ++r->gen;
    free_.push_back(r);
  }

  /// Currently allocated (queued) records.
  [[nodiscard]] std::size_t in_use() const {
    return capacity() - free_.size();
  }

  /// Total capacity ever grown to (test hook: asserts slab reuse).
  [[nodiscard]] std::size_t capacity() const {
    return chunks_.size() * kChunkSize;
  }

 private:
  void grow() {
    chunks_.push_back(std::make_unique<EventRecord[]>(kChunkSize));
    EventRecord* base = chunks_.back().get();
    // Push in reverse so records are handed out in ascending address order.
    free_.reserve(free_.size() + kChunkSize);
    for (std::size_t i = kChunkSize; i-- > 0;) free_.push_back(base + i);
  }

  std::vector<std::unique_ptr<EventRecord[]>> chunks_;
  std::vector<EventRecord*> free_;
};

/// Queue entry (24 bytes): the total dispatch order is lexicographic
/// (when, seq), seq being the global schedule sequence — FIFO per
/// timestamp, the determinism invariant every experiment relies on.
/// The callback stays in the slab; only this key moves during heap or
/// wheel rebalancing.
struct EventKey {
  Time when;
  std::uint64_t seq;
  EventRecord* rec;

  [[nodiscard]] bool before(const EventKey& o) const {
    if (when != o.when) return when < o.when;
    return seq < o.seq;
  }
};

/// Owned 4-ary implicit min-heap of EventKeys.
///
/// Replaces `std::priority_queue<Event>`: entries are 24-byte PODs (the
/// callback stays in the slab), the 4-ary layout halves the tree depth
/// of a binary heap and keeps each sift level inside one cache line, and
/// `pop_min` moves — never copies — which `std::priority_queue::top()`
/// cannot do.
class EventHeap {
 public:
  EventHeap() { heap_.reserve(kReserve); }

  void push(EventKey k) {
    heap_.push_back(k);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!k.before(heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = k;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] const EventKey& min() const { return heap_.front(); }

  EventKey pop_min() {
    const EventKey top = heap_.front();
    const EventKey k = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = i * kArity + 1;
        if (first >= n) break;
        const std::size_t last = std::min(first + kArity, n);
        std::size_t best = first;
        for (std::size_t c = first + 1; c < last; ++c)
          if (heap_[c].before(heap_[best])) best = c;
        if (!heap_[best].before(k)) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = k;
    }
    return top;
  }

 private:
  static constexpr std::size_t kArity = 4;
  static constexpr std::size_t kReserve = 1024;  // skip early regrowth

  std::vector<EventKey> heap_;
};

}  // namespace openmx::sim
