#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace openmx::sim {

/// Shared worker-thread pool behind every parallel layer of the harness.
///
/// SweepRunner (fan-out across experiments) and LpScheduler (fan-out of
/// one experiment across logical processes) both draw helpers from the
/// same pool, so a parallel sweep of parallel runs cannot oversubscribe
/// the machine: auto-sized requests are capped at the pool's soft
/// capacity (hardware concurrency, or OPENMX_POOL_THREADS), and whatever
/// is busy simply is not granted — the caller always participates in its
/// own work, so a request granted zero helpers degrades to sequential
/// execution instead of deadlocking.
///
/// An *exact* request (an explicit worker count, e.g. a determinism test
/// pinning 8 workers on a 2-core CI box) is honoured in full, growing
/// extra threads if needed — the same semantics SweepOptions::threads
/// always had.  Worker threads are created lazily and persist for the
/// pool's lifetime.
class ThreadPool {
 public:
  using Fn = std::function<void(unsigned)>;

  /// Handle to a set of helpers dispatched by spawn(); join() must be
  /// called exactly once before the handle is destroyed.
  class Team {
   public:
    /// Helpers actually granted (<= requested).
    [[nodiscard]] unsigned size() const { return state_ ? state_->total : 0; }

   private:
    friend class ThreadPool;
    struct State {
      std::mutex mu;
      std::condition_variable done_cv;
      unsigned total = 0;
      unsigned remaining = 0;
      std::exception_ptr error;
    };
    std::shared_ptr<State> state_;
  };

  explicit ThreadPool(unsigned soft_cap) : soft_cap_(soft_cap ? soft_cap : 1) {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Auto-sized parallelism budget for one caller (itself included):
  /// the soft capacity, never less than 1.
  [[nodiscard]] unsigned soft_cap() const { return soft_cap_; }

  /// Dispatches `fn(slot)` for slot in [0, k) on up to `k` helper
  /// threads and returns immediately.  With exact=false the grant is
  /// limited to threads that are idle or may still be created under the
  /// soft capacity; with exact=true all `k` helpers are granted, growing
  /// the pool past the cap (explicit worker counts stay reproducible on
  /// any machine).  Slots of granted helpers are 0..grant-1.
  [[nodiscard]] Team spawn(unsigned k, bool exact, Fn fn) {
    Team team;
    team.state_ = std::make_shared<Team::State>();
    unsigned grant = k;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!exact) {
        const unsigned idle = idle_;
        const unsigned growable =
            soft_cap_ > threads_.size()
                ? soft_cap_ - static_cast<unsigned>(threads_.size())
                : 0;
        grant = std::min(k, idle + growable);
      }
      team.state_->total = grant;
      team.state_->remaining = grant;
      const auto shared_fn = std::make_shared<Fn>(std::move(fn));
      for (unsigned slot = 0; slot < grant; ++slot)
        queue_.push_back(Job{shared_fn, slot, team.state_});
      while (threads_.size() < busy_ + queue_.size())
        threads_.emplace_back([this] { worker_loop(); });
    }
    cv_.notify_all();
    return team;
  }

  /// Blocks until every granted helper finished, then rethrows the first
  /// helper exception, if any.
  void join(Team& team) {
    if (!team.state_) return;
    std::unique_lock<std::mutex> lock(team.state_->mu);
    team.state_->done_cv.wait(lock,
                              [&] { return team.state_->remaining == 0; });
    std::exception_ptr error = team.state_->error;
    lock.unlock();
    team.state_.reset();
    if (error) std::rethrow_exception(error);
  }

  /// The process-wide pool.  Soft capacity is OPENMX_POOL_THREADS when
  /// set, else hardware concurrency.
  static ThreadPool& shared() {
    static ThreadPool pool(default_soft_cap());
    return pool;
  }

  [[nodiscard]] static unsigned default_soft_cap() {
    if (const char* env = std::getenv("OPENMX_POOL_THREADS")) {
      const unsigned n = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
      if (n > 0) return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
  }

 private:
  struct Job {
    std::shared_ptr<Fn> fn;
    unsigned slot = 0;
    std::shared_ptr<Team::State> team;
  };

  void worker_loop() {
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        ++idle_;
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        --idle_;
        if (stop_ && queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.erase(queue_.begin());
        ++busy_;
      }
      try {
        (*job.fn)(job.slot);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(job.team->mu);
        if (!job.team->error) job.team->error = std::current_exception();
      }
      {
        const std::lock_guard<std::mutex> lock(mu_);
        --busy_;
      }
      bool last = false;
      {
        const std::lock_guard<std::mutex> lock(job.team->mu);
        last = --job.team->remaining == 0;
      }
      if (last) job.team->done_cv.notify_all();
    }
  }

  const unsigned soft_cap_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Job> queue_;
  std::vector<std::thread> threads_;
  unsigned idle_ = 0;
  unsigned busy_ = 0;
  bool stop_ = false;
};

}  // namespace openmx::sim
