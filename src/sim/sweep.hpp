#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"

namespace openmx::sim {

struct SweepOptions {
  /// Worker threads; 0 = auto (the shared pool's soft capacity, i.e.
  /// hardware concurrency), 1 = run inline on the calling thread (useful
  /// as the determinism reference).  Explicit counts > 1 are honoured
  /// exactly; auto-sized runs only use helpers the shared pool has idle,
  /// so nested fan-outs never oversubscribe the machine.
  unsigned threads = 0;
};

/// Honours OPENMX_SWEEP_THREADS so benchmark drivers can pin the worker
/// count (e.g. =1 to take a sequential reference run) without rebuilds.
inline SweepOptions sweep_options_from_env() {
  SweepOptions opts;
  if (const char* env = std::getenv("OPENMX_SWEEP_THREADS"))
    opts.threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  return opts;
}

/// Fans independent experiment points across the shared worker pool.
///
/// Each job must be self-contained: it builds its own Cluster/Engine
/// (the simulator substrate has no mutable global state, so engines in
/// different threads never interact) and derives any randomness from
/// sweep_seed(base, index).  Results are written to the slot matching
/// the job index, so the output — and therefore every downstream
/// statistic — is bit-identical to sequential execution regardless of
/// the worker count or OS scheduling (asserted by test_determinism).
///
/// This parallelizes *across* experiments; each simulation itself is
/// either strictly single-threaded or internally parallelized by the
/// multi-LP scheduler (sim/lp.hpp) — both draw from the same
/// ThreadPool::shared(), so the combination cannot oversubscribe.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {}) : opts_(opts) {}

  /// Runs `point(i)` for i in [0, n) and returns the results in index
  /// order.  Rethrows the first job exception after all workers stop.
  template <typename R>
  std::vector<R> map(std::size_t n, const std::function<R(std::size_t)>& point) {
    std::vector<R> out(n);
    for_each(n, [&](std::size_t i) { out[i] = point(i); });
    return out;
  }

  /// Runs `point(i)` for i in [0, n); jobs are claimed from an atomic
  /// counter, so workers stay busy even when job durations are skewed.
  /// The calling thread always works too — helpers only add parallelism.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& point) {
    unsigned nthreads =
        opts_.threads ? opts_.threads : ThreadPool::shared().soft_cap();
    if (nthreads == 0) nthreads = 1;
    if (static_cast<std::size_t>(nthreads) > n)
      nthreads = static_cast<unsigned>(n);
    if (nthreads <= 1) {
      for (std::size_t i = 0; i < n; ++i) point(i);
      return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    auto worker = [&](unsigned) {
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          point(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    };
    ThreadPool::Team team = ThreadPool::shared().spawn(
        nthreads - 1, /*exact=*/opts_.threads != 0, worker);
    worker(nthreads - 1);
    ThreadPool::shared().join(team);
    if (error) std::rethrow_exception(error);
  }

  [[nodiscard]] const SweepOptions& options() const { return opts_; }

 private:
  SweepOptions opts_;
};

}  // namespace openmx::sim
