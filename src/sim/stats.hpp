#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "obs/registry.hpp"
#include "sim/time.hpp"

namespace openmx::sim {

/// Running summary of a sample stream: count, sum, min, max, mean.
class Summary {
 public:
  void add(double v) {
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

  /// Folds another summary in; used to combine per-replica statistics
  /// after a SweepRunner fan-out.  Order-independent for count/min/max
  /// and deterministic for sum/mean as long as merges happen in a fixed
  /// order (SweepRunner returns results in index order).
  void merge(const Summary& o) {
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  void reset() { *this = Summary{}; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Named monotonically increasing counters (packets sent, retransmits,
/// descriptors submitted, cache hits...).  Cheap enough to leave enabled.
///
/// Now an alias for obs::Registry: same string add()/get()/merge()/reset()
/// API, plus interned counter()/histogram() handles so hot paths pay a
/// single add instead of a map lookup per event (see obs/registry.hpp).
using Counters = obs::Registry;

}  // namespace openmx::sim
