#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace openmx::sim {

/// One record in the event trace, reconstructed with strings for
/// inspection.  The stored form is the 32-byte POD obs::TraceEvent; this
/// struct only exists at snapshot() time.
struct TraceRecord {
  Time when = 0;
  int node = -1;
  std::string category;  // "wire.tx", "pull.start", ...
  std::string message;
};

/// A bounded in-memory trace of simulation events.
///
/// Compatibility shim over the typed obs:: trace machinery: records are
/// fixed-size PODs carrying interned name ids and two u64 arguments — no
/// std::string ever touches the record path.  The classic string API
/// (record(), snapshot(), count()) survives on top of it:
///  - record(category, message) interns both strings;
///  - record(category, lazy) only invokes the message-building callable
///    when the record will actually be stored;
///  - intern_event()/event() is the zero-allocation fast path used by
///    hot call sites (wire tx, pull lifecycle);
///  - OMX_TRACEF never evaluates its arguments when tracing is off.
///
/// Disabled is the default, and a disabled trace is one branch per call
/// site.  The buffer is a ring: when full, the oldest records are
/// dropped, so long experiments keep their tail.
class Trace {
 public:
  explicit Trace(std::size_t capacity = 1 << 16) : buf_(capacity) {}

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Attaches an always-on flight recorder: every typed event() — the
  /// unconditional hot call sites (wire tx, pull lifecycle) — is mirrored
  /// into `fr`'s ring for shard `shard` even while the trace itself is
  /// disabled, at the cost of one POD store.  The string record() paths
  /// feed it too, but only when their call site runs (OMX_TRACEF checks
  /// enabled() at the call site).  Passing nullptr detaches.
  void attach_flight(obs::FlightRecorder* fr, std::uint32_t shard = 0) {
    flight_ = fr;
    flight_shard_ = shard;
    if (fr) fr->bind_names(shard, &events_, &msgs_);
  }
  [[nodiscard]] obs::FlightRecorder* flight() const { return flight_; }

  /// Restrict recording to one category prefix (empty = everything).
  void set_filter(std::string prefix) { filter_ = std::move(prefix); }

  /// Pre-interns an event name; the returned id makes event() a pure POD
  /// store.  Call once per site (component constructors).
  [[nodiscard]] obs::EventId intern_event(std::string_view name) {
    const std::uint32_t id = events_.intern(name);
    return obs::EventId{static_cast<std::uint16_t>(id), obs::classify(name)};
  }

  /// Typed fast path: no strings, no allocation; a0/a1 are free-form
  /// event arguments (byte counts, handles, packed addresses).
  void event(Time when, int node, obs::EventId id, std::uint64_t a0 = 0,
             std::uint64_t a1 = 0) {
    if (!flight_ && !enabled_) return;
    obs::TraceEvent e;
    e.when = when;
    e.node = node;
    e.cat = id.cat;
    e.id = id.id;
    e.a0 = a0;
    e.a1 = a1;
    if (flight_) flight_->record(flight_shard_, e);
    if (!enabled_ || !pass(events_.name(id.id))) return;
    buf_.push(e);
  }

  /// String-compatibility path: both strings are interned (identical
  /// strings are stored once).
  void record(Time when, int node, std::string_view category,
              std::string_view message) {
    const bool store = enabled_ && pass(category);
    if (!store && !flight_) return;
    obs::TraceEvent e;
    e.when = when;
    e.node = node;
    e.cat = obs::classify(category);
    e.flags = obs::kMsgInterned;
    e.id = static_cast<std::uint16_t>(events_.intern(category));
    e.a0 = msgs_.intern(message);
    if (flight_) flight_->record(flight_shard_, e);
    if (store) buf_.push(e);
  }

  /// Lazy path: `lazy()` builds the message string and is only invoked
  /// when the record passes the enabled/filter checks.
  template <typename Fn,
            std::enable_if_t<std::is_invocable_v<Fn&>, int> = 0>
  void record(Time when, int node, std::string_view category, Fn&& lazy) {
    if (!enabled_ || !pass(category)) return;
    record(when, node, category, std::string_view(lazy()));
  }

  /// printf-style recording; see OMX_TRACEF for the call-site macro that
  /// makes the whole call free when tracing is off.
#if defined(__GNUC__)
  __attribute__((format(printf, 5, 6)))
#endif
  void
  recordf(Time when, int node, std::string_view category, const char* fmt,
          ...) {
    if (!enabled_ || !pass(category)) return;
    char msg[192];
    std::va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(msg, sizeof msg, fmt, ap);
    va_end(ap);
    record(when, node, category, std::string_view(msg));
  }

  /// Records in chronological order, with names/messages reconstructed.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const {
    std::vector<TraceRecord> out;
    out.reserve(buf_.size());
    for (std::size_t i = 0; i < buf_.size(); ++i) {
      const obs::TraceEvent& e = buf_.chrono(i);
      out.push_back(TraceRecord{e.when, e.node, events_.name(e.id),
                                message_of(e)});
    }
    return out;
  }

  /// Number of records matching a category prefix.
  [[nodiscard]] std::size_t count(std::string_view prefix) const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < buf_.size(); ++i)
      if (std::string_view(events_.name(buf_.chrono(i).id))
              .starts_with(prefix))
        ++n;
    return n;
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return buf_.dropped(); }

  void clear() { buf_.clear(); }

  /// Raw typed view (exporters, tests of the POD path).
  [[nodiscard]] const obs::TraceBuffer& buffer() const { return buf_; }
  [[nodiscard]] const obs::Interner& event_names() const { return events_; }

  /// Human-readable dump (for examples and debugging).
  void dump(std::FILE* out = stdout, std::size_t max_lines = 200) const {
    const auto recs = snapshot();
    const std::size_t start =
        recs.size() > max_lines ? recs.size() - max_lines : 0;
    for (std::size_t i = start; i < recs.size(); ++i)
      std::fprintf(out, "%12.3f us  n%d  %-10s %s\n",
                   to_micros(recs[i].when), recs[i].node,
                   recs[i].category.c_str(), recs[i].message.c_str());
  }

 private:
  [[nodiscard]] bool pass(std::string_view category) const {
    return filter_.empty() || category.starts_with(filter_);
  }

  [[nodiscard]] std::string message_of(const obs::TraceEvent& e) const {
    if (e.flags & obs::kMsgInterned)
      return msgs_.name(static_cast<std::uint32_t>(e.a0));
    if (e.a1)
      return "a0=" + std::to_string(e.a0) + " a1=" + std::to_string(e.a1);
    if (e.a0) return "a0=" + std::to_string(e.a0);
    return {};
  }

  bool enabled_ = false;
  std::string filter_;
  obs::TraceBuffer buf_;
  obs::Interner events_;  // event/category names (bounded, u16 ids)
  obs::Interner msgs_;    // compat-path message strings
  obs::FlightRecorder* flight_ = nullptr;  // always-on postmortem ring
  std::uint32_t flight_shard_ = 0;
};

}  // namespace openmx::sim

/// Free-when-disabled trace macro: arguments after `cat` are a printf
/// format + values and are not evaluated unless the trace is enabled.
#define OMX_TRACEF(tr, when, node, cat, ...)                       \
  do {                                                             \
    auto& omx_tracef_ref_ = (tr);                                  \
    if (omx_tracef_ref_.enabled())                                 \
      omx_tracef_ref_.recordf((when), (node), (cat), __VA_ARGS__); \
  } while (0)
