#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace openmx::sim {

/// One record in the event trace.
struct TraceRecord {
  Time when = 0;
  int node = -1;
  std::string category;  // "wire", "bh", "ioat", "lib", ...
  std::string message;
};

/// A bounded in-memory trace of simulation events.
///
/// Disabled by default (a disabled trace is a branch on a bool); tests
/// and debugging sessions enable it to assert on protocol timelines or
/// dump them.  The buffer is a ring: when full, the oldest records are
/// dropped, so long experiments keep their tail.
class Trace {
 public:
  explicit Trace(std::size_t capacity = 1 << 16) : capacity_(capacity) {}

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Restrict recording to one category prefix (empty = everything).
  void set_filter(std::string prefix) { filter_ = std::move(prefix); }

  void record(Time when, int node, std::string category,
              std::string message) {
    if (!enabled_) return;
    if (!filter_.empty() &&
        category.compare(0, filter_.size(), filter_) != 0)
      return;
    if (records_.size() == capacity_) {
      records_[head_] = TraceRecord{when, node, std::move(category),
                                    std::move(message)};
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
      return;
    }
    records_.push_back(
        TraceRecord{when, node, std::move(category), std::move(message)});
  }

  /// Records in chronological order.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const {
    std::vector<TraceRecord> out;
    out.reserve(records_.size());
    for (std::size_t i = 0; i < records_.size(); ++i)
      out.push_back(records_[(head_ + i) % records_.size()]);
    return out;
  }

  /// Number of records matching a category prefix.
  [[nodiscard]] std::size_t count(const std::string& prefix) const {
    std::size_t n = 0;
    for (const auto& r : records_)
      if (r.category.compare(0, prefix.size(), prefix) == 0) ++n;
    return n;
  }

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  void clear() {
    records_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  /// Human-readable dump (for examples and debugging).
  void dump(std::FILE* out = stdout, std::size_t max_lines = 200) const {
    const auto recs = snapshot();
    const std::size_t start =
        recs.size() > max_lines ? recs.size() - max_lines : 0;
    for (std::size_t i = start; i < recs.size(); ++i)
      std::fprintf(out, "%12.3f us  n%d  %-10s %s\n",
                   to_micros(recs[i].when), recs[i].node,
                   recs[i].category.c_str(), recs[i].message.c_str());
  }

 private:
  std::size_t capacity_;
  bool enabled_ = false;
  std::string filter_;
  std::vector<TraceRecord> records_;
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace openmx::sim
