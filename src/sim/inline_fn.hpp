#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace openmx::sim {

/// Move-only `void()` callable with small-buffer optimization.
///
/// `std::function` copies its target on every queue rebalance and heap
/// pop, and always type-erases through a copyable wrapper; for the event
/// engine's hot path we need neither.  InlineFn stores callables of up to
/// `InlineBytes` (and `std::max_align_t` alignment) directly in the
/// object — the common case for every `[this, ...]` lambda the simulator
/// schedules — and falls back to a single heap allocation only for
/// oversized or throwing-move captures.  Because it is move-only it can
/// also hold move-only captures (`std::unique_ptr`, ...), which
/// `std::function` cannot.
///
/// The engine never moves an InlineFn at all: the callable is emplaced
/// directly into its slab slot, the priority structure orders 24-byte
/// {when, seq, slot} entries (see event_slab.hpp), and dispatch invokes
/// the callable in place.  Relocation exists only for standalone
/// InlineFn users.
template <std::size_t InlineBytes = 48>
class InlineFn {
 public:
  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFn(InlineFn&& o) noexcept : ops_(o.ops_), target_(o.target_) {
    relocate_from(o);
  }

  InlineFn& operator=(InlineFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      target_ = o.target_;
      relocate_from(o);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// Constructs the target in place (no intermediate InlineFn, no
  /// relocate call) — the engine's scheduling fast path.
  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>);
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = inline_ops<D>();
      target_ = buf_;
    } else {
      target_ = new D(std::forward<F>(f));
      ops_ = heap_ops<D>();
    }
  }

  void operator()() { ops_->call(target_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// True when the target lives in the inline buffer (test hook).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && !ops_->heap;
  }

  /// Whether a callable of type D would use the inline buffer.
  template <typename D>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(D) <= InlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  void reset() noexcept {
    if (!ops_) return;
    if (!ops_->trivial) ops_->destroy(target_);
    ops_ = nullptr;
    target_ = nullptr;
  }

 private:
  struct Ops {
    void (*call)(void*);
    void (*relocate)(void*, void*) noexcept;  // move into dst, destroy src
    void (*destroy)(void*) noexcept;
    bool heap;
    // Trivially copyable + trivially destructible inline target: moves
    // are a straight 48-byte memcpy and destruction is a no-op, with no
    // indirect call for either.  True for the dominant raw-pointer/int
    // capture lambdas of the hot path.
    bool trivial;
  };

  void relocate_from(InlineFn& o) noexcept {
    if (ops_ && !ops_->heap) {
      if (ops_->trivial)
        std::memcpy(buf_, o.buf_, InlineBytes);
      else
        ops_->relocate(o.buf_, buf_);
      target_ = buf_;
    }
    o.ops_ = nullptr;
    o.target_ = nullptr;
  }

  template <typename D>
  static const Ops* inline_ops() {
    static constexpr Ops ops{
        [](void* o) { (*static_cast<D*>(o))(); },
        [](void* src, void* dst) noexcept {
          ::new (dst) D(std::move(*static_cast<D*>(src)));
          static_cast<D*>(src)->~D();
        },
        [](void* o) noexcept { static_cast<D*>(o)->~D(); },
        false,
        std::is_trivially_copyable_v<D> &&
            std::is_trivially_destructible_v<D>};
    return &ops;
  }

  template <typename D>
  static const Ops* heap_ops() {
    static constexpr Ops ops{
        [](void* o) { (*static_cast<D*>(o))(); },
        nullptr,
        [](void* o) noexcept { delete static_cast<D*>(o); },
        true,
        false};
    return &ops;
  }

  alignas(std::max_align_t) unsigned char buf_[InlineBytes];
  const Ops* ops_ = nullptr;
  // Points at buf_ (inline targets) or the heap allocation; invocation,
  // destruction and heap-delete all go straight through it without
  // re-deriving the storage location.
  void* target_ = nullptr;
};

}  // namespace openmx::sim
