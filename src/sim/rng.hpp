#pragma once

#include <cstdint>

namespace openmx::sim {

/// Deterministic 64-bit PRNG (SplitMix64).
///
/// Used for loss injection and workload generation.  Chosen over
/// std::mt19937 because its output is identical across standard-library
/// implementations, keeping experiment output stable everywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

  /// Bernoulli draw with probability p.
  bool chance(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

/// Deterministic per-replica RNG seed: a SplitMix64 scramble of
/// (base, replica), so every parameter point / replica of a sweep — and
/// every per-source-node loss stream of the network — gets a decorrelated
/// stream that does not depend on which worker thread runs it or in what
/// order.
inline std::uint64_t sweep_seed(std::uint64_t base, std::uint64_t replica) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (replica + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace openmx::sim
