#include "nas/is_kernel.hpp"

#include <algorithm>

namespace openmx::nas {

IsResult run_is(mpi::Comm& comm, const IsParams& params) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::uint32_t bucket_width =
      (params.max_key + static_cast<std::uint32_t>(p) - 1) /
      static_cast<std::uint32_t>(p);

  // Deterministic per-rank key set.
  sim::Rng rng(params.seed + static_cast<std::uint64_t>(r) * 977);
  std::vector<std::uint32_t> keys(params.keys_per_rank);
  for (auto& k : keys)
    k = static_cast<std::uint32_t>(rng.next_below(params.max_key));

  comm.barrier();
  const sim::Time t0 = comm.now();
  std::vector<std::uint32_t> mine;  // keys this rank owns after exchange

  for (int iter = 0; iter < params.iterations; ++iter) {
    // 1. Local bucket counting (modeled CPU time + real counting).
    comm.process().compute(
        static_cast<sim::Time>(keys.size()) * params.ns_per_key);
    std::vector<std::vector<std::uint32_t>> buckets(
        static_cast<std::size_t>(p));
    for (std::uint32_t k : keys)
      buckets[std::min<std::size_t>(k / bucket_width,
                                    static_cast<std::size_t>(p) - 1)]
          .push_back(k);

    // 2. Allreduce of the global bucket histogram (small message).
    std::vector<double> histogram(static_cast<std::size_t>(p));
    for (int b = 0; b < p; ++b)
      histogram[static_cast<std::size_t>(b)] =
          static_cast<double>(buckets[static_cast<std::size_t>(b)].size());
    comm.allreduce(histogram.data(), histogram.size());

    // 3. Alltoallv of the keys themselves — the large-message phase.
    std::vector<std::size_t> slens, rlens(static_cast<std::size_t>(p));
    std::vector<std::uint32_t> sbuf;
    for (int b = 0; b < p; ++b) {
      slens.push_back(buckets[static_cast<std::size_t>(b)].size() *
                      sizeof(std::uint32_t));
      sbuf.insert(sbuf.end(), buckets[static_cast<std::size_t>(b)].begin(),
                  buckets[static_cast<std::size_t>(b)].end());
    }
    // Exchange the byte counts first (tiny alltoall).
    std::vector<std::size_t> slens_bytes = slens;
    {
      std::vector<std::uint64_t> scnt(slens.begin(), slens.end());
      std::vector<std::uint64_t> rcnt(static_cast<std::size_t>(p));
      comm.alltoall(scnt.data(), sizeof(std::uint64_t), rcnt.data());
      for (int b = 0; b < p; ++b)
        rlens[static_cast<std::size_t>(b)] =
            static_cast<std::size_t>(rcnt[static_cast<std::size_t>(b)]);
    }
    std::size_t rtotal = 0;
    for (auto v : rlens) rtotal += v;
    std::vector<std::uint32_t> rbuf(rtotal / sizeof(std::uint32_t));
    comm.alltoallv(sbuf.data(), slens_bytes, rbuf.data(), rlens);

    // 4. Local ranking of the received keys (modeled + real sort on the
    // last iteration so the result can be verified).
    comm.process().compute(
        static_cast<sim::Time>(rbuf.size()) * 2 * params.ns_per_key);
    if (iter == params.iterations - 1) {
      std::sort(rbuf.begin(), rbuf.end());
      mine = std::move(rbuf);
    }
  }

  comm.barrier();
  IsResult res;
  res.total_time = comm.now() - t0;
  res.time_per_iteration = res.total_time / params.iterations;

  // Verification: gather bucket boundaries on rank 0 via the existing
  // primitives — each rank checks its own keys are within its bucket and
  // sorted, then rank 0 aggregates the verdicts.
  bool ok = std::is_sorted(mine.begin(), mine.end());
  for (std::uint32_t k : mine) {
    const auto b = std::min<std::size_t>(k / bucket_width,
                                         static_cast<std::size_t>(p) - 1);
    if (static_cast<int>(b) != r) ok = false;
  }
  std::vector<double> verdicts(static_cast<std::size_t>(p), 0.0);
  verdicts[static_cast<std::size_t>(r)] = ok ? 1.0 : 0.0;
  comm.allreduce(verdicts.data(), verdicts.size());
  res.sorted = true;
  for (double v : verdicts)
    if (v < 0.5) res.sorted = false;
  res.keys_checked = mine.size();
  return res;
}

}  // namespace openmx::nas
