#pragma once

// NAS-IS-like integer bucket sort on the mini-MPI layer.
//
// The paper reports "up to 10 % performance increase on the NAS parallel
// benchmarks, especially on IS which relies on large messages".  IS per
// iteration: local bucket counting, an Allreduce of bucket sizes, an
// Alltoallv redistributing the keys (the large-message phase I/OAT
// accelerates), and a local ranking step.  Key movement is performed for
// real so tests can verify the global sort.

#include <cstdint>
#include <vector>

#include "mpi/comm.hpp"
#include "sim/rng.hpp"

namespace openmx::nas {

struct IsParams {
  std::size_t keys_per_rank = 1 << 16;
  std::uint32_t max_key = 1 << 19;
  int iterations = 5;
  /// Modeled CPU cost per key per local pass (counting, ranking).  The
  /// E5345 sustains roughly one key per few ns in these loops.
  sim::Time ns_per_key = 3;
  std::uint64_t seed = 12345;
};

struct IsResult {
  sim::Time total_time = 0;
  sim::Time time_per_iteration = 0;
  bool sorted = false;             // global order verified on rank 0
  std::size_t keys_checked = 0;
};

/// Runs the kernel collectively; every rank must call it.  Returns the
/// timing of rank 0 (identical on all ranks after the final barrier).
IsResult run_is(mpi::Comm& comm, const IsParams& params);

}  // namespace openmx::nas
