#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <set>
#include <stdexcept>
#include <vector>

#include "obs/registry.hpp"
#include "obs/timeline.hpp"
#include "obs/wallprof.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace openmx::dma {

/// Timing parameters of the chipset DMA engine, calibrated against the
/// paper's Section IV-A micro-benchmarks and Figure 7:
///  - ~350 ns CPU cost to build and ring a copy descriptor;
///  - completions are a plain in-order memory read (~negligible);
///  - per-descriptor engine start-up plus a ~2.7 GiB/s streaming rate,
///    which yields ~2.4 GiB/s with 4 KiB chunks, ~1.5 GiB/s with 1 kB
///    chunks, and <1 GiB/s with 256 B chunks — the Figure 7 curves.
struct IoatParams {
  int num_channels = 4;               // current Intel I/OAT hardware ([22])
  sim::Time submit_ns = 350;          // CPU cost per descriptor submission
  sim::Time poll_ns = 40;             // CPU cost of one completion check
  sim::Time desc_startup_ns = 250;    // engine-side per-descriptor latency
  double engine_bw = 2.7 * static_cast<double>(sim::GiB);  // bytes/s
  // The four channels share the chipset's memory ports: striping one copy
  // over several channels buys ~40 % ([22]), not 4x.  Aggregate ceiling
  // applied when more than one channel is busy.
  double aggregate_bw = 3.8 * static_cast<double>(sim::GiB);  // bytes/s
};

/// One injected anomaly of the chipset DMA hardware, decided at descriptor
/// submission time (deterministically — the channel is a FIFO, so both the
/// stall and the error status are fixed the moment the descriptor queues).
struct DmaFault {
  sim::Time stall_ns = 0;  // channel pauses this long before starting
  bool fail = false;       // descriptor completes with error; no bytes move
};

/// Injection point for scripted DMA faults, consulted once per submitted
/// descriptor.  Implemented by fault::Plan; the dma layer only knows this
/// interface.
class DmaFaultInjector {
 public:
  virtual ~DmaFaultInjector() = default;
  virtual DmaFault on_submit(int chan, std::size_t len) = 0;
};

/// The I/OAT DMA engine integrated in the memory chipset (Intel 5000X).
///
/// Each channel processes its descriptors strictly in order and reports
/// completion through an in-memory cookie that the CPU polls; the hardware
/// cannot raise an interrupt to wake a sleeping task (paper Section VI),
/// which is why synchronous offloaded copies must busy-poll.
///
/// Descriptors really move the bytes: the memcpy is performed at the
/// descriptor's virtual completion instant, so overlapped copies expose
/// genuine use-after-free / ordering bugs to the functional tests.
class IoatEngine {
 public:
  IoatEngine(sim::Engine& engine, IoatParams params = {})
      : engine_(engine), params_(params), channels_(params.num_channels) {
    if (params.num_channels <= 0)
      throw std::invalid_argument("IoatEngine: need at least one channel");
    // Counter handles are interned once; submit() then pays a plain add
    // per descriptor instead of a string-keyed map lookup.
    c_descriptors_ = &counters_.counter("ioat.descriptors");
    c_bytes_ = &counters_.counter("ioat.bytes");
    c_desc_failures_ = &counters_.counter("ioat.desc_failures");
    c_stalls_ = &counters_.counter("ioat.stalls");
    c_stall_ns_ = &counters_.counter("ioat.stall_ns");
    h_queue_wait_ = &counters_.histogram("ioat.queue_wait_ns");
    h_transfer_ = &counters_.histogram("ioat.transfer_ns");
  }

  IoatEngine(const IoatEngine&) = delete;
  IoatEngine& operator=(const IoatEngine&) = delete;

  [[nodiscard]] int num_channels() const { return params_.num_channels; }
  [[nodiscard]] const IoatParams& params() const { return params_; }

  /// Installs (or clears, with nullptr) the scripted DMA fault injector.
  /// No injector means submit() is byte-for-byte the pre-fault path.
  void set_fault_injector(DmaFaultInjector* f) { faults_ = f; }
  [[nodiscard]] DmaFaultInjector* fault_injector() const { return faults_; }

  /// CPU-side cost of submitting `ndesc` descriptors.  The caller charges
  /// this to whichever core performs the submission (normally the bottom
  /// half); the engine itself only models the asynchronous copy.
  [[nodiscard]] sim::Time submit_cost(std::size_t ndesc) const {
    return params_.submit_ns * static_cast<sim::Time>(ndesc);
  }

  /// CPU-side cost of one completion poll (an in-order memory read).
  [[nodiscard]] sim::Time poll_cost() const { return params_.poll_ns; }

  /// Queues one copy descriptor on `chan`; returns its cookie (cookies on a
  /// channel are consecutive and complete in order).  `src` and `dst` must
  /// stay valid until completion — exactly the pinning requirement the real
  /// hardware imposes.
  ///
  /// A non-zero `attrib_key` stamps the descriptor's queue wait (time it
  /// sits behind ring occupancy before the channel starts it) and its
  /// engine time as distinct obs::Wait categories for that message.
  std::uint64_t submit(int chan, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t len, std::uint64_t attrib_key = 0) {
    OMX_WALL_ZONE("dma.submit");
    Channel& c = channel(chan);
    const std::uint64_t cookie = c.next_cookie++;
    DmaFault fault;
    if (faults_) fault = faults_->on_submit(chan, len);
    if (fault.stall_ns > 0) {
      c_stalls_->add();
      c_stall_ns_->add(static_cast<std::uint64_t>(fault.stall_ns));
    }
    const sim::Time start =
        std::max(engine_.now(), c.free_at) + fault.stall_ns;
    const sim::Time queue_wait = start - engine_.now();
    // Channels contend for the chipset memory ports: with k busy channels
    // each one streams at min(engine_bw, aggregate_bw / k).
    int busy = 0;
    for (const Channel& ch : channels_)
      if (!ch.inflight.empty() || &ch == &c) ++busy;
    const double bw =
        std::min(params_.engine_bw,
                 params_.aggregate_bw / static_cast<double>(std::max(1, busy)));
    const sim::Time done =
        start + params_.desc_startup_ns + sim::duration_for_bytes(len, bw);
    c.free_at = done;
    c.inflight.push_back(Desc{src, dst, len, cookie, done, fault.fail});
    c_descriptors_->add();
    c_bytes_->add(len);
    if (fault.fail) c_desc_failures_->add();
    h_queue_wait_->add(static_cast<std::uint64_t>(queue_wait));
    h_transfer_->add(static_cast<std::uint64_t>(done - start));
    if (attrib_key && engine_.attrib().enabled()) {
      engine_.attrib().add(attrib_key, obs::Wait::DmaQueueWait, queue_wait);
      engine_.attrib().add(attrib_key, obs::Wait::DmaTransfer, done - start);
    }
    engine_.timeline().record(track_base_ + chan, obs::kCatDma, start,
                              done - start);
    engine_.schedule_at(done, [this, chan] { complete_next(chan); });
    return cookie;
  }

  /// Splits [src, src+len) into `chunk`-sized descriptors (page-aligned
  /// chunking in the real driver); returns the last cookie.
  std::uint64_t submit_chunked(int chan, const std::uint8_t* src,
                               std::uint8_t* dst, std::size_t len,
                               std::size_t chunk, std::uint64_t attrib_key = 0) {
    if (len == 0) throw std::invalid_argument("submit_chunked: empty copy");
    if (chunk == 0 || chunk > len) chunk = len;
    std::uint64_t cookie = 0;
    for (std::size_t off = 0; off < len; off += chunk)
      cookie = submit(chan, src + off, dst + off, std::min(chunk, len - off),
                      attrib_key);
    return cookie;
  }

  /// Number of descriptors needed for a chunked submission.
  [[nodiscard]] static std::size_t chunk_count(std::size_t len,
                                               std::size_t chunk) {
    if (len == 0) return 0;
    if (chunk == 0 || chunk > len) chunk = len;
    return (len + chunk - 1) / chunk;
  }

  /// Highest completed cookie on `chan` (0 = nothing completed yet).
  /// Charging poll_cost() is the caller's responsibility.  A cookie that
  /// completed with an injected error still advances this watermark — the
  /// real hardware reports the error through the descriptor status word,
  /// modeled by range_failed() below.
  [[nodiscard]] std::uint64_t completed(int chan) const {
    return channel(chan).completed;
  }

  /// True if any descriptor with cookie in [first, last] on `chan` has
  /// failed or is destined to fail.  Deterministic before virtual
  /// completion: the error status is fixed at submission, exactly like
  /// the completion instant.  The caller (the driver) reacts by
  /// abandoning the handle and re-copying with the CPU.
  [[nodiscard]] bool range_failed(int chan, std::uint64_t first,
                                  std::uint64_t last) const {
    if (first == 0 || last < first) return false;
    const Channel& c = channel(chan);
    auto it = c.failed.lower_bound(first);
    if (it != c.failed.end() && *it <= last) return true;
    for (const Desc& d : c.inflight)
      if (d.failed && d.cookie >= first && d.cookie <= last) return true;
    return false;
  }

  /// Total failed descriptors recorded on `chan` so far.
  [[nodiscard]] std::size_t failed_count(int chan) const {
    std::size_t n = channel(chan).failed.size();
    for (const Desc& d : channel(chan).inflight)
      if (d.failed) ++n;
    return n;
  }

  /// Virtual time at which `cookie` will have completed.  Deterministic
  /// because the channel is a FIFO; used by the busy-poll loop and by the
  /// predicted-completion-sleep extension (paper Section VI).
  [[nodiscard]] sim::Time cookie_done_time(int chan, std::uint64_t cookie) const {
    const Channel& c = channel(chan);
    if (cookie <= c.completed) return engine_.now();
    for (const Desc& d : c.inflight)
      if (d.cookie == cookie) return d.done_at;
    throw std::logic_error("IoatEngine: unknown cookie");
  }

  /// Time at which the channel becomes idle.
  [[nodiscard]] sim::Time drain_time(int chan) const {
    const Channel& c = channel(chan);
    return std::max(engine_.now(), c.free_at);
  }

  [[nodiscard]] bool idle(int chan) const {
    return channel(chan).inflight.empty();
  }

  /// Round-robin channel selection; the paper assigns one channel per
  /// message and relies on concurrent messages to use all four.
  [[nodiscard]] int pick_channel() {
    const int c = rr_next_;
    rr_next_ = (rr_next_ + 1) % params_.num_channels;
    return c;
  }

  [[nodiscard]] const sim::Counters& counters() const { return counters_; }

  /// First timeline track of this engine's channels (obs::dma_track of
  /// the owning node); set by Node so multi-node timelines do not collide.
  void set_track_base(int base) { track_base_ = base; }
  [[nodiscard]] int track_base() const { return track_base_; }

 private:
  struct Desc {
    const std::uint8_t* src;
    std::uint8_t* dst;
    std::size_t len;
    std::uint64_t cookie;
    sim::Time done_at;
    bool failed = false;
  };

  struct Channel {
    std::deque<Desc> inflight;
    std::set<std::uint64_t> failed;  // cookies completed with error status
    sim::Time free_at = 0;
    std::uint64_t next_cookie = 1;
    std::uint64_t completed = 0;
  };

  Channel& channel(int chan) {
    if (chan < 0 || chan >= params_.num_channels)
      throw std::out_of_range("IoatEngine: bad channel");
    return channels_[static_cast<std::size_t>(chan)];
  }
  const Channel& channel(int chan) const {
    return const_cast<IoatEngine*>(this)->channel(chan);
  }

  void complete_next(int chan) {
    OMX_WALL_ZONE("dma.complete");
    Channel& c = channel(chan);
    if (c.inflight.empty())
      throw std::logic_error("IoatEngine: completion with empty queue");
    Desc d = c.inflight.front();
    c.inflight.pop_front();
    // A failed descriptor moves no bytes — the error is latched in the
    // status word (the `failed` set) for the driver's fallback path.
    if (d.failed)
      c.failed.insert(d.cookie);
    else if (d.len)
      std::memcpy(d.dst, d.src, d.len);
    c.completed = d.cookie;
  }

  sim::Engine& engine_;
  IoatParams params_;
  DmaFaultInjector* faults_ = nullptr;
  std::vector<Channel> channels_;
  int rr_next_ = 0;
  sim::Counters counters_;
  obs::Counter* c_descriptors_ = nullptr;
  obs::Counter* c_bytes_ = nullptr;
  obs::Counter* c_desc_failures_ = nullptr;
  obs::Counter* c_stalls_ = nullptr;
  obs::Counter* c_stall_ns_ = nullptr;
  obs::Histogram* h_queue_wait_ = nullptr;
  obs::Histogram* h_transfer_ = nullptr;
  int track_base_ = obs::dma_track(0, 0);
};

}  // namespace openmx::dma
