#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

namespace openmx::core {

/// One segment of a vectorial (iovec-style) application buffer, as in
/// mx_isend's segment list.
struct IoVec {
  std::uint8_t* base = nullptr;
  std::size_t len = 0;
};

/// A scatter/gather view over an application buffer.
///
/// Highly-vectorial buffers are the case the paper's Section IV-A calls
/// out: every copy is split at segment (and page) boundaries, so small
/// segments inflate the number of I/OAT descriptors per fragment and can
/// push a copy under the offload-profitability threshold.
class SegList {
 public:
  SegList() = default;

  /// Contiguous buffer as a single segment.
  SegList(void* base, std::size_t len) {
    if (len) segs_.push_back(IoVec{static_cast<std::uint8_t*>(base), len});
    total_ = len;
  }

  SegList(const IoVec* segs, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      if (segs[i].len == 0) continue;
      segs_.push_back(segs[i]);
      total_ += segs[i].len;
    }
  }

  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }
  [[nodiscard]] std::size_t segment_count() const { return segs_.size(); }

  /// Calls `fn(ptr, len)` for each contiguous piece of [offset, offset+n),
  /// clipped to the list's extent.
  template <typename F>
  void for_pieces(std::size_t offset, std::size_t n, F&& fn) const {
    std::size_t pos = 0;
    for (const IoVec& s : segs_) {
      if (n == 0) break;
      const std::size_t seg_end = pos + s.len;
      if (seg_end > offset) {
        const std::size_t in_seg = offset - pos;
        const std::size_t take = std::min(n, s.len - in_seg);
        fn(s.base + in_seg, take);
        offset += take;
        n -= take;
      }
      pos = seg_end;
    }
  }

  /// Scatters [src, src+n) into the list at `offset`; returns bytes
  /// actually written (clipped at the end of the list).
  std::size_t write(std::size_t offset, const std::uint8_t* src,
                    std::size_t n) const {
    std::size_t written = 0;
    for_pieces(offset, n, [&](std::uint8_t* p, std::size_t len) {
      std::memcpy(p, src + written, len);
      written += len;
    });
    return written;
  }

  /// Gathers [offset, offset+n) from the list into dst; returns bytes read.
  std::size_t read(std::size_t offset, std::uint8_t* dst,
                   std::size_t n) const {
    std::size_t got = 0;
    for_pieces(offset, n, [&](std::uint8_t* p, std::size_t len) {
      std::memcpy(dst + got, p, len);
      got += len;
    });
    return got;
  }

  /// Length of the smallest contiguous piece in [offset, offset+n); the
  /// offload-threshold check compares this against ioat_min_frag.
  [[nodiscard]] std::size_t min_piece(std::size_t offset,
                                      std::size_t n) const {
    std::size_t m = 0;
    bool any = false;
    for_pieces(offset, n, [&](std::uint8_t*, std::size_t len) {
      m = any ? std::min(m, len) : len;
      any = true;
    });
    return any ? m : 0;
  }

  /// Number of DMA descriptors needed to copy [offset, offset+n): one per
  /// piece per `page` bytes (the hardware takes physically contiguous
  /// chunks only).
  [[nodiscard]] std::size_t piece_count(std::size_t offset, std::size_t n,
                                        std::size_t page) const {
    std::size_t count = 0;
    for_pieces(offset, n, [&](std::uint8_t*, std::size_t len) {
      count += (len + page - 1) / page;
    });
    return count;
  }

  /// Clipped byte count available in [offset, offset+n).
  [[nodiscard]] std::size_t clipped(std::size_t offset, std::size_t n) const {
    if (offset >= total_) return 0;
    return std::min(n, total_ - offset);
  }

  /// The list restricted to its first `n` bytes (for truncated pulls).
  [[nodiscard]] SegList prefix(std::size_t n) const {
    SegList out;
    for_pieces(0, n, [&](std::uint8_t* p, std::size_t len) {
      out.segs_.push_back(IoVec{p, len});
      out.total_ += len;
    });
    return out;
  }

  /// Base address of the first segment (registration-cache key).
  [[nodiscard]] const void* first_base() const {
    return segs_.empty() ? nullptr : segs_.front().base;
  }

 private:
  std::vector<IoVec> segs_;
  std::size_t total_ = 0;
};

/// Walks the piecewise intersection of two segment lists: calls
/// `fn(src_ptr, dst_ptr, len)` for each maximal run contiguous in both.
template <typename F>
void for_piece_pairs(const SegList& src, const SegList& dst, std::size_t n,
                     F&& fn) {
  std::vector<IoVec> s, d;
  src.for_pieces(0, n, [&](std::uint8_t* p, std::size_t len) {
    s.push_back(IoVec{p, len});
  });
  dst.for_pieces(0, n, [&](std::uint8_t* p, std::size_t len) {
    d.push_back(IoVec{p, len});
  });
  std::size_t si = 0, di = 0, so = 0, dof = 0;
  while (si < s.size() && di < d.size()) {
    const std::size_t take = std::min(s[si].len - so, d[di].len - dof);
    fn(s[si].base + so, d[di].base + dof, take);
    so += take;
    dof += take;
    if (so == s[si].len) {
      ++si;
      so = 0;
    }
    if (dof == d[di].len) {
      ++di;
      dof = 0;
    }
  }
}

}  // namespace openmx::core
