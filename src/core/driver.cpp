#include "core/driver.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

#include "obs/wallprof.hpp"

namespace openmx::core {

namespace {
constexpr std::size_t kPage = 4096;

/// Retransmission backoff: double the timeout per consecutive fruitless
/// retry, capped at 64x.  Congestion, not loss, is the usual cause of a
/// quiet period, and under many concurrent multi-megabyte pulls the
/// service time of one block can legitimately reach milliseconds; an
/// aggressive fixed timer would melt the wire with duplicates.
openmx::sim::Time backoff(openmx::sim::Time base, int retries) {
  const int shift = retries < 6 ? retries : 6;
  return base << shift;
}

std::size_t frag_count_for(std::size_t len, std::size_t frag) {
  return len == 0 ? 1 : (len + frag - 1) / frag;
}
}  // namespace

/// Cost + deferred side effects of one bottom-half handler invocation.
/// Handlers mutate protocol state immediately (the core is serialized, so
/// nothing else can observe intermediate state), accumulate the CPU time
/// the work costs, and defer externally visible actions — data movement,
/// event-ring writes, frame transmissions — to the end of that time.
struct Driver::BhCtx {
  sim::Time cost = 0;
  std::vector<std::function<void()>> effects;

  void effect(std::function<void()> fn) { effects.push_back(std::move(fn)); }
};

Driver::Driver(Node& node, OmxConfig config)
    : node_(node), config_(config), regcache_(config.regcache) {
  node_.nic().set_rx_callback([this](net::Skbuff skb) { rx(std::move(skb)); });
  // Intern the hot trace-event names and counter keys once; the per-packet
  // and per-descriptor paths below then touch no string-keyed containers.
  auto& tr = node_.engine().trace();
  tid_wire_tx_ = tr.intern_event("wire.tx");
  tid_pull_start_ = tr.intern_event("pull.start");
  tid_pull_done_ = tr.intern_event("pull.done");
  c_pulls_started_ = &counters_.counter("driver.pulls_started");
  c_pulls_finished_ = &counters_.counter("driver.pulls_finished");
  c_pull_reqs_ = &counters_.counter("driver.pull_reqs");
  c_pull_replies_ = &counters_.counter("driver.pull_replies");
  c_large_ioat_bytes_ = &counters_.counter("driver.large_ioat_bytes");
  c_large_memcpy_bytes_ = &counters_.counter("driver.large_memcpy_bytes");
  c_medium_overlap_bytes_ = &counters_.counter("driver.medium_overlap_bytes");
  c_medium_ioat_bytes_ = &counters_.counter("driver.medium_ioat_bytes");
  c_eager_sent_ = &counters_.counter("driver.eager_sent");
  c_nacks_sent_ = &counters_.counter("driver.nacks_sent");
  c_cleanup_runs_ = &counters_.counter("driver.cleanup_runs");
  c_csum_drops_ = &counters_.counter("driver.csum_drops");
  c_dma_faults_ = &counters_.counter("driver.dma_faults");
  c_dma_fallback_bytes_ = &counters_.counter("driver.dma_fallback_bytes");
  h_pull_ns_ = &counters_.histogram("driver.pull_ns");
  if (config_.autotune_thresholds) autotune_thresholds();
}

DriverEndpoint& Driver::open_endpoint(std::uint16_t id) {
  auto& slot = endpoints_[id];
  if (!slot) slot = std::make_unique<DriverEndpoint>(node_.id(), id);
  return *slot;
}

DriverEndpoint* Driver::find_endpoint(std::uint16_t id) {
  auto it = endpoints_.find(id);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

void Driver::transmit(Addr src_ep_addr, Addr dst, std::shared_ptr<OmxPkt> pkt,
                      std::size_t data_bytes) {
  pkt->src_ep = src_ep_addr.endpoint;
  pkt->dst_ep = dst.endpoint;
  // Typed fast path: no string is built per frame; a0 packs the packet
  // type and destination address, a1 carries the payload size.
  node_.engine().trace().event(
      node_.engine().now(), node_.id(), tid_wire_tx_,
      (static_cast<std::uint64_t>(pkt->type) << 32) |
          (static_cast<std::uint64_t>(static_cast<std::uint16_t>(dst.node))
           << 16) |
          dst.endpoint,
      data_bytes);
  net::Frame f;
  f.src_node = node_.id();
  f.dst_node = dst.node;
  f.wire_bytes = wire_bytes_for(data_bytes);
  // Wire checksum: injected corruption flips the frame's copy, and the
  // receiver's recompute in rx() catches it like real payload damage.
  f.csum = pkt_checksum(*pkt);
  f.payload = std::move(pkt);
  node_.network().transmit(std::move(f));
}

void Driver::push_event(DriverEndpoint& ep, Event ev) {
  ep.events_.push_back(std::move(ev));
  // Waking a sleeping library thread goes through the scheduler.
  ep.waitq_.wake_all(node_.params().costs.lib_wakeup_ns);
}

bool Driver::offload_large(std::size_t msg_len, std::size_t frag_len) const {
  return config_.ioat_large && !config_.ignore_bh_copy && !config_.native_mx &&
         msg_len >= config_.ioat_min_msg && frag_len >= config_.ioat_min_frag;
}

sim::Time Driver::bh_copy_cost(std::size_t len, std::size_t chunk) const {
  // Large-message destinations are cold application buffers; the copy runs
  // uncontended only when the NIC is not streaming further fragments in.
  const bool contended =
      node_.bus().nic_dma_active(node_.engine().now());
  return node_.params().memcpy_model.duration(len, std::min(chunk, kPage),
                                              0.0, contended);
}

sim::Time Driver::pin_cost_sync(const SegList& segs) {
  // Registration of a vectorial region: keyed on (first base, total), one
  // page walk per page regardless of the segment layout.
  return pin_cost_sync(segs.first_base(), segs.total());
}

sim::Time Driver::pin_cost_sync(const void* buf, std::size_t len) {
  if (config_.native_mx || len == 0) {
    // MX also pins, with comparable cost; keep the model identical.
  }
  if (regcache_.lookup_or_insert(buf, len)) return 0;
  const sim::Time full = node_.params().pin_model.cost(len);
  if (!config_.overlap_registration || len <= 64 * sim::KiB) return full;
  // Overlap-registration extension (Section V): pin the first pull block's
  // worth synchronously; the rest proceeds while the rendezvous round-trip
  // and the first blocks are in flight (it occupies the same core, which
  // is idle while the thread sleeps in the wait loop).
  const sim::Time head = node_.params().pin_model.cost(64 * sim::KiB);
  const sim::Time rest = full - head;
  // Charged as driver time concurrent with the transfer.
  counters_.add("driver.overlap_pin_ns", static_cast<std::uint64_t>(rest));
  return head;
}

std::size_t Driver::pending_offload_skbuffs() const {
  std::size_t n = 0;
  for (const auto& [h, p] : pulls_) n += p->pending.size();
  return n;
}

void Driver::autotune_thresholds() {
  // Section VI: benchmark memcpy and I/OAT at startup and derive the
  // thresholds instead of hardcoding the empirical 1 kB / 64 kB.
  const auto& mm = node_.params().memcpy_model;
  const auto& io = node_.ioat().params();
  std::size_t min_frag = 256;
  for (std::size_t s = 256; s <= 16 * sim::KiB; s *= 2) {
    const sim::Time ioat_t = io.submit_ns + io.desc_startup_ns +
                             sim::duration_for_bytes(s, io.engine_bw);
    const sim::Time mem_t = mm.duration(s, s, 0.0, true);
    if (ioat_t < mem_t) {
      min_frag = s;
      break;
    }
    min_frag = s * 2;
  }
  config_.ioat_min_frag = min_frag;
  // A message must amortize at least one pull block of submissions plus
  // the final drain; twice the eager threshold is where overlap can win.
  config_.ioat_min_msg = std::max<std::size_t>(2 * config_.eager_max,
                                               8 * config_.frag_payload);
  counters_.add("driver.autotune_min_frag", min_frag);
  counters_.add("driver.autotune_min_msg", config_.ioat_min_msg);
}

// --------------------------------------------------------------------
// Send commands (library/syscall context)
// --------------------------------------------------------------------

void Driver::cmd_send_eager(DriverEndpoint& ep, const SegList& segs,
                            Addr dst, std::uint64_t match,
                            std::uint64_t request_id) {
  const std::uint32_t seq = next_eager_id_++;

  EagerTx tx;
  tx.ep = &ep;
  tx.segs = segs;
  tx.len = segs.total();
  tx.dst = dst;
  tx.match = match;
  tx.msg_seq = seq;
  tx.request_id = request_id;
  auto it = eager_tx_.emplace(seq, std::move(tx)).first;

  send_eager_frags(it->second);
  c_eager_sent_->add();
  arm_eager_timer(seq);
}

void Driver::send_eager_frags(const EagerTx& t) {
  const std::size_t frag = config_.frag_payload;
  const std::size_t nfrags = frag_count_for(t.len, frag);
  for (std::size_t i = 0; i < nfrags; ++i) {
    auto pkt = std::make_shared<EagerFragPkt>();
    const std::size_t off = i * frag;
    const std::size_t n = std::min(frag, t.len - off);
    pkt->match_info = t.match;
    pkt->msg_seq = t.msg_seq;
    pkt->msg_len = static_cast<std::uint32_t>(t.len);
    pkt->frag_idx = static_cast<std::uint16_t>(i);
    pkt->frag_count = static_cast<std::uint16_t>(nfrags);
    pkt->offset = static_cast<std::uint32_t>(off);
    pkt->data.resize(n);
    t.segs.read(off, pkt->data.data(), n);
    transmit(t.ep->addr(), t.dst, std::move(pkt), n);
  }
}

void Driver::arm_eager_timer(std::uint32_t seq) {
  auto it = eager_tx_.find(seq);
  if (it == eager_tx_.end()) return;
  it->second.timer = node_.engine().schedule_cancellable(
      backoff(config_.retrans_timeout, it->second.retries), [this, seq] {
        auto e = eager_tx_.find(seq);
        if (e == eager_tx_.end()) return;
        if (++e->second.retries > config_.max_retries) {
          // Peer unreachable: report a failed completion (as the real
          // stack's timeout handler eventually must).  This is a fatal
          // path for the message, so fire the postmortem hook — the
          // reason names the message so omx_postmortem can match it to
          // the flight-recorder tail.
          char why[96];
          std::snprintf(why, sizeof why,
                        "eager send retries exhausted seq=%u len=%u node=%d",
                        seq, static_cast<unsigned>(e->second.len),
                        node_.id());
          node_.engine().panic(why);
          counters_.add("driver.aborted_sends");
          Event ev;
          ev.type = EvType::SendDone;
          ev.request_id = e->second.request_id;
          ev.failed = true;
          DriverEndpoint* ep2 = e->second.ep;
          eager_tx_.erase(e);
          push_event(*ep2, std::move(ev));
          return;
        }
        counters_.add("driver.eager_retransmits");
        const std::size_t nf =
            frag_count_for(e->second.len, config_.frag_payload);
        const sim::Time cost =
            config_.native_mx
                ? node_.params().costs.mx_bh_ns
                : static_cast<sim::Time>(nf) *
                      (node_.params().costs.skb_alloc_ns +
                       node_.params().costs.tx_doorbell_ns);
        node_.machine().submit_fixed(
            node_.nic().bh_core(), cpu::Cat::BottomHalf, cost, [this, seq] {
              auto e2 = eager_tx_.find(seq);
              if (e2 == eager_tx_.end()) return;
              send_eager_frags(e2->second);
              arm_eager_timer(seq);
            });
      });
}

void Driver::cmd_send_rndv(DriverEndpoint& ep, const SegList& segs,
                           Addr dst, std::uint64_t match,
                           std::uint64_t request_id) {
  const std::uint32_t handle = next_handle_++;
  const std::uint32_t seq = next_eager_id_++;
  SendRegion r;
  r.handle = handle;
  r.ep = &ep;
  r.segs = segs;
  r.len = segs.total();
  r.dst = dst;
  r.match = match;
  r.msg_seq = seq;
  r.request_id = request_id;
  send_regions_.emplace(handle, std::move(r));

  auto pkt = std::make_shared<RndvPkt>();
  pkt->match_info = match;
  pkt->msg_seq = seq;
  pkt->msg_len = static_cast<std::uint32_t>(segs.total());
  pkt->src_handle = handle;
  transmit(ep.addr(), dst, std::move(pkt), 0);
  counters_.add("driver.rndv_sent");

  // The rendezvous is re-announced until the receiver acknowledges the
  // full pull; the receiver dedups (and re-acks if it already finished).
  arm_rndv_timer(handle);
}

void Driver::cmd_send_local(DriverEndpoint& ep, const SegList& segs,
                            Addr dst, std::uint64_t match,
                            std::uint64_t request_id) {
  DriverEndpoint* dep = find_endpoint(dst.endpoint);
  if (!dep) throw std::logic_error("cmd_send_local: no such endpoint");
  const std::uint32_t handle = next_handle_++;
  const std::uint32_t seq = next_eager_id_++;
  LocalMsg m;
  m.handle = handle;
  m.src_ep = &ep;
  m.segs = segs;
  m.len = segs.total();
  m.request_id = request_id;
  local_msgs_.emplace(handle, m);
  counters_.add("driver.local_sent");

  Event ev;
  ev.type = EvType::LocalMsg;
  ev.src = ep.addr();
  ev.match_info = match;
  ev.msg_seq = seq;
  ev.msg_len = static_cast<std::uint32_t>(segs.total());
  ev.local_handle = handle;
  push_event(*dep, std::move(ev));
}

std::size_t Driver::cmd_local_copy(sim::SimThread& thread, int core,
                                   std::uint32_t local_handle,
                                   const SegList& dst) {
  auto it = local_msgs_.find(local_handle);
  if (it == local_msgs_.end())
    throw std::logic_error("cmd_local_copy: unknown handle");
  LocalMsg m = it->second;
  const std::size_t n = std::min(m.len, dst.total());
  const auto& costs = node_.params().costs;
  auto& machine = node_.machine();

  const bool use_ioat = config_.ioat_shm && !config_.native_mx &&
                        n >= config_.ioat_shm_min_msg &&
                        std::min(m.segs.min_piece(0, n),
                                 dst.min_piece(0, n)) >= config_.ioat_min_frag;
  if (use_ioat && n > 0) {
    auto& ioat = node_.ioat();
    // One channel per message by default; channels_per_msg > 1 stripes
    // the copy round-robin across channels ([22]: up to +40 %, bounded by
    // the chipset's aggregate memory bandwidth).
    const int nch =
        std::min(std::max(1, config_.channels_per_msg), ioat.num_channels());
    std::vector<int> chans;
    for (int i = 0; i < nch; ++i) chans.push_back(ioat.pick_channel());
    std::vector<std::uint64_t> cookies(static_cast<std::size_t>(nch), 0);
    std::vector<std::uint64_t> firsts(static_cast<std::size_t>(nch), 0);
    std::size_t nchunks = 0;
    int slot = 0;
    // The engine starts draining descriptors while the CPU is still
    // submitting the rest (per-descriptor engine time exceeds the 350 ns
    // submission cost, so the queue never starves).
    for_piece_pairs(
        m.segs, dst, n,
        [&](const std::uint8_t* sp, std::uint8_t* dp, std::size_t len) {
          for (std::size_t off = 0; off < len; off += kPage) {
            const std::size_t take = std::min(kPage, len - off);
            const auto i = static_cast<std::size_t>(slot);
            cookies[i] = ioat.submit(chans[i], sp + off, dp + off, take);
            if (!firsts[i]) firsts[i] = cookies[i];
            slot = (slot + 1) % nch;
            ++nchunks;
          }
        });
    machine.thread_advance(thread, core, ioat.submit_cost(nchunks),
                           cpu::Cat::DriverSyscall);
    sim::Time done = 0;
    for (std::size_t i = 0; i < cookies.size(); ++i)
      if (cookies[i])
        done = std::max(done, ioat.cookie_done_time(chans[i], cookies[i]));
    const sim::Time now = node_.engine().now();
    if (done > now) {
      if (config_.sleep_sync_copy) {
        // Section VI extension: predicted-completion sleep instead of
        // busy-polling (the hardware cannot interrupt).
        node_.engine().schedule_at(done, [&thread] { thread.wake(); });
        thread.pause();
      } else {
        machine.thread_advance(thread, core, done - now,
                               cpu::Cat::DriverSyscall);
      }
    }
    machine.thread_advance(thread, core,
                           ioat.poll_cost() * static_cast<sim::Time>(nch),
                           cpu::Cat::DriverSyscall);
    bool any_failed = false;
    for (std::size_t i = 0; i < cookies.size(); ++i)
      if (cookies[i] && ioat.range_failed(chans[i], firsts[i], cookies[i]))
        any_failed = true;
    if (any_failed) {
      // Some descriptors completed with error status and moved no bytes.
      // The chunks are interleaved across channels, so simply redo the
      // whole copy with the CPU — byte-for-byte idempotent over the
      // chunks that did land.
      c_dma_faults_->add();
      c_dma_fallback_bytes_->add(n);
      const sim::Time redo =
          node_.params().memcpy_model.duration(n, kPage, 0.0, false);
      machine.thread_advance(thread, core, redo, cpu::Cat::DriverSyscall);
      OMX_WALL_ZONE("driver.copy");
      for_piece_pairs(m.segs, dst, n,
                      [&](const std::uint8_t* sp, std::uint8_t* dp,
                          std::size_t len) { std::memcpy(dp, sp, len); });
    }
    counters_.add("driver.shm_ioat_bytes", n);
  } else if (n > 0) {
    // Single processor copy between the two address spaces.  Runs at
    // shared-L2 speed when the source data is resident in this core's
    // cache domain (producer on the same subchip), memory speed otherwise.
    auto& cache = node_.cache_for_core(core);
    double hf = cache.hit_fraction(m.segs.first_base(), n);
    // The copy itself streams source reads and destination write-allocates
    // through the same cache (2n bytes of footprint): beyond half the
    // cache size the resident source is evicted before it is read, which
    // is the Figure 10 cliff above ~1-2 MB messages.
    const double cap =
        static_cast<double>(cache.capacity_pages() * mem::CacheModel::kPageSize);
    const double usable =
        n == 0 ? 1.0
               : std::clamp((cap - static_cast<double>(n)) /
                                static_cast<double>(n),
                            0.0, 1.0);
    hf *= usable;
    const auto& c = costs;
    const double bw = hf * c.shm_cached_bw + (1.0 - hf) * c.shm_uncached_bw;
    const sim::Time dur = sim::duration_for_bytes(n, bw);
    machine.thread_advance(thread, core, dur, cpu::Cat::DriverSyscall);
    OMX_WALL_ZONE("driver.copy");
    for_piece_pairs(m.segs, dst, n,
                    [&](const std::uint8_t* sp, std::uint8_t* dp,
                        std::size_t len) {
                      std::memcpy(dp, sp, len);
                      cache.touch(sp, len);
                      cache.touch(dp, len);
                    });
    counters_.add("driver.shm_memcpy_bytes", n);
  }

  // Completion events: the sender learns its buffer is free.
  Event ev;
  ev.type = EvType::SendDone;
  ev.request_id = m.request_id;
  push_event(*m.src_ep, std::move(ev));
  local_msgs_.erase(local_handle);
  return n;
}

void Driver::cmd_pull(DriverEndpoint& ep, const SegList& segs, Addr src,
                      std::uint32_t src_handle, std::uint32_t msg_seq,
                      std::uint64_t request_id) {
  const std::uint32_t handle = next_handle_++;
  const std::size_t len = segs.total();
  auto ph = std::make_unique<PullHandle>();
  PullHandle& h = *ph;
  h.handle = handle;
  h.ep = &ep;
  h.segs = segs;
  h.len = len;
  h.src = src;
  h.src_handle = src_handle;
  h.msg_seq = msg_seq;
  h.request_id = request_id;
  h.frag_count = frag_count_for(len, config_.frag_payload);
  h.started_at = node_.engine().now();
  h.got.assign(h.frag_count, false);
  h.blocks_total = static_cast<std::uint32_t>(
      (h.frag_count + config_.pull_block_frags - 1) /
      static_cast<std::size_t>(config_.pull_block_frags));
  if (config_.ioat_large) {
    const int nch = std::max(1, config_.channels_per_msg);
    for (int i = 0; i < nch; ++i) h.channels.push_back(node_.ioat().pick_channel());
  }
  pulls_.emplace(handle, std::move(ph));
  c_pulls_started_->add();
  node_.engine().trace().event(node_.engine().now(), node_.id(),
                               tid_pull_start_, handle, len);
  // Open the message-lifecycle span: the pull command is the earliest
  // receive-side stamp a waterfall can anchor on.
  auto& spans = node_.engine().spans();
  if (spans.enabled())
    spans.begin(obs::span_key(node_.id(), handle), node_.id(), len);
  auto& attrib = node_.engine().attrib();
  if (attrib.enabled())
    attrib.begin(obs::span_key(node_.id(), handle), node_.id(), len);

  const int outstanding =
      std::min<int>(config_.pull_blocks_outstanding,
                    static_cast<int>(h.blocks_total));
  for (int b = 0; b < outstanding; ++b) send_pull_req(h, h.next_block++);
  arm_block_timer(h);
}

void Driver::send_pull_req(PullHandle& h, std::uint32_t block) {
  auto pkt = std::make_shared<PullReqPkt>();
  pkt->src_handle = h.src_handle;
  pkt->dst_handle = h.handle;
  pkt->frag_start = block * static_cast<std::uint32_t>(config_.pull_block_frags);
  pkt->frag_count = static_cast<std::uint32_t>(
      std::min<std::size_t>(static_cast<std::size_t>(config_.pull_block_frags),
                            h.frag_count - pkt->frag_start));
  transmit(h.ep->addr(), h.src, std::move(pkt), 0);
  c_pull_reqs_->add();
}

void Driver::arm_rndv_timer(std::uint32_t handle) {
  auto it = send_regions_.find(handle);
  if (it == send_regions_.end()) return;
  it->second.rndv_timer = node_.engine().schedule_cancellable(
      backoff(config_.retrans_timeout, it->second.retries), [this, handle] {
        auto it2 = send_regions_.find(handle);
        if (it2 == send_regions_.end()) return;
        SendRegion& r = it2->second;
        if (node_.engine().now() - r.last_activity <
            config_.retrans_timeout && r.first_pull_seen) {
          // The receiver is actively pulling: nothing is lost, the
          // transfer is just long.  Re-arm quietly.
          r.retries = 0;
          arm_rndv_timer(handle);
          return;
        }
        ++r.retries;
        // An unmatched rendezvous is a legitimate long-lived state (the
        // peer may post its receive much later), so re-announce without a
        // retry cap; a Nack or a failed LargeAck terminates the send.
        // Re-announce until the receiver acknowledges the whole pull:
        // while the pull is in progress the receiver ignores duplicates;
        // once finished it re-sends the (possibly lost) LargeAck.  This
        // keeps the sender live under any loss pattern.
        counters_.add("driver.rndv_retransmits");
        auto pkt = std::make_shared<RndvPkt>();
        pkt->match_info = r.match;
        pkt->msg_seq = r.msg_seq;
        pkt->msg_len = static_cast<std::uint32_t>(r.len);
        pkt->src_handle = r.handle;
        transmit(r.ep->addr(), r.dst, std::move(pkt), 0);
        arm_rndv_timer(handle);
      });
}

void Driver::arm_block_timer(PullHandle& h) {
  const std::uint32_t handle = h.handle;
  // TCP-style adaptive timeout: never fire faster than twice the observed
  // block service time, or concurrent transfers sharing the wire would
  // mistake queueing for loss and melt the link with duplicates.
  const sim::Time base =
      std::max(config_.retrans_timeout, 2 * h.srtt);
  h.block_timer = node_.engine().schedule_cancellable(
      backoff(base, h.retries), [this, handle] {
        auto it = pulls_.find(handle);
        if (it == pulls_.end()) return;
        PullHandle& p = *it->second;
        if (p.received != p.last_progress) {
          // Fragments arrived since the last fire: the link is alive,
          // just congested — re-requesting now would only amplify the
          // backlog with duplicates.  Re-arm quietly.
          p.last_progress = p.received;
          p.retries = 0;
          arm_block_timer(p);
          return;
        }
        if (++p.retries > config_.max_retries) {
          // Fatal for the message: dump the flight recorder before the
          // abort bookkeeping so the postmortem tail still shows the
          // stalled pull's last activity.
          char why[96];
          std::snprintf(why, sizeof why,
                        "pull retries exhausted handle=%u len=%zu node=%d",
                        p.handle, p.len, node_.id());
          node_.engine().panic(why);
          counters_.add("driver.aborted_pulls");
          Event ev;
          ev.type = EvType::LargeRecvDone;
          ev.request_id = p.request_id;
          ev.msg_len = static_cast<std::uint32_t>(p.len);
          ev.failed = true;
          DriverEndpoint* ep2 = p.ep;
          auto& flow2 = ep2->rx_flows_[flow_key(p.src)];
          flow2.aborted.insert(p.msg_seq);
          flow2.known_rndv.erase(p.msg_seq);
          // Best-effort notification; the sender's re-announcements pick
          // up a failed LargeAck from the aborted set if this one is lost.
          auto ack = std::make_shared<LargeAckPkt>();
          ack->src_handle = p.src_handle;
          ack->msg_seq = p.msg_seq;
          ack->failed = true;
          transmit(ep2->addr(), p.src, std::move(ack), 0);
          for (PendingSkb& ps : p.pending) ps.skb.release();
          pulls_.erase(it);
          push_event(*ep2, std::move(ev));
          return;
        }
        counters_.add("driver.pull_retransmits");
        // Re-request precisely the missing fragments of already-requested
        // blocks (whole-block re-requests amplify congestion into a
        // duplicate storm) and run the cleanup routine (Section III-B:
        // the routine is also invoked when the timeout expires).
        cleanup_pull(p);
        const std::size_t requested = std::min<std::size_t>(
            static_cast<std::size_t>(p.next_block) *
                static_cast<std::size_t>(config_.pull_block_frags),
            p.frag_count);
        std::size_t i = 0;
        while (i < requested) {
          if (p.got[i]) {
            ++i;
            continue;
          }
          // Coalesce a run of consecutive missing fragments into one
          // request.
          std::size_t j = i;
          while (j < requested && !p.got[j]) ++j;
          auto pkt = std::make_shared<PullReqPkt>();
          pkt->src_handle = p.src_handle;
          pkt->dst_handle = p.handle;
          pkt->frag_start = static_cast<std::uint32_t>(i);
          pkt->frag_count = static_cast<std::uint32_t>(j - i);
          transmit(p.ep->addr(), p.src, std::move(pkt), 0);
          counters_.add("driver.pull_rereqs");
          i = j;
        }
        arm_block_timer(p);
      });
}

void Driver::cleanup_pull(PullHandle& h) {
  if (h.pending.empty()) return;
  c_cleanup_runs_->add();
  for (int chan : h.channels) {
    const std::uint64_t done = node_.ioat().completed(chan);
    auto it = h.pending.begin();
    while (it != h.pending.end()) {
      if (it->chan == chan && it->cookie <= done) {
        // A descriptor of this fragment completed with error status: the
        // bytes never moved, so redo the copy with the CPU before the
        // skbuff (the only remaining copy of the data) is released.
        if (it->first_cookie &&
            node_.ioat().range_failed(chan, it->first_cookie, it->cookie)) {
          const auto& rp = it->skb.as<PullReplyPkt>();
          h.segs.write(rp.offset, rp.data.data(), rp.data.size());
          c_dma_faults_->add();
          c_dma_fallback_bytes_->add(rp.data.size());
        }
        it->skb.release();
        it = h.pending.erase(it);
      } else {
        ++it;
      }
    }
  }
}

// --------------------------------------------------------------------
// Receive path (bottom-half context)
// --------------------------------------------------------------------

void Driver::rx(net::Skbuff skb) {
  const int core = node_.nic().bh_core();
  if (skb.csum() != 0) {
    // Verify the wire checksum before dispatching; a mismatch means the
    // frame was damaged in flight.  Dropping it here turns corruption into
    // ordinary loss, handled by the retransmission machinery.  The skbuff
    // goes out of scope and returns its ring slot.
    const auto* pkt = dynamic_cast<const OmxPkt*>(skb.payload());
    if (pkt && pkt_checksum(*pkt) != skb.csum()) {
      c_csum_drops_->add();
      return;
    }
  }
  auto shared = std::make_shared<net::Skbuff>(std::move(skb));
  // Span stamp: the frame is in host memory now; everything after this is
  // host-side latency.  Only pull replies belong to a tracked message, and
  // the whole block is skipped unless spans or attribution were explicitly
  // enabled.  The attribution key rides the bottom-half work item so the
  // Machine can stamp its run-queue wait against the right message.
  auto& spans = node_.engine().spans();
  auto& attrib = node_.engine().attrib();
  std::uint64_t akey = 0;
  if (spans.enabled() || attrib.enabled()) {
    const auto* pkt = dynamic_cast<const OmxPkt*>(shared->payload());
    if (pkt && pkt->type == PktType::PullReply) {
      const auto& pr = static_cast<const PullReplyPkt&>(*pkt);
      if (pulls_.count(pr.dst_handle)) {
        const std::uint64_t key = obs::span_key(node_.id(), pr.dst_handle);
        if (spans.enabled())
          spans.mark(key, obs::Phase::WireArrival, node_.engine().now());
        if (attrib.enabled()) akey = key;
      }
    }
  }
  node_.machine().submit_keyed(
      core, cpu::Cat::BottomHalf, akey, [this, shared]() -> cpu::TaskResult {
        OMX_WALL_ZONE("driver.bh");
        BhCtx ctx;
        const auto* pkt = dynamic_cast<const OmxPkt*>(shared->payload());
        if (pkt) {
          switch (pkt->type) {
            case PktType::EagerFrag: bh_eager(ctx, *shared); break;
            case PktType::Rndv: bh_rndv(ctx, *shared); break;
            case PktType::PullReq: bh_pull_req(ctx, *shared); break;
            case PktType::PullReply: bh_pull_reply(ctx, *shared); break;
            case PktType::MsgAck: bh_msg_ack(ctx, *shared); break;
            case PktType::LargeAck: bh_large_ack(ctx, *shared); break;
            case PktType::Nack: bh_nack(ctx, *shared); break;
          }
        }
        auto effects = std::move(ctx.effects);
        return cpu::TaskResult{
            ctx.cost, [effects = std::move(effects)] {
              for (const auto& fn : effects) fn();
            }};
      });
}

void Driver::bh_eager(BhCtx& ctx, net::Skbuff& skb) {
  const auto& pkt = skb.as<EagerFragPkt>();
  const auto& costs = node_.params().costs;
  ctx.cost += config_.native_mx ? costs.mx_bh_ns : costs.bh_frag_ns;

  DriverEndpoint* ep = find_endpoint(pkt.dst_ep);
  const Addr src{skb.src_node(), pkt.src_ep};
  if (!ep) {
    // No such endpoint: fail the sender fast instead of letting it
    // retransmit into the void.
    auto nack = std::make_shared<NackPkt>();
    nack->msg_seq = pkt.msg_seq;
    const Addr self{node_.id(), pkt.dst_ep};
    c_nacks_sent_->add();
    ctx.effect([this, self, src, nack] { transmit(self, src, nack, 0); });
    return;
  }
  auto& flow = ep->rx_flows_[flow_key(src)];

  if (flow.completed.count(pkt.msg_seq)) {
    // Duplicate of an already-delivered message: just re-ack.
    ctx.cost += costs.bh_ack_ns;
    counters_.add("driver.eager_dup_reacks");
    auto ack = std::make_shared<MsgAckPkt>();
    ack->msg_seq = pkt.msg_seq;
    Addr ep_addr = ep->addr();
    ctx.effect([this, ep_addr, src, ack] { transmit(ep_addr, src, ack, 0); });
    return;
  }

  auto& rxs = flow.active[pkt.msg_seq];
  if (rxs.got.empty()) rxs.got.assign(pkt.frag_count, false);
  if (rxs.got[pkt.frag_idx]) {  // duplicate fragment
    counters_.add("driver.eager_dup_frags");
    return;
  }
  rxs.got[pkt.frag_idx] = true;
  ++rxs.received;

  const std::size_t n = pkt.data.size();
  Event ev;
  ev.type = EvType::EagerFrag;
  ev.src = src;
  ev.match_info = pkt.match_info;
  ev.msg_seq = pkt.msg_seq;
  ev.msg_len = pkt.msg_len;
  ev.frag_idx = pkt.frag_idx;
  ev.frag_count = pkt.frag_count;
  ev.offset = pkt.offset;

  const bool msg_complete = rxs.received == pkt.frag_count;

  // The Section VI extension: defer all events of a multi-fragment medium
  // message until the last fragment, which makes the per-fragment ring
  // copies asynchronous and overlappable, exactly like the large path.
  const bool overlap_medium =
      config_.ioat_medium_overlap && !config_.ignore_bh_copy &&
      !config_.native_mx && pkt.frag_count > 1 &&
      n >= config_.ioat_min_frag;

  // Copy into the statically pinned per-endpoint ring (Figure 2).  The
  // ring is small and constantly reused, so the copy runs warm; this is
  // exactly why *synchronous* I/OAT offload of these 4 KiB copies loses
  // (Section IV-C).
  if (overlap_medium && n > 0) {
    auto& ioat = node_.ioat();
    if (rxs.chan < 0) rxs.chan = ioat.pick_channel();
    ev.data.assign(n, 0);  // the ring slot the engine fills
    std::uint64_t cookie = 0;
    for (std::size_t off = 0; off < n; off += kPage)
      cookie = ioat.submit(rxs.chan, pkt.data.data() + off,
                           ev.data.data() + off, std::min(kPage, n - off));
    const std::size_t nchunks = dma::IoatEngine::chunk_count(n, kPage);
    ctx.cost += ioat.submit_cost(nchunks);
    rxs.pending.push_back(DriverEndpoint::EagerRx::PendingCopy{
        skb, cookie - nchunks + 1, cookie});
    rxs.held.push_back(std::move(ev));
    c_medium_overlap_bytes_->add(n);
  } else if (!config_.ignore_bh_copy && !config_.native_mx && n > 0) {
    if (config_.ioat_medium && n >= config_.ioat_min_frag) {
      auto& ioat = node_.ioat();
      const std::size_t nchunks = dma::IoatEngine::chunk_count(n, kPage);
      const sim::Time submit = ioat.submit_cost(nchunks);
      const sim::Time engine_time =
          static_cast<sim::Time>(nchunks) * ioat.params().desc_startup_ns +
          sim::duration_for_bytes(n, ioat.params().engine_bw);
      // Synchronous: submit, then busy-poll until the copy completed.
      ctx.cost += submit + engine_time + ioat.poll_cost();
      c_medium_ioat_bytes_->add(n);
      ev.data = pkt.data;
    } else {
      ctx.cost += sim::duration_for_bytes(n, costs.ring_copy_bw);
      ev.data = pkt.data;
    }
  } else {
    ev.data = pkt.data;
  }

  if (msg_complete) {
    // The overlapped-medium path waits here for every outstanding copy of
    // this message — the single-wait of Figure 6 applied to mediums.
    if (!rxs.pending.empty()) {
      auto& ioat = node_.ioat();
      const std::uint64_t last = rxs.pending.back().last;
      const sim::Time done = ioat.cookie_done_time(rxs.chan, last);
      const sim::Time busy_until = node_.engine().now() + ctx.cost;
      if (done > busy_until) ctx.cost += done - busy_until;
      ctx.cost += ioat.poll_cost();
      // An injected descriptor failure on any of this message's copies is
      // repaired here with a CPU copy of the affected fragment (the error
      // status is deterministic, so the cost can be charged now; the
      // bytes move in the deferred effect below).
      for (const auto& pc : rxs.pending) {
        if (pc.first &&
            ioat.range_failed(rxs.chan, pc.first, pc.last)) {
          const std::size_t flen = pc.skb.as<EagerFragPkt>().data.size();
          ctx.cost += sim::duration_for_bytes(flen, costs.ring_copy_bw);
          c_dma_faults_->add();
          c_dma_fallback_bytes_->add(flen);
        }
      }
    }
    ctx.cost += config_.native_mx ? 0 : costs.bh_ack_ns;
  }

  Addr ep_addr = ep->addr();
  const std::uint32_t seq = pkt.msg_seq;
  const bool deferred = overlap_medium;
  ctx.effect([this, ep, ev = std::move(ev), msg_complete, deferred, ep_addr,
              src, seq]() mutable {
    if (!deferred) push_event(*ep, std::move(ev));
    if (msg_complete) {
      auto& flow2 = ep->rx_flows_[flow_key(src)];
      auto it = flow2.active.find(seq);
      if (it != flow2.active.end()) {
        // Failed descriptors moved no bytes: redo those fragments' ring
        // copies with the CPU before the events become visible.
        auto& rxs2 = it->second;
        OMX_WALL_ZONE("driver.copy");
        for (std::size_t i = 0; i < rxs2.pending.size(); ++i) {
          const auto& pc = rxs2.pending[i];
          if (pc.first &&
              node_.ioat().range_failed(rxs2.chan, pc.first, pc.last)) {
            const auto& fp = pc.skb.as<EagerFragPkt>();
            std::memcpy(rxs2.held[i].data.data(), fp.data.data(),
                        fp.data.size());
          }
        }
        // Release the held events (in arrival order) and the skbuffs whose
        // copies have all completed by now.
        for (Event& held : rxs2.held) push_event(*ep, std::move(held));
        rxs2.pending.clear();
        flow2.active.erase(it);
      }
      flow2.completed.insert(seq);
      while (flow2.completed.size() > 4096)
        flow2.completed.erase(flow2.completed.begin());
      auto ack = std::make_shared<MsgAckPkt>();
      ack->msg_seq = seq;
      transmit(ep_addr, src, ack, 0);
    }
  });
}

void Driver::bh_rndv(BhCtx& ctx, net::Skbuff& skb) {
  const auto& pkt = skb.as<RndvPkt>();
  const auto& costs = node_.params().costs;
  ctx.cost += config_.native_mx ? costs.mx_bh_ns : costs.bh_frag_ns;

  DriverEndpoint* ep = find_endpoint(pkt.dst_ep);
  const Addr src{skb.src_node(), pkt.src_ep};
  if (!ep) {
    auto nack = std::make_shared<NackPkt>();
    nack->msg_seq = pkt.msg_seq;
    nack->src_handle = pkt.src_handle;
    const Addr self{node_.id(), pkt.dst_ep};
    c_nacks_sent_->add();
    ctx.effect([this, self, src, nack] { transmit(self, src, nack, 0); });
    return;
  }
  auto& flow = ep->rx_flows_[flow_key(src)];

  if (flow.completed.count(pkt.msg_seq)) {
    // We already pulled everything; the LargeAck must have been lost.
    auto ack = std::make_shared<LargeAckPkt>();
    ack->src_handle = pkt.src_handle;
    ack->msg_seq = pkt.msg_seq;
    Addr ep_addr = ep->addr();
    ctx.effect([this, ep_addr, src, ack] { transmit(ep_addr, src, ack, 0); });
    return;
  }
  if (flow.aborted.count(pkt.msg_seq)) {
    // The pull was given up on (dead link at the time); tell the sender.
    auto ack = std::make_shared<LargeAckPkt>();
    ack->src_handle = pkt.src_handle;
    ack->msg_seq = pkt.msg_seq;
    ack->failed = true;
    Addr ep_addr = ep->addr();
    ctx.effect([this, ep_addr, src, ack] { transmit(ep_addr, src, ack, 0); });
    return;
  }
  if (flow.known_rndv.count(pkt.msg_seq)) return;  // pull in progress
  flow.known_rndv.insert(pkt.msg_seq);
  while (flow.known_rndv.size() > 4096)
    flow.known_rndv.erase(flow.known_rndv.begin());

  Event ev;
  ev.type = EvType::RndvArrived;
  ev.src = src;
  ev.match_info = pkt.match_info;
  ev.msg_seq = pkt.msg_seq;
  ev.msg_len = pkt.msg_len;
  ev.local_handle = pkt.src_handle;  // sender-side handle to pull from
  ctx.effect([this, ep, ev = std::move(ev)]() mutable {
    push_event(*ep, std::move(ev));
  });
}

void Driver::bh_pull_req(BhCtx& ctx, net::Skbuff& skb) {
  const auto& pkt = skb.as<PullReqPkt>();
  const auto& costs = node_.params().costs;
  auto it = send_regions_.find(pkt.src_handle);
  if (it == send_regions_.end()) {
    ctx.cost += costs.bh_ack_ns;
    return;  // stale request for a finished send
  }
  SendRegion& r = it->second;
  r.first_pull_seen = true;
  r.retries = 0;  // receiver progress resets the give-up counter
  r.last_activity = node_.engine().now();

  // Servicing a block: attach the user pages to reply skbuffs and hand
  // them to the NIC — zero-copy on the send side (Section II-A).
  const std::size_t frag = config_.frag_payload;
  ctx.cost += config_.native_mx
                  ? costs.mx_bh_ns
                  : costs.bh_pullreq_ns +
                        static_cast<sim::Time>(pkt.frag_count) *
                            (costs.skb_alloc_ns + costs.tx_doorbell_ns);

  const Addr dst{skb.src_node(), pkt.src_ep};
  Addr ep_addr = r.ep->addr();
  const std::uint32_t dst_handle = pkt.dst_handle;
  const std::uint32_t start = pkt.frag_start;
  const std::uint32_t count = pkt.frag_count;
  const SegList segs = r.segs;
  const std::size_t len = r.len;
  ctx.effect([this, ep_addr, dst, dst_handle, start, count, segs, len, frag] {
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::size_t off = static_cast<std::size_t>(start + i) * frag;
      if (off >= len) break;
      const std::size_t n = std::min(frag, len - off);
      auto rep = std::make_shared<PullReplyPkt>();
      rep->dst_handle = dst_handle;
      rep->frag_idx = start + i;
      rep->offset = static_cast<std::uint32_t>(off);
      rep->data.resize(n);
      segs.read(off, rep->data.data(), n);
      transmit(ep_addr, dst, std::move(rep), n);
      c_pull_replies_->add();
    }
  });
}

void Driver::bh_pull_reply(BhCtx& ctx, net::Skbuff& skb) {
  const auto& pkt = skb.as<PullReplyPkt>();
  const auto& costs = node_.params().costs;
  const sim::Time cost0 = ctx.cost;
  ctx.cost += config_.native_mx ? costs.mx_bh_ns : costs.bh_frag_ns;

  auto it = pulls_.find(pkt.dst_handle);
  if (it == pulls_.end()) return;  // stale/duplicate after completion
  PullHandle& h = *it->second;
  if (pkt.frag_idx >= h.frag_count || h.got[pkt.frag_idx]) return;
  h.got[pkt.frag_idx] = true;
  ++h.received;

  auto& spans = node_.engine().spans();
  auto& attrib = node_.engine().attrib();
  const std::uint64_t skey = obs::span_key(node_.id(), h.handle);
  // Wait-state stamps: protocol execution charged so far is bottom-half
  // work; the copy paths below add their own categories.
  const bool att = attrib.enabled();
  const std::uint64_t akey = att ? skey : 0;
  if (att) attrib.add(skey, obs::Wait::BhExec, ctx.cost - cost0);
  if (spans.enabled()) {
    // first=entry of the first fragment's handler, last=end of this one
    // (the deferred mark runs when the charged core time has elapsed).
    spans.mark(skey, obs::Phase::BottomHalf, node_.engine().now());
    ctx.effect([this, skey] {
      node_.engine().spans().mark(skey, obs::Phase::BottomHalf,
                                  node_.engine().now());
    });
  }

  const std::size_t n = pkt.data.size();
  const std::size_t dst_off = pkt.offset;
  const std::uint8_t* src_bytes = pkt.data.data();
  const int bh_core = node_.nic().bh_core();

  // Vectorial receive buffers split this fragment at segment boundaries;
  // the offload threshold applies to the smallest resulting chunk
  // (Section IV-A: do not submit sub-kilobyte descriptors).
  bool do_offload = offload_large(h.len, n) &&
                    h.segs.min_piece(dst_off, n) >= config_.ioat_min_frag;
  if (do_offload && config_.cache_warm_head &&
      h.head_copied < config_.eager_max) {
    // Section V extension: copy the head of the message with memcpy so the
    // target application finds it warm in the shared cache; offload the
    // rest.  Only sensible when the app shares this core's L2 — the caller
    // configures the placement; we apply it unconditionally when enabled.
    do_offload = false;
    h.head_copied += n;
  }

  if (!config_.ignore_bh_copy && !config_.native_mx && n > 0) {
    if (do_offload) {
      auto& ioat = node_.ioat();
      const int chan =
          h.channels[static_cast<std::size_t>(h.next_channel_slot)];
      h.next_channel_slot =
          (h.next_channel_slot + 1) % static_cast<int>(h.channels.size());
      std::size_t nchunks = 0;
      std::uint64_t cookie = 0;
      std::size_t src_off = 0;
      h.segs.for_pieces(dst_off, n, [&](std::uint8_t* dp, std::size_t len) {
        cookie = ioat.submit_chunked(chan, src_bytes + src_off, dp, len,
                                     kPage, akey);
        nchunks += dma::IoatEngine::chunk_count(len, kPage);
        src_off += len;
      });
      // Cookies on one channel are consecutive within a single BH, so the
      // fragment's descriptors span exactly [cookie-nchunks+1, cookie].
      const std::uint64_t first_cookie = cookie - nchunks + 1;
      ctx.cost += ioat.submit_cost(nchunks);
      if (att) attrib.add(skey, obs::Wait::BhExec, ioat.submit_cost(nchunks));
      if (spans.enabled()) {
        spans.mark(skey, obs::Phase::IoatSubmit, node_.engine().now());
        // The channel is a FIFO, so this fragment's completion instant is
        // already known deterministically.
        spans.mark(skey, obs::Phase::DmaComplete,
                   ioat.cookie_done_time(chan, cookie));
      }
      if (config_.ioat_large_sync) {
        // Ablation: no overlap — busy-poll this fragment's completion
        // before releasing the core (what Figure 6 shows the paper's
        // design avoiding for all but the last fragment).
        const sim::Time done = ioat.cookie_done_time(chan, cookie);
        const sim::Time busy_until = node_.engine().now() + ctx.cost;
        if (done > busy_until) {
          ctx.cost += done - busy_until;
          if (att)
            attrib.add(skey, obs::Wait::DmaDrainWait, done - busy_until);
        }
        ctx.cost += ioat.poll_cost();
        if (att) attrib.add(skey, obs::Wait::BhExec, ioat.poll_cost());
      }
      h.pending.push_back(PendingSkb{skb, chan, cookie, first_cookie});
      c_large_ioat_bytes_->add(n);
    } else {
      const sim::Time copy_cost = bh_copy_cost(n, h.segs.min_piece(dst_off, n));
      ctx.cost += copy_cost;
      if (att) {
        // Separate the copy's execution time from the extra time lost to
        // memory-bus contention: the uncontended duration is what the
        // same copy would cost with the NIC quiescent.
        const sim::Time exec = node_.params().memcpy_model.duration(
            n, std::min(h.segs.min_piece(dst_off, n), kPage), 0.0, false);
        attrib.add(skey, obs::Wait::MemcpyExec, std::min(exec, copy_cost));
        if (copy_cost > exec)
          attrib.add(skey, obs::Wait::BusStall, copy_cost - exec);
      }
      net::Skbuff skb_copy = skb;
      const SegList segs = h.segs;
      const bool span_on = spans.enabled();
      ctx.effect([segs, dst_off, src_bytes, n, skb_copy, this, bh_core,
                  span_on, skey]() mutable {
        OMX_WALL_ZONE("driver.copy");
        segs.write(dst_off, src_bytes, n);
        segs.for_pieces(dst_off, n, [&](std::uint8_t* dp, std::size_t len) {
          node_.cache_for_core(bh_core).touch(dp, len);
        });
        skb_copy.release();
        // CPU copy lands the data now; on the offload path CopyOut is the
        // library-side drain, stamped in finish_pull instead.
        if (span_on)
          node_.engine().spans().mark(skey, obs::Phase::CopyOut,
                                      node_.engine().now());
      });
      c_large_memcpy_bytes_->add(n);
    }
  } else if (n > 0) {
    // Prediction mode / native MX: the data is placed without CPU cost.
    net::Skbuff skb_copy = skb;
    const SegList segs = h.segs;
    ctx.effect([segs, dst_off, src_bytes, n, skb_copy]() mutable {
      segs.write(dst_off, src_bytes, n);
      skb_copy.release();
    });
  }

  // Block bookkeeping: request the next block as soon as this one is
  // complete, and use the occasion to run the cleanup routine
  // (Section III-B: resources are freed when a new request is sent).
  const std::uint32_t block =
      pkt.frag_idx / static_cast<std::uint32_t>(config_.pull_block_frags);
  const std::size_t bstart =
      block * static_cast<std::size_t>(config_.pull_block_frags);
  const std::size_t bend = std::min(
      bstart + static_cast<std::size_t>(config_.pull_block_frags),
      h.frag_count);
  bool block_complete = true;
  for (std::size_t i = bstart; i < bend; ++i)
    if (!h.got[i]) block_complete = false;

  if (block_complete && h.next_block < h.blocks_total) {
    const std::uint32_t next = h.next_block++;
    ctx.cost += costs.skb_alloc_ns + costs.tx_doorbell_ns;
    if (att)
      attrib.add(skey, obs::Wait::BhExec,
                 costs.skb_alloc_ns + costs.tx_doorbell_ns);
    const std::uint32_t handle = h.handle;
    ctx.effect([this, handle, next] {
      auto it2 = pulls_.find(handle);
      if (it2 == pulls_.end()) return;
      if (config_.cleanup_on_block) cleanup_pull(*it2->second);
      PullHandle& ph = *it2->second;
      ph.retries = 0;  // progress resets the give-up counter
      const sim::Time now2 = node_.engine().now();
      if (ph.last_block_done)
        ph.srtt = ph.srtt ? (3 * ph.srtt + (now2 - ph.last_block_done)) / 4
                          : now2 - ph.last_block_done;
      ph.last_block_done = now2;
      send_pull_req(ph, next);
      // Progress resets the retransmission timer, as in any ARQ protocol;
      // otherwise multi-block transfers longer than the timeout would
      // trigger spurious re-requests.
      it2->second->block_timer.cancel();
      arm_block_timer(*it2->second);
    });
    if (!h.pending.empty()) {
      ctx.cost += node_.ioat().poll_cost();
      if (att) attrib.add(skey, obs::Wait::BhExec, node_.ioat().poll_cost());
    }
  }

  if (h.received == h.frag_count) finish_pull(ctx, h);
}

void Driver::finish_pull(BhCtx& ctx, PullHandle& h) {
  const auto& costs = node_.params().costs;
  // The last fragment's callback waits for the completion of every
  // outstanding asynchronous copy of this message (Section III-A), then
  // reports the single completion event to user-space.
  auto& spans = node_.engine().spans();
  auto& attrib = node_.engine().attrib();
  const bool att = attrib.enabled();
  const std::uint64_t skey = obs::span_key(node_.id(), h.handle);
  if (!h.pending.empty()) {
    auto& ioat = node_.ioat();
    sim::Time drain = node_.engine().now();
    for (const PendingSkb& p : h.pending)
      drain = std::max(drain, ioat.cookie_done_time(p.chan, p.cookie));
    const sim::Time busy_until = node_.engine().now() + ctx.cost;
    if (drain > busy_until) {
      ctx.cost += drain - busy_until;
      // The CPU blocks here until the slowest channel drains — this is
      // the serial DMA tail of the message, the one piece of DMA time
      // that cannot hide behind fragment ingress.
      if (att) attrib.add(skey, obs::Wait::DmaDrainWait, drain - busy_until);
    }
    const sim::Time polls =
        ioat.poll_cost() * static_cast<sim::Time>(h.channels.size());
    ctx.cost += polls;
    if (att) attrib.add(skey, obs::Wait::BhExec, polls);
    counters_.add("driver.drain_waits");
    // Descriptors that completed with error status moved no bytes; redo
    // those fragments with the CPU.  The error is latched at submission,
    // so the fallback cost is known now; the bytes move in the effect.
    for (const PendingSkb& p : h.pending) {
      if (p.first_cookie &&
          ioat.range_failed(p.chan, p.first_cookie, p.cookie)) {
        const std::size_t flen = p.skb.as<PullReplyPkt>().data.size();
        const sim::Time fb = bh_copy_cost(flen, flen);
        ctx.cost += fb;
        if (att) attrib.add(skey, obs::Wait::MemcpyExec, fb);
        c_dma_faults_->add();
        c_dma_fallback_bytes_->add(flen);
      }
    }
    // Offload path: the message data is fully in place once the slowest
    // channel drained — that instant is the copy-out point.
    if (spans.enabled()) spans.mark(skey, obs::Phase::CopyOut, drain);
  }
  ctx.cost += config_.native_mx ? 0 : costs.bh_ack_ns;
  if (att && !config_.native_mx)
    attrib.add(skey, obs::Wait::BhExec, costs.bh_ack_ns);

  const std::uint32_t handle = h.handle;
  ctx.effect([this, handle, skey] {
    auto it = pulls_.find(handle);
    if (it == pulls_.end()) return;
    PullHandle& p = *it->second;
    for (PendingSkb& ps : p.pending) {
      if (ps.first_cookie &&
          node_.ioat().range_failed(ps.chan, ps.first_cookie, ps.cookie)) {
        const auto& rp = ps.skb.as<PullReplyPkt>();
        p.segs.write(rp.offset, rp.data.data(), rp.data.size());
      }
      ps.skb.release();
    }
    p.pending.clear();
    p.block_timer.cancel();

    // Remember completion for rendezvous dedup / re-ack.
    auto& flow = p.ep->rx_flows_[flow_key(p.src)];
    flow.completed.insert(p.msg_seq);
    flow.known_rndv.erase(p.msg_seq);

    Event ev;
    ev.type = EvType::LargeRecvDone;
    ev.src = p.src;
    ev.msg_seq = p.msg_seq;
    ev.msg_len = static_cast<std::uint32_t>(p.len);
    ev.request_id = p.request_id;
    // Lets the library stamp the Notify phase when it dequeues the event.
    ev.local_handle = p.handle;
    push_event(*p.ep, std::move(ev));

    auto ack = std::make_shared<LargeAckPkt>();
    ack->src_handle = p.src_handle;
    ack->msg_seq = p.msg_seq;
    transmit(p.ep->addr(), p.src, std::move(ack), 0);
    c_pulls_finished_->add();
    node_.engine().trace().event(node_.engine().now(), node_.id(),
                                 tid_pull_done_, handle, p.len);
    h_pull_ns_->add(
        static_cast<std::uint64_t>(node_.engine().now() - p.started_at));
    auto& sp = node_.engine().spans();
    if (sp.enabled())
      // Driver-side notification; the library marks it again (later) when
      // the event ring is actually drained.
      sp.mark(skey, obs::Phase::Notify, node_.engine().now());
    pulls_.erase(it);
  });
}

void Driver::bh_msg_ack(BhCtx& ctx, net::Skbuff& skb) {
  const auto& pkt = skb.as<MsgAckPkt>();
  const auto& costs = node_.params().costs;
  ctx.cost += config_.native_mx ? costs.mx_bh_ns : costs.bh_ack_ns;
  auto it = eager_tx_.find(pkt.msg_seq);
  if (it == eager_tx_.end()) return;  // duplicate ack
  EagerTx& t = it->second;
  t.timer.cancel();
  Event ev;
  ev.type = EvType::SendDone;
  ev.request_id = t.request_id;
  DriverEndpoint* ep = t.ep;
  eager_tx_.erase(it);
  ctx.effect([this, ep, ev]() mutable { push_event(*ep, std::move(ev)); });
}

void Driver::bh_large_ack(BhCtx& ctx, net::Skbuff& skb) {
  const auto& pkt = skb.as<LargeAckPkt>();
  const auto& costs = node_.params().costs;
  ctx.cost += config_.native_mx ? costs.mx_bh_ns : costs.bh_ack_ns;
  auto it = send_regions_.find(pkt.src_handle);
  if (it == send_regions_.end()) return;  // duplicate ack
  SendRegion& r = it->second;
  r.rndv_timer.cancel();
  Event ev;
  ev.type = EvType::SendDone;
  ev.request_id = r.request_id;
  ev.failed = pkt.failed;
  if (pkt.failed) counters_.add("driver.aborted_sends");
  DriverEndpoint* ep = r.ep;
  send_regions_.erase(it);
  ctx.effect([this, ep, ev]() mutable { push_event(*ep, std::move(ev)); });
}

void Driver::bh_nack(BhCtx& ctx, net::Skbuff& skb) {
  const auto& pkt = skb.as<NackPkt>();
  ctx.cost += node_.params().costs.bh_ack_ns;
  if (pkt.src_handle) {
    auto it = send_regions_.find(pkt.src_handle);
    if (it == send_regions_.end()) return;
    it->second.rndv_timer.cancel();
    Event ev;
    ev.type = EvType::SendDone;
    ev.request_id = it->second.request_id;
    ev.failed = true;
    DriverEndpoint* ep = it->second.ep;
    send_regions_.erase(it);
    counters_.add("driver.aborted_sends");
    ctx.effect([this, ep, ev]() mutable { push_event(*ep, std::move(ev)); });
    return;
  }
  auto it = eager_tx_.find(pkt.msg_seq);
  if (it == eager_tx_.end()) return;
  it->second.timer.cancel();
  Event ev;
  ev.type = EvType::SendDone;
  ev.request_id = it->second.request_id;
  ev.failed = true;
  DriverEndpoint* ep = it->second.ep;
  eager_tx_.erase(it);
  counters_.add("driver.aborted_sends");
  ctx.effect([this, ep, ev]() mutable { push_event(*ep, std::move(ev)); });
}

}  // namespace openmx::core
