#pragma once

#include <cstdint>
#include <vector>

#include "core/wire.hpp"

namespace openmx::core {

/// Type of a completion event the driver reports to the user library
/// through the endpoint's shared event ring (Section II-A: "they return
/// the same events to the user-space library" for local and network
/// communication alike).
enum class EvType : std::uint8_t {
  EagerFrag,      // an eager fragment landed in the receive ring
  RndvArrived,    // a large-message rendezvous needs matching
  LargeRecvDone,  // all fragments of a pulled large message are in place
  SendDone,       // a send request completed (acked / copied)
  LocalMsg,       // an intra-node message awaits the one-copy syscall
};

/// One entry of the per-endpoint event ring.
///
/// For eager fragments, `data` models the statically pinned user-space
/// ring slot the bottom half copied the fragment into; the library's
/// second copy reads from here (Figure 2's small/medium path).
struct Event {
  EvType type{};
  Addr src;                        // remote (or local peer) endpoint
  std::uint64_t match_info = 0;
  std::uint32_t msg_seq = 0;
  std::uint32_t msg_len = 0;
  std::uint16_t frag_idx = 0;
  std::uint16_t frag_count = 1;
  std::uint32_t offset = 0;
  std::vector<std::uint8_t> data;  // eager: fragment bytes in the ring
  std::uint64_t request_id = 0;    // SendDone / LargeRecvDone correlation
  std::uint32_t local_handle = 0;  // LocalMsg: handle for cmd_local_copy
  bool failed = false;             // completion-with-error (peer unreachable)
};

}  // namespace openmx::core
