#pragma once

#include <cstdint>

#include "dma/ioat.hpp"
#include "mem/memcpy_model.hpp"
#include "mem/pinning.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"

namespace openmx::core {

/// Host-side per-operation costs of the Open-MX stack (and of the native
/// MX baseline), calibrated against the paper:
///  - a system call costs ~100 ns on recent Intel processors (footnote 1);
///  - the memcpy-based receive path saturates one 2.33 GHz core near
///    800 MiB/s on the 10 GbE link (Section II-B / Figure 3), which fixes
///    the per-fragment bottom-half budget around 5 us per 4 KiB fragment;
///  - the user-library share of receive CPU time is small (Figure 9).
struct OmxCosts {
  // --- user library ---
  sim::Time syscall_ns = 100;        // kernel entry/exit (paper footnote 1)
  sim::Time lib_call_ns = 120;       // request bookkeeping per isend/irecv
  sim::Time lib_event_ns = 150;      // fetching + matching one event
  sim::Time lib_wakeup_ns = 800;     // scheduler latency waking a sleeper

  // --- driver, syscall context ---
  sim::Time cmd_post_ns = 150;       // validating + queuing one command
  sim::Time skb_alloc_ns = 250;      // skbuff alloc + page attach per frame
  sim::Time tx_doorbell_ns = 100;    // handing a frame to the NIC driver

  // --- driver, bottom-half context ---
  sim::Time bh_frag_ns = 900;        // header decode, lookup, event write
  sim::Time bh_pullreq_ns = 500;     // servicing one pull request (sender)
  sim::Time bh_ack_ns = 300;         // processing an ack frame

  // The per-endpoint receive ring is small and constantly reused, so
  // copies into it stay warm in the receiving core's cache; this is why
  // offloading 4 KiB *synchronous* medium copies to I/OAT degrades
  // performance (Section IV-C) while offloading cold large-message copies
  // wins.
  double ring_copy_bw = 2.4 * static_cast<double>(sim::GiB);

  // --- intra-node (shared-memory) single-copy path, Section III-C ---
  // Effective process-to-process copy rates through the driver: both the
  // read and the write stream hit the same shared L2 when the processes
  // sit on one subchip (Figure 10: ~6 GiB/s below cache size), and drop to
  // memory speed across sockets (~1.2 GiB/s).
  double shm_cached_bw = 6.0 * static_cast<double>(sim::GiB);
  double shm_uncached_bw = 1.2 * static_cast<double>(sim::GiB);

  // --- native MX baseline (Myri-10G firmware does the work) ---
  sim::Time mx_pio_ns = 150;         // OS-bypass doorbell write
  sim::Time mx_event_ns = 120;       // NIC-written completion event fetch
  sim::Time mx_bh_ns = 200;          // tiny host-side interrupt work
};

/// Open-MX protocol and offload configuration.  One instance per node;
/// benchmarks flip these switches to produce the paper's A/B curves.
struct OmxConfig {
  // --- protocol constants ---
  std::size_t frag_payload = 4096;      // page-based fragments (Section II-B)
  std::size_t eager_max = 32 * sim::KiB;  // rendezvous threshold (Figure 10)
  int pull_block_frags = 8;             // fragments per pull block
  int pull_blocks_outstanding = 2;      // "two pipelined blocks of 8" (fn 3)
  sim::Time retrans_timeout = 500 * sim::kMicrosecond;
  int max_retries = 16;  // give up and report failure after this many

  // --- I/OAT offload switches (the paper's contribution) ---
  bool ioat_large = false;   // async offload of large-fragment copies (III-A)
  bool ioat_medium = false;  // sync offload of medium copies (III-C, loses)
  // Section VI future work, implemented here: report a single completion
  // per medium message (matching effectively moved into the driver) so
  // multi-fragment medium copies overlap on the DMA engine exactly like
  // large-message fragments do.
  bool ioat_medium_overlap = false;
  bool ioat_shm = false;     // sync offload of the local one-copy path (III-C)

  // Empirical thresholds from Section IV-A: "offload memory copies of
  // fragments larger than 1 kB for messages larger than 64 kB".
  std::size_t ioat_min_msg = 64 * sim::KiB;
  std::size_t ioat_min_frag = 1 * sim::KiB;
  // Shared-memory offload only beyond 1 MB (Section IV-C).
  std::size_t ioat_shm_min_msg = 1 * sim::MiB;

  // --- other stack features ---
  bool regcache = true;          // registration cache (Section IV-D)
  bool ignore_bh_copy = false;   // prediction mode of Figure 3: charge no
                                 // time for BH copies (data still moves)
  bool native_mx = false;        // model the native MX/MXoE stack instead

  // --- extensions (paper Sections V/VI future work) ---
  bool sleep_sync_copy = false;   // sleep until predicted completion instead
                                  // of busy-polling synchronous copies
  bool cache_warm_head = false;   // memcpy the head of a large message when
                                  // the target shares the BH core's cache
  bool overlap_registration = false;  // overlap pinning with the transfer
  bool autotune_thresholds = false;   // calibrate ioat_min_* at startup
  int channels_per_msg = 1;       // >1 stripes one message across channels

  // --- ablation switches (DESIGN.md Section 5; not in the paper) ---
  // Busy-wait for each fragment's DMA copy inside its own bottom half
  // instead of overlapping until the last fragment (disables the paper's
  // central optimization while keeping the offload).
  bool ioat_large_sync = false;
  // Run the skbuff cleanup routine when pull-block requests go out
  // (paper Section III-B).  Off = release only at message completion,
  // letting the pending-skbuff pool grow with message size.
  bool cleanup_on_block = true;
};

/// Everything timing-related bundled for a node.
struct NodeParams {
  OmxCosts costs;
  mem::MemcpyModel memcpy_model;
  mem::PinModel pin_model;
  dma::IoatParams ioat;
  std::size_t l2_bytes = 4 * sim::MiB;  // Xeon E5345 shared L2 per subchip
};

}  // namespace openmx::core
