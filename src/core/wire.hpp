#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"

namespace openmx::core {

/// Open-MX wire protocol header sizes (bytes on the wire, charged to the
/// link model on top of the payload).
inline constexpr std::size_t kOmxHeaderBytes = 32;

/// Endpoint address on the fabric.
struct Addr {
  int node = -1;
  std::uint16_t endpoint = 0;

  bool operator==(const Addr&) const = default;
};

/// Packet types of the Open-MX wire protocol (Section II/III).
enum class PktType : std::uint8_t {
  EagerFrag,   // tiny/small/medium message fragment, copied via the ring
  Rndv,        // large-message rendezvous announcement
  PullReq,     // receiver requests one block of large-message fragments
  PullReply,   // one large-message fragment, copied straight to the target
  MsgAck,      // receiver acknowledges a fully received eager message
  LargeAck,    // receiver acknowledges a fully pulled large message
  Nack,        // destination endpoint does not exist (fail fast)
};

inline const char* pkt_name(PktType t) {
  switch (t) {
    case PktType::EagerFrag: return "eager";
    case PktType::Rndv: return "rndv";
    case PktType::PullReq: return "pull-req";
    case PktType::PullReply: return "pull-reply";
    case PktType::MsgAck: return "msg-ack";
    case PktType::LargeAck: return "large-ack";
    case PktType::Nack: return "nack";
    default: return "?";
  }
}

/// Base of every Open-MX frame payload.
struct OmxPkt : net::Payload {
  PktType type;
  std::uint16_t src_ep = 0;
  std::uint16_t dst_ep = 0;

  explicit OmxPkt(PktType t) : type(t) {}
};

/// Fragment of an eager (tiny/small/medium) message.  `data` holds the
/// actual payload bytes: the sender attaches its pinned user pages to the
/// skbuff and the NIC gathers them, so building the frame costs the sender
/// no copy (Section II-A) — the bytes here stand in for the wire transfer.
struct EagerFragPkt : OmxPkt {
  EagerFragPkt() : OmxPkt(PktType::EagerFrag) {}
  std::uint64_t match_info = 0;
  std::uint32_t msg_seq = 0;
  std::uint32_t msg_len = 0;
  std::uint16_t frag_idx = 0;
  std::uint16_t frag_count = 1;
  std::uint32_t offset = 0;
  std::vector<std::uint8_t> data;
};

/// Large-message rendezvous: no data, just the match information and the
/// sender-side pull handle the receiver will pull from.
struct RndvPkt : OmxPkt {
  RndvPkt() : OmxPkt(PktType::Rndv) {}
  std::uint64_t match_info = 0;
  std::uint32_t msg_seq = 0;
  std::uint32_t msg_len = 0;
  std::uint32_t src_handle = 0;
};

/// Receiver-driven request for one block of fragments.
struct PullReqPkt : OmxPkt {
  PullReqPkt() : OmxPkt(PktType::PullReq) {}
  std::uint32_t src_handle = 0;   // sender-side region handle
  std::uint32_t dst_handle = 0;   // receiver-side pull handle
  std::uint32_t frag_start = 0;   // first fragment index of the block
  std::uint32_t frag_count = 0;
};

/// One large-message fragment flowing back to the receiver.
struct PullReplyPkt : OmxPkt {
  PullReplyPkt() : OmxPkt(PktType::PullReply) {}
  std::uint32_t dst_handle = 0;
  std::uint32_t frag_idx = 0;
  std::uint32_t offset = 0;
  std::vector<std::uint8_t> data;
};

/// Acknowledgment of a completed eager message (reliability).
struct MsgAckPkt : OmxPkt {
  MsgAckPkt() : OmxPkt(PktType::MsgAck) {}
  std::uint32_t msg_seq = 0;
};

/// Acknowledgment of a completed large-message pull (sender completion).
/// `failed` reports a receiver-side abort (pull retries exhausted).
struct LargeAckPkt : OmxPkt {
  LargeAckPkt() : OmxPkt(PktType::LargeAck) {}
  std::uint32_t src_handle = 0;
  std::uint32_t msg_seq = 0;
  bool failed = false;
};

/// "No such endpoint": lets senders fail fast instead of retrying into
/// the void (the moral equivalent of ICMP port-unreachable).
struct NackPkt : OmxPkt {
  NackPkt() : OmxPkt(PktType::Nack) {}
  std::uint32_t msg_seq = 0;
  std::uint32_t src_handle = 0;  // nonzero for rendezvous announcements
};

/// On-the-wire size of a frame carrying `data_bytes` of payload.
inline std::size_t wire_bytes_for(std::size_t data_bytes) {
  return kOmxHeaderBytes + data_bytes;
}

/// Wire checksum (FNV-1a over the header fields and payload bytes).  The
/// sender stamps it into net::Frame::csum; the receiver recomputes and
/// discards on mismatch, which is how injected wire corruption is
/// detected and turned into an ordinary retransmission.
inline std::uint32_t pkt_checksum(const OmxPkt& pkt) {
  std::uint32_t h = 0x811c9dc5u;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint8_t>(v >> (8 * i));
      h *= 0x01000193u;
    }
  };
  auto mix_bytes = [&h](const std::vector<std::uint8_t>& data) {
    for (std::uint8_t b : data) {
      h ^= b;
      h *= 0x01000193u;
    }
  };
  mix(static_cast<std::uint64_t>(pkt.type));
  mix(pkt.src_ep);
  mix(pkt.dst_ep);
  switch (pkt.type) {
    case PktType::EagerFrag: {
      const auto& p = static_cast<const EagerFragPkt&>(pkt);
      mix(p.match_info);
      mix(p.msg_seq);
      mix(p.msg_len);
      mix(p.frag_idx);
      mix(p.frag_count);
      mix(p.offset);
      mix_bytes(p.data);
      break;
    }
    case PktType::Rndv: {
      const auto& p = static_cast<const RndvPkt&>(pkt);
      mix(p.match_info);
      mix(p.msg_seq);
      mix(p.msg_len);
      mix(p.src_handle);
      break;
    }
    case PktType::PullReq: {
      const auto& p = static_cast<const PullReqPkt&>(pkt);
      mix(p.src_handle);
      mix(p.dst_handle);
      mix(p.frag_start);
      mix(p.frag_count);
      break;
    }
    case PktType::PullReply: {
      const auto& p = static_cast<const PullReplyPkt&>(pkt);
      mix(p.dst_handle);
      mix(p.frag_idx);
      mix(p.offset);
      mix_bytes(p.data);
      break;
    }
    case PktType::MsgAck:
      mix(static_cast<const MsgAckPkt&>(pkt).msg_seq);
      break;
    case PktType::LargeAck: {
      const auto& p = static_cast<const LargeAckPkt&>(pkt);
      mix(p.src_handle);
      mix(p.msg_seq);
      mix(static_cast<std::uint64_t>(p.failed));
      break;
    }
    case PktType::Nack: {
      const auto& p = static_cast<const NackPkt&>(pkt);
      mix(p.msg_seq);
      mix(p.src_handle);
      break;
    }
  }
  // 0 means "no checksum"; remap the (1-in-4-billion) real zero.
  return h ? h : 1u;
}

}  // namespace openmx::core
