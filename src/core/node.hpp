#pragma once

#include <memory>
#include <vector>

#include "cpu/machine.hpp"
#include "core/params.hpp"
#include "dma/ioat.hpp"
#include "mem/cache_model.hpp"
#include "mem/memcpy_model.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace openmx::core {

class Driver;

/// One cluster node: dual quad-core Clovertown machine, its per-subchip
/// shared L2 caches, the 5000X chipset's I/OAT DMA engine, one 10 GbE NIC
/// and the Open-MX driver (Figure 4 of the paper).
class Node {
 public:
  Node(sim::Engine& engine, net::Network& network, int id,
       const NodeParams& params, const OmxConfig& config);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] cpu::Machine& machine() { return machine_; }
  [[nodiscard]] mem::MemBus& bus() { return bus_; }
  [[nodiscard]] dma::IoatEngine& ioat() { return ioat_; }
  [[nodiscard]] net::Nic& nic() { return nic_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] Driver& driver() { return *driver_; }
  [[nodiscard]] const NodeParams& params() const { return params_; }

  /// Shared L2 cache seen by `core` (one per dual-core subchip).
  [[nodiscard]] mem::CacheModel& cache_for_core(int core) {
    return caches_[static_cast<std::size_t>(cpu::Machine::subchip_of(core))];
  }

  /// A store by `core` to [ptr, ptr+len): the lines become resident in its
  /// own L2 and are invalidated everywhere else (MESI ownership).  This is
  /// what makes the producer's writes visible as cache hits only to the
  /// subchip it shares with the consumer (Figure 10).
  void touch_exclusive(int core, const void* ptr, std::size_t len) {
    const int own = cpu::Machine::subchip_of(core);
    for (std::size_t i = 0; i < caches_.size(); ++i) {
      if (static_cast<int>(i) == own)
        caches_[i].touch(ptr, len);
      else
        caches_[i].invalidate(ptr, len);
    }
  }

  void flush_caches() {
    for (auto& c : caches_) c.flush();
  }

 private:
  sim::Engine& engine_;
  net::Network& network_;
  int id_;
  NodeParams params_;
  cpu::Machine machine_;
  mem::MemBus bus_;
  std::vector<mem::CacheModel> caches_;
  dma::IoatEngine ioat_;
  net::Nic nic_;
  std::unique_ptr<Driver> driver_;
};

}  // namespace openmx::core
