#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/cluster.hpp"
#include "core/params.hpp"
#include "net/flow.hpp"
#include "net/hybrid.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace openmx::core {

/// Background-traffic generator configuration for a HybridCluster: each
/// flow-fidelity endpoint pair keeps `flows_per_pair` transfers of
/// `bytes` in flight, restarting each flow as it completes, for the
/// duration of the run.  Endpoints pair up disjointly (2i ↔ 2i+1 within
/// the background id range) so the steady-state solver component per
/// event stays O(1) unless the fabric itself saturates.
struct BackgroundTraffic {
  std::size_t bytes = 1 * sim::MiB;
  int flows_per_pair = 1;
  std::uint64_t restarts_per_pair = 0;  // 0 = keep running until stop_at
  sim::Time stop_at = 0;                // 0 = never self-stop
};

/// A Cluster plus a fluid background: the foreground nodes (full Node /
/// Open-MX stack, packet fidelity) come from the embedded Cluster; the
/// background endpoints exist only in the FlowNetwork, occupying ids
/// above the foreground range.  One HybridNetwork couples the two — see
/// net/hybrid.hpp for the capacity-sharing contract.
class HybridCluster {
 public:
  explicit HybridCluster(NodeParams node_params = {},
                         net::NetParams net_params = {},
                         double fabric_oversub = 1.0,
                         sim::EngineConfig engine_config = {})
      : cluster_(node_params, net_params, engine_config),
        flow_(cluster_.engine(),
              net::FlowParams::match(net_params, fabric_oversub)),
        hybrid_(cluster_.network(), flow_) {}

  [[nodiscard]] Cluster& cluster() { return cluster_; }
  [[nodiscard]] sim::Engine& engine() { return cluster_.engine(); }
  [[nodiscard]] net::FlowNetwork& flow() { return flow_; }
  [[nodiscard]] net::HybridNetwork& hybrid() { return hybrid_; }

  /// Foreground side: regular packet-fidelity nodes, delegated verbatim.
  Node& add_node(const OmxConfig& config) {
    Node& n = cluster_.add_node(config);
    hybrid_.set_fidelity(n.id(), 1, net::Fidelity::kPacket);
    return n;
  }

  Process& spawn(Node& node, int core, std::string name,
                 std::function<void(Process&)> body) {
    return cluster_.spawn(node, core, std::move(name), std::move(body));
  }

  /// Background side: adds `count` flow-fidelity endpoints after the
  /// foreground range and starts the self-sustaining traffic pattern on
  /// them.  May be called once, after every add_node().
  void add_background(int count, BackgroundTraffic traffic) {
    if (bg_count_ > 0)
      throw std::logic_error("HybridCluster: background already added");
    if (count < 2 || count % 2 != 0)
      throw std::logic_error(
          "HybridCluster: background endpoint count must be even and >= 2");
    bg_first_ = static_cast<int>(cluster_.num_nodes());
    bg_count_ = count;
    traffic_ = traffic;
    hybrid_.set_fidelity(bg_first_, bg_count_, net::Fidelity::kFlow);
    for (int p = 0; p < bg_count_ / 2; ++p)
      for (int k = 0; k < traffic_.flows_per_pair; ++k)
        start_pair_flow(p, traffic_.restarts_per_pair);
  }

  [[nodiscard]] int background_first() const { return bg_first_; }
  [[nodiscard]] int background_count() const { return bg_count_; }
  [[nodiscard]] std::uint64_t background_completions() const {
    return bg_completions_;
  }

  /// Starts every foreground process and runs to quiescence.  With
  /// restarts_per_pair == 0 and stop_at == 0 the background would keep
  /// the engine alive forever, so that combination requires a stop_at.
  void run() {
    if (bg_count_ > 0 && traffic_.restarts_per_pair == 0 &&
        traffic_.stop_at == 0)
      throw std::logic_error(
          "HybridCluster: unbounded background needs stop_at");
    if (bg_count_ > 0 && traffic_.stop_at > 0) stopped_ = false;
    cluster_.run();
  }

 private:
  void start_pair_flow(int pair, std::uint64_t restarts_left) {
    const int src = bg_first_ + 2 * pair;
    const int dst = src + 1;
    hybrid_.transfer(src, dst, traffic_.bytes,
                   [this, pair, restarts_left](const net::FlowInfo&) {
                     ++bg_completions_;
                     if (stopped_) return;
                     if (traffic_.stop_at > 0 &&
                         engine().now() >= traffic_.stop_at) {
                       stopped_ = true;
                       return;
                     }
                     if (restarts_left == 1) return;  // 0 = unbounded
                     start_pair_flow(
                         pair, restarts_left ? restarts_left - 1 : 0);
                   });
  }

  Cluster cluster_;
  net::FlowNetwork flow_;
  net::HybridNetwork hybrid_;
  int bg_first_ = 0;
  int bg_count_ = 0;
  BackgroundTraffic traffic_;
  bool stopped_ = false;
  std::uint64_t bg_completions_ = 0;
};

}  // namespace openmx::core
