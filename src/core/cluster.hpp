#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/node.hpp"
#include "core/params.hpp"
#include "core/process.hpp"
#include "net/network.hpp"
#include "obs/monitor.hpp"
#include "sim/engine.hpp"

namespace openmx::core {

/// A whole experiment: the event engine, the Ethernet fabric, the nodes
/// and the simulated application processes.  Benchmarks and tests build
/// one Cluster per configuration, spawn processes, then run() to
/// completion.
class Cluster {
 public:
  /// `engine_config` selects the event-queue structure (4-ary heap by
  /// default, hierarchical timer wheel opt-in); experiment results are
  /// bit-identical either way.
  explicit Cluster(NodeParams node_params = {}, net::NetParams net_params = {},
                   sim::EngineConfig engine_config = {})
      : engine_(engine_config),
        node_params_(node_params),
        network_(engine_, net_params) {}

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] Node& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }

  Node& add_node(const OmxConfig& config) {
    auto n = std::make_unique<Node>(engine_, network_,
                                    static_cast<int>(nodes_.size()),
                                    node_params_, config);
    nodes_.push_back(std::move(n));
    return *nodes_.back();
  }

  /// Adds `count` identically configured nodes.
  void add_nodes(int count, const OmxConfig& config) {
    for (int i = 0; i < count; ++i) add_node(config);
  }

  Process& spawn(Node& node, int core, std::string name,
                 std::function<void(Process&)> body) {
    procs_.push_back(std::make_unique<Process>(node, core, std::move(name),
                                               std::move(body)));
    return *procs_.back();
  }

  /// Starts every process and runs the simulation to quiescence.  Throws
  /// if any process failed or is still blocked (deadlock) at the end.
  /// With a monitor attached the run loop polls it after every event —
  /// one comparison per step when no sample is due — so the monitor sees
  /// live counters without scheduling any engine event of its own.
  void run(obs::Monitor* monitor = nullptr) {
    for (auto& p : procs_) p->start();
    if (monitor) {
      while (engine_.step()) monitor->poll(engine_.now());
      monitor->poll(engine_.now());
    } else {
      engine_.run();
    }
    for (auto& p : procs_) {
      p->thread().rethrow_if_failed();
      if (!p->thread().finished())
        throw std::runtime_error("Cluster: process '" + p->thread().name() +
                                 "' deadlocked (blocked with no pending "
                                 "events)");
    }
  }

 private:
  sim::Engine engine_;
  NodeParams node_params_;
  net::Network network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Process>> procs_;
};

}  // namespace openmx::core
