#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/node.hpp"
#include "cpu/machine.hpp"
#include "sim/sim_thread.hpp"

namespace openmx::core {

/// One simulated application process, pinned to a core of one node.
///
/// The body runs on a real thread under the deterministic one-at-a-time
/// scheduler (sim::SimThread); Endpoint objects created against a Process
/// charge their library/syscall costs to this core.
class Process {
 public:
  Process(Node& node, int core, std::string name,
          std::function<void(Process&)> body)
      : node_(node),
        core_(core),
        thread_(node.engine(), std::move(name),
                [this, body = std::move(body)] { body(*this); }) {}

  [[nodiscard]] Node& node() { return node_; }
  [[nodiscard]] int core() const { return core_; }
  [[nodiscard]] sim::SimThread& thread() { return thread_; }
  [[nodiscard]] sim::Time now() const { return node_.engine().now(); }

  /// Spends `t` of application compute time on this process's core.
  void compute(sim::Time t) {
    node_.machine().thread_advance(thread_, core_, t, cpu::Cat::App);
  }

  void start() { thread_.start(); }

 private:
  Node& node_;
  int core_;
  sim::SimThread thread_;
};

}  // namespace openmx::core
