#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/driver.hpp"
#include "core/seglist.hpp"
#include "core/process.hpp"
#include "sim/stats.hpp"

namespace openmx::core {

/// A pending communication request, in the style of an mx_request_t.
///
/// Returned by Endpoint::isend/irecv; owned by the endpoint.  A request
/// pointer is invalidated when wait() returns or test() returns true
/// (mirroring MX, where a successful test/wait releases the handle).
struct Request {
  enum class Kind : std::uint8_t { Send, Recv };

  Kind kind{};
  bool done = false;
  std::uint64_t id = 0;

  // Receive-side bookkeeping.
  SegList segs;              // scatter list of the application buffer
  std::size_t capacity = 0;  // segs.total()
  std::uint64_t match = 0;
  std::uint64_t mask = ~0ULL;
  std::size_t msg_len = 0;   // sender's length once known
  std::size_t recv_len = 0;  // bytes actually delivered (<= capacity)
  Addr src;                  // peer that satisfied this request
  bool failed = false;       // completed with error (retries exhausted)
};

/// The Open-MX user-space library for one endpoint: exposes the Myrinet
/// Express API style (isend/irecv/test/wait with 64-bit match info and
/// mask), performs the matching, reassembles eager messages out of the
/// receive ring, triggers large-message pulls and intra-node one-copy
/// syscalls (Sections II-A and III).
///
/// All methods must be called from the owning Process's thread.
class Endpoint {
 public:
  Endpoint(Process& proc, std::uint16_t id);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  [[nodiscard]] Addr addr() const { return dep_.addr(); }
  [[nodiscard]] Process& process() { return proc_; }

  /// Posts a send.  The path — intra-node one-copy, eager, or rendezvous —
  /// is chosen by destination and length, exactly as the driver does
  /// ("the driver automatically switches from regular to local
  /// communication", Section V).
  Request* isend(const void* buf, std::size_t len, Addr dst,
                 std::uint64_t match);

  /// Vectorial send (mx_isend with a segment list).  Small segments split
  /// every copy at their boundaries — the case Section IV-A flags as
  /// hostile to I/OAT offload.
  Request* isendv(const IoVec* segs, std::size_t count, Addr dst,
                  std::uint64_t match);

  /// Posts a receive matching `(incoming.match & mask) == (match & mask)`.
  Request* irecv(void* buf, std::size_t capacity, std::uint64_t match,
                 std::uint64_t mask = ~0ULL);

  /// Vectorial receive: incoming data is scattered into the segments.
  Request* irecvv(const IoVec* segs, std::size_t count, std::uint64_t match,
                  std::uint64_t mask = ~0ULL);

  /// Non-blocking completion check; on true the request is released.
  /// `out` (optional) receives a copy of the completed request's fields.
  bool test(Request* req, Request* out = nullptr);

  /// mx_iprobe: checks whether an unexpected message matching
  /// (match, mask) is waiting, without receiving it.  Returns true and
  /// fills `src`/`msg_len` (when non-null) on a hit.
  bool iprobe(std::uint64_t match, std::uint64_t mask, Addr* src = nullptr,
              std::size_t* msg_len = nullptr);

  /// mx_cancel: withdraws a posted receive that has not matched yet.
  /// Returns true if the request was cancelled and released; false if it
  /// already matched (it must then be waited on normally).
  bool cancel(Request* req);

  /// Blocks (sleeping in the event ring's wait queue) until completion;
  /// the request is released.  Returns a copy of its final state.
  Request wait(Request* req);

  /// Drives progress without blocking: drains every pending event.
  void poll();

  [[nodiscard]] sim::Counters& counters() { return counters_; }

 private:
  struct Unexpected {
    enum class Kind : std::uint8_t { Eager, Rndv, Local };
    Kind kind{};
    Addr src;
    std::uint64_t match = 0;
    std::uint32_t msg_seq = 0;
    std::uint32_t msg_len = 0;
    std::uint32_t handle = 0;  // rndv: sender handle; local: copy handle
    std::uint16_t frag_count = 1;
    std::size_t frags_done = 0;
    std::vector<bool> got;
    std::vector<std::uint8_t> data;  // eager payload buffered by the lib
  };

  /// An eager message being reassembled straight into a matched receive.
  struct Reasm {
    Request* req = nullptr;
    std::uint16_t frag_count = 1;
    std::size_t frags_done = 0;
  };

  using FlowSeq = std::pair<std::uint64_t, std::uint32_t>;  // (peer, seq)

  void handle_event(Event& ev);
  void on_eager_frag(Event& ev);
  void on_rndv(Event& ev);
  void on_local(Event& ev);
  Request* match_posted(std::uint64_t match_info);
  Request* post_recv(SegList segs, std::uint64_t match, std::uint64_t mask);
  Request* post_send(SegList segs, Addr dst, std::uint64_t match);
  void start_pull(Request* req, Addr src, std::uint32_t src_handle,
                  std::uint32_t msg_seq, std::uint32_t msg_len);
  void do_local_copy(Request* req, std::uint32_t handle,
                     std::uint32_t msg_len, Addr src);
  void deliver_frag(Request* req, Reasm& r, const Event& ev);
  void complete_recv(Request* req);
  Request* new_request(Request::Kind kind);
  void release(Request* req);
  void charge_user(sim::Time t);
  void charge_driver(sim::Time t);
  std::uint64_t peer_key(Addr a) const {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.node))
            << 16) |
           a.endpoint;
  }

  Process& proc_;
  Driver& driver_;
  DriverEndpoint& dep_;
  std::map<std::uint64_t, std::unique_ptr<Request>> requests_;
  std::uint64_t next_req_id_ = 1;

  std::vector<Request*> posted_;                  // posted receives, in order
  std::deque<Unexpected> unexpected_;             // unmatched messages
  std::map<FlowSeq, Reasm> reasm_;                // matched eager in progress
  std::map<std::uint64_t, Request*> by_req_id_;   // SendDone/LargeRecvDone
  sim::Counters counters_;
};

}  // namespace openmx::core
