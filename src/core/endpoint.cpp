#include "core/endpoint.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace openmx::core {

namespace {
bool matches(std::uint64_t incoming, std::uint64_t match, std::uint64_t mask) {
  return (incoming & mask) == (match & mask);
}
}  // namespace

Endpoint::Endpoint(Process& proc, std::uint16_t id)
    : proc_(proc),
      driver_(proc.node().driver()),
      dep_(proc.node().driver().open_endpoint(id)) {}

void Endpoint::charge_user(sim::Time t) {
  if (t > 0)
    proc_.node().machine().thread_advance(proc_.thread(), proc_.core(), t,
                                          cpu::Cat::UserLib);
}

void Endpoint::charge_driver(sim::Time t) {
  if (t > 0)
    proc_.node().machine().thread_advance(proc_.thread(), proc_.core(), t,
                                          cpu::Cat::DriverSyscall);
}

Request* Endpoint::new_request(Request::Kind kind) {
  auto req = std::make_unique<Request>();
  req->kind = kind;
  req->id = next_req_id_++;
  Request* raw = req.get();
  requests_.emplace(raw->id, std::move(req));
  return raw;
}

void Endpoint::release(Request* req) {
  by_req_id_.erase(req->id);
  requests_.erase(req->id);
}

Request* Endpoint::isend(const void* buf, std::size_t len, Addr dst,
                         std::uint64_t match) {
  // Send paths never write through the segment list.
  return post_send(SegList{const_cast<void*>(buf), len}, dst, match);
}

Request* Endpoint::isendv(const IoVec* segs, std::size_t count, Addr dst,
                          std::uint64_t match) {
  return post_send(SegList{segs, count}, dst, match);
}

Request* Endpoint::post_send(SegList segs, Addr dst, std::uint64_t match) {
  const auto& costs = proc_.node().params().costs;
  const auto& cfg = driver_.config();
  const std::size_t len = segs.total();
  Request* req = new_request(Request::Kind::Send);
  by_req_id_[req->id] = req;

  charge_user(costs.lib_call_ns);
  // Writing the payload is the application's job, but its footprint in the
  // sender's cache matters for the intra-node path (Figure 10): record the
  // producer's exclusive ownership of the lines without charging time.
  segs.for_pieces(0, len, [&](std::uint8_t* p, std::size_t n) {
    proc_.node().touch_exclusive(proc_.core(), p, n);
  });

  if (dst.node == proc_.node().id()) {
    charge_driver(costs.syscall_ns + costs.cmd_post_ns);
    driver_.cmd_send_local(dep_, segs, dst, match, req->id);
    counters_.add("lib.send_local");
    return req;
  }

  if (cfg.native_mx) {
    // OS-bypass: the library writes the descriptor straight to the NIC.
    charge_user(costs.mx_pio_ns);
    if (len > cfg.eager_max) {
      charge_driver(driver_.pin_cost_sync(segs));
      driver_.cmd_send_rndv(dep_, segs, dst, match, req->id);
    } else {
      driver_.cmd_send_eager(dep_, segs, dst, match, req->id);
    }
    counters_.add("lib.send_native");
    return req;
  }

  if (len > cfg.eager_max) {
    charge_driver(costs.syscall_ns + costs.cmd_post_ns +
                  driver_.pin_cost_sync(segs));
    driver_.cmd_send_rndv(dep_, segs, dst, match, req->id);
    counters_.add("lib.send_rndv");
  } else {
    const std::size_t nfrags =
        len == 0 ? 1 : (len + cfg.frag_payload - 1) / cfg.frag_payload;
    charge_driver(costs.syscall_ns + costs.cmd_post_ns +
                  static_cast<sim::Time>(nfrags) *
                      (costs.skb_alloc_ns + costs.tx_doorbell_ns));
    driver_.cmd_send_eager(dep_, segs, dst, match, req->id);
    counters_.add("lib.send_eager");
  }
  return req;
}

Request* Endpoint::irecv(void* buf, std::size_t capacity, std::uint64_t match,
                         std::uint64_t mask) {
  return post_recv(SegList{buf, capacity}, match, mask);
}

Request* Endpoint::irecvv(const IoVec* segs, std::size_t count,
                          std::uint64_t match, std::uint64_t mask) {
  return post_recv(SegList{segs, count}, match, mask);
}

Request* Endpoint::post_recv(SegList segs, std::uint64_t match,
                             std::uint64_t mask) {
  const auto& costs = proc_.node().params().costs;
  Request* req = new_request(Request::Kind::Recv);
  req->segs = std::move(segs);
  req->capacity = req->segs.total();
  req->match = match;
  req->mask = mask;
  charge_user(costs.lib_call_ns);

  // MX semantics: search the unexpected queue first, in arrival order.
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (!matches(it->match, match, mask)) continue;
    Unexpected u = std::move(*it);
    unexpected_.erase(it);
    req->msg_len = u.msg_len;
    req->src = u.src;
    switch (u.kind) {
      case Unexpected::Kind::Rndv:
        start_pull(req, u.src, u.handle, u.msg_seq, u.msg_len);
        return req;
      case Unexpected::Kind::Local:
        do_local_copy(req, u.handle, u.msg_len, u.src);
        return req;
      case Unexpected::Kind::Eager: {
        // Copy what the library already buffered; if fragments are still
        // in flight, bind a reassembly so the rest lands directly.
        const std::size_t frag = driver_.config().frag_payload;
        std::size_t copied = 0;
        for (std::size_t i = 0; i < u.got.size(); ++i) {
          if (!u.got[i]) continue;
          const std::size_t off = i * frag;
          if (off >= u.msg_len) continue;
          const std::size_t n = std::min(frag, u.msg_len - off);
          copied += req->segs.write(off, u.data.data() + off, n);
        }
        charge_user(sim::duration_for_bytes(copied, costs.ring_copy_bw));
        counters_.add("lib.unexpected_matched");
        if (u.frags_done == u.frag_count) {
          complete_recv(req);
        } else {
          Reasm r;
          r.req = req;
          r.frag_count = u.frag_count;
          r.frags_done = u.frags_done;
          reasm_[{peer_key(u.src), u.msg_seq}] = r;
        }
        return req;
      }
    }
  }

  posted_.push_back(req);
  return req;
}

void Endpoint::complete_recv(Request* req) {
  req->recv_len = std::min(req->msg_len, req->capacity);
  req->done = true;
}

Request* Endpoint::match_posted(std::uint64_t match_info) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (matches(match_info, (*it)->match, (*it)->mask)) {
      Request* req = *it;
      posted_.erase(it);
      return req;
    }
  }
  return nullptr;
}

void Endpoint::start_pull(Request* req, Addr src, std::uint32_t src_handle,
                          std::uint32_t msg_seq, std::uint32_t msg_len) {
  const auto& costs = proc_.node().params().costs;
  const std::size_t len = std::min<std::size_t>(msg_len, req->capacity);
  const SegList target = req->segs.prefix(len);
  req->msg_len = msg_len;
  req->src = src;
  charge_driver(costs.syscall_ns + costs.cmd_post_ns +
                driver_.pin_cost_sync(target));
  by_req_id_[req->id] = req;
  driver_.cmd_pull(dep_, target, src, src_handle, msg_seq, req->id);
  counters_.add("lib.pulls");
}

void Endpoint::do_local_copy(Request* req, std::uint32_t handle,
                             std::uint32_t msg_len, Addr src) {
  const auto& costs = proc_.node().params().costs;
  req->msg_len = msg_len;
  req->src = src;
  charge_driver(costs.syscall_ns + costs.cmd_post_ns);
  const std::size_t n = driver_.cmd_local_copy(proc_.thread(), proc_.core(),
                                               handle, req->segs);
  req->recv_len = n;
  req->done = true;
  counters_.add("lib.local_copies");
}

void Endpoint::deliver_frag(Request* req, Reasm& r, const Event& ev) {
  const auto& costs = proc_.node().params().costs;
  const std::size_t off = ev.offset;
  const std::size_t n = ev.data.size();
  const std::size_t copied =
      n > 0 ? req->segs.write(off, ev.data.data(), n) : 0;
  // Second copy of the small/medium path (Figure 2): ring slot to the
  // application buffer, performed by the library, usually cache-warm.
  charge_user(sim::duration_for_bytes(copied, costs.ring_copy_bw));
  ++r.frags_done;
  if (r.frags_done == r.frag_count) {
    req->msg_len = ev.msg_len;
    complete_recv(req);
  }
}

void Endpoint::on_eager_frag(Event& ev) {
  const auto& costs = proc_.node().params().costs;
  const FlowSeq key{peer_key(ev.src), ev.msg_seq};

  if (auto it = reasm_.find(key); it != reasm_.end()) {
    Request* req = it->second.req;
    deliver_frag(req, it->second, ev);
    if (req->done) reasm_.erase(it);
    return;
  }

  // Fragments of a message the library has already buffered as unexpected?
  for (auto& u : unexpected_) {
    if (u.kind == Unexpected::Kind::Eager && u.src == ev.src &&
        u.msg_seq == ev.msg_seq) {
      if (u.got[ev.frag_idx]) return;
      u.got[ev.frag_idx] = true;
      ++u.frags_done;
      if (!ev.data.empty())
        std::memcpy(u.data.data() + ev.offset, ev.data.data(),
                    ev.data.size());
      charge_user(
          sim::duration_for_bytes(ev.data.size(), costs.ring_copy_bw));
      return;
    }
  }

  // First fragment of a new message: match or buffer it.
  if (Request* req = match_posted(ev.match_info)) {
    req->src = ev.src;
    req->msg_len = ev.msg_len;
    Reasm r;
    r.req = req;
    r.frag_count = ev.frag_count;
    deliver_frag(req, r, ev);
    if (!req->done) reasm_[key] = r;
    return;
  }

  Unexpected u;
  u.kind = Unexpected::Kind::Eager;
  u.src = ev.src;
  u.match = ev.match_info;
  u.msg_seq = ev.msg_seq;
  u.msg_len = ev.msg_len;
  u.frag_count = ev.frag_count;
  u.got.assign(ev.frag_count, false);
  u.data.assign(ev.msg_len, 0);
  u.got[ev.frag_idx] = true;
  u.frags_done = 1;
  if (!ev.data.empty())
    std::memcpy(u.data.data() + ev.offset, ev.data.data(), ev.data.size());
  charge_user(sim::duration_for_bytes(ev.data.size(), costs.ring_copy_bw));
  unexpected_.push_back(std::move(u));
  counters_.add("lib.unexpected_eager");
}

void Endpoint::on_rndv(Event& ev) {
  if (Request* req = match_posted(ev.match_info)) {
    start_pull(req, ev.src, ev.local_handle, ev.msg_seq, ev.msg_len);
    return;
  }
  Unexpected u;
  u.kind = Unexpected::Kind::Rndv;
  u.src = ev.src;
  u.match = ev.match_info;
  u.msg_seq = ev.msg_seq;
  u.msg_len = ev.msg_len;
  u.handle = ev.local_handle;
  unexpected_.push_back(std::move(u));
  counters_.add("lib.unexpected_rndv");
}

void Endpoint::on_local(Event& ev) {
  if (Request* req = match_posted(ev.match_info)) {
    do_local_copy(req, ev.local_handle, ev.msg_len, ev.src);
    return;
  }
  Unexpected u;
  u.kind = Unexpected::Kind::Local;
  u.src = ev.src;
  u.match = ev.match_info;
  u.msg_seq = ev.msg_seq;
  u.msg_len = ev.msg_len;
  u.handle = ev.local_handle;
  unexpected_.push_back(std::move(u));
  counters_.add("lib.unexpected_local");
}

void Endpoint::handle_event(Event& ev) {
  switch (ev.type) {
    case EvType::EagerFrag:
      on_eager_frag(ev);
      break;
    case EvType::RndvArrived:
      on_rndv(ev);
      break;
    case EvType::LocalMsg:
      on_local(ev);
      break;
    case EvType::LargeRecvDone: {
      auto it = by_req_id_.find(ev.request_id);
      if (it != by_req_id_.end()) {
        it->second->recv_len =
            ev.failed ? 0
                      : std::min<std::size_t>(ev.msg_len,
                                              it->second->capacity);
        it->second->msg_len = ev.msg_len;
        it->second->failed = ev.failed;
        it->second->done = true;
      }
      // Close the message-lifecycle span: the library has now actually
      // observed the completion (last Notify stamp; the driver stamped
      // the first when it pushed the event).
      auto& spans = proc_.node().engine().spans();
      if (spans.enabled() && ev.local_handle)
        spans.mark(obs::span_key(proc_.node().id(), ev.local_handle),
                   obs::Phase::Notify, proc_.now());
      break;
    }
    case EvType::SendDone: {
      auto it = by_req_id_.find(ev.request_id);
      if (it != by_req_id_.end()) {
        it->second->failed = ev.failed;
        it->second->done = true;
      }
      break;
    }
  }
}

void Endpoint::poll() {
  const auto& costs = proc_.node().params().costs;
  const sim::Time fetch =
      driver_.config().native_mx ? costs.mx_event_ns : costs.lib_event_ns;
  while (dep_.has_events()) {
    Event ev = dep_.pop_event();
    charge_user(fetch);
    handle_event(ev);
  }
}

bool Endpoint::test(Request* req, Request* out) {
  poll();
  if (!req->done) return false;
  if (out) *out = *req;
  release(req);
  return true;
}

bool Endpoint::iprobe(std::uint64_t match, std::uint64_t mask, Addr* src,
                      std::size_t* msg_len) {
  poll();
  for (const Unexpected& u : unexpected_) {
    if (!matches(u.match, match, mask)) continue;
    if (src) *src = u.src;
    if (msg_len) *msg_len = u.msg_len;
    counters_.add("lib.iprobe_hits");
    return true;
  }
  return false;
}

bool Endpoint::cancel(Request* req) {
  if (req->kind != Request::Kind::Recv) return false;
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (*it == req) {
      posted_.erase(it);
      release(req);
      counters_.add("lib.cancels");
      return true;
    }
  }
  return false;  // already matched (reassembly or pull in progress)
}

Request Endpoint::wait(Request* req) {
  while (!req->done) {
    if (dep_.has_events()) {
      poll();
      continue;
    }
    dep_.waitq().sleep(proc_.thread());
  }
  Request out = *req;
  release(req);
  return out;
}

}  // namespace openmx::core
