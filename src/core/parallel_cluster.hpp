#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/node.hpp"
#include "core/params.hpp"
#include "core/process.hpp"
#include "net/network.hpp"
#include "obs/flight.hpp"
#include "obs/registry.hpp"
#include "sim/engine.hpp"
#include "sim/lp.hpp"

namespace openmx::core {

/// A whole experiment scaled out across logical processes: the cluster is
/// partitioned into `num_lps` LPs, each owning its own Engine and its own
/// shard of the Ethernet fabric, synchronized by the conservative-window
/// LpScheduler with the wire latency as lookahead.
///
/// Drop-in surface match with Cluster (add_node / spawn / run), plus an
/// LP dimension: add_node places nodes round-robin across LPs by default
/// (or explicitly via the `lp` argument), and run(workers) picks how many
/// OS threads execute the LPs.  For any worker count — including 1 — the
/// simulation produces bit-identical timing, counters and event counts to
/// the sequential single-engine Cluster running the same workload; the
/// rx-claim arbitration in net::Network is what makes that hold (see
/// DESIGN.md "Multi-LP execution").
class ParallelCluster {
 public:
  explicit ParallelCluster(int num_lps, NodeParams node_params = {},
                           net::NetParams net_params = {},
                           sim::EngineConfig engine_config = {})
      : node_params_(node_params),
        net_params_(net_params),
        scheduler_(net_params.latency_ns) {
    if (num_lps <= 0)
      throw std::logic_error("ParallelCluster: need at least one LP");
    lps_.reserve(static_cast<std::size_t>(num_lps));
    shards_.reserve(static_cast<std::size_t>(num_lps));
    for (int i = 0; i < num_lps; ++i) {
      lps_.push_back(std::make_unique<sim::Lp>(i, engine_config));
      shards_.push_back(
          std::make_unique<net::Network>(lps_.back()->engine(), net_params));
      scheduler_.add(*lps_.back());
    }
  }

  [[nodiscard]] std::size_t num_lps() const { return lps_.size(); }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] Node& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] sim::Lp& lp(std::size_t i) { return *lps_.at(i); }
  [[nodiscard]] net::Network& shard(std::size_t i) { return *shards_.at(i); }
  [[nodiscard]] sim::LpScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] int lp_of_node(std::size_t i) const {
    return lp_of_node_.at(i);
  }

  /// Adds a node on LP `lp` (round-robin over LPs when negative).  The
  /// node lives entirely inside its LP: engine, machine, caches, I/OAT,
  /// NIC and driver all belong to that partition.
  Node& add_node(const OmxConfig& config, int lp = -1) {
    const int node_id = static_cast<int>(nodes_.size());
    if (lp < 0) lp = node_id % static_cast<int>(lps_.size());
    if (lp >= static_cast<int>(lps_.size()))
      throw std::logic_error("ParallelCluster: no such LP");
    auto n = std::make_unique<Node>(
        lps_[static_cast<std::size_t>(lp)]->engine(),
        *shards_[static_cast<std::size_t>(lp)], node_id, node_params_, config);
    nodes_.push_back(std::move(n));
    lp_of_node_.push_back(lp);
    return *nodes_.back();
  }

  /// Adds `count` identically configured nodes, round-robin across LPs.
  void add_nodes(int count, const OmxConfig& config) {
    for (int i = 0; i < count; ++i) add_node(config);
  }

  Process& spawn(Node& node, int core, std::string name,
                 std::function<void(Process&)> body) {
    procs_.push_back(std::make_unique<Process>(node, core, std::move(name),
                                               std::move(body)));
    return *procs_.back();
  }

  /// Starts every process and runs all partitions to global quiescence on
  /// `workers` OS threads (0 = auto-size from the shared pool).  Throws
  /// if any process failed or is still blocked (deadlock) at the end.
  void run(unsigned workers = 0) {
    bind_shards();
    for (auto& p : procs_) p->start();
    scheduler_.run(workers);
    for (auto& p : procs_) {
      p->thread().rethrow_if_failed();
      if (!p->thread().finished())
        throw std::runtime_error("ParallelCluster: process '" +
                                 p->thread().name() +
                                 "' deadlocked (blocked with no pending "
                                 "events)");
    }
  }

  /// Latest virtual time over all partitions (they drift apart by less
  /// than one lookahead window, and agree again at quiescence).
  [[nodiscard]] sim::Time now() const {
    sim::Time t = 0;
    for (const auto& lp : lps_) t = std::max(t, lp->engine().now());
    return t;
  }

  /// Total events scheduled across partitions, accumulated in LP-id
  /// order.  The sum — and each per-LP term — must be identical for
  /// every worker count and equal to the sequential Cluster's count on
  /// the same workload.
  [[nodiscard]] std::uint64_t events_scheduled() const {
    std::uint64_t total = 0;
    for (const auto& lp : lps_) total += lp->engine().events_scheduled();
    return total;
  }

  /// Folds every per-component registry into `out` in a fixed global
  /// order — node index (driver, regcache, nic, ioat), then fabric
  /// shards in LP-id order — so the merged result never depends on the
  /// worker count or on which LP owned which node.  Mirrors the bench
  /// harness's collect_cluster_metrics for the sequential Cluster.
  void collect_metrics(obs::Registry& out) {
    for (auto& n : nodes_) {
      out.merge(n->driver().counters());
      out.merge(n->driver().regcache().counters());
      out.merge(n->nic().counters());
      out.merge(n->ioat().counters());
    }
    for (auto& s : shards_) out.merge(s->counters());
  }

  /// Scheduler-level telemetry (lp.<id>.*, lp.critical.*) exported in
  /// LP-id order.  Kept separate from collect_metrics so the component
  /// registry merge stays byte-identical to the sequential Cluster's —
  /// the scheduler metrics have no sequential counterpart, but they are
  /// themselves worker-count invariant (asserted by test_determinism).
  void collect_scheduler_metrics(obs::Registry& out) const {
    scheduler_.export_metrics(out);
  }

  /// Binds one flight-recorder shard per LP (fr must have num_lps()
  /// shards): every LP's trace feeds its own lock-free ring, so a
  /// postmortem dump holds each partition's event tail.
  void attach_flight(obs::FlightRecorder& fr) {
    for (std::size_t i = 0; i < lps_.size(); ++i)
      lps_[i]->engine().trace().attach_flight(&fr,
                                              static_cast<std::uint32_t>(i));
  }

 private:
  /// Wires each fabric shard to its LP and hands every shard the global
  /// node→LP map; idempotent, called on first run().
  void bind_shards() {
    if (bound_) return;
    bound_ = true;
    std::vector<net::Network*> raw;
    raw.reserve(shards_.size());
    for (auto& s : shards_) raw.push_back(s.get());
    for (std::size_t i = 0; i < shards_.size(); ++i)
      shards_[i]->bind_partition(*lps_[i], lp_of_node_, raw);
  }

  NodeParams node_params_;
  net::NetParams net_params_;
  std::vector<std::unique_ptr<sim::Lp>> lps_;
  std::vector<std::unique_ptr<net::Network>> shards_;
  sim::LpScheduler scheduler_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<int> lp_of_node_;
  std::vector<std::unique_ptr<Process>> procs_;
  bool bound_ = false;
};

}  // namespace openmx::core
