#include "core/node.hpp"

#include "core/driver.hpp"

namespace openmx::core {

Node::Node(sim::Engine& engine, net::Network& network, int id,
           const NodeParams& params, const OmxConfig& config)
    : engine_(engine),
      network_(network),
      id_(id),
      params_(params),
      machine_(engine),
      caches_(cpu::Machine::kSockets * cpu::Machine::kSubchipsPerSocket,
              mem::CacheModel{params.l2_bytes}),
      ioat_(engine, params.ioat),
      // NIC interrupts are steered to core 1 by default: a different core
      // than the (default) application core 0, as in the paper's runs
      // where the bottom half saturates its own core.
      nic_(engine, machine_, bus_, id, /*bh_core=*/1) {
  // Give this node its own block of utilization-timeline tracks (one per
  // core, one per DMA channel) so multi-node traces do not collide.
  machine_.set_track_base(obs::cpu_track(id, 0));
  ioat_.set_track_base(obs::dma_track(id, 0));
  network_.attach(nic_);
  driver_ = std::make_unique<Driver>(*this, config);
}

Node::~Node() = default;

}  // namespace openmx::core
