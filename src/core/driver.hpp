#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/events.hpp"
#include "core/node.hpp"
#include "core/params.hpp"
#include "core/seglist.hpp"
#include "core/wire.hpp"
#include "cpu/machine.hpp"
#include "net/network.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/sim_thread.hpp"
#include "sim/stats.hpp"
#include "mem/pinning.hpp"

namespace openmx::core {

/// Driver-side state of one open endpoint: the event ring shared with the
/// user library, the wait queue of sleeping library threads, and the
/// per-peer reliability state.
class DriverEndpoint {
 public:
  DriverEndpoint(int node, std::uint16_t id) : addr_{node, id} {}

  [[nodiscard]] Addr addr() const { return addr_; }
  [[nodiscard]] bool has_events() const { return !events_.empty(); }
  [[nodiscard]] std::size_t event_count() const { return events_.size(); }

  /// Pops the oldest event; caller (the library) charges the fetch cost.
  Event pop_event() {
    Event e = std::move(events_.front());
    events_.pop_front();
    return e;
  }

  [[nodiscard]] sim::WaitQueue& waitq() { return waitq_; }

 private:
  friend class Driver;

  /// Reassembly/acknowledgment state of one incoming eager message.
  struct EagerRx {
    std::vector<bool> got;
    std::size_t received = 0;
    // ioat_medium_overlap extension: events held back until the whole
    // message arrived (single completion report), with the skbuffs kept
    // alive while their asynchronous ring copies are in flight.
    // pending[i] is the in-flight copy of held[i]'s ring slot: the cookie
    // range [first, last] lets the completion wait detect an injected
    // descriptor failure and redo that fragment's copy with the CPU.
    struct PendingCopy {
      net::Skbuff skb;
      std::uint64_t first = 0;
      std::uint64_t last = 0;
    };
    int chan = -1;
    std::vector<Event> held;
    std::vector<PendingCopy> pending;
  };

  /// Per-(remote endpoint) receive flow: which eager messages are in
  /// flight and which recently completed (for retransmission dedup).
  struct RxFlow {
    std::map<std::uint32_t, EagerRx> active;   // msg_seq -> state
    std::set<std::uint32_t> completed;         // recently completed seqs
    std::set<std::uint32_t> known_rndv;        // rndv seqs already reported
    std::set<std::uint32_t> aborted;           // pulls given up on
  };

  Addr addr_;
  std::deque<Event> events_;
  sim::WaitQueue waitq_;
  std::map<std::uint64_t, RxFlow> rx_flows_;  // key: packed remote addr
  std::uint32_t next_msg_seq_ = 1;            // per-endpoint send sequence
};

/// The Open-MX kernel driver of one node.
///
/// Owns every kernel-side mechanism of the paper:
///  - the receive callback invoked from the interrupt bottom half, with
///    the eager ring-copy path and the large-message pull protocol
///    (Sections II-B, III-A);
///  - the I/OAT copy-offload integration: asynchronous offload of large
///    fragments with bounded skbuff tracking and the periodic cleanup
///    routine (Sections III-A/III-B), optional synchronous offload of
///    medium copies and of the intra-node one-copy path (Section III-C);
///  - registration (pinning) with an optional registration cache
///    (Section IV-D);
///  - retransmission timers for eager messages, rendezvous and pull
///    blocks (Section III-B mentions the timeout path explicitly).
///
/// With `config.native_mx` set, the same protocol engine models the
/// native MX/MXoE stack instead: the NIC firmware places data directly
/// (no bottom-half copies) and sends bypass the kernel.
class Driver {
 public:
  Driver(Node& node, OmxConfig config);

  [[nodiscard]] Node& node() { return node_; }
  [[nodiscard]] const OmxConfig& config() const { return config_; }
  [[nodiscard]] OmxConfig& config_mut() { return config_; }
  [[nodiscard]] sim::Counters& counters() { return counters_; }
  [[nodiscard]] mem::RegCache& regcache() { return regcache_; }

  /// Opens endpoint `id` on this node.
  DriverEndpoint& open_endpoint(std::uint16_t id);
  [[nodiscard]] DriverEndpoint* find_endpoint(std::uint16_t id);

  // ----- commands issued by the user library (syscall context) -----
  //
  // The library wrapper charges syscall entry + command-post costs and the
  // pinning cost returned by pin_cost(); these methods perform the
  // protocol work and any additional timed work they trigger.

  /// Sends an eager (tiny/small/medium) message.  Completion is reported
  /// as a SendDone event carrying `request_id` once the receiver acked.
  void cmd_send_eager(DriverEndpoint& ep, const SegList& segs, Addr dst,
                      std::uint64_t match, std::uint64_t request_id);

  /// Starts a large-message rendezvous.  SendDone arrives after the
  /// receiver pulled everything and acked.
  void cmd_send_rndv(DriverEndpoint& ep, const SegList& segs, Addr dst,
                     std::uint64_t match, std::uint64_t request_id);

  /// Posts an intra-node message; the receiver gets a LocalMsg event and
  /// performs the single copy via cmd_local_copy.
  void cmd_send_local(DriverEndpoint& ep, const SegList& segs, Addr dst,
                      std::uint64_t match, std::uint64_t request_id);

  /// Receiver side of a matched rendezvous: registers the target region
  /// and starts pulling.  Returns the pull handle (also the request_id
  /// reported by the eventual LargeRecvDone event).
  void cmd_pull(DriverEndpoint& ep, const SegList& segs, Addr src,
                std::uint32_t src_handle, std::uint32_t msg_seq,
                std::uint64_t request_id);

  /// Receiver side of a matched intra-node message: performs the one copy
  /// from the source process's buffer into `dst` inside this syscall,
  /// blocking the calling thread for the copy duration (memcpy or
  /// synchronous I/OAT, Section III-C).  Returns bytes copied.
  std::size_t cmd_local_copy(sim::SimThread& thread, int core,
                             std::uint32_t local_handle,
                             const SegList& dst);

  /// Pinning cost for a region, honoring the registration cache.  The
  /// library charges this to driver-syscall time before posting the
  /// command.  With `overlap_registration`, only the head of the region is
  /// pinned synchronously and the rest is charged concurrently.
  [[nodiscard]] sim::Time pin_cost_sync(const void* buf, std::size_t len);
  [[nodiscard]] sim::Time pin_cost_sync(const SegList& segs);

  /// Number of skbuffs currently held alive waiting for asynchronous
  /// I/OAT copies (Section III-B resource bound; tests assert on this).
  [[nodiscard]] std::size_t pending_offload_skbuffs() const;

  /// Startup auto-tuning of the offload thresholds (Section VI future
  /// work): picks min-fragment/min-message sizes from the cost models.
  void autotune_thresholds();

 private:
  // ----- receive path (bottom-half context) -----
  void rx(net::Skbuff skb);
  struct BhCtx;  // accumulated cost + deferred effects of one BH handler
  void bh_eager(BhCtx& ctx, net::Skbuff& skb);
  void bh_rndv(BhCtx& ctx, net::Skbuff& skb);
  void bh_pull_req(BhCtx& ctx, net::Skbuff& skb);
  void bh_pull_reply(BhCtx& ctx, net::Skbuff& skb);
  void bh_msg_ack(BhCtx& ctx, net::Skbuff& skb);
  void bh_large_ack(BhCtx& ctx, net::Skbuff& skb);
  void bh_nack(BhCtx& ctx, net::Skbuff& skb);

  // ----- sender-side large-message state -----
  struct SendRegion {
    std::uint32_t handle = 0;
    DriverEndpoint* ep = nullptr;
    SegList segs;
    std::size_t len = 0;
    Addr dst;
    std::uint64_t match = 0;
    std::uint32_t msg_seq = 0;
    std::uint64_t request_id = 0;
    bool first_pull_seen = false;
    int retries = 0;
    sim::Time last_activity = 0;  // last pull request seen
    sim::EventHandle rndv_timer;
  };

  // ----- sender-side eager reliability state -----
  struct EagerTx {
    DriverEndpoint* ep = nullptr;
    SegList segs;
    std::size_t len = 0;
    Addr dst;
    std::uint64_t match = 0;
    std::uint32_t msg_seq = 0;
    std::uint64_t request_id = 0;
    int retries = 0;
    sim::EventHandle timer;
  };

  // ----- receiver-side pull state -----
  struct PendingSkb {
    net::Skbuff skb;
    int chan = -1;
    std::uint64_t cookie = 0;        // last cookie of this fragment's chunks
    std::uint64_t first_cookie = 0;  // first cookie (consecutive on chan)
  };
  struct PullHandle {
    std::uint32_t handle = 0;
    DriverEndpoint* ep = nullptr;
    SegList segs;
    std::size_t len = 0;
    Addr src;
    std::uint32_t src_handle = 0;
    std::uint32_t msg_seq = 0;
    std::uint64_t request_id = 0;
    std::size_t frag_count = 0;
    std::vector<bool> got;
    std::size_t received = 0;
    std::uint32_t next_block = 0;   // next block index to request
    std::uint32_t blocks_total = 0;
    std::vector<PendingSkb> pending;  // skbuffs awaiting I/OAT completion
    std::vector<int> channels;        // I/OAT channels used by this message
    int next_channel_slot = 0;
    std::size_t head_copied = 0;      // cache_warm_head bytes done via memcpy
    int retries = 0;
    std::size_t last_progress = 0;    // received count at last timer fire
    sim::Time started_at = 0;         // cmd_pull time, for the latency hist
    sim::Time last_block_done = 0;    // when the previous block completed
    sim::Time srtt = 0;               // smoothed block service time
    sim::EventHandle block_timer;
  };

  // ----- intra-node messages awaiting their one-copy syscall -----
  struct LocalMsg {
    std::uint32_t handle = 0;
    DriverEndpoint* src_ep = nullptr;
    SegList segs;
    std::size_t len = 0;
    std::uint64_t request_id = 0;
    int src_core_hint = 0;
  };

  // ----- helpers -----
  void transmit(Addr src_ep_addr, Addr dst, std::shared_ptr<OmxPkt> pkt,
                std::size_t data_bytes);
  void push_event(DriverEndpoint& ep, Event ev);
  void send_pull_req(PullHandle& h, std::uint32_t block);
  void arm_block_timer(PullHandle& h);
  void arm_rndv_timer(std::uint32_t handle);
  void arm_eager_timer(std::uint32_t seq);
  void send_eager_frags(const EagerTx& t);
  void cleanup_pull(PullHandle& h);
  void finish_pull(BhCtx& ctx, PullHandle& h);
  std::uint64_t flow_key(Addr a) const {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.node))
            << 16) |
           a.endpoint;
  }
  [[nodiscard]] bool offload_large(std::size_t msg_len,
                                   std::size_t frag_len) const;
  [[nodiscard]] sim::Time bh_copy_cost(std::size_t len,
                                       std::size_t chunk) const;

  Node& node_;
  OmxConfig config_;
  mem::RegCache regcache_;
  sim::Counters counters_;

  // Typed trace-event ids, interned once at construction; the hot paths
  // below then emit fixed-size records without building strings.
  obs::EventId tid_wire_tx_{};
  obs::EventId tid_pull_start_{};
  obs::EventId tid_pull_done_{};

  // Hot-path counter handles (one interning at construction, plain
  // increments afterwards; ISSUE: no string-keyed map lookups on the
  // descriptor-submit or packet-dispatch paths).
  obs::Counter* c_pulls_started_ = nullptr;
  obs::Counter* c_pulls_finished_ = nullptr;
  obs::Counter* c_pull_reqs_ = nullptr;
  obs::Counter* c_pull_replies_ = nullptr;
  obs::Counter* c_large_ioat_bytes_ = nullptr;
  obs::Counter* c_large_memcpy_bytes_ = nullptr;
  obs::Counter* c_medium_overlap_bytes_ = nullptr;
  obs::Counter* c_medium_ioat_bytes_ = nullptr;
  obs::Counter* c_eager_sent_ = nullptr;
  obs::Counter* c_nacks_sent_ = nullptr;
  obs::Counter* c_cleanup_runs_ = nullptr;
  obs::Counter* c_csum_drops_ = nullptr;
  obs::Counter* c_dma_faults_ = nullptr;
  obs::Counter* c_dma_fallback_bytes_ = nullptr;

  // Per-message pull latency histogram (ns), fed on finish_pull.
  obs::Histogram* h_pull_ns_ = nullptr;

  std::map<std::uint16_t, std::unique_ptr<DriverEndpoint>> endpoints_;
  std::map<std::uint32_t, SendRegion> send_regions_;
  std::map<std::uint32_t, EagerTx> eager_tx_;
  std::map<std::uint32_t, std::unique_ptr<PullHandle>> pulls_;
  std::map<std::uint32_t, LocalMsg> local_msgs_;
  std::uint32_t next_handle_ = 1;
  std::uint32_t next_eager_id_ = 1;
};

}  // namespace openmx::core
