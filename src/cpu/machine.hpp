#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <vector>

#include "obs/timeline.hpp"
#include "sim/engine.hpp"
#include "sim/sim_thread.hpp"
#include "sim/time.hpp"

namespace openmx::cpu {

/// What a core is busy doing.  Figure 9 of the paper breaks receive-side
/// CPU usage into exactly these buckets (user library, driver command
/// processing in syscalls, bottom-half receive processing), so the
/// accounting is kept per category.
enum class Cat : std::uint8_t {
  App = 0,        // application compute (not counted as stack overhead)
  UserLib,        // MX library: matching, ring copies, polling
  DriverSyscall,  // driver work inside syscalls: pinning, command posting
  BottomHalf,     // receive callback run by the interrupt bottom half
  kCount,
};

inline constexpr std::size_t kNumCats = static_cast<std::size_t>(Cat::kCount);

// The utilization timeline encodes these categories as raw bytes; keep
// the two enumerations aligned.
static_assert(static_cast<std::uint8_t>(Cat::App) == obs::kCatApp);
static_assert(static_cast<std::uint8_t>(Cat::UserLib) == obs::kCatUserLib);
static_assert(static_cast<std::uint8_t>(Cat::DriverSyscall) == obs::kCatDriver);
static_assert(static_cast<std::uint8_t>(Cat::BottomHalf) ==
              obs::kCatBottomHalf);

inline const char* cat_name(Cat c) {
  switch (c) {
    case Cat::App: return "app";
    case Cat::UserLib: return "user-library";
    case Cat::DriverSyscall: return "driver";
    case Cat::BottomHalf: return "bottom-half";
    default: return "?";
  }
}

/// Result of a unit of core work: how long it occupies the core, and a
/// continuation to run when the core time has elapsed.  Side effects that
/// logically happen *when the work finishes* (data becoming visible,
/// packets handed to the NIC) belong in `done`.
struct TaskResult {
  sim::Time cost = 0;
  std::function<void()> done;
};

/// A node's CPUs: dual quad-core Xeon E5345 "Clovertown" topology as used
/// in the paper (2 sockets x 2 dual-core subchips per socket; each subchip
/// pair shares an L2 cache).
///
/// Each core serializes the work submitted to it, which is how core
/// contention emerges: a bottom half that saturates its core delays the
/// next packet's processing, capping receive throughput exactly as the
/// paper's Figure 3 shows.
class Machine {
 public:
  static constexpr int kSockets = 2;
  static constexpr int kSubchipsPerSocket = 2;
  static constexpr int kCoresPerSubchip = 2;
  static constexpr int kNumCores =
      kSockets * kSubchipsPerSocket * kCoresPerSubchip;

  explicit Machine(sim::Engine& engine) : engine_(engine), cores_(kNumCores) {}

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] sim::Engine& engine() { return engine_; }

  /// First timeline track of this machine's cores (obs::cpu_track of the
  /// owning node); set by Node so multi-node timelines do not collide.
  void set_track_base(int base) { track_base_ = base; }
  [[nodiscard]] int track_base() const { return track_base_; }

  [[nodiscard]] static int socket_of(int core) {
    return core / (kSubchipsPerSocket * kCoresPerSubchip);
  }
  /// Global subchip index; cores on the same subchip share an L2 cache.
  [[nodiscard]] static int subchip_of(int core) {
    return core / kCoresPerSubchip;
  }
  [[nodiscard]] static bool share_l2(int a, int b) {
    return subchip_of(a) == subchip_of(b);
  }

  /// Submits serialized work to a core from engine context.  `work` runs
  /// when the core becomes free and returns the time it occupies the core;
  /// its `done` continuation runs when that time has elapsed.
  void submit(int core, Cat cat, std::function<TaskResult()> work) {
    submit_keyed(core, cat, 0, std::move(work));
  }

  /// Like submit(), but tagged with a latency-attribution key: when the
  /// work reaches the front of the core's run queue, the time it sat
  /// waiting is stamped as obs::Wait::BhQueueWait for that message.  A
  /// zero key (the default) records nothing.
  void submit_keyed(int core, Cat cat, std::uint64_t attrib_key,
                    std::function<TaskResult()> work) {
    check_core(core);
    Core& c = cores_[core];
    c.queue.push_back(Item{cat, attrib_key,
                           attrib_key ? engine_.now() : sim::Time{0},
                           std::move(work)});
    if (!c.running) start_next(core);
  }

  /// Convenience: fixed-cost work whose effects all happen at completion.
  void submit_fixed(int core, Cat cat, sim::Time cost,
                    std::function<void()> done = {}) {
    submit(core, cat, [cost, done = std::move(done)]() mutable {
      return TaskResult{cost, std::move(done)};
    });
  }

  /// Called from *inside* a SimThread: occupies `core` for `dur` in
  /// category `cat`, queueing behind any other work on that core, and
  /// returns when the time has elapsed.
  void thread_advance(sim::SimThread& t, int core, sim::Time dur, Cat cat) {
    submit_fixed(core, cat, dur, [&t] { t.wake(); });
    t.pause();
  }

  /// Cumulative busy time of `core` in category `cat`.
  [[nodiscard]] sim::Time busy(int core, Cat cat) const {
    check_core(core);
    return cores_[core].busy[static_cast<std::size_t>(cat)];
  }

  /// Cumulative busy time of `core` across all categories.
  [[nodiscard]] sim::Time busy_total(int core) const {
    check_core(core);
    sim::Time t = 0;
    for (auto b : cores_[core].busy) t += b;
    return t;
  }

  /// Busy time in `cat` summed over all cores.
  [[nodiscard]] sim::Time busy_all_cores(Cat cat) const {
    sim::Time t = 0;
    for (int c = 0; c < kNumCores; ++c) t += busy(c, cat);
    return t;
  }

  /// True if the core has queued or running work.
  [[nodiscard]] bool core_active(int core) const {
    check_core(core);
    return cores_[core].running;
  }

  void reset_accounting() {
    for (auto& c : cores_) c.busy.fill(0);
  }

 private:
  struct Item {
    Cat cat;
    std::uint64_t attrib_key = 0;
    sim::Time enqueued_at = 0;
    std::function<TaskResult()> work;
  };

  struct Core {
    std::deque<Item> queue;
    bool running = false;
    std::array<sim::Time, kNumCats> busy{};
  };

  void check_core(int core) const {
    if (core < 0 || core >= kNumCores)
      throw std::out_of_range("Machine: bad core index");
  }

  void start_next(int core) {
    Core& c = cores_[core];
    if (c.queue.empty()) {
      c.running = false;
      return;
    }
    c.running = true;
    Item item = std::move(c.queue.front());
    c.queue.pop_front();
    if (item.attrib_key && engine_.attrib().enabled())
      engine_.attrib().add(item.attrib_key, obs::Wait::BhQueueWait,
                           engine_.now() - item.enqueued_at);
    TaskResult r = item.work();
    c.busy[static_cast<std::size_t>(item.cat)] += r.cost;
    engine_.timeline().record(track_base_ + core,
                              static_cast<std::uint8_t>(item.cat),
                              engine_.now(), r.cost);
    engine_.schedule(r.cost, [this, core, done = std::move(r.done)] {
      if (done) done();
      start_next(core);
    });
  }

  sim::Engine& engine_;
  std::vector<Core> cores_;
  int track_base_ = 0;
};

}  // namespace openmx::cpu
