#pragma once

// Flow-level (fluid) network model: the fast-path half of the
// hybrid-fidelity fabric.  Where net::Network moves every Ethernet frame
// as its own event (exact, O(frames)), FlowNetwork treats a whole
// transfer as one *flow* holding a max-min fair share of the links it
// crosses, and schedules a single analytically computed completion event
// per flow — cost O(active flows), independent of transfer size.  This
// is the SimGrid-style fluid model ROADMAP item 3 calls for; packet
// fidelity stays available for the nodes under study via
// net::HybridNetwork (hybrid.hpp).

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "obs/monitor.hpp"
#include "obs/wallprof.hpp"
#include "sim/engine.hpp"
#include "sim/lp.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace openmx::net {

/// Topology and timing of the fluid fabric: every endpoint owns a
/// full-duplex NIC port (tx + rx, each serialized at `port_bw`), and all
/// ports meet in a switch fabric whose aggregate capacity is the sum of
/// port rates divided by `oversub`.  With oversub <= 1 the fabric can
/// never be the bottleneck (the ports already cap the aggregate), so the
/// solver drops it entirely; oversub > 1 models an undersized spine that
/// couples otherwise-independent flows.
struct FlowParams {
  double port_bw = 1244.125e6;      // bytes/s per NIC port (10 GbE data rate)
  sim::Time latency_ns = 500;       // first-byte fabric traversal
  double oversub = 1.0;             // fabric oversubscription factor
  std::size_t frame_overhead = 38;  // per-frame Ethernet overhead
  std::size_t mtu = 9000;           // framing granularity of a transfer
  /// Sliding window over which foreground (packet-fidelity) traffic is
  /// averaged into a capacity reservation on shared ports.
  sim::Time fg_window_ns = 100 * sim::kMicrosecond;

  /// Fluid parameters matching a packet NetParams, so both fidelities
  /// model the same physical links.  `chunk` overrides the framing
  /// granularity (e.g. the Open-MX 4 KiB fragment payload) and
  /// `chunk_overhead` the per-chunk header bytes on top of the Ethernet
  /// overhead.
  static FlowParams match(const NetParams& np, double oversub = 1.0,
                          std::size_t chunk = 0,
                          std::size_t chunk_overhead = 0) {
    FlowParams fp;
    fp.port_bw = np.wire_bw;
    fp.latency_ns = np.latency_ns;
    fp.oversub = oversub;
    fp.frame_overhead = np.frame_overhead + chunk_overhead;
    fp.mtu = chunk ? chunk : np.mtu;
    return fp;
  }
};

/// Handle of one flow; packs {slot, generation} like an event handle.
using FlowId = std::uint64_t;

/// What a completion callback learns about its finished flow.  `finish`
/// is when the last byte cleared the sender's links; delivery callbacks
/// run one fabric latency later.
struct FlowInfo {
  FlowId id = 0;
  int src = -1;
  int dst = -1;
  std::size_t bytes = 0;      // payload bytes requested
  sim::Time start = 0;
  sim::Time finish = 0;
};

using FlowCallback = std::function<void(const FlowInfo&)>;

/// The fluid fabric.  All calls must come from engine context (or, in a
/// partitioned run, from the shard's own LP); the solver itself never
/// schedules more than one completion event per active flow.
///
/// Fairness model: progressive filling over the links touched by the
/// changed flow's connected component — the classic max-min allocation,
/// computed incrementally.  A flow start/finish only re-solves the flows
/// it actually shares a (potentially) binding link with, so disjoint
/// background pairs cost O(1) per event no matter how many thousands of
/// endpoints are active.  A saturated shared fabric (oversub > 1)
/// legitimately couples everything, and the component then grows to
/// match — that is the physics, not an implementation accident.
class FlowNetwork {
 public:
  explicit FlowNetwork(sim::Engine& engine, FlowParams params = {})
      : engine_(engine), params_(params) {
    if (params_.port_bw <= 0)
      throw std::logic_error("FlowNetwork: port bandwidth must be positive");
    if (params_.oversub <= 0)
      throw std::logic_error("FlowNetwork: oversubscription must be positive");
    links_.resize(1);  // fabric link id 0
    c_started_ = &counters_.counter("flow.started");
    c_completed_ = &counters_.counter("flow.completed");
    c_resolves_ = &counters_.counter("flow.resolves");
    c_solver_visits_ = &counters_.counter("flow.solver_visits");
    c_lp_deliveries_ = &counters_.counter("flow.lp_deliveries");
    g_active_ = &counters_.gauge("flow.active");
    h_comp_flows_ = &counters_.histogram("flow.resolve_component_flows");
    h_rate_mibs_ = &counters_.histogram("flow.fair_share_mibs");
  }

  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  [[nodiscard]] const FlowParams& params() const { return params_; }
  [[nodiscard]] std::size_t num_endpoints() const { return num_endpoints_; }
  [[nodiscard]] std::size_t active_flows() const { return active_; }
  [[nodiscard]] const sim::Counters& counters() const { return counters_; }
  [[nodiscard]] sim::Counters& counters() { return counters_; }

  /// Attaches a live monitor, polled at every flow completion (a
  /// deterministic point where the flow counters have just advanced).
  /// Typical SLO: flow.solver_visits / flow.completed staying near 1 —
  /// a super-linear re-solve is the fluid model's pathological mode.
  void set_monitor(obs::Monitor* m) { monitor_ = m; }

  /// Grows the port tables to cover endpoints [0, n).  Implicit on
  /// transfer(), explicit for benchmarks that want allocation up front.
  void ensure_endpoints(std::size_t n) {
    if (n <= num_endpoints_) return;
    num_endpoints_ = n;
    links_.resize(1 + 2 * n);
    for (std::size_t i = 1; i < links_.size(); ++i)
      links_[i].cap = params_.port_bw;
    // Aggregate fabric capacity scales with the attached port count.
    links_[0].cap = static_cast<double>(n) * params_.port_bw / params_.oversub;
  }

  /// On-the-wire size of a transfer: payload plus per-chunk overhead at
  /// the framing granularity (what the packet fabric would have charged).
  [[nodiscard]] std::size_t wire_bytes_for(std::size_t bytes) const {
    const std::size_t chunks =
        bytes == 0 ? 1 : (bytes + params_.mtu - 1) / params_.mtu;
    return bytes + chunks * params_.frame_overhead;
  }

  /// Analytic completion time of an uncontended transfer (for tests and
  /// the cross-validation harness): serialization at full port rate plus
  /// one fabric latency.
  [[nodiscard]] sim::Time uncontended_delivery_ns(std::size_t bytes) const {
    return sim::duration_for_bytes(wire_bytes_for(bytes), params_.port_bw) +
           params_.latency_ns;
  }

  /// Starts a flow of `bytes` from endpoint `src` to endpoint `dst`.
  /// `on_delivered` runs in engine context one fabric latency after the
  /// flow's last byte cleared the sender — on the destination shard when
  /// the fluid fabric is partitioned.
  FlowId transfer(int src, int dst, std::size_t bytes,
                  FlowCallback on_delivered) {
    if (src < 0 || dst < 0)
      throw std::logic_error("FlowNetwork: negative endpoint id");
    if (src == dst)
      throw std::logic_error("FlowNetwork: transfer to self");
    ensure_endpoints(static_cast<std::size_t>(std::max(src, dst)) + 1);
    if (lp_ && lp_of_ep_.at(static_cast<std::size_t>(src)) != lp_->id())
      throw std::logic_error(
          "FlowNetwork: transfer must start on the shard owning its source");

    const std::uint32_t slot = alloc_slot();
    Flow& f = flows_[slot];
    f.src = src;
    f.dst = dst;
    f.bytes = bytes;
    f.remaining = static_cast<double>(wire_bytes_for(bytes));
    f.rate = 0;
    f.start = engine_.now();
    f.last_update = engine_.now();
    f.cb = std::move(on_delivered);
    f.nlinks = 0;
    f.links[f.nlinks++] = tx_link(src);
    f.links[f.nlinks++] = rx_link(dst);
    if (params_.oversub > 1.0) f.links[f.nlinks++] = 0;  // fabric can bind
    for (unsigned i = 0; i < f.nlinks; ++i) link_add(f.links[i], slot, i);

    ++active_;
    c_started_->add();
    g_active_->set(static_cast<std::int64_t>(active_));

    const FlowId id = slot_id(slot, f.gen);
    resolve(flow_links(f));
    return id;
  }

  // ---- hybrid coupling (see net::HybridNetwork) --------------------------

  /// Fraction of `node`'s tx port a foreground frame can serialize at
  /// right now, given the background flows holding the port: the frame
  /// gets the free headroom but never less than an equal fair share.
  [[nodiscard]] double tx_share(int node) {
    return port_share(tx_link(node));
  }
  [[nodiscard]] double rx_share(int node) {
    return port_share(rx_link(node));
  }

  /// Accounts `wire_bytes` of foreground (packet-fidelity) traffic on the
  /// two ports it crossed.  The solver sees the sliding-window average of
  /// these notes as a capacity reservation, so background flows slow down
  /// under foreground load without the fluid model ever touching
  /// per-frame state.
  void note_foreground(int src, int dst, std::size_t wire_bytes) {
    ensure_endpoints(static_cast<std::size_t>(std::max(src, dst)) + 1);
    note_fg_on(links_[tx_link(src)], wire_bytes);
    note_fg_on(links_[rx_link(dst)], wire_bytes);
  }

  // ---- multi-LP shard binding -------------------------------------------

  /// This instance becomes one shard of a partitioned fluid fabric:
  /// transfers must start on the shard owning their source endpoint, and
  /// completions whose destination lives on another LP cross as
  /// timestamped LpMessages (eligible no earlier than one fabric latency
  /// after the completion event, which is exactly the conservative
  /// lookahead contract when lookahead == latency).  Each shard solves
  /// fair shares over its own flows only; rx-port contention *between*
  /// shards is approximated, not shared — documented in DESIGN.md §3b.
  void bind_partition(sim::Lp& lp, std::vector<int> lp_of_endpoint,
                      std::vector<FlowNetwork*> shards) {
    lp_ = &lp;
    lp_of_ep_ = std::move(lp_of_endpoint);
    shards_ = std::move(shards);
    ensure_endpoints(lp_of_ep_.size());
  }

 private:
  friend class HybridNetwork;

  static constexpr double kMinRate = 1.0;       // bytes/s floor, avoids /0
  static constexpr double kSatSlack = 1e-6;     // relative saturation slack

  struct Flow {
    std::uint32_t gen = 0;
    bool active = false;
    int src = -1, dst = -1;
    std::size_t bytes = 0;
    double remaining = 0;  // wire bytes left to move
    double rate = 0;       // currently allocated bytes/s
    double new_rate = 0;   // solver scratch
    sim::Time start = 0;
    sim::Time last_update = 0;
    unsigned nlinks = 0;
    std::array<std::size_t, 3> links{};  // tx, rx[, fabric]
    std::array<std::uint32_t, 3> pos{};  // index in each link's flow list
    FlowCallback cb;
    sim::EventHandle completion;
    std::uint32_t mark = 0;  // solver epoch
    bool frozen = false;     // solver scratch
  };

  struct Link {
    double cap = 0;
    double used = 0;        // sum of current flow rates
    double fg_rate = 0;     // decaying foreground byte-rate estimate
    sim::Time fg_last = 0;
    std::vector<std::uint32_t> flows;
    // solver scratch
    std::uint32_t mark = 0;
    double residual = 0;
    std::uint32_t unfrozen = 0;
  };

  [[nodiscard]] std::size_t tx_link(int node) const {
    return 1 + 2 * static_cast<std::size_t>(node);
  }
  [[nodiscard]] std::size_t rx_link(int node) const {
    return 2 + 2 * static_cast<std::size_t>(node);
  }
  [[nodiscard]] static FlowId slot_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<FlowId>(gen) << 32) | slot;
  }

  [[nodiscard]] std::uint32_t alloc_slot() {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(flows_.size());
      flows_.emplace_back();
    }
    Flow& f = flows_[slot];
    ++f.gen;
    f.active = true;
    f.frozen = false;
    f.mark = 0;
    return slot;
  }

  void link_add(std::size_t l, std::uint32_t slot, unsigned which) {
    flows_[slot].pos[which] = static_cast<std::uint32_t>(links_[l].flows.size());
    links_[l].flows.push_back(slot);
  }

  void link_remove(std::size_t l, std::uint32_t slot, unsigned which) {
    auto& v = links_[l].flows;
    const std::uint32_t at = flows_[slot].pos[which];
    assert(at < v.size() && v[at] == slot);
    const std::uint32_t moved = v.back();
    v[at] = moved;
    v.pop_back();
    if (moved != slot) {
      // Fix the moved flow's position entry for this link.
      Flow& m = flows_[moved];
      for (unsigned i = 0; i < m.nlinks; ++i)
        if (m.links[i] == l) m.pos[i] = at;
    }
  }

  [[nodiscard]] std::vector<std::size_t> flow_links(const Flow& f) const {
    return {f.links.begin(), f.links.begin() + f.nlinks};
  }

  /// Decays and returns the foreground reservation on a link (bounded so
  /// background flows always keep a sliver of every port).
  double fg_reservation(Link& l) {
    if (l.fg_rate <= 0) return 0;
    const sim::Time now = engine_.now();
    const sim::Time dt = now - l.fg_last;
    if (dt >= params_.fg_window_ns) {
      l.fg_rate = 0;
    } else if (dt > 0) {
      l.fg_rate *= static_cast<double>(params_.fg_window_ns - dt) /
                   static_cast<double>(params_.fg_window_ns);
    }
    l.fg_last = now;
    return std::min(l.fg_rate, 0.95 * l.cap);
  }

  void note_fg_on(Link& l, std::size_t wire_bytes) {
    fg_reservation(l);  // decay to now
    l.fg_rate += static_cast<double>(wire_bytes) * 1e9 /
                 static_cast<double>(params_.fg_window_ns);
    l.fg_last = engine_.now();
  }

  [[nodiscard]] double port_share(std::size_t l_id) {
    if (l_id >= links_.size()) return 1.0;
    Link& l = links_[l_id];
    const std::size_t n = l.flows.size();
    if (n == 0) return 1.0;
    const double headroom = std::max(l.cap - l.used, 0.0);
    const double fair = l.cap / static_cast<double>(n + 1);
    const double share = std::max(headroom, fair) / l.cap;
    return std::clamp(share, 0.01, 1.0);
  }

  [[nodiscard]] bool saturated(const Link& l) const {
    return l.used >= l.cap * (1.0 - kSatSlack);
  }

  /// Incremental max-min re-solve: collect the connected component of
  /// links whose allocation can change, run progressive filling over it
  /// (external flows pinned as reservations), and expand + retry if the
  /// new rates would oversubscribe a boundary link.  Then commit: advance
  /// every component flow's residual bytes to `now` at its old rate,
  /// install the new rate, and reschedule its completion event.
  void resolve(std::vector<std::size_t> seeds) {
    OMX_WALL_ZONE("flow.solve");
    const sim::Time now = engine_.now();
    c_resolves_->add();

    for (;;) {
      ++epoch_;
      comp_links_.clear();
      comp_flows_.clear();
      for (std::size_t l : seeds) mark_link(l);
      // Closure: every flow on a component link joins; a joined flow
      // drags in its other links only when they are (near) saturated —
      // an unsaturated link never constrained anyone, so its other
      // flows keep their rates (verified by the expansion check below).
      for (std::size_t i = 0; i < comp_links_.size(); ++i) {
        const Link& l = links_[comp_links_[i]];
        for (std::uint32_t s : l.flows) {
          Flow& f = flows_[s];
          if (f.mark == epoch_) continue;
          f.mark = epoch_;
          comp_flows_.push_back(s);
          for (unsigned k = 0; k < f.nlinks; ++k)
            if (links_[f.links[k]].mark != epoch_ && saturated(links_[f.links[k]]))
              mark_link(f.links[k]);
        }
      }
      if (comp_flows_.empty()) break;
      // Deterministic solve order regardless of membership-list churn.
      std::sort(comp_links_.begin(), comp_links_.end());
      std::sort(comp_flows_.begin(), comp_flows_.end());
      c_solver_visits_->add(comp_flows_.size());

      // Residual capacity = cap - foreground reservation - external flows
      // (flows outside the component keep their current rates).
      for (std::size_t lid : comp_links_) {
        Link& l = links_[lid];
        double comp_used = 0;
        std::uint32_t n = 0;
        for (std::uint32_t s : l.flows)
          if (flows_[s].mark == epoch_) {
            comp_used += flows_[s].rate;
            ++n;
          }
        const double external = l.used - comp_used;
        l.residual =
            std::max(l.cap - fg_reservation(l) - external, l.cap * 0.01);
        l.unfrozen = n;
      }
      for (std::uint32_t s : comp_flows_) flows_[s].frozen = false;

      // Progressive filling: repeatedly freeze the flows of the current
      // bottleneck link at its equal share.
      std::size_t left = comp_flows_.size();
      while (left > 0) {
        std::size_t bneck = 0;
        double best = 0;
        bool found = false;
        for (std::size_t lid : comp_links_) {
          const Link& l = links_[lid];
          if (l.unfrozen == 0) continue;
          const double share = l.residual / static_cast<double>(l.unfrozen);
          if (!found || share < best) {
            found = true;
            best = share;
            bneck = lid;
          }
        }
        assert(found);
        const double share = std::max(best, kMinRate);
        for (std::uint32_t s : comp_flows_) {
          Flow& f = flows_[s];
          if (f.frozen) continue;
          bool on = false;
          for (unsigned k = 0; k < f.nlinks; ++k)
            if (f.links[k] == bneck) on = true;
          if (!on) continue;
          f.frozen = true;
          f.new_rate = share;
          --left;
          for (unsigned k = 0; k < f.nlinks; ++k) {
            Link& l2 = links_[f.links[k]];
            if (l2.mark != epoch_) continue;
            l2.residual -= share;
            --l2.unfrozen;
          }
        }
      }

      // Expansion check: would any boundary link (a component flow's
      // link that stayed outside the component) be pushed past capacity
      // by the new rates?  If so its external flows must slow down too —
      // grow the component and re-solve.  Monotone, hence terminating.
      bool expanded = false;
      for (std::uint32_t s : comp_flows_) {
        Flow& f = flows_[s];
        for (unsigned k = 0; k < f.nlinks; ++k) {
          Link& l = links_[f.links[k]];
          if (l.mark == epoch_) continue;
          const double next_used = l.used + f.new_rate - f.rate;
          if (next_used > l.cap * (1.0 + kSatSlack)) {
            seeds.push_back(f.links[k]);
            expanded = true;
          }
        }
      }
      if (!expanded) break;
    }

    // Commit.
    h_comp_flows_->add(comp_flows_.size());
    for (std::uint32_t s : comp_flows_) {
      Flow& f = flows_[s];
      advance(f, now);
      for (unsigned k = 0; k < f.nlinks; ++k)
        links_[f.links[k]].used += f.new_rate - f.rate;
      f.rate = f.new_rate;
      h_rate_mibs_->add(
          static_cast<std::uint64_t>(f.rate / static_cast<double>(sim::MiB)));
      const double ns = f.remaining / f.rate * 1e9;
      sim::Time dt = static_cast<sim::Time>(std::ceil(ns));
      if (dt < 0) dt = 0;
      f.completion.cancel();
      f.completion = engine_.schedule_cancellable(
          dt, sim::Band::kFlow, [this, s] { complete(s); });
    }
  }

  void mark_link(std::size_t l) {
    if (links_[l].mark == epoch_) return;
    links_[l].mark = epoch_;
    comp_links_.push_back(l);
  }

  static void advance(Flow& f, sim::Time now) {
    if (now > f.last_update) {
      f.remaining -= f.rate * static_cast<double>(now - f.last_update) * 1e-9;
      if (f.remaining < 0) f.remaining = 0;
      f.last_update = now;
    }
  }

  void complete(std::uint32_t slot) {
    Flow& f = flows_[slot];
    assert(f.active);
    const sim::Time now = engine_.now();
    advance(f, now);
    // Integer-ns rounding leaves at most one rate-nanosecond of residue.
    assert(f.remaining <= f.rate * 2e-9 + 1e-6);

    FlowInfo info;
    info.id = slot_id(slot, f.gen);
    info.src = f.src;
    info.dst = f.dst;
    info.bytes = f.bytes;
    info.start = f.start;
    info.finish = now;

    std::vector<std::size_t> seeds = flow_links(f);
    for (unsigned k = 0; k < f.nlinks; ++k) {
      links_[f.links[k]].used -= f.rate;
      if (links_[f.links[k]].used < 0) links_[f.links[k]].used = 0;
      link_remove(f.links[k], slot, k);
    }
    FlowCallback cb = std::move(f.cb);
    f.cb = nullptr;
    f.active = false;
    f.rate = 0;
    free_slots_.push_back(slot);
    --active_;
    c_completed_->add();
    g_active_->set(static_cast<std::int64_t>(active_));
    if (monitor_) monitor_->poll(now);

    const sim::Time deliver_at = now + params_.latency_ns;
    if (lp_ && lp_of_ep_.at(static_cast<std::size_t>(info.dst)) != lp_->id()) {
      // Cross-shard delivery: carried as a timestamped LpMessage keyed
      // (deliver_at, src endpoint, per-shard seq) — the same total order
      // the packet fabric's remote claims use.
      const int dst_lp = lp_of_ep_[static_cast<std::size_t>(info.dst)];
      FlowNetwork* peer = shards_.at(static_cast<std::size_t>(dst_lp));
      sim::LpMessage msg;
      msg.when = deliver_at;
      msg.origin = static_cast<std::uint32_t>(info.src);
      msg.seq = lp_seq_++;
      msg.apply = [peer, deliver_at, info, cb = std::move(cb)]() mutable {
        peer->c_lp_deliveries_->add();
        peer->engine_.schedule_at(deliver_at,
                                  [cb = std::move(cb), info] { cb(info); });
      };
      lp_->post(dst_lp, std::move(msg));
    } else if (cb) {
      engine_.schedule_at(deliver_at, [cb = std::move(cb), info] { cb(info); });
    }

    // The freed capacity belongs to whoever shared these links.
    resolve(std::move(seeds));
  }

  sim::Engine& engine_;
  FlowParams params_;
  std::vector<Flow> flows_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<Link> links_;  // [0] fabric, then tx/rx per endpoint
  std::size_t num_endpoints_ = 0;
  std::size_t active_ = 0;
  std::uint32_t epoch_ = 0;
  std::vector<std::size_t> comp_links_;
  std::vector<std::uint32_t> comp_flows_;
  sim::Lp* lp_ = nullptr;  // null = unpartitioned
  std::vector<int> lp_of_ep_;
  std::vector<FlowNetwork*> shards_;
  std::uint64_t lp_seq_ = 0;
  sim::Counters counters_;
  obs::Counter* c_started_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Counter* c_resolves_ = nullptr;
  obs::Counter* c_solver_visits_ = nullptr;
  obs::Counter* c_lp_deliveries_ = nullptr;
  obs::Gauge* g_active_ = nullptr;
  obs::Histogram* h_comp_flows_ = nullptr;
  obs::Histogram* h_rate_mibs_ = nullptr;
  obs::Monitor* monitor_ = nullptr;
};

}  // namespace openmx::net
