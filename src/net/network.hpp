#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cpu/machine.hpp"
#include "mem/memcpy_model.hpp"
#include "obs/wallprof.hpp"
#include "sim/engine.hpp"
#include "sim/lp.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace openmx::net {

/// Base class for typed frame payloads.  The network layer treats payloads
/// as opaque; the Open-MX wire protocol (core/wire.hpp) derives from this.
struct Payload {
  virtual ~Payload() = default;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// One Ethernet frame in flight.  `wire_bytes` is the full on-the-wire size
/// including protocol headers but excluding the fixed per-frame Ethernet
/// overhead (preamble/header/FCS/IFG), which the link model adds.
///
/// `csum` is the protocol layer's wire checksum of the payload (0 = the
/// sender computed none).  The payload object itself is shared and
/// immutable, so wire corruption is modeled by flipping bits of the
/// checksum copy carried in the frame: the receiver's recompute-and-compare
/// fails exactly as it would had the payload bits flipped instead.
struct Frame {
  int src_node = -1;
  int dst_node = -1;
  std::size_t wire_bytes = 0;
  std::uint32_t csum = 0;
  PayloadPtr payload;
};

/// What the fault layer decided to do with one frame about to cross the
/// wire.  Defaults mean "deliver untouched".  Several rules can stack:
/// drop wins over everything; duplicates, delay and corruption combine.
struct FaultDecision {
  bool drop = false;      // frame vanishes on the wire
  bool corrupt = false;   // wire image damaged; receiver's checksum fails
  int duplicates = 0;     // extra copies delivered after the original
  sim::Time delay_ns = 0; // held back in the fabric: bounded reordering
};

/// Injection point for scripted adversarial faults, consulted once per
/// transmitted frame (after the frame occupied the tx port, before the
/// uniform Bernoulli loss draw).  Implemented by fault::Plan; the net
/// layer only knows this interface so it stays independent of the wire
/// protocol above it.  In a partitioned run each shard carries its own
/// injector, so fault occurrence counting follows the shard-local
/// transmit order and stays worker-count independent.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual FaultDecision on_transmit(const Frame& frame) = 0;
};

/// Link and NIC timing parameters.
///
/// The wire is 10 Gbit/s Ethernet: 9953 Mbit/s of usable data rate
/// (= 1244 MB/s = 1186 MiB/s), the line-rate ceiling quoted throughout the
/// paper.  Hosts are connected back-to-back ("two Myri-10G NICs connected
/// without any switch").  `latency_ns` doubles as the conservative
/// lookahead of a partitioned run: no frame can affect another logical
/// process sooner than one wire latency after it left the tx port.
struct NetParams {
  double wire_bw = 1244.125e6;       // bytes/s of 10 GbE data rate
  sim::Time latency_ns = 500;        // NIC-to-NIC, back-to-back cable
  std::size_t frame_overhead = 38;   // preamble+eth hdr+FCS+IFG per frame
  std::size_t mtu = 9000;            // jumbo frames
  std::size_t rx_ring_slots = 512;   // receive descriptor ring depth
  sim::Time intr_ns = 350;           // interrupt entry + BH dispatch per frame
  double loss_prob = 0.0;            // injected frame loss
  std::uint64_t loss_seed = 42;
};

class Network;

/// Hybrid-fidelity coupling hook (see net::HybridNetwork): lets a
/// coexisting fluid model derate this packet network's link capacities
/// and observe its traffic, without the packet path knowing anything
/// about flows.
///
/// tx_share()/rx_share() return the fraction of the port's line rate a
/// foreground frame may serialize at right now (1.0 = uncontended); the
/// packet path divides its serialization rate by the share.  on_wire()
/// reports every frame that occupied a tx port (including frames later
/// dropped in the fabric), so the fluid side can reserve capacity for
/// foreground load.  With no throttle installed the transmit path is
/// byte-for-byte the historical one — asserted by test_flow's
/// packet-parity suite.
class LinkThrottle {
 public:
  virtual ~LinkThrottle() = default;
  virtual double tx_share(int node) = 0;
  virtual double rx_share(int node) = 0;
  virtual void on_wire(int src_node, int dst_node, std::size_t wire_bytes) = 0;
};

/// A received frame held in a NIC-ring socket buffer.
///
/// The skbuff occupies one rx-ring slot until every reference is dropped —
/// exactly the resource the paper's Section III-B cleanup routine must
/// bound when asynchronous I/OAT copies keep skbuffs alive long after the
/// bottom half returned.
class Skbuff {
 public:
  Skbuff() = default;

  [[nodiscard]] const Payload* payload() const {
    return state_ ? state_->frame.payload.get() : nullptr;
  }
  [[nodiscard]] std::size_t wire_bytes() const {
    return state_ ? state_->frame.wire_bytes : 0;
  }
  [[nodiscard]] std::uint32_t csum() const {
    return state_ ? state_->frame.csum : 0;
  }
  [[nodiscard]] int src_node() const { return state_ ? state_->frame.src_node : -1; }
  [[nodiscard]] bool valid() const { return static_cast<bool>(state_); }

  /// Typed view of the payload; throws on type mismatch.
  template <typename T>
  [[nodiscard]] const T& as() const {
    const auto* p = dynamic_cast<const T*>(payload());
    if (!p) throw std::logic_error("Skbuff: payload type mismatch");
    return *p;
  }

  /// Explicitly returns the ring slot (also happens when the last copy of
  /// this handle is destroyed).
  void release() { state_.reset(); }

 private:
  friend class Nic;
  struct State {
    Frame frame;
    std::function<void()> on_free;
    ~State() {
      if (on_free) on_free();
    }
  };
  explicit Skbuff(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// One Ethernet NIC: a transmit path serialized at line rate and a receive
/// path that DMAs frames into ring skbuffs and hands them to a registered
/// callback from interrupt/bottom-half context.
///
/// This is the generic-hardware receive model the paper describes: the
/// driver cannot know which message a frame belongs to before it arrives,
/// so zero-copy receive into application buffers is impossible and every
/// frame lands in a ring skbuff first (Section II-B).
class Nic {
 public:
  /// Callback invoked (from engine context, after the modeled interrupt
  /// cost on `bh_core`) for each received frame.
  using RxCallback = std::function<void(Skbuff)>;

  Nic(sim::Engine& engine, cpu::Machine& machine, mem::MemBus& bus,
      int node_id, int bh_core)
      : engine_(engine),
        machine_(machine),
        bus_(bus),
        node_id_(node_id),
        bh_core_(bh_core) {
    // Interned once: deliver() runs per frame and must not do map lookups.
    c_rx_frames_ = &counters_.counter("nic.rx_frames");
    c_rx_bytes_ = &counters_.counter("nic.rx_bytes");
    c_ring_drops_ = &counters_.counter("nic.rx_ring_drops");
  }

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  [[nodiscard]] int node_id() const { return node_id_; }
  [[nodiscard]] int bh_core() const { return bh_core_; }
  void set_bh_core(int core) { bh_core_ = core; }
  void set_rx_callback(RxCallback cb) { rx_cb_ = std::move(cb); }
  [[nodiscard]] std::size_t rx_ring_in_use() const { return ring_in_use_; }
  [[nodiscard]] const sim::Counters& counters() const { return counters_; }
  [[nodiscard]] sim::Counters& counters() { return counters_; }

 private:
  friend class Network;

  /// Network delivers a frame: claim a ring slot, model the NIC's DMA into
  /// host memory, then schedule the interrupt bottom half.
  void deliver(const Frame& frame, const NetParams& params) {
    if (ring_in_use_ >= params.rx_ring_slots) {
      c_ring_drops_->add();
      return;
    }
    ++ring_in_use_;
    c_rx_frames_->add();
    c_rx_bytes_->add(frame.wire_bytes);
    auto state = std::make_shared<Skbuff::State>();
    state->frame = frame;
    state->on_free = [this] { --ring_in_use_; };
    // Interrupt entry + bottom-half dispatch occupy the BH core before the
    // protocol callback runs.
    machine_.submit_fixed(bh_core_, cpu::Cat::BottomHalf, params.intr_ns,
                          [this, state = std::move(state)]() mutable {
                            if (rx_cb_) rx_cb_(Skbuff{std::move(state)});
                          });
  }

  sim::Engine& engine_;
  cpu::Machine& machine_;
  mem::MemBus& bus_;
  int node_id_;
  int bh_core_;
  RxCallback rx_cb_;
  std::size_t ring_in_use_ = 0;
  sim::Counters counters_;
  obs::Counter* c_rx_frames_ = nullptr;
  obs::Counter* c_rx_bytes_ = nullptr;
  obs::Counter* c_ring_drops_ = nullptr;
};

/// One frame's pending reservation of a destination rx port.
///
/// The claim becomes eligible at `claim_time` = wire-arrival minus its
/// own serialization time — the earliest instant the port could start
/// taking this frame.  Claims on one port are served in the total order
/// (claim_time, src_node, src_seq), a key that exists identically in a
/// single-engine and a partitioned run, which is what makes the two
/// modes bit-identical (see DESIGN.md "Multi-LP execution").
struct RxClaim {
  sim::Time claim_time = 0;
  std::uint32_t src_node = 0;
  std::uint64_t src_seq = 0;   // per-source transmit counter (dups included)
  sim::Time ser = 0;           // rx-port serialization time
  sim::Time extra_delay = 0;   // fault-injected fabric delay, post-port
  Frame frame;
};

/// The cable(s): point-to-point full-duplex links between every pair of
/// attached NICs, each serialized at 10 GbE line rate on both the transmit
/// and the receive side.
///
/// Receive-port arbitration runs through per-destination claim heaps: a
/// transmit computes its claim time from sender-local state only (tx
/// port, wire latency) and enqueues an RxClaim; a Band::kClaim engine
/// event at that time pops the heap minimum and reserves the port.
/// Because the heap orders claims by a location-independent key, the
/// arbitration result does not depend on which engine executed the
/// transmit — so the Network can be sharded across logical processes
/// (one shard per LP via bind_partition) with remote claims carried as
/// timestamped LpMessages, and deliver bit-identical timing to the
/// sequential single-engine run.
class Network {
 public:
  Network(sim::Engine& engine, NetParams params = {})
      : engine_(engine), params_(params) {
    c_tx_frames_ = &counters_.counter("net.tx_frames");
    c_dropped_ = &counters_.counter("net.dropped_frames");
    c_fault_drops_ = &counters_.counter("net.fault_drops");
    c_fault_dups_ = &counters_.counter("net.fault_dup_frames");
    c_fault_delayed_ = &counters_.counter("net.fault_delayed");
    c_fault_corrupt_ = &counters_.counter("net.fault_corrupted");
  }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] const NetParams& params() const { return params_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  void set_loss_prob(double p) { params_.loss_prob = p; }

  /// Installs (or clears, with nullptr) the scripted fault injector.  No
  /// injector means the transmit path is byte-for-byte the pre-fault one.
  void set_fault_injector(FaultInjector* f) { faults_ = f; }
  [[nodiscard]] FaultInjector* fault_injector() const { return faults_; }

  /// Installs (or clears) the hybrid-fidelity capacity coupling; see
  /// LinkThrottle.  No throttle means historical bit-identical timing.
  void set_link_throttle(LinkThrottle* t) { throttle_ = t; }
  [[nodiscard]] LinkThrottle* link_throttle() const { return throttle_; }

  void attach(Nic& nic) {
    const auto id = static_cast<std::size_t>(nic.node_id());
    if (nics_.size() <= id) grow(id + 1);
    nics_[id] = &nic;
  }

  /// Multi-LP wiring: this instance becomes `lp`'s shard of the fabric.
  /// `lp_of_node` maps every node id to its LP; `shards` holds every
  /// shard indexed by LP id (including this one).  Only NICs of local
  /// nodes may be attached to a shard; a transmit to a remote node posts
  /// its rx-port claim to the destination shard as an LpMessage.  Must
  /// be called before the first transmit.
  void bind_partition(sim::Lp& lp, std::vector<int> lp_of_node,
                      std::vector<Network*> shards) {
    lp_ = &lp;
    lp_of_node_ = std::move(lp_of_node);
    shards_ = std::move(shards);
    grow(lp_of_node_.size());
  }

  /// Transmits `frame`; caller has already charged host-side send costs.
  /// The frame occupies the sender's tx port, crosses the wire, then
  /// occupies the receiver's rx port (which is also where the NIC's DMA
  /// into host memory is accounted for bus-contention purposes).
  void transmit(Frame frame) {
    OMX_WALL_ZONE("net.transmit");
    if (frame.wire_bytes > params_.mtu + 64)
      throw std::logic_error("Network: frame exceeds MTU");
    const auto src = static_cast<std::size_t>(frame.src_node);
    const auto dst = static_cast<std::size_t>(frame.dst_node);
    if (src >= nics_.size() || !nics_[src] || !node_known(dst))
      throw std::logic_error("Network: unattached node");

    c_tx_frames_->add();
    const std::size_t wire_total = frame.wire_bytes + params_.frame_overhead;
    // Background flows sharing a port stretch the frame's serialization
    // on that side; with no throttle both sides serialize at line rate
    // and ser_rx == ser_tx (the historical single-`ser` path).
    sim::Time ser_tx = sim::duration_for_bytes(wire_total, params_.wire_bw);
    sim::Time ser_rx = ser_tx;
    if (throttle_) {
      ser_tx = sim::duration_for_bytes(
          wire_total, params_.wire_bw * throttle_->tx_share(frame.src_node));
      ser_rx = sim::duration_for_bytes(
          wire_total, params_.wire_bw * throttle_->rx_share(frame.dst_node));
    }
    const sim::Time tx_start = std::max(engine_.now(), tx_free_[src]);
    tx_free_[src] = tx_start + ser_tx;
    if (throttle_)
      throttle_->on_wire(frame.src_node, frame.dst_node, wire_total);

    // Scripted faults see every frame in transmit order (deterministic
    // occurrence counting), before the uniform Bernoulli loss draw.
    FaultDecision fd;
    if (faults_) fd = faults_->on_transmit(frame);
    if (fd.drop) {
      c_fault_drops_->add();
      return;
    }
    if (fd.corrupt) {
      // Damage the wire image: the receiver recomputes the payload
      // checksum, compares against this flipped copy, and discards.
      frame.csum ^= 0xDEADBEEFu;
      c_fault_corrupt_->add();
    }
    if (fd.delay_ns > 0) c_fault_delayed_->add();

    // The Bernoulli loss stream is per source node (seeded from
    // loss_seed and the node id), so draws depend only on the sender's
    // own transmit order — identical sequentially and partitioned.
    if (params_.loss_prob > 0.0 &&
        loss_rng(src).chance(params_.loss_prob)) {
      c_dropped_->add();
      return;
    }

    // Earliest instant the rx port could start serializing this frame:
    // it left the tx port at tx_free_[src] and needs ser_rx on the far
    // side ending no sooner than one wire latency after tx completion —
    // but never earlier than first-byte arrival (tx_start + latency),
    // which matters when a throttled rx side is slower than the tx side.
    // Unthrottled the two expressions are equal, so this reduces exactly
    // to the historical tx_end + latency - ser.  claim_time >= now +
    // latency either way — the lookahead guarantee.
    const sim::Time claim_time =
        std::max(tx_free_[src] + params_.latency_ns - ser_rx,
                 tx_start + params_.latency_ns);
    RxClaim claim{claim_time, static_cast<std::uint32_t>(src),
                  tx_seq_[src]++, ser_rx, fd.delay_ns, frame};
    route_claim(dst, claim);

    for (int i = 0; i < fd.duplicates; ++i) {
      // Each duplicate is a real extra frame: it serializes on the rx
      // port again behind everything already queued there.
      RxClaim dup = claim;
      dup.src_seq = tx_seq_[src]++;
      c_fault_dups_->add();
      route_claim(dst, dup);
    }
  }

  /// Full wire-time of a frame of `wire_bytes`, for analytic checks.
  [[nodiscard]] sim::Time serialization_time(std::size_t wire_bytes) const {
    return sim::duration_for_bytes(wire_bytes + params_.frame_overhead,
                                   params_.wire_bw);
  }

  [[nodiscard]] const sim::Counters& counters() const { return counters_; }

 private:
  struct ClaimAfter {
    bool operator()(const RxClaim& a, const RxClaim& b) const {
      if (a.claim_time != b.claim_time) return a.claim_time > b.claim_time;
      if (a.src_node != b.src_node) return a.src_node > b.src_node;
      return a.src_seq > b.src_seq;
    }
  };
  using ClaimHeap =
      std::priority_queue<RxClaim, std::vector<RxClaim>, ClaimAfter>;

  [[nodiscard]] bool node_known(std::size_t node) const {
    if (node < nics_.size() && nics_[node]) return true;
    // Partitioned: a remote node is addressable without a local NIC.
    return lp_ && node < lp_of_node_.size();
  }

  [[nodiscard]] bool node_local(std::size_t node) const {
    return !lp_ || (node < lp_of_node_.size() &&
                    lp_of_node_[node] == lp_->id());
  }

  sim::Rng& loss_rng(std::size_t src) {
    if (loss_rng_.size() <= src) {
      loss_rng_.reserve(src + 1);
      for (std::size_t i = loss_rng_.size(); i <= src; ++i)
        loss_rng_.emplace_back(sim::sweep_seed(params_.loss_seed, i));
    }
    return loss_rng_[src];
  }

  void grow(std::size_t n) {
    if (nics_.size() < n) nics_.resize(n, nullptr);
    if (tx_free_.size() < n) tx_free_.resize(n, 0);
    if (rx_free_.size() < n) rx_free_.resize(n, 0);
    if (tx_seq_.size() < n) tx_seq_.resize(n, 0);
    if (claims_.size() < n) claims_.resize(n);
  }

  void route_claim(std::size_t dst, RxClaim claim) {
    if (node_local(dst)) {
      accept_claim(dst, std::move(claim));
      return;
    }
    Network* peer = shards_.at(
        static_cast<std::size_t>(lp_of_node_[dst]));
    sim::LpMessage msg;
    msg.when = claim.claim_time;
    msg.origin = claim.src_node;
    msg.seq = claim.src_seq;
    msg.apply = [peer, dst, claim = std::move(claim)]() mutable {
      peer->accept_claim(dst, std::move(claim));
    };
    lp_->post(lp_of_node_[dst], std::move(msg));
  }

  /// Enqueues a claim on the destination port and arms its service
  /// event.  One Band::kClaim event fires per claim; each pops the heap
  /// minimum, so claims are served in key order no matter how their
  /// events interleave with anything else at the same nanosecond.
  void accept_claim(std::size_t dst, RxClaim claim) {
    const sim::Time when = claim.claim_time;
    claims_[dst].push(std::move(claim));
    engine_.schedule_at(when, sim::Band::kClaim,
                        [this, dst] { process_claim(dst); });
  }

  void process_claim(std::size_t dst) {
    OMX_WALL_ZONE("net.rx_claim");
    ClaimHeap& heap = claims_[dst];
    assert(!heap.empty() && heap.top().claim_time == engine_.now());
    RxClaim c = heap.top();
    heap.pop();
    const sim::Time rx_start = std::max(engine_.now(), rx_free_[dst]);
    const sim::Time rx_end = rx_start + c.ser;
    rx_free_[dst] = rx_end;

    // A delayed frame is held back in the fabric *after* clearing the rx
    // port, so later frames overtake it: bounded reordering without
    // head-of-line blocking the stream behind it.
    Nic* dnic = nics_[dst];
    engine_.schedule_at(
        rx_end + c.extra_delay,
        [this, dnic, frame = std::move(c.frame)] {
          // The NIC is writing this frame into host memory right up to
          // now; the bus stays loaded while the stream continues
          // (descriptor fetches, the next frames already crossing the
          // wire), so the contention window extends a few microseconds
          // past each delivery.
          dnic->bus_.note_nic_dma_until(engine_.now() + 6 * sim::kMicrosecond);
          dnic->deliver(frame, params_);
        });
  }

  sim::Engine& engine_;
  NetParams params_;
  FaultInjector* faults_ = nullptr;
  LinkThrottle* throttle_ = nullptr;
  std::vector<Nic*> nics_;
  std::vector<sim::Time> tx_free_;
  std::vector<sim::Time> rx_free_;
  std::vector<std::uint64_t> tx_seq_;
  std::vector<ClaimHeap> claims_;
  std::vector<sim::Rng> loss_rng_;
  sim::Lp* lp_ = nullptr;             // null = unpartitioned (single engine)
  std::vector<int> lp_of_node_;
  std::vector<Network*> shards_;
  sim::Counters counters_;
  obs::Counter* c_tx_frames_ = nullptr;
  obs::Counter* c_dropped_ = nullptr;
  obs::Counter* c_fault_drops_ = nullptr;
  obs::Counter* c_fault_dups_ = nullptr;
  obs::Counter* c_fault_delayed_ = nullptr;
  obs::Counter* c_fault_corrupt_ = nullptr;
};

}  // namespace openmx::net
