#pragma once

// Hybrid-fidelity router: one fabric, two models.  Foreground nodes (the
// hosts under study) keep the exact per-frame packet engine — rx-claim
// arbitration, fault::Plan injection, ring-slot accounting, everything —
// while background endpoints move whole transfers through the fluid
// FlowNetwork at O(active flows).  The two sides contend for the same
// link capacities through the LinkThrottle coupling:
//
//   flow → packet: foreground frames serialize at the port's *residual*
//     rate while background flows hold it (Network divides its line rate
//     by tx_share/rx_share);
//   packet → flow: every foreground frame is reported to the fluid model
//     (on_wire → note_foreground), which reserves a sliding-window
//     average of that byte rate out of the shared port capacity before
//     solving fair shares.
//
// With coupling disabled — or with no background flows and no foreground
// frames on a shared port — both models behave exactly as they do alone;
// the packet side is bit-identical to a run with no HybridNetwork at all
// (test_flow asserts this).

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/flow.hpp"
#include "net/network.hpp"
#include "sim/stats.hpp"

namespace openmx::net {

/// Which model carries a node's traffic.
enum class Fidelity : std::uint8_t {
  kPacket = 0,  // exact per-frame semantics (foreground)
  kFlow = 1,    // fluid fair-share flows (background)
};

/// Partitions the endpoint space between the packet and the fluid model
/// and couples their link capacities.  Construction installs the
/// coupling on the packet network; destruction removes it.
///
/// Usage: foreground nodes keep transmitting through the packet Network
/// they were wired to (same object, unchanged call sites); background
/// traffic enters through transfer(), which requires its source to be
/// flow-fidelity.  Node ids index one shared endpoint space, so a port's
/// capacity is contended by whichever model's traffic crosses it.
class HybridNetwork final : public LinkThrottle {
 public:
  HybridNetwork(Network& packet, FlowNetwork& flow)
      : packet_(packet), flow_(flow) {
    packet_.set_link_throttle(this);
    c_fg_frames_ = &counters_.counter("hybrid.fg_frames");
    c_fg_bytes_ = &counters_.counter("hybrid.fg_wire_bytes");
    c_bg_flows_ = &counters_.counter("hybrid.bg_flows");
  }

  ~HybridNetwork() override {
    if (packet_.link_throttle() == this) packet_.set_link_throttle(nullptr);
  }

  HybridNetwork(const HybridNetwork&) = delete;
  HybridNetwork& operator=(const HybridNetwork&) = delete;

  [[nodiscard]] Network& packet() { return packet_; }
  [[nodiscard]] FlowNetwork& flow() { return flow_; }

  /// Marks node ids [first, first+count) as `f`; unmentioned nodes
  /// default to packet fidelity, so existing two-node experiments need
  /// no partition setup at all.
  void set_fidelity(int first, int count, Fidelity f) {
    const auto end = static_cast<std::size_t>(first + count);
    if (fidelity_.size() < end) fidelity_.resize(end, Fidelity::kPacket);
    for (std::size_t i = static_cast<std::size_t>(first); i < end; ++i)
      fidelity_[i] = f;
    if (f == Fidelity::kFlow) flow_.ensure_endpoints(end);
  }

  [[nodiscard]] Fidelity fidelity(int node) const {
    const auto i = static_cast<std::size_t>(node);
    return i < fidelity_.size() ? fidelity_[i] : Fidelity::kPacket;
  }

  /// Background transfer through the fluid model.  The source must be a
  /// flow-fidelity endpoint (foreground nodes keep exact frame
  /// semantics and must go through the packet path); the destination may
  /// be either — a flow landing on a foreground node models bulk
  /// background ingress without per-frame cost.
  FlowId transfer(int src, int dst, std::size_t bytes, FlowCallback cb = {}) {
    if (fidelity(src) != Fidelity::kFlow)
      throw std::logic_error(
          "HybridNetwork: transfer source must be flow-fidelity");
    c_bg_flows_->add();
    return flow_.transfer(src, dst, bytes, std::move(cb));
  }

  /// Uncouples the two models (both run as if alone) without tearing the
  /// router down; used by parity tests and as an escape hatch.
  void set_coupling(bool on) {
    packet_.set_link_throttle(on ? this : nullptr);
  }

  [[nodiscard]] const sim::Counters& counters() const { return counters_; }

  /// Attaches a live monitor to the fluid side (polled per flow
  /// completion) and to the packet side's foreground frames, so a hybrid
  /// run samples whichever model is moving traffic.
  void set_monitor(obs::Monitor* m) {
    monitor_ = m;
    flow_.set_monitor(m);
  }

  // ---- LinkThrottle (called by the packet network per frame) -------------

  double tx_share(int node) override { return flow_.tx_share(node); }
  double rx_share(int node) override { return flow_.rx_share(node); }
  void on_wire(int src, int dst, std::size_t wire_bytes) override {
    c_fg_frames_->add();
    c_fg_bytes_->add(wire_bytes);
    flow_.note_foreground(src, dst, wire_bytes);
    if (monitor_) monitor_->poll(packet_.engine().now());
  }

 private:
  Network& packet_;
  FlowNetwork& flow_;
  std::vector<Fidelity> fidelity_;
  sim::Counters counters_;
  obs::Counter* c_fg_frames_ = nullptr;
  obs::Counter* c_fg_bytes_ = nullptr;
  obs::Counter* c_bg_flows_ = nullptr;
  obs::Monitor* monitor_ = nullptr;
};

}  // namespace openmx::net
