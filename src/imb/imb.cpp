#include "imb/imb.hpp"

#include <algorithm>

namespace openmx::imb {

namespace {

/// Time a loop of `reps` calls to `op` in this rank's thread.
template <typename F>
sim::Time timed(mpi::Comm& comm, int reps, F&& op) {
  const sim::Time t0 = comm.now();
  for (int i = 0; i < reps; ++i) op(i);
  return (comm.now() - t0) / reps;
}

}  // namespace

sim::Time run_test_local(mpi::Comm& comm, Test test, std::size_t bytes,
                         int reps) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::size_t n = std::max<std::size_t>(bytes, 1);

  switch (test) {
    case Test::PingPong: {
      // Ranks 0 and 1 (placed on different nodes by the round-robin rank
      // layout) bounce one message; everyone else idles.
      if (r > 1) return 0;
      mem::Buffer buf(n);
      return timed(comm, reps, [&](int) {
        if (r == 0) {
          comm.send(buf.data(), bytes, 1, 1);
          comm.recv(buf.data(), bytes, 1, 2);
        } else {
          comm.recv(buf.data(), bytes, 0, 1);
          comm.send(buf.data(), bytes, 0, 2);
        }
      });
    }
    case Test::PingPing: {
      if (r > 1) return 0;
      const int peer = 1 - r;
      mem::Buffer sbuf(n), rbuf(n);
      return timed(comm, reps, [&](int) {
        core::Request* rx = comm.irecv(rbuf.data(), bytes, peer, 3);
        core::Request* tx = comm.isend(sbuf.data(), bytes, peer, 3);
        comm.wait(rx);
        comm.wait(tx);
      });
    }
    case Test::SendRecv: {
      // Periodic chain: send right, receive from left.
      const int right = (r + 1) % p;
      const int left = (r - 1 + p) % p;
      mem::Buffer sbuf(n), rbuf(n);
      return timed(comm, reps, [&](int) {
        comm.sendrecv(sbuf.data(), bytes, right, rbuf.data(), bytes, left, 4);
      });
    }
    case Test::Exchange: {
      const int right = (r + 1) % p;
      const int left = (r - 1 + p) % p;
      mem::Buffer sbuf(n), r1(n), r2(n);
      return timed(comm, reps, [&](int) {
        core::Request* a = comm.irecv(r1.data(), bytes, left, 5);
        core::Request* b = comm.irecv(r2.data(), bytes, right, 6);
        core::Request* c = comm.isend(sbuf.data(), bytes, right, 5);
        core::Request* d = comm.isend(sbuf.data(), bytes, left, 6);
        comm.wait(a);
        comm.wait(b);
        comm.wait(c);
        comm.wait(d);
      });
    }
    case Test::Allreduce: {
      mem::AlignedVec<double> buf(std::max<std::size_t>(bytes / 8, 1), 1.0);
      return timed(comm, reps,
                   [&](int) { comm.allreduce(buf.data(), buf.size()); });
    }
    case Test::Reduce: {
      mem::AlignedVec<double> buf(std::max<std::size_t>(bytes / 8, 1), 1.0);
      return timed(comm, reps, [&](int i) {
        comm.reduce(buf.data(), buf.size(), i % p);  // IMB rotates the root
      });
    }
    case Test::ReduceScatter: {
      const std::size_t per =
          std::max<std::size_t>(bytes / 8 / static_cast<std::size_t>(p), 1);
      mem::AlignedVec<double> buf(per * static_cast<std::size_t>(p), 1.0);
      return timed(comm, reps,
                   [&](int) { comm.reduce_scatter(buf.data(), per); });
    }
    case Test::Allgather: {
      mem::Buffer sbuf(n);
      mem::Buffer rbuf(n * static_cast<std::size_t>(p));
      return timed(comm, reps, [&](int) {
        comm.allgather(sbuf.data(), bytes, rbuf.data());
      });
    }
    case Test::Allgatherv: {
      mem::Buffer sbuf(n);
      mem::Buffer rbuf(n * static_cast<std::size_t>(p));
      const std::vector<std::size_t> lens(static_cast<std::size_t>(p), bytes);
      return timed(comm, reps, [&](int) {
        comm.allgatherv(sbuf.data(), bytes, lens, rbuf.data());
      });
    }
    case Test::Alltoall: {
      mem::Buffer sbuf(n * static_cast<std::size_t>(p));
      mem::Buffer rbuf(n * static_cast<std::size_t>(p));
      return timed(comm, reps, [&](int) {
        comm.alltoall(sbuf.data(), bytes, rbuf.data());
      });
    }
    case Test::Bcast: {
      mem::Buffer buf(n);
      return timed(comm, reps,
                   [&](int i) { comm.bcast(buf.data(), bytes, i % p); });
    }
  }
  return 0;
}

}  // namespace openmx::imb
