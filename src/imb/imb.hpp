#pragma once

// The Intel MPI Benchmarks kernels used in Figures 11 and 12, implemented
// against the mini-MPI layer with IMB semantics: a barrier before the
// timed loop, `reps` repetitions, and the maximum per-rank time reported
// (IMB's t_max convention).

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "mem/aligned_buffer.hpp"

namespace openmx::imb {

/// Identifier of one IMB test (the eleven of Figure 12).
enum class Test {
  PingPong,
  PingPing,
  SendRecv,
  Exchange,
  Allreduce,
  Reduce,
  ReduceScatter,
  Allgather,
  Allgatherv,
  Alltoall,
  Bcast,
};

inline const char* test_name(Test t) {
  switch (t) {
    case Test::PingPong: return "PingPong";
    case Test::PingPing: return "PingPing";
    case Test::SendRecv: return "SendRecv";
    case Test::Exchange: return "Exchange";
    case Test::Allreduce: return "Allreduce";
    case Test::Reduce: return "Reduce";
    case Test::ReduceScatter: return "Red.Scat.";
    case Test::Allgather: return "Allgather";
    case Test::Allgatherv: return "Allgatherv";
    case Test::Alltoall: return "Alltoall";
    case Test::Bcast: return "Bcast";
  }
  return "?";
}

inline const std::vector<Test>& all_tests() {
  static const std::vector<Test> k = {
      Test::PingPong,  Test::PingPing,   Test::SendRecv,  Test::Exchange,
      Test::Allreduce, Test::Reduce,     Test::ReduceScatter,
      Test::Allgather, Test::Allgatherv, Test::Alltoall,  Test::Bcast};
  return k;
}

/// Runs `reps` iterations of `test` at message size `bytes` inside rank
/// `comm`'s thread.  Every rank of the communicator must call this
/// collectively.  Returns this rank's time per repetition; callers
/// combine with an allreduce-max for the IMB t_max convention (see
/// run_test below, which does exactly that).
sim::Time run_test_local(mpi::Comm& comm, Test test, std::size_t bytes,
                         int reps);

/// Collective wrapper: barrier, timed loop, allreduce-max of the per-rank
/// times.  Every rank returns the same t_max (ns per repetition).
inline sim::Time run_test(mpi::Comm& comm, Test test, std::size_t bytes,
                          int reps) {
  comm.barrier();
  const sim::Time mine = run_test_local(comm, test, bytes, reps);
  double t = static_cast<double>(mine);
  // max = -min(-t); the mini-MPI allreduce sums, so gather maxima the
  // simple way: allreduce over (t, using max via repeated sendrecv) is
  // overkill — use the sum of one-hot contributions instead.
  mem::AlignedVec<double> all(static_cast<std::size_t>(comm.size()), 0.0);
  all[static_cast<std::size_t>(comm.rank())] = t;
  comm.allreduce(all.data(), all.size());
  double tmax = 0;
  for (double v : all) tmax = std::max(tmax, v);
  return static_cast<sim::Time>(tmax);
}

}  // namespace openmx::imb
