#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/endpoint.hpp"
#include "mpi/comm.hpp"

namespace openmx::mpi {

/// Where one rank runs.
struct Placement {
  int node = 0;
  int core = 0;
};

/// Standard placements: `ppn` processes on each of `nnodes` nodes, ranks
/// assigned round-robin across nodes (mpirun's default), so ranks 0 and 1
/// land on different nodes — PingPong between them crosses the wire.
/// Application processes land on cores 0, 2, 4, ... so they never share a
/// core with the NIC bottom half (core 1); with 2 ppn the two processes
/// sit on different subchips, as in the paper's IMB runs.
inline std::vector<Placement> placements(int nnodes, int ppn) {
  std::vector<Placement> out;
  for (int p = 0; p < ppn; ++p)
    for (int n = 0; n < nnodes; ++n)
      out.push_back(Placement{n, p == 0 ? 0 : 2 * p});
  return out;
}

/// Launches one SPMD body per rank on an existing cluster and runs the
/// simulation to completion — the moral equivalent of mpirun on the
/// simulated testbed.
class World {
 public:
  World(core::Cluster& cluster, std::vector<Placement> placement)
      : cluster_(cluster), placement_(std::move(placement)) {
    for (std::size_t r = 0; r < placement_.size(); ++r) {
      addrs_.push_back(core::Addr{
          placement_[r].node, static_cast<std::uint16_t>(r)});
      // Pre-open the driver-side endpoints so no rank races ahead of a
      // peer that has not attached yet.
      cluster_.node(static_cast<std::size_t>(placement_[r].node))
          .driver()
          .open_endpoint(static_cast<std::uint16_t>(r));
    }
  }

  [[nodiscard]] int size() const { return static_cast<int>(placement_.size()); }

  /// Spawns the ranks and runs to quiescence.
  void run(std::function<void(Comm&)> body) {
    for (std::size_t r = 0; r < placement_.size(); ++r) {
      const Placement pl = placement_[r];
      auto addrs = addrs_;
      cluster_.spawn(
          cluster_.node(static_cast<std::size_t>(pl.node)), pl.core,
          "rank" + std::to_string(r),
          [r, addrs, body](core::Process& proc) {
            core::Endpoint ep(proc, static_cast<std::uint16_t>(r));
            Comm comm(proc, ep, static_cast<int>(r), addrs);
            body(comm);
          });
    }
    cluster_.run();
  }

 private:
  core::Cluster& cluster_;
  std::vector<Placement> placement_;
  std::vector<core::Addr> addrs_;
};

}  // namespace openmx::mpi
