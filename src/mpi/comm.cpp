#include "mpi/comm.hpp"
#include "mem/aligned_buffer.hpp"

#include <cstring>
#include <stdexcept>

namespace openmx::mpi {

core::Request* Comm::isend(const void* buf, std::size_t len, int dst,
                           int tag) {
  return ep_.isend(buf, len, ranks_.at(static_cast<std::size_t>(dst)),
                   pt2pt_match(rank_, tag));
}

core::Request* Comm::irecv(void* buf, std::size_t len, int src, int tag) {
  return ep_.irecv(buf, len, pt2pt_match(src, tag), kMatchFullMask);
}

void Comm::send(const void* buf, std::size_t len, int dst, int tag) {
  ep_.wait(isend(buf, len, dst, tag));
}

std::size_t Comm::recv(void* buf, std::size_t len, int src, int tag) {
  return ep_.wait(irecv(buf, len, src, tag)).recv_len;
}

void Comm::sendrecv(const void* sbuf, std::size_t slen, int dst, void* rbuf,
                    std::size_t rlen, int src, int tag) {
  core::Request* r = irecv(rbuf, rlen, src, tag);
  core::Request* s = isend(sbuf, slen, dst, tag);
  ep_.wait(r);
  ep_.wait(s);
}

void Comm::coll_send(const void* buf, std::size_t len, int dst,
                     std::uint16_t seq) {
  ep_.wait(ep_.isend(buf, len, ranks_.at(static_cast<std::size_t>(dst)),
                     coll_match(rank_, seq)));
}

void Comm::coll_recv(void* buf, std::size_t len, int src, std::uint16_t seq) {
  ep_.wait(ep_.irecv(buf, len, coll_match(src, seq), kMatchFullMask));
}

void Comm::coll_sendrecv(const void* sbuf, std::size_t slen, int dst,
                         void* rbuf, std::size_t rlen, int src,
                         std::uint16_t seq) {
  core::Request* r =
      ep_.irecv(rbuf, rlen, coll_match(src, seq), kMatchFullMask);
  core::Request* s = ep_.isend(
      sbuf, slen, ranks_.at(static_cast<std::size_t>(dst)),
      coll_match(rank_, seq));
  ep_.wait(r);
  ep_.wait(s);
}

void Comm::barrier() {
  // Dissemination barrier: log2(p) rounds of zero-byte exchanges.
  const std::uint16_t seq = ++coll_seq_;
  const int p = size();
  char token = 0;
  for (int dist = 1; dist < p; dist *= 2) {
    const int to = (rank_ + dist) % p;
    const int from = (rank_ - dist % p + p) % p;
    coll_sendrecv(&token, 0, to, &token, 1, from, seq);
  }
}

void Comm::bcast(void* buf, std::size_t len, int root) {
  // Binomial tree rooted at `root`.
  const std::uint16_t seq = ++coll_seq_;
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int vsrc = vrank - mask;
      coll_recv(buf, len, (vsrc + root) % p, seq);
      break;
    }
    mask *= 2;
  }
  mask /= 2;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int vdst = vrank + mask;
      coll_send(buf, len, (vdst + root) % p, seq);
    }
    mask /= 2;
  }
}

void Comm::reduce(double* buf, std::size_t count, int root) {
  // Binomial reduction tree: children send partial sums to parents.
  const std::uint16_t seq = ++coll_seq_;
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  double* tmp = scratch(count);
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int vdst = vrank - mask;
      coll_send(buf, count * sizeof(double), (vdst + root) % p, seq);
      break;
    }
    const int vsrc = vrank + mask;
    if (vsrc < p) {
      coll_recv(tmp, count * sizeof(double), (vsrc + root) % p, seq);
      for (std::size_t i = 0; i < count; ++i) buf[i] += tmp[i];
    }
    mask *= 2;
  }
}

void Comm::allreduce(double* buf, std::size_t count) {
  const int p = size();
  if ((p & (p - 1)) == 0) {
    // Recursive doubling for power-of-two rank counts.
    const std::uint16_t seq = ++coll_seq_;
    double* tmp = scratch(count);
    for (int mask = 1; mask < p; mask *= 2) {
      const int peer = rank_ ^ mask;
      coll_sendrecv(buf, count * sizeof(double), peer, tmp,
                    count * sizeof(double), peer, seq);
      for (std::size_t i = 0; i < count; ++i) buf[i] += tmp[i];
    }
  } else {
    reduce(buf, count, 0);
    bcast(buf, count * sizeof(double), 0);
  }
}

void Comm::reduce_scatter(double* buf, std::size_t count_per_rank) {
  // Recursive halving would be the textbook choice; with the small rank
  // counts of the paper's testbed (2-4) reduce+scatter is equivalent in
  // message volume and far simpler.
  const int p = size();
  const std::size_t total = count_per_rank * static_cast<std::size_t>(p);
  reduce(buf, total, 0);
  const std::uint16_t seq = ++coll_seq_;
  if (rank_ == 0) {
    for (int r = 1; r < p; ++r)
      coll_send(buf + static_cast<std::size_t>(r) * count_per_rank,
                count_per_rank * sizeof(double), r, seq);
    // Rank 0's own block is already in place.
  } else {
    coll_recv(buf, count_per_rank * sizeof(double), 0, seq);
  }
}

void Comm::gather(const void* sendb, std::size_t len, void* recvb,
                  int root) {
  const std::uint16_t seq = ++coll_seq_;
  const int p = size();
  if (rank_ == root) {
    auto* out = static_cast<std::uint8_t*>(recvb);
    std::memcpy(out + static_cast<std::size_t>(root) * len, sendb, len);
    for (int r = 0; r < p; ++r)
      if (r != root)
        coll_recv(out + static_cast<std::size_t>(r) * len, len, r, seq);
  } else {
    coll_send(sendb, len, root, seq);
  }
}

void Comm::scatter(const void* sendb, std::size_t len, void* recvb,
                   int root) {
  const std::uint16_t seq = ++coll_seq_;
  const int p = size();
  if (rank_ == root) {
    const auto* in = static_cast<const std::uint8_t*>(sendb);
    std::memcpy(recvb, in + static_cast<std::size_t>(root) * len, len);
    for (int r = 0; r < p; ++r)
      if (r != root)
        coll_send(in + static_cast<std::size_t>(r) * len, len, r, seq);
  } else {
    coll_recv(recvb, len, root, seq);
  }
}

void Comm::allgather(const void* sendb, std::size_t len, void* recvb) {
  // Ring algorithm: p-1 steps, each forwarding the previously received
  // block.
  const std::uint16_t seq = ++coll_seq_;
  const int p = size();
  auto* out = static_cast<std::uint8_t*>(recvb);
  std::memcpy(out + static_cast<std::size_t>(rank_) * len, sendb, len);
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  int have = rank_;  // block we forward next
  for (int step = 0; step < p - 1; ++step) {
    const int incoming = (have - 1 + p) % p;
    coll_sendrecv(out + static_cast<std::size_t>(have) * len, len, right,
                  out + static_cast<std::size_t>(incoming) * len, len, left,
                  static_cast<std::uint16_t>(seq + step));
    have = incoming;
  }
  coll_seq_ = static_cast<std::uint16_t>(coll_seq_ + p);
}

void Comm::allgatherv(const void* sendb, std::size_t len,
                      const std::vector<std::size_t>& lens, void* recvb) {
  const std::uint16_t seq = ++coll_seq_;
  const int p = size();
  std::vector<std::size_t> offs(static_cast<std::size_t>(p) + 1, 0);
  for (int r = 0; r < p; ++r)
    offs[static_cast<std::size_t>(r) + 1] =
        offs[static_cast<std::size_t>(r)] + lens[static_cast<std::size_t>(r)];
  auto* out = static_cast<std::uint8_t*>(recvb);
  std::memcpy(out + offs[static_cast<std::size_t>(rank_)], sendb, len);
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  int have = rank_;
  for (int step = 0; step < p - 1; ++step) {
    const int incoming = (have - 1 + p) % p;
    coll_sendrecv(out + offs[static_cast<std::size_t>(have)],
                  lens[static_cast<std::size_t>(have)], right,
                  out + offs[static_cast<std::size_t>(incoming)],
                  lens[static_cast<std::size_t>(incoming)], left,
                  static_cast<std::uint16_t>(seq + step));
    have = incoming;
  }
  coll_seq_ = static_cast<std::uint16_t>(coll_seq_ + p);
}

void Comm::alltoall(const void* sendb, std::size_t len_per_rank,
                    void* recvb) {
  const std::uint16_t seq = ++coll_seq_;
  const int p = size();
  const auto* in = static_cast<const std::uint8_t*>(sendb);
  auto* out = static_cast<std::uint8_t*>(recvb);
  std::memcpy(out + static_cast<std::size_t>(rank_) * len_per_rank,
              in + static_cast<std::size_t>(rank_) * len_per_rank,
              len_per_rank);
  // Pairwise exchange over p-1 rounds.
  for (int step = 1; step < p; ++step) {
    const int peer = ((p & (p - 1)) == 0) ? (rank_ ^ step)
                                          : ((rank_ + step) % p);
    const int from = ((p & (p - 1)) == 0) ? peer
                                          : ((rank_ - step + p) % p);
    coll_sendrecv(in + static_cast<std::size_t>(peer) * len_per_rank,
                  len_per_rank, peer,
                  out + static_cast<std::size_t>(from) * len_per_rank,
                  len_per_rank, from,
                  static_cast<std::uint16_t>(seq + step));
  }
  coll_seq_ = static_cast<std::uint16_t>(coll_seq_ + p);
}

void Comm::alltoallv(const void* sendb, const std::vector<std::size_t>& slens,
                     void* recvb, const std::vector<std::size_t>& rlens) {
  const std::uint16_t seq = ++coll_seq_;
  const int p = size();
  std::vector<std::size_t> soff(static_cast<std::size_t>(p) + 1, 0);
  std::vector<std::size_t> roff(static_cast<std::size_t>(p) + 1, 0);
  for (int r = 0; r < p; ++r) {
    soff[static_cast<std::size_t>(r) + 1] =
        soff[static_cast<std::size_t>(r)] + slens[static_cast<std::size_t>(r)];
    roff[static_cast<std::size_t>(r) + 1] =
        roff[static_cast<std::size_t>(r)] + rlens[static_cast<std::size_t>(r)];
  }
  const auto* in = static_cast<const std::uint8_t*>(sendb);
  auto* out = static_cast<std::uint8_t*>(recvb);
  std::memcpy(out + roff[static_cast<std::size_t>(rank_)],
              in + soff[static_cast<std::size_t>(rank_)],
              slens[static_cast<std::size_t>(rank_)]);
  for (int step = 1; step < p; ++step) {
    const int to = (rank_ + step) % p;
    const int from = (rank_ - step + p) % p;
    coll_sendrecv(in + soff[static_cast<std::size_t>(to)],
                  slens[static_cast<std::size_t>(to)], to,
                  out + roff[static_cast<std::size_t>(from)],
                  rlens[static_cast<std::size_t>(from)], from,
                  static_cast<std::uint16_t>(seq + step));
  }
  coll_seq_ = static_cast<std::uint16_t>(coll_seq_ + p);
}

}  // namespace openmx::mpi
