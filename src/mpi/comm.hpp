#pragma once

#include <cstdint>
#include <vector>

#include "core/endpoint.hpp"
#include "core/process.hpp"
#include "core/wire.hpp"
#include "mem/aligned_buffer.hpp"

namespace openmx::mpi {

/// Match-info encoding for the MPI layer on top of the 64-bit MX match
/// space: [63:48] context id, [47:32] tag, [15:0] source rank.
inline std::uint64_t encode_match(std::uint16_t ctx, std::uint16_t tag,
                                  std::uint16_t src_rank) {
  return (static_cast<std::uint64_t>(ctx) << 48) |
         (static_cast<std::uint64_t>(tag) << 32) |
         static_cast<std::uint64_t>(src_rank);
}

inline constexpr std::uint64_t kMatchFullMask = ~0ULL;
inline constexpr std::uint16_t kCtxPt2pt = 1;
inline constexpr std::uint16_t kCtxColl = 2;

/// A communicator bound to one rank's endpoint, in the style of MPICH-MX
/// running on top of the MX API (Section IV-D).
///
/// Provides the point-to-point primitives and every collective the Intel
/// MPI Benchmarks suite in Figure 12 exercises.  Collectives carry a
/// per-operation sequence number in the tag bits, so back-to-back
/// collectives never cross-match.
class Comm {
 public:
  Comm(core::Process& proc, core::Endpoint& ep, int rank,
       std::vector<core::Addr> ranks)
      : proc_(proc), ep_(ep), rank_(rank), ranks_(std::move(ranks)) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return static_cast<int>(ranks_.size()); }
  [[nodiscard]] core::Process& process() { return proc_; }
  [[nodiscard]] core::Endpoint& endpoint() { return ep_; }
  [[nodiscard]] sim::Time now() const { return proc_.now(); }

  // ----- point-to-point -----
  core::Request* isend(const void* buf, std::size_t len, int dst, int tag);
  core::Request* irecv(void* buf, std::size_t len, int src, int tag);
  void send(const void* buf, std::size_t len, int dst, int tag);
  /// Returns the number of bytes received.
  std::size_t recv(void* buf, std::size_t len, int src, int tag);
  void wait(core::Request* req) { ep_.wait(req); }
  void sendrecv(const void* sbuf, std::size_t slen, int dst,
                void* rbuf, std::size_t rlen, int src, int tag);

  // ----- collectives -----
  void barrier();
  void bcast(void* buf, std::size_t len, int root);
  /// Element-wise double-precision sum into `buf` at the root.
  void reduce(double* buf, std::size_t count, int root);
  void allreduce(double* buf, std::size_t count);
  /// MPI_Reduce_scatter_block semantics: the full vector has
  /// `count_per_rank * size()` elements; each rank ends up with its block
  /// of the element-wise sum in buf[0 .. count_per_rank).
  void reduce_scatter(double* buf, std::size_t count_per_rank);
  /// Root collects each rank's `len` bytes into recvb (rank order).
  void gather(const void* sendb, std::size_t len, void* recvb, int root);
  /// Root distributes `len`-byte blocks of sendb to each rank's recvb.
  void scatter(const void* sendb, std::size_t len, void* recvb, int root);
  void allgather(const void* sendb, std::size_t len, void* recvb);
  void allgatherv(const void* sendb, std::size_t len,
                  const std::vector<std::size_t>& lens, void* recvb);
  void alltoall(const void* sendb, std::size_t len_per_rank, void* recvb);
  void alltoallv(const void* sendb, const std::vector<std::size_t>& slens,
                 void* recvb, const std::vector<std::size_t>& rlens);

 private:
  std::uint64_t pt2pt_match(int src_rank, int tag) const {
    return encode_match(kCtxPt2pt, static_cast<std::uint16_t>(tag),
                        static_cast<std::uint16_t>(src_rank));
  }
  std::uint64_t coll_match(int src_rank, std::uint16_t op_seq) const {
    return encode_match(kCtxColl, op_seq,
                        static_cast<std::uint16_t>(src_rank));
  }
  void coll_send(const void* buf, std::size_t len, int dst,
                 std::uint16_t seq);
  void coll_recv(void* buf, std::size_t len, int src, std::uint16_t seq);
  void coll_sendrecv(const void* sbuf, std::size_t slen, int dst, void* rbuf,
                     std::size_t rlen, int src, std::uint16_t seq);

  /// Reduction scratch space, grown on demand and kept alive for the
  /// Comm's lifetime.  Allocating it per reduce call would make its
  /// host pages — and therefore the cache model's residency history —
  /// depend on allocator state, breaking run-to-run reproducibility.
  double* scratch(std::size_t count) {
    if (scratch_.size() < count) scratch_.resize(count);
    return scratch_.data();
  }

  core::Process& proc_;
  core::Endpoint& ep_;
  int rank_;
  std::vector<core::Addr> ranks_;
  std::uint16_t coll_seq_ = 0;
  mem::AlignedVec<double> scratch_;
};

}  // namespace openmx::mpi
