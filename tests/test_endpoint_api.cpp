// API-surface tests of the user-space library: iprobe, cancel, poll/test
// semantics, request lifecycle, and the MXoE wire-interoperability
// property the paper builds on (a native-MX node talking to an Open-MX
// node over the same wire protocol).
#include <gtest/gtest.h>

#include <vector>

#include "core/cluster.hpp"
#include "core/endpoint.hpp"

namespace sim = openmx::sim;
namespace core = openmx::core;

namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  std::uint8_t x = seed;
  for (auto& b : v) {
    x = static_cast<std::uint8_t>(x * 31 + 7);
    b = x;
  }
  return v;
}

}  // namespace

TEST(EndpointApi, IprobeSeesUnexpectedWithoutConsuming) {
  core::Cluster cluster;
  cluster.add_nodes(2, {});
  auto src = pattern(2048);
  std::vector<std::uint8_t> dst(2048);
  bool probed = false;
  std::size_t probed_len = 0;
  core::Addr probed_src;

  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(src.data(), src.size(), {1, 1}, 0x42));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    // Wait until the message is buffered as unexpected.
    while (!ep.iprobe(0x42, ~0ULL, &probed_src, &probed_len))
      p.compute(5 * sim::kMicrosecond);
    probed = true;
    // Probing must not consume: a probe again still hits...
    EXPECT_TRUE(ep.iprobe(0x42, ~0ULL));
    // ...and the receive still gets the payload.
    const core::Request done = ep.wait(ep.irecv(dst.data(), dst.size(), 0x42));
    EXPECT_EQ(done.recv_len, 2048u);
  });
  cluster.run();
  EXPECT_TRUE(probed);
  EXPECT_EQ(probed_len, 2048u);
  EXPECT_EQ(probed_src, (core::Addr{0, 0}));
  EXPECT_EQ(dst, src);
}

TEST(EndpointApi, IprobeMissesNonMatching) {
  core::Cluster cluster;
  cluster.add_nodes(1, {});
  cluster.spawn(cluster.node(0), 0, "p", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    EXPECT_FALSE(ep.iprobe(0x42, ~0ULL));
  });
  cluster.run();
}

TEST(EndpointApi, CancelRemovesPostedRecv) {
  core::Cluster cluster;
  cluster.add_nodes(2, {});
  auto src = pattern(1024);
  std::vector<std::uint8_t> dst1(1024), dst2(1024);

  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    p.compute(50 * sim::kMicrosecond);  // let the receiver cancel first
    ep.wait(ep.isend(src.data(), src.size(), {1, 1}, 7));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    // Post two receives for the same match; cancel the first.  The
    // message must land in the *second* buffer.
    core::Request* r1 = ep.irecv(dst1.data(), dst1.size(), 7);
    core::Request* r2 = ep.irecv(dst2.data(), dst2.size(), 7);
    EXPECT_TRUE(ep.cancel(r1));
    ep.wait(r2);
  });
  cluster.run();
  EXPECT_EQ(dst2, src);
  EXPECT_NE(dst1, src);
}

TEST(EndpointApi, CancelFailsAfterMatch) {
  core::Cluster cluster;
  cluster.add_nodes(2, {});
  auto src = pattern(1024);
  std::vector<std::uint8_t> dst(1024);
  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(src.data(), src.size(), {1, 1}, 7));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    core::Request* r = ep.irecv(dst.data(), dst.size(), 7);
    while (!ep.test(r)) p.compute(sim::kMicrosecond);
    // r was released by the successful test; a fresh posted recv that has
    // already matched a buffered unexpected message cannot be cancelled —
    // model this by checking cancel on a send request (also false).
    core::Request* s = ep.isend(dst.data(), 16, {0, 0}, 9);
    EXPECT_FALSE(ep.cancel(s));
    ep.wait(s);
  });
  cluster.run();
  EXPECT_EQ(dst, src);
}

// ----- MXoE wire interoperability (Section II-A) -----

struct InteropCase {
  bool node0_native;
  bool node1_native;
  std::size_t len;
};

class Interop : public ::testing::TestWithParam<InteropCase> {};

TEST_P(Interop, MixedStacksExchangePayloads) {
  // "Open-MX enables interoperability between any hosts, even when
  // running the native MXoE stack" — e.g. BlueGene/P compute nodes
  // (Open-MX on Broadcom NICs) talking to I/O nodes (native MXoE on
  // Myri-10G).  Both stacks speak the same wire protocol here.
  const InteropCase& c = GetParam();
  core::OmxConfig cfg0;
  cfg0.native_mx = c.node0_native;
  cfg0.ioat_large = !c.node0_native;
  core::OmxConfig cfg1;
  cfg1.native_mx = c.node1_native;
  cfg1.ioat_large = !c.node1_native;

  core::Cluster cluster;
  cluster.add_node(cfg0);
  cluster.add_node(cfg1);
  auto a = pattern(c.len, 3), b = pattern(c.len, 11);
  std::vector<std::uint8_t> ra(c.len), rb(c.len);

  cluster.spawn(cluster.node(0), 0, "io-node", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    core::Request* r = ep.irecv(rb.data(), rb.size(), 2);
    core::Request* s = ep.isend(a.data(), a.size(), {1, 1}, 1);
    ep.wait(r);
    ep.wait(s);
  });
  cluster.spawn(cluster.node(1), 0, "compute-node", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    core::Request* r = ep.irecv(ra.data(), ra.size(), 1);
    core::Request* s = ep.isend(b.data(), b.size(), {0, 0}, 2);
    ep.wait(r);
    ep.wait(s);
  });
  cluster.run();
  EXPECT_EQ(ra, a);
  EXPECT_EQ(rb, b);
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, Interop,
    ::testing::Values(InteropCase{true, false, 4096},
                      InteropCase{false, true, 4096},
                      InteropCase{true, false, sim::MiB},
                      InteropCase{false, true, sim::MiB},
                      InteropCase{true, true, 256 * 1024},
                      InteropCase{false, false, 256 * 1024}),
    [](const ::testing::TestParamInfo<InteropCase>& info) {
      return std::string(info.param.node0_native ? "mx" : "omx") + "_to_" +
             (info.param.node1_native ? "mx" : "omx") + "_" +
             std::to_string(info.param.len);
    });
