// Tests for the event-trace subsystem and its driver integration.
#include <gtest/gtest.h>

#include <vector>

#include "core/cluster.hpp"
#include "core/endpoint.hpp"
#include "sim/trace.hpp"

namespace sim = openmx::sim;
namespace core = openmx::core;
namespace obs = openmx::obs;

TEST(Trace, DisabledRecordsNothing) {
  sim::Trace t;
  t.record(1, 0, "x", "y");
  EXPECT_EQ(t.size(), 0u);
}

TEST(Trace, RecordsInOrder) {
  sim::Trace t;
  t.enable();
  t.record(10, 0, "a", "first");
  t.record(20, 1, "b", "second");
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].message, "first");
  EXPECT_EQ(snap[1].when, 20);
  EXPECT_EQ(snap[1].node, 1);
}

TEST(Trace, RingDropsOldest) {
  sim::Trace t(4);
  t.enable();
  for (int i = 0; i < 10; ++i)
    t.record(i, 0, "c", std::to_string(i));
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto snap = t.snapshot();
  EXPECT_EQ(snap.front().message, "6");
  EXPECT_EQ(snap.back().message, "9");
}

TEST(Trace, FilterByCategoryPrefix) {
  sim::Trace t;
  t.enable();
  t.set_filter("wire");
  t.record(1, 0, "wire.tx", "kept");
  t.record(2, 0, "pull.start", "dropped");
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.count("wire"), 1u);
}

TEST(Trace, LazyMessageNotBuiltWhenDisabled) {
  sim::Trace t;
  int built = 0;
  auto lazy = [&] {
    ++built;
    return std::string("expensive");
  };
  t.record(1, 0, "a", lazy);  // disabled: callable must not run
  EXPECT_EQ(built, 0);
  EXPECT_EQ(t.size(), 0u);

  t.enable();
  t.set_filter("wire");
  t.record(2, 0, "pull.start", lazy);  // filtered out: still not run
  EXPECT_EQ(built, 0);
  t.record(3, 0, "wire.tx", lazy);  // stored: built exactly once
  EXPECT_EQ(built, 1);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].message, "expensive");
}

TEST(Trace, TypedEventsReconstructCategoryAndArgs) {
  sim::Trace t;
  t.enable();
  const obs::EventId id = t.intern_event("pull.done");
  t.event(5, 2, id, 123, 456);
  t.event(6, 2, id, 789);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].category, "pull.done");
  EXPECT_EQ(snap[0].message, "a0=123 a1=456");
  EXPECT_EQ(snap[1].message, "a0=789");
  EXPECT_EQ(snap[1].node, 2);
}

TEST(Trace, TypedEventsHonourFilter) {
  sim::Trace t;
  t.enable();
  t.set_filter("wire");
  const obs::EventId wire = t.intern_event("wire.tx");
  const obs::EventId pull = t.intern_event("pull.start");
  t.event(1, 0, wire, 1);
  t.event(2, 0, pull, 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.count("wire"), 1u);
}

TEST(Trace, TracefMacroDoesNotEvaluateArgsWhenDisabled) {
  sim::Trace t;
  int evals = 0;
  auto expensive = [&] {
    ++evals;
    return 42;
  };
  OMX_TRACEF(t, 1, 0, "a", "v=%d", expensive());
  EXPECT_EQ(evals, 0);
  EXPECT_EQ(t.size(), 0u);

  t.enable();
  OMX_TRACEF(t, 2, 0, "a", "v=%d", expensive());
  EXPECT_EQ(evals, 1);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].message, "v=42");
}

TEST(Trace, RecordfFormats) {
  sim::Trace t;
  t.enable();
  t.recordf(1, 0, "chunk", "bytes=%zu chan=%d", std::size_t{4096}, 3);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].message, "bytes=4096 chan=3");
}

TEST(Trace, InternedMessagesDedup) {
  // The same message string recorded many times is stored once in the
  // interner; records stay exact across the ring.
  sim::Trace t(8);
  t.enable();
  for (int i = 0; i < 20; ++i) t.record(i, 0, "c", "same message");
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.dropped(), 12u);
  for (const auto& r : t.snapshot()) EXPECT_EQ(r.message, "same message");
}

TEST(Trace, ClearResets) {
  sim::Trace t;
  t.enable();
  t.record(1, 0, "a", "x");
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

TEST(TraceIntegration, DriverEmitsWireAndPullRecords) {
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  cluster.engine().trace().enable();

  const std::size_t len = 256 * sim::KiB;  // 64 frags, 8 blocks
  std::vector<std::uint8_t> src(len, 3), dst(len);
  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(src.data(), len, {1, 1}, 1));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    ep.wait(ep.irecv(dst.data(), len, 1));
  });
  cluster.run();
  EXPECT_EQ(dst, src);

  auto& tr = cluster.engine().trace();
  // rndv + 8 pull reqs + 64 replies + acks all traced.
  EXPECT_EQ(tr.count("pull.start"), 1u);
  EXPECT_EQ(tr.count("pull.done"), 1u);
  EXPECT_GE(tr.count("wire.tx"), 74u);

  // The pull lifecycle is ordered: start strictly before done.
  sim::Time started = -1, done = -1;
  for (const auto& r : tr.snapshot()) {
    if (r.category == "pull.start") started = r.when;
    if (r.category == "pull.done") done = r.when;
  }
  EXPECT_GE(started, 0);
  EXPECT_GT(done, started);
}

TEST(TraceIntegration, DisabledTraceCostsNothingInCounters) {
  core::Cluster cluster;
  cluster.add_nodes(2, {});
  std::vector<std::uint8_t> src(4096, 1), dst(4096);
  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(src.data(), src.size(), {1, 1}, 1));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    ep.wait(ep.irecv(dst.data(), dst.size(), 1));
  });
  cluster.run();
  EXPECT_EQ(cluster.engine().trace().size(), 0u);
}
