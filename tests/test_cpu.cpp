// Unit tests for the machine topology, per-core serialized execution and
// busy-time accounting.
#include <gtest/gtest.h>

#include "cpu/machine.hpp"
#include "sim/engine.hpp"

namespace sim = openmx::sim;
namespace cpu = openmx::cpu;

TEST(Topology, ClovertownLayout) {
  // 8 cores: sockets {0..3},{4..7}; subchips pair up neighbours.
  EXPECT_EQ(cpu::Machine::kNumCores, 8);
  EXPECT_EQ(cpu::Machine::socket_of(0), 0);
  EXPECT_EQ(cpu::Machine::socket_of(3), 0);
  EXPECT_EQ(cpu::Machine::socket_of(4), 1);
  EXPECT_EQ(cpu::Machine::subchip_of(0), 0);
  EXPECT_EQ(cpu::Machine::subchip_of(1), 0);
  EXPECT_EQ(cpu::Machine::subchip_of(2), 1);
  EXPECT_TRUE(cpu::Machine::share_l2(0, 1));
  EXPECT_FALSE(cpu::Machine::share_l2(1, 2));
  EXPECT_FALSE(cpu::Machine::share_l2(0, 4));
}

TEST(Machine, SerializesWorkOnOneCore) {
  sim::Engine e;
  cpu::Machine m(e);
  std::vector<sim::Time> done_at;
  for (int i = 0; i < 3; ++i)
    m.submit_fixed(0, cpu::Cat::BottomHalf, 100,
                   [&] { done_at.push_back(e.now()); });
  e.run();
  EXPECT_EQ(done_at, (std::vector<sim::Time>{100, 200, 300}));
  EXPECT_EQ(m.busy(0, cpu::Cat::BottomHalf), 300);
}

TEST(Machine, DifferentCoresRunInParallel) {
  sim::Engine e;
  cpu::Machine m(e);
  std::vector<sim::Time> done_at;
  m.submit_fixed(0, cpu::Cat::App, 100, [&] { done_at.push_back(e.now()); });
  m.submit_fixed(1, cpu::Cat::App, 100, [&] { done_at.push_back(e.now()); });
  e.run();
  EXPECT_EQ(done_at, (std::vector<sim::Time>{100, 100}));
}

TEST(Machine, AccountsPerCategory) {
  sim::Engine e;
  cpu::Machine m(e);
  m.submit_fixed(2, cpu::Cat::UserLib, 50);
  m.submit_fixed(2, cpu::Cat::DriverSyscall, 70);
  m.submit_fixed(2, cpu::Cat::BottomHalf, 90);
  e.run();
  EXPECT_EQ(m.busy(2, cpu::Cat::UserLib), 50);
  EXPECT_EQ(m.busy(2, cpu::Cat::DriverSyscall), 70);
  EXPECT_EQ(m.busy(2, cpu::Cat::BottomHalf), 90);
  EXPECT_EQ(m.busy_total(2), 210);
  m.reset_accounting();
  EXPECT_EQ(m.busy_total(2), 0);
}

TEST(Machine, WorkComputedAtStartEffectsAtEnd) {
  sim::Engine e;
  cpu::Machine m(e);
  sim::Time work_ran_at = -1, done_ran_at = -1;
  m.submit(0, cpu::Cat::App, [&]() -> cpu::TaskResult {
    work_ran_at = e.now();
    return {250, [&] { done_ran_at = e.now(); }};
  });
  e.run();
  EXPECT_EQ(work_ran_at, 0);
  EXPECT_EQ(done_ran_at, 250);
}

TEST(Machine, ThreadAdvanceQueuesBehindCoreWork) {
  sim::Engine e;
  cpu::Machine m(e);
  m.submit_fixed(0, cpu::Cat::BottomHalf, 1000);
  sim::Time resumed_at = -1;
  sim::SimThread t(e, "app", [&] {
    m.thread_advance(t, 0, 10, cpu::Cat::App);
    resumed_at = e.now();
  });
  t.start();
  e.run();
  // The BH work occupies the core for the first 1000 ns.
  EXPECT_EQ(resumed_at, 1010);
}

TEST(Machine, BadCoreThrows) {
  sim::Engine e;
  cpu::Machine m(e);
  EXPECT_THROW(m.submit_fixed(8, cpu::Cat::App, 1), std::out_of_range);
  EXPECT_THROW((void)m.busy(-1, cpu::Cat::App), std::out_of_range);
}

TEST(Machine, BusyAllCoresSums) {
  sim::Engine e;
  cpu::Machine m(e);
  m.submit_fixed(0, cpu::Cat::BottomHalf, 10);
  m.submit_fixed(5, cpu::Cat::BottomHalf, 20);
  e.run();
  EXPECT_EQ(m.busy_all_cores(cpu::Cat::BottomHalf), 30);
}
