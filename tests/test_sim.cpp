// Unit tests for the discrete-event engine, cancellable events, the
// SimThread handoff scheduler and the wait queue.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/sim_thread.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace sim = openmx::sim;

TEST(Time, DurationForBytesRoundsAndNeverZero) {
  EXPECT_EQ(sim::duration_for_bytes(0, 1e9), 0);
  EXPECT_EQ(sim::duration_for_bytes(1000, 1e9), 1000);
  EXPECT_GE(sim::duration_for_bytes(1, 1e12), 1);  // sub-ns clamps to 1
}

TEST(Time, MibPerSecond) {
  // 1 MiB per millisecond = 1000 MiB per second.
  EXPECT_NEAR(sim::mib_per_second(sim::MiB, sim::kMillisecond), 1000.0, 1e-6);
  EXPECT_EQ(sim::mib_per_second(123, 0), 0.0);
}

TEST(Engine, FiresInTimeOrder) {
  sim::Engine e;
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  e.schedule(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, SameTimeIsFifo) {
  sim::Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) e.schedule(5, [&, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, NestedScheduling) {
  sim::Engine e;
  sim::Time inner_fired_at = -1;
  e.schedule(10, [&] {
    e.schedule(5, [&] { inner_fired_at = e.now(); });
  });
  e.run();
  EXPECT_EQ(inner_fired_at, 15);
}

TEST(Engine, SchedulingInThePastThrows) {
  sim::Engine e;
  e.schedule(10, [&] { EXPECT_THROW(e.schedule_at(5, [] {}), std::logic_error); });
  e.run();
}

TEST(Engine, CancelledEventDoesNotFire) {
  sim::Engine e;
  bool fired = false;
  auto h = e.schedule_cancellable(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFireIsHarmless) {
  sim::Engine e;
  int fires = 0;
  auto h = e.schedule_cancellable(10, [&] { ++fires; });
  e.run();
  h.cancel();
  e.run();
  EXPECT_EQ(fires, 1);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  sim::Engine e;
  int fires = 0;
  e.schedule(10, [&] { ++fires; });
  e.schedule(100, [&] { ++fires; });
  e.run_until(50);
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(e.now(), 50);
  e.run();
  EXPECT_EQ(fires, 2);
}

TEST(SimThread, AdvancesVirtualTime) {
  sim::Engine e;
  sim::Time t1 = -1, t2 = -1;
  sim::SimThread t(e, "worker", [&] {
    t1 = e.now();
    t.advance(100);
    t2 = e.now();
  });
  t.start();
  e.run();
  EXPECT_TRUE(t.finished());
  EXPECT_EQ(t1, 0);
  EXPECT_EQ(t2, 100);
}

TEST(SimThread, PauseAndWake) {
  sim::Engine e;
  sim::Time woke_at = -1;
  sim::SimThread t(e, "sleeper", [&] {
    t.pause();
    woke_at = e.now();
  });
  t.start();
  e.schedule(500, [&] { t.wake(); });
  e.run();
  EXPECT_TRUE(t.finished());
  EXPECT_EQ(woke_at, 500);
}

TEST(SimThread, WakeBeforePauseIsNotLost) {
  sim::Engine e;
  bool done = false;
  sim::SimThread t(e, "t", [&] {
    t.advance(100);  // wake() arrives while we are running
    t.pause();       // must return immediately
    done = true;
  });
  t.start();
  e.schedule(50, [&] { t.wake(); });
  e.run();
  EXPECT_TRUE(done);
}

TEST(SimThread, StuckThreadIsDetectedAndAborted) {
  sim::Engine e;
  {
    sim::SimThread t(e, "stuck", [&] { t.pause(); });
    t.start();
    e.run();
    EXPECT_FALSE(t.finished());
  }  // destructor aborts it without hanging
  SUCCEED();
}

TEST(SimThread, ExceptionIsCaptured) {
  sim::Engine e;
  sim::SimThread t(e, "thrower", [&] { throw std::runtime_error("boom"); });
  t.start();
  e.run();
  EXPECT_TRUE(t.finished());
  EXPECT_TRUE(t.failed());
  EXPECT_THROW(t.rethrow_if_failed(), std::runtime_error);
}

TEST(SimThread, TwoThreadsInterleaveDeterministically) {
  sim::Engine e;
  std::vector<std::pair<char, sim::Time>> trace;
  sim::SimThread a(e, "a", [&] {
    for (int i = 0; i < 3; ++i) {
      trace.push_back({'a', e.now()});
      a.advance(10);
    }
  });
  sim::SimThread b(e, "b", [&] {
    for (int i = 0; i < 3; ++i) {
      trace.push_back({'b', e.now()});
      b.advance(15);
    }
  });
  a.start();
  b.start();
  e.run();
  ASSERT_EQ(trace.size(), 6u);
  // a fires at 0,10,20; b at 0,15,30.
  EXPECT_EQ(trace[0], (std::pair<char, sim::Time>{'a', 0}));
  EXPECT_EQ(trace[1], (std::pair<char, sim::Time>{'b', 0}));
  EXPECT_EQ(trace[2], (std::pair<char, sim::Time>{'a', 10}));
  EXPECT_EQ(trace[3], (std::pair<char, sim::Time>{'b', 15}));
  EXPECT_EQ(trace[4], (std::pair<char, sim::Time>{'a', 20}));
  EXPECT_EQ(trace[5], (std::pair<char, sim::Time>{'b', 30}));
}

TEST(WaitQueue, WakeOneReleasesInFifoOrder) {
  sim::Engine e;
  sim::WaitQueue q;
  std::vector<int> woken;
  sim::SimThread t1(e, "w1", [&] {
    q.sleep(t1);
    woken.push_back(1);
  });
  sim::SimThread t2(e, "w2", [&] {
    q.sleep(t2);
    woken.push_back(2);
  });
  t1.start();
  t2.start();
  e.schedule(10, [&] { q.wake_one(); });
  e.schedule(20, [&] { q.wake_one(); });
  e.run();
  EXPECT_EQ(woken, (std::vector<int>{1, 2}));
}

TEST(WaitQueue, WakeAll) {
  sim::Engine e;
  sim::WaitQueue q;
  int woken = 0;
  sim::SimThread t1(e, "w1", [&] { q.sleep(t1); ++woken; });
  sim::SimThread t2(e, "w2", [&] { q.sleep(t2); ++woken; });
  t1.start();
  t2.start();
  e.schedule(10, [&] { q.wake_all(); });
  e.run();
  EXPECT_EQ(woken, 2);
  EXPECT_TRUE(q.empty());
}

TEST(Rng, DeterministicAcrossInstances) {
  sim::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DoublesInUnitInterval) {
  sim::Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  sim::Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Stats, SummaryTracksMoments) {
  sim::Summary s;
  s.add(1.0);
  s.add(3.0);
  s.add(2.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Stats, CountersAccumulate) {
  sim::Counters c;
  c.add("x");
  c.add("x", 4);
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("missing"), 0u);
}
