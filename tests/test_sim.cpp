// Unit tests for the discrete-event engine, cancellable events, the
// SimThread handoff scheduler and the wait queue.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event_slab.hpp"
#include "sim/inline_fn.hpp"
#include "sim/lp.hpp"
#include "sim/rng.hpp"
#include "sim/sim_thread.hpp"
#include "sim/stats.hpp"
#include "sim/sweep.hpp"
#include "sim/thread_pool.hpp"
#include "sim/time.hpp"

namespace sim = openmx::sim;

TEST(Time, DurationForBytesRoundsAndNeverZero) {
  EXPECT_EQ(sim::duration_for_bytes(0, 1e9), 0);
  EXPECT_EQ(sim::duration_for_bytes(1000, 1e9), 1000);
  EXPECT_GE(sim::duration_for_bytes(1, 1e12), 1);  // sub-ns clamps to 1
}

TEST(Time, MibPerSecond) {
  // 1 MiB per millisecond = 1000 MiB per second.
  EXPECT_NEAR(sim::mib_per_second(sim::MiB, sim::kMillisecond), 1000.0, 1e-6);
  EXPECT_EQ(sim::mib_per_second(123, 0), 0.0);
}

TEST(Engine, FiresInTimeOrder) {
  sim::Engine e;
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  e.schedule(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, SameTimeIsFifo) {
  sim::Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) e.schedule(5, [&, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, NestedScheduling) {
  sim::Engine e;
  sim::Time inner_fired_at = -1;
  e.schedule(10, [&] {
    e.schedule(5, [&] { inner_fired_at = e.now(); });
  });
  e.run();
  EXPECT_EQ(inner_fired_at, 15);
}

TEST(Engine, SchedulingInThePastThrows) {
  sim::Engine e;
  e.schedule(10, [&] { EXPECT_THROW(e.schedule_at(5, [] {}), std::logic_error); });
  e.run();
}

TEST(Engine, CancelledEventDoesNotFire) {
  sim::Engine e;
  bool fired = false;
  auto h = e.schedule_cancellable(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFireIsHarmless) {
  sim::Engine e;
  int fires = 0;
  auto h = e.schedule_cancellable(10, [&] { ++fires; });
  e.run();
  h.cancel();
  e.run();
  EXPECT_EQ(fires, 1);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  sim::Engine e;
  int fires = 0;
  e.schedule(10, [&] { ++fires; });
  e.schedule(100, [&] { ++fires; });
  e.run_until(50);
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(e.now(), 50);
  e.run();
  EXPECT_EQ(fires, 2);
}

TEST(Engine, DoubleCancelIsIdempotent) {
  sim::Engine e;
  bool fired = false;
  auto h = e.schedule_cancellable(10, [&] { fired = true; });
  e.schedule(10, [] {});  // a live event keeps run() going
  h.cancel();
  h.cancel();  // second cancel must not decrement live counts again
  EXPECT_FALSE(h.pending());
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.live_events(), 0u);
}

TEST(Engine, HandleNotPendingInsideOwnCallback) {
  sim::Engine e;
  sim::EventHandle h;
  bool was_pending = true;
  h = e.schedule_cancellable(10, [&] { was_pending = h.pending(); });
  e.run();
  EXPECT_FALSE(was_pending);  // dispatch happens-before the callback
}

TEST(Engine, HandleNotPendingAfterDispatch) {
  sim::Engine e;
  auto h = e.schedule_cancellable(10, [] {});
  EXPECT_TRUE(h.pending());
  e.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op on a fired event
  EXPECT_FALSE(h.pending());
}

TEST(Engine, CancelledEventDoesNotKeepRunAlive) {
  // A cancelled far-future event must not make run() dispatch anything
  // or advance time to the cancelled deadline.
  sim::Engine e;
  auto h = e.schedule_cancellable(1000000, [] { FAIL(); });
  h.cancel();
  EXPECT_EQ(e.live_events(), 0u);
  e.run();
  EXPECT_EQ(e.now(), 0);
}

TEST(Engine, LiveVersusPendingEvents) {
  sim::Engine e;
  auto h = e.schedule_cancellable(10, [] {});
  e.schedule(20, [] {});
  EXPECT_EQ(e.live_events(), 2u);
  EXPECT_EQ(e.pending_events(), 2u);
  h.cancel();
  // The cancelled record still occupies its slab slot until reaped...
  EXPECT_EQ(e.live_events(), 1u);
  EXPECT_EQ(e.pending_events(), 2u);
  e.run();
  EXPECT_EQ(e.live_events(), 0u);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, RunUntilIgnoresCancelledHeadEvent) {
  // A cancelled event before the deadline must not cause run_until to
  // dispatch a live event that lies beyond the deadline.
  sim::Engine e;
  int fires = 0;
  auto h = e.schedule_cancellable(10, [&] { ++fires; });
  e.schedule(100, [&] { ++fires; });
  h.cancel();
  e.run_until(50);
  EXPECT_EQ(fires, 0);
  EXPECT_EQ(e.now(), 50);
  e.run();
  EXPECT_EQ(fires, 1);
}

TEST(Engine, AcceptsMoveOnlyCallable) {
  // The seed engine stored std::function and silently required copyable
  // callbacks; the slab engine must take move-only ones.
  sim::Engine e;
  bool fired = false;
  auto flag = std::make_unique<bool>(false);
  e.schedule(10, [&fired, flag = std::move(flag)] { fired = *flag = true; });
  e.run();
  EXPECT_TRUE(fired);
}

namespace {
// Callable that fails the test if it is ever copied (it cannot be —
// deleted copy ctor — but also counts moves so we can assert the
// schedule path does not bounce it around).
struct MoveCounting {
  bool* fired;
  int* moves;
  MoveCounting(bool* f, int* m) : fired(f), moves(m) {}
  MoveCounting(const MoveCounting&) = delete;
  MoveCounting& operator=(const MoveCounting&) = delete;
  MoveCounting(MoveCounting&& o) noexcept : fired(o.fired), moves(o.moves) {
    ++*moves;
  }
  MoveCounting& operator=(MoveCounting&&) = delete;
  void operator()() const { *fired = true; }
};
}  // namespace

TEST(Engine, ScheduleEmplacesWithSingleMove) {
  sim::Engine e;
  bool fired = false;
  int moves = 0;
  e.schedule(10, MoveCounting{&fired, &moves});
  e.run();
  EXPECT_TRUE(fired);
  // One move from the schedule() argument into the slab slot; dispatch
  // runs the callable in place.
  EXPECT_EQ(moves, 1);
}

TEST(Engine, CallbackExceptionReleasesSlot) {
  sim::Engine e;
  e.schedule(10, [] { throw std::runtime_error("cb"); });
  EXPECT_THROW(e.run(), std::runtime_error);
  EXPECT_EQ(e.pending_events(), 0u);  // guard released the slot
  // The engine stays usable afterwards.
  bool fired = false;
  e.schedule(10, [&] { fired = true; });
  e.run();
  EXPECT_TRUE(fired);
}

TEST(EngineWheel, MatchesHeapSemantics) {
  sim::EngineConfig cfg;
  cfg.timer_wheel = true;
  cfg.wheel_granularity_shift = 0;
  sim::Engine e(cfg);
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  for (int i = 0; i < 8; ++i) e.schedule(10, [&, i] { order.push_back(10 + i); });
  e.schedule(20, [&] { order.push_back(2); });
  e.run();
  ASSERT_EQ(order.size(), 11u);
  EXPECT_EQ(order[0], 1);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i) + 1], 10 + i);
  EXPECT_EQ(order[9], 2);
  EXPECT_EQ(order[10], 3);
}

TEST(EngineWheel, FarFutureEventsOverflowToHeap) {
  sim::EngineConfig cfg;
  cfg.timer_wheel = true;
  cfg.wheel_granularity_shift = 0;  // horizon = 64^4 ticks
  sim::Engine e(cfg);
  std::vector<int> order;
  const sim::Time beyond = sim::Time{1} << 40;  // past the wheel horizon
  e.schedule(beyond, [&] { order.push_back(2); });
  e.schedule(5, [&] { order.push_back(1); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), beyond);
}

TEST(EngineWheel, CancellationWorks) {
  sim::EngineConfig cfg;
  cfg.timer_wheel = true;
  sim::Engine e(cfg);
  bool fired = false;
  auto h = e.schedule_cancellable(100, [&] { fired = true; });
  e.schedule(200, [] {});
  h.cancel();
  e.run();
  EXPECT_FALSE(fired);
}

TEST(InlineFn, SmallCallableIsInline) {
  int hits = 0;
  sim::InlineFn<48> f([&hits] { ++hits; });
  EXPECT_TRUE(f.is_inline());
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, OversizedCallableFallsBackToHeap) {
  char big[96] = {0};
  int hits = 0;
  sim::InlineFn<48> f([big, &hits] { ++hits; (void)big; });
  EXPECT_FALSE(f.is_inline());
  f();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFn, MoveTransfersTarget) {
  int hits = 0;
  sim::InlineFn<48> a([&hits] { ++hits; });
  sim::InlineFn<48> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFn, DestroysTargetExactlyOnce) {
  int alive = 0;
  struct Probe {
    int* alive;
    explicit Probe(int* a) : alive(a) { ++*alive; }
    Probe(const Probe& o) : alive(o.alive) { ++*alive; }
    Probe(Probe&& o) noexcept : alive(o.alive) { ++*alive; }
    ~Probe() { --*alive; }
    void operator()() const {}
  };
  {
    sim::InlineFn<48> f{Probe(&alive)};
    EXPECT_GE(alive, 1);
    sim::InlineFn<48> g(std::move(f));
    EXPECT_EQ(alive, 1);
  }
  EXPECT_EQ(alive, 0);
}

TEST(EventSlab, RecyclesSlotsAndBumpsGeneration) {
  sim::EventSlab slab;
  sim::EventRecord* a = slab.alloc();
  const std::uint32_t gen0 = a->gen;
  slab.release(a);
  sim::EventRecord* b = slab.alloc();  // LIFO: same slot back
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->gen, gen0 + 1);
  slab.release(b);
  EXPECT_EQ(slab.in_use(), 0u);
}

TEST(EventSlab, SteadyStateDoesNotGrow) {
  sim::Engine e;
  int remaining = 10000;
  std::function<void()> tick = [&] {
    if (--remaining > 0) e.schedule(1, tick);
  };
  e.schedule(1, tick);
  e.run();
  EXPECT_EQ(remaining, 0);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Sweep, SeedIsDecorrelatedAndDeterministic) {
  EXPECT_EQ(sim::sweep_seed(42, 0), sim::sweep_seed(42, 0));
  EXPECT_NE(sim::sweep_seed(42, 0), sim::sweep_seed(42, 1));
  EXPECT_NE(sim::sweep_seed(42, 0), sim::sweep_seed(43, 0));
}

TEST(Sweep, MapReturnsResultsInIndexOrder) {
  sim::SweepRunner runner{sim::SweepOptions{.threads = 4}};
  const std::vector<int> out = runner.map<int>(
      100, [](std::size_t i) { return static_cast<int>(i) * 3; });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * 3);
}

TEST(Sweep, FirstExceptionPropagates) {
  sim::SweepRunner runner{sim::SweepOptions{.threads = 4}};
  EXPECT_THROW(runner.for_each(64,
                               [](std::size_t i) {
                                 if (i == 7)
                                   throw std::runtime_error("job failed");
                               }),
               std::runtime_error);
}

TEST(SimThread, AdvancesVirtualTime) {
  sim::Engine e;
  sim::Time t1 = -1, t2 = -1;
  sim::SimThread t(e, "worker", [&] {
    t1 = e.now();
    t.advance(100);
    t2 = e.now();
  });
  t.start();
  e.run();
  EXPECT_TRUE(t.finished());
  EXPECT_EQ(t1, 0);
  EXPECT_EQ(t2, 100);
}

TEST(SimThread, PauseAndWake) {
  sim::Engine e;
  sim::Time woke_at = -1;
  sim::SimThread t(e, "sleeper", [&] {
    t.pause();
    woke_at = e.now();
  });
  t.start();
  e.schedule(500, [&] { t.wake(); });
  e.run();
  EXPECT_TRUE(t.finished());
  EXPECT_EQ(woke_at, 500);
}

TEST(SimThread, WakeBeforePauseIsNotLost) {
  sim::Engine e;
  bool done = false;
  sim::SimThread t(e, "t", [&] {
    t.advance(100);  // wake() arrives while we are running
    t.pause();       // must return immediately
    done = true;
  });
  t.start();
  e.schedule(50, [&] { t.wake(); });
  e.run();
  EXPECT_TRUE(done);
}

TEST(SimThread, StuckThreadIsDetectedAndAborted) {
  sim::Engine e;
  {
    sim::SimThread t(e, "stuck", [&] { t.pause(); });
    t.start();
    e.run();
    EXPECT_FALSE(t.finished());
  }  // destructor aborts it without hanging
  SUCCEED();
}

TEST(SimThread, ExceptionIsCaptured) {
  sim::Engine e;
  sim::SimThread t(e, "thrower", [&] { throw std::runtime_error("boom"); });
  t.start();
  e.run();
  EXPECT_TRUE(t.finished());
  EXPECT_TRUE(t.failed());
  EXPECT_THROW(t.rethrow_if_failed(), std::runtime_error);
}

TEST(SimThread, TwoThreadsInterleaveDeterministically) {
  sim::Engine e;
  std::vector<std::pair<char, sim::Time>> trace;
  sim::SimThread a(e, "a", [&] {
    for (int i = 0; i < 3; ++i) {
      trace.push_back({'a', e.now()});
      a.advance(10);
    }
  });
  sim::SimThread b(e, "b", [&] {
    for (int i = 0; i < 3; ++i) {
      trace.push_back({'b', e.now()});
      b.advance(15);
    }
  });
  a.start();
  b.start();
  e.run();
  ASSERT_EQ(trace.size(), 6u);
  // a fires at 0,10,20; b at 0,15,30.
  EXPECT_EQ(trace[0], (std::pair<char, sim::Time>{'a', 0}));
  EXPECT_EQ(trace[1], (std::pair<char, sim::Time>{'b', 0}));
  EXPECT_EQ(trace[2], (std::pair<char, sim::Time>{'a', 10}));
  EXPECT_EQ(trace[3], (std::pair<char, sim::Time>{'b', 15}));
  EXPECT_EQ(trace[4], (std::pair<char, sim::Time>{'a', 20}));
  EXPECT_EQ(trace[5], (std::pair<char, sim::Time>{'b', 30}));
}

TEST(WaitQueue, WakeOneReleasesInFifoOrder) {
  sim::Engine e;
  sim::WaitQueue q;
  std::vector<int> woken;
  sim::SimThread t1(e, "w1", [&] {
    q.sleep(t1);
    woken.push_back(1);
  });
  sim::SimThread t2(e, "w2", [&] {
    q.sleep(t2);
    woken.push_back(2);
  });
  t1.start();
  t2.start();
  e.schedule(10, [&] { q.wake_one(); });
  e.schedule(20, [&] { q.wake_one(); });
  e.run();
  EXPECT_EQ(woken, (std::vector<int>{1, 2}));
}

TEST(WaitQueue, WakeAll) {
  sim::Engine e;
  sim::WaitQueue q;
  int woken = 0;
  sim::SimThread t1(e, "w1", [&] { q.sleep(t1); ++woken; });
  sim::SimThread t2(e, "w2", [&] { q.sleep(t2); ++woken; });
  t1.start();
  t2.start();
  e.schedule(10, [&] { q.wake_all(); });
  e.run();
  EXPECT_EQ(woken, 2);
  EXPECT_TRUE(q.empty());
}

TEST(Rng, DeterministicAcrossInstances) {
  sim::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DoublesInUnitInterval) {
  sim::Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  sim::Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Stats, SummaryTracksMoments) {
  sim::Summary s;
  s.add(1.0);
  s.add(3.0);
  s.add(2.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Stats, CountersAccumulate) {
  sim::Counters c;
  c.add("x");
  c.add("x", 4);
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("missing"), 0u);
}

TEST(Stats, SummaryMergeFoldsReplicas) {
  sim::Summary a, b;
  a.add(1.0);
  a.add(5.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  sim::Summary empty;
  a.merge(empty);  // merging an empty summary changes nothing
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
}

TEST(Stats, CountersMergeAdds) {
  sim::Counters a, b;
  a.add("x", 2);
  b.add("x", 3);
  b.add("y", 1);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 5u);
  EXPECT_EQ(a.get("y"), 1u);
}

TEST(Engine, ClaimBandFiresBeforeNormalAtSameTimestamp) {
  // Rx-port claims must win every same-nanosecond tie regardless of
  // scheduling order — that is what makes partitioned runs order the
  // port arbitration identically to the sequential engine.
  sim::Engine e;
  std::vector<int> order;
  e.schedule_at(10, [&] { order.push_back(1); });  // normal, scheduled first
  e.schedule_at(10, sim::Band::kClaim, [&] { order.push_back(0); });
  e.schedule_at(10, [&] { order.push_back(2); });
  e.schedule_at(5, [&] {
    // A claim scheduled from a callback still beats normals queued earlier.
    e.schedule_at(10, sim::Band::kClaim, [&] { order.push_back(-1); });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, -1, 1, 2}));
}

TEST(Engine, BandOrderIsClaimThenFlowThenNormal) {
  // The fluid network's completion events run in the kFlow band: after
  // every claim (port arbitration settles first) but before any normal
  // event at the same nanosecond, so same-time normal events observe
  // post-completion fair-share rates.
  sim::Engine e;
  std::vector<int> order;
  e.schedule_at(10, [&] { order.push_back(3); });
  e.schedule_at(10, sim::Band::kFlow, [&] { order.push_back(2); });
  e.schedule_at(10, sim::Band::kClaim, [&] { order.push_back(1); });
  e.schedule_at(10, sim::Band::kFlow, [&] { order.push_back(20); });
  e.schedule_at(10, [&] { order.push_back(30); });
  e.run();
  // Bands in enum order; FIFO within each band.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 20, 3, 30}));
}

TEST(Engine, BandPackingHoldsAtHighEventCounts) {
  // The band lives in the top bits of the queue key's seq field; the
  // FIFO counter occupies the low bits.  After hundreds of thousands of
  // events the counter must neither bleed into the band bits nor stop
  // breaking same-band ties FIFO, and events_scheduled() must stay a
  // pure schedule count (no band bits folded in).
  sim::Engine e;
  constexpr int kBulk = 300000;
  std::uint64_t fired = 0;
  for (int i = 0; i < kBulk; ++i) e.schedule_at(i, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kBulk));
  EXPECT_EQ(e.events_scheduled(), static_cast<std::uint64_t>(kBulk));

  std::vector<int> order;
  const sim::Time when = e.now() + 10;
  e.schedule_at(when, [&] { order.push_back(2); });
  e.schedule_at(when, sim::Band::kFlow, [&] { order.push_back(1); });
  e.schedule_at(when, sim::Band::kClaim, [&] { order.push_back(0); });
  e.schedule_at(when, [&] { order.push_back(3); });
  e.schedule_at(when, sim::Band::kClaim, [&] { order.push_back(-1); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, -1, 1, 2, 3}));
  EXPECT_EQ(e.events_scheduled(), static_cast<std::uint64_t>(kBulk) + 5);

  // A cancellable flow-band event at high seq still cancels cleanly.
  auto h = e.schedule_cancellable(5, sim::Band::kFlow, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  e.run();
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kBulk));
}

TEST(Engine, RunUntilStopsAtDeadlineAndAdvancesTime) {
  sim::Engine e;
  std::vector<sim::Time> fired;
  for (sim::Time t : {10, 20, 30, 40})
    e.schedule_at(t, [&, t] { fired.push_back(t); });
  EXPECT_EQ(e.run_until(25), 25);
  EXPECT_EQ(fired, (std::vector<sim::Time>{10, 20}));
  EXPECT_EQ(e.now(), 25);         // idle time up to the deadline elapses
  EXPECT_EQ(e.run_until(100), 100);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(ThreadPool, ExactSpawnGrantsEveryHelper) {
  // An explicit worker count must be honoured even past the soft cap —
  // determinism tests pin 8 workers on any machine.
  sim::ThreadPool pool(1);
  std::atomic<unsigned> ran{0};
  sim::ThreadPool::Team team =
      pool.spawn(4, /*exact=*/true, [&](unsigned) { ran.fetch_add(1); });
  EXPECT_EQ(team.size(), 4u);
  pool.join(team);
  EXPECT_EQ(ran.load(), 4u);
}

TEST(ThreadPool, AutoSpawnStaysUnderSoftCap) {
  sim::ThreadPool pool(2);
  std::atomic<unsigned> ran{0};
  sim::ThreadPool::Team team =
      pool.spawn(8, /*exact=*/false, [&](unsigned) { ran.fetch_add(1); });
  const unsigned granted = team.size();  // join() consumes the handle
  EXPECT_LE(granted, 2u);
  pool.join(team);
  EXPECT_EQ(ran.load(), granted);
}

TEST(ThreadPool, NestedSpawnDoesNotDeadlock) {
  // A sweep job that itself runs a multi-LP simulation draws helpers
  // from the same pool; the inner request may be granted nothing, and
  // the caller always participates, so the nesting must complete.
  sim::ThreadPool pool(2);
  std::atomic<unsigned> inner_done{0};
  sim::ThreadPool::Team outer =
      pool.spawn(2, /*exact=*/true, [&](unsigned) {
        sim::ThreadPool::Team inner = pool.spawn(
            4, /*exact=*/false, [&](unsigned) { inner_done.fetch_add(1); });
        pool.join(inner);
        inner_done.fetch_add(1);
      });
  pool.join(outer);
  EXPECT_GE(inner_done.load(), 2u);  // both outer jobs finished
}

TEST(ThreadPool, JoinRethrowsHelperError) {
  sim::ThreadPool pool(2);
  sim::ThreadPool::Team team = pool.spawn(2, /*exact=*/true, [](unsigned s) {
    if (s == 1) throw std::runtime_error("helper failed");
  });
  EXPECT_THROW(pool.join(team), std::runtime_error);
}

namespace {

// A bounded cross-LP ping-pong at the raw scheduler level: each hop
// posts the next message one lookahead ahead.  Returns the per-LP event
// traces (times at which each side handled a hop).
std::vector<std::vector<sim::Time>> lp_pingpong(unsigned workers, int hops,
                                                sim::Time lookahead) {
  sim::Lp a(0), b(1);
  sim::LpScheduler sched(lookahead);
  sched.add(a);
  sched.add(b);
  std::vector<std::vector<sim::Time>> trace(2);

  // hop() runs on the LP that just received the ball and posts it onward.
  std::function<void(sim::Lp&, sim::Lp&, int)> hop = [&](sim::Lp& self,
                                                         sim::Lp& peer,
                                                         int remaining) {
    trace[static_cast<std::size_t>(self.id())].push_back(self.engine().now());
    if (remaining == 0) return;
    const sim::Time when = self.engine().now() + lookahead;
    sim::LpMessage msg;
    msg.when = when;
    msg.origin = static_cast<std::uint32_t>(self.id());
    msg.seq = static_cast<std::uint64_t>(remaining);
    msg.apply = [&, when, remaining] {
      peer.engine().schedule_at(
          when, [&, remaining] { hop(peer, self, remaining - 1); });
    };
    self.post(peer.id(), std::move(msg));
  };
  a.engine().schedule_at(0, [&] { hop(a, b, hops); });
  sched.run(workers);
  return trace;
}

}  // namespace

TEST(LpScheduler, CrossLpPingPongIdenticalAcrossWorkerCounts) {
  const auto ref = lp_pingpong(1, 16, 100);
  EXPECT_EQ(ref[0].size() + ref[1].size(), 17u);
  EXPECT_EQ(lp_pingpong(2, 16, 100), ref);
  EXPECT_EQ(lp_pingpong(2, 16, 100), ref);  // re-run: identical again
}

TEST(LpScheduler, WindowsSkipIdleVirtualTime) {
  // Two sparse events 1 ms apart must not cost ~10000 lookahead windows:
  // the coordinator jumps each window start to the global next event.
  sim::Lp a(0), b(1);
  sim::LpScheduler sched(100);
  sched.add(a);
  sched.add(b);
  int fired = 0;
  a.engine().schedule_at(0, [&] { ++fired; });
  b.engine().schedule_at(sim::kMillisecond, [&] { ++fired; });
  sched.run(1);
  EXPECT_EQ(fired, 2);
  EXPECT_LE(sched.windows_run(), 4u);
}

TEST(LpScheduler, LookaheadViolationThrows) {
  // Posting a message inside the current window means the configured
  // lookahead overstates the real minimum latency — a silent causality
  // break, so it must throw instead.
  sim::Lp a(0), b(1);
  sim::LpScheduler sched(100);
  sched.add(a);
  sched.add(b);
  a.engine().schedule_at(50, [&] {
    sim::LpMessage msg;
    msg.when = a.engine().now();  // inside the window: illegal
    msg.apply = [] {};
    a.post(1, std::move(msg));
  });
  EXPECT_THROW(sched.run(1), std::logic_error);
}
