// End-to-end postmortem path: a scripted fault plan drives a rendezvous
// pull to retry exhaustion, the driver's fatal path fires
// Engine::on_panic, the always-on flight recorder dumps, and the dump's
// tail maps back to the faulting message — the acceptance loop behind
// examples/omx_postmortem, pinned as a tier-1 test.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/endpoint.hpp"
#include "fault/fault.hpp"
#include "mem/aligned_buffer.hpp"
#include "obs/flight.hpp"
#include "sim/engine.hpp"

namespace sim = openmx::sim;
namespace core = openmx::core;
namespace obs = openmx::obs;
namespace fault = openmx::fault;
namespace mem = openmx::mem;

namespace {

struct ForcedFailure {
  std::string reason;
  int panics = 0;
  bool recv_failed = false;
  bool send_failed = false;
  obs::FlightRecorder recorder{1, 256};
};

/// Kills every PullReply so the receiver's pull burns its retry budget;
/// fills `out` with what the panic hook and the endpoints observed.
/// (Out-parameter because the recorder ring is non-copyable.)  When
/// `dump_path` is set, the panic hook dumps the recorder there — dumping
/// must happen while the cluster is alive, since the recorder renders
/// event names through the Trace's interners.
void force_pull_exhaustion(ForcedFailure& out,
                           const std::string& dump_path = {}) {
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  cfg.retrans_timeout = 50 * sim::kMicrosecond;
  cfg.max_retries = 3;

  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  cluster.engine().trace().attach_flight(&out.recorder, 0);
  cluster.engine().set_on_panic([&](const char* why) {
    out.reason = why;
    ++out.panics;
    if (!dump_path.empty())
      out.recorder.dump_json_file(dump_path, why, /*seed=*/99);
  });

  fault::Plan plan(7);
  plan.drop_all(fault::Match::PullReply);
  cluster.network().set_fault_injector(&plan);

  const std::size_t len = 256 * sim::KiB;
  mem::Buffer src(len, 1), dst(len, 2);
  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    out.send_failed = ep.wait(ep.isend(src.data(), len, {1, 1}, 3)).failed;
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    out.recv_failed = ep.wait(ep.irecv(dst.data(), len, 3)).failed;
  });
  cluster.run();
}

}  // namespace

TEST(Postmortem, PullExhaustionFiresPanicWithMessageIdentity) {
  ForcedFailure f;
  force_pull_exhaustion(f);
  EXPECT_TRUE(f.recv_failed);
  EXPECT_EQ(f.panics, 1);  // at-most-once, even with retries + abort path
  // The reason names the faulting message so tooling can map the tail.
  EXPECT_NE(f.reason.find("pull retries exhausted"), std::string::npos)
      << f.reason;
  EXPECT_NE(f.reason.find("handle="), std::string::npos) << f.reason;
}

TEST(Postmortem, RecorderTailMapsToFaultingMessage) {
  ForcedFailure f;
  force_pull_exhaustion(f);
  ASSERT_FALSE(f.reason.empty());
  // Extract the handle the driver blamed...
  unsigned long long handle = 0;
  ASSERT_EQ(std::sscanf(f.reason.c_str() + f.reason.find("handle="),
                        "handle=%llu", &handle),
            1);
  // ...and find it in the recorded tail: the pull.start event carries
  // (handle, len) as a0/a1, captured with the trace disabled.
  ASSERT_GT(f.recorder.recorded(0), 0u);
  bool mapped = false;
  for (const obs::TraceEvent& e : f.recorder.tail(0))
    if (e.cat == obs::Cat::Pull && e.a0 == handle) mapped = true;
  EXPECT_TRUE(mapped) << "no pull event with a0=" << handle
                      << " in the recorded tail";
}

TEST(Postmortem, DumpFileRoundTripsReasonAndSeed) {
  const std::string path = ::testing::TempDir() + "postmortem_test.json";
  ForcedFailure f;
  force_pull_exhaustion(f, path);  // dumped by the panic hook mid-run
  ASSERT_EQ(f.panics, 1);

  std::FILE* in = std::fopen(path.c_str(), "r");
  ASSERT_NE(in, nullptr);
  char line[512];
  ASSERT_NE(std::fgets(line, sizeof line, in), nullptr);
  char reason[128];
  unsigned long long seed = 0;
  EXPECT_EQ(std::sscanf(line,
                        "{\"postmortem\":{\"reason\":\"%127[^\"]\","
                        "\"seed\":%llu",
                        reason, &seed),
            2);
  EXPECT_EQ(seed, 99u);
  EXPECT_EQ(f.reason, reason);
  std::size_t events = 0;
  while (std::fgets(line, sizeof line, in))
    if (std::strncmp(line, "{\"name\":", 8) == 0) ++events;
  std::fclose(in);
  std::remove(path.c_str());
  EXPECT_GT(events, 0u);
}

TEST(Postmortem, OnPanicFiresWhenEventCallbackThrows) {
  sim::Engine eng;
  std::string reason;
  eng.set_on_panic([&](const char* why) { reason = why; });
  eng.schedule(100, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(eng.run(), std::runtime_error);  // panic reports, then rethrows
  EXPECT_EQ(reason, "event callback threw");

  // Re-arming via set_on_panic allows a second report; without it the
  // hook stays one-shot.
  std::string second;
  eng.set_on_panic([&](const char* why) { second = why; });
  eng.panic("manual");
  eng.panic("ignored");
  EXPECT_EQ(second, "manual");
}
