// Tests for the paper's discussion/future-work extensions and the
// ablation switches: threshold auto-tuning, predicted-completion sleep,
// cache-warm head copies, overlapped registration, multi-channel
// striping, synchronous medium offload, and the cleanup-cadence and
// no-overlap ablations.
#include <gtest/gtest.h>

#include <vector>

#include "core/cluster.hpp"
#include "core/endpoint.hpp"

namespace sim = openmx::sim;
namespace core = openmx::core;
namespace cpu = openmx::cpu;

namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  std::uint8_t x = seed;
  for (auto& b : v) {
    x = static_cast<std::uint8_t>(x * 31 + 7);
    b = x;
  }
  return v;
}

struct Outcome {
  sim::Time elapsed = 0;
  sim::Time driver_busy = 0;
  std::uint64_t ioat_bytes = 0;
  std::uint64_t memcpy_bytes = 0;
};

/// One large transfer node0->node1 (or intra-node), returning timing and
/// path counters from the receiving node.
Outcome transfer(const core::OmxConfig& cfg, std::size_t len,
                 bool local = false) {
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  core::Node& rx_node = local ? cluster.node(0) : cluster.node(1);
  auto src = pattern(len);
  std::vector<std::uint8_t> dst(len);
  Outcome out;

  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(src.data(), len,
                     core::Addr{rx_node.id(), 1}, 1));
  });
  cluster.spawn(rx_node, local ? 2 : 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    core::Request* r = ep.irecv(dst.data(), len, 1);
    const sim::Time t0 = p.now();
    ep.wait(r);
    out.elapsed = p.now() - t0;
  });
  cluster.run();
  EXPECT_EQ(dst, src);
  out.driver_busy = rx_node.machine().busy_all_cores(cpu::Cat::DriverSyscall);
  out.ioat_bytes = rx_node.driver().counters().get("driver.large_ioat_bytes") +
                   rx_node.driver().counters().get("driver.shm_ioat_bytes");
  out.memcpy_bytes =
      rx_node.driver().counters().get("driver.large_memcpy_bytes") +
      rx_node.driver().counters().get("driver.shm_memcpy_bytes");
  return out;
}

}  // namespace

// ----- Section VI: startup auto-tuning of the offload thresholds -----

TEST(Autotune, PicksThresholdsNearPaperValues) {
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  cfg.autotune_thresholds = true;
  core::Cluster cluster;
  cluster.add_nodes(1, cfg);
  const auto& tuned = cluster.node(0).driver().config();
  // Paper's empirical choice: fragments >= ~1 kB, messages >= 64 kB.
  EXPECT_GE(tuned.ioat_min_frag, 512u);
  EXPECT_LE(tuned.ioat_min_frag, 4096u);
  EXPECT_GE(tuned.ioat_min_msg, 32u * sim::KiB);
  EXPECT_LE(tuned.ioat_min_msg, 128u * sim::KiB);
}

TEST(Autotune, TransfersStillWork) {
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  cfg.autotune_thresholds = true;
  const Outcome o = transfer(cfg, sim::MiB);
  EXPECT_GT(o.ioat_bytes, 0u);
}

// ----- Section VI: predicted-completion sleep for synchronous copies ----

TEST(SleepSyncCopy, ReducesDriverBusyTimeAtSameSpeed) {
  core::OmxConfig poll;
  poll.ioat_shm = true;
  core::OmxConfig sleep = poll;
  sleep.sleep_sync_copy = true;
  const std::size_t len = 4 * sim::MiB;
  const Outcome o_poll = transfer(poll, len, /*local=*/true);
  const Outcome o_sleep = transfer(sleep, len, /*local=*/true);
  // Sleeping frees the CPU during the engine's copy...
  EXPECT_LT(o_sleep.driver_busy, o_poll.driver_busy / 2);
  // ...without changing the transfer time materially.
  EXPECT_NEAR(static_cast<double>(o_sleep.elapsed),
              static_cast<double>(o_poll.elapsed),
              0.05 * static_cast<double>(o_poll.elapsed));
}

// ----- Section V: cache-warming head copies -----

TEST(CacheWarmHead, SplitsMessageBetweenMemcpyAndIoat) {
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  cfg.cache_warm_head = true;
  const std::size_t len = sim::MiB;
  const Outcome o = transfer(cfg, len);
  // The head (up to the eager threshold) goes through memcpy to warm the
  // cache; the tail is offloaded.
  EXPECT_GE(o.memcpy_bytes, 32u * sim::KiB);
  EXPECT_LE(o.memcpy_bytes, 64u * sim::KiB);
  EXPECT_EQ(o.ioat_bytes + o.memcpy_bytes, len);
}

// ----- Section V: overlapped registration -----

TEST(OverlapRegistration, ShrinksSynchronousPinCost) {
  core::OmxConfig base;
  base.regcache = false;
  core::OmxConfig ovl = base;
  ovl.overlap_registration = true;
  const std::size_t len = 8 * sim::MiB;
  const Outcome o_base = transfer(base, len);
  const Outcome o_ovl = transfer(ovl, len);
  // The receive completes sooner because only the first block's pages are
  // pinned before the pull starts.
  EXPECT_LT(o_ovl.elapsed, o_base.elapsed);
}

// ----- Section V / [22]: multiple DMA channels -----

class Channels : public ::testing::TestWithParam<int> {};

TEST_P(Channels, StripedMessagesArriveIntact) {
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  cfg.channels_per_msg = GetParam();
  const Outcome o = transfer(cfg, 2 * sim::MiB);
  EXPECT_EQ(o.ioat_bytes, 2 * sim::MiB);
}

INSTANTIATE_TEST_SUITE_P(OneToFour, Channels, ::testing::Values(1, 2, 4));

// ----- Section IV-C: synchronous medium offload degrades -----

TEST(MediumSync, OffloadingMediumCopiesIsSlower) {
  core::OmxConfig plain;
  core::OmxConfig med;
  med.ioat_medium = true;
  // A stream of 16 kB messages: four 4 kB fragment copies each, all
  // synchronous (paper: "we noticed a performance degradation").
  const std::size_t len = 16 * sim::KiB;
  core::Cluster c1, c2;
  sim::Time t_plain = 0, t_med = 0;
  for (auto* pr : {&t_plain, &t_med}) {
    core::Cluster cluster;
    cluster.add_nodes(2, pr == &t_plain ? plain : med);
    auto src = pattern(len);
    std::vector<std::uint8_t> dst(len);
    cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
      core::Endpoint ep(p, 0);
      for (int i = 0; i < 50; ++i)
        ep.wait(ep.isend(src.data(), len, {1, 1}, 1));
    });
    cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
      core::Endpoint ep(p, 1);
      const sim::Time t0 = p.now();
      for (int i = 0; i < 50; ++i) ep.wait(ep.irecv(dst.data(), len, 1));
      *pr = p.now() - t0;
    });
    cluster.run();
    EXPECT_EQ(dst, src);
  }
  EXPECT_GT(t_med, t_plain);
}

// ----- ablation: overlap is what buys the throughput -----

TEST(OverlapAblation, SynchronousPerFragmentWaitIsSlower) {
  core::OmxConfig overlap;
  overlap.ioat_large = true;
  core::OmxConfig sync = overlap;
  sync.ioat_large_sync = true;
  const std::size_t len = sim::MiB;
  const Outcome o_overlap = transfer(overlap, len);
  const Outcome o_sync = transfer(sync, len);
  EXPECT_LT(o_overlap.elapsed, o_sync.elapsed);
}

// ----- ablation: cleanup cadence bounds the skbuff pool -----

TEST(CleanupAblation, WithoutCleanupPendingGrowsWithMessage) {
  for (bool cleanup : {true, false}) {
    core::OmxConfig cfg;
    cfg.ioat_large = true;
    cfg.cleanup_on_block = cleanup;
    core::Cluster cluster;
    cluster.add_nodes(2, cfg);
    const std::size_t len = 4 * sim::MiB;
    auto src = pattern(len);
    std::vector<std::uint8_t> dst(len);
    std::size_t max_pending = 0;
    bool done = false;
    std::function<void()> sampler = [&] {
      max_pending = std::max(
          max_pending, cluster.node(1).driver().pending_offload_skbuffs());
      if (!done)
        cluster.engine().schedule(10 * sim::kMicrosecond, [&] { sampler(); });
    };
    cluster.engine().schedule(10 * sim::kMicrosecond, [&] { sampler(); });
    cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
      core::Endpoint ep(p, 0);
      ep.wait(ep.isend(src.data(), len, {1, 1}, 1));
    });
    cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
      core::Endpoint ep(p, 1);
      ep.wait(ep.irecv(dst.data(), len, 1));
      done = true;
    });
    cluster.run();
    EXPECT_EQ(dst, src);
    if (cleanup) {
      EXPECT_LE(max_pending, 48u);
    } else {
      // 4 MiB = 1024 fragments: without periodic release, the pool tracks
      // the whole message.
      EXPECT_GT(max_pending, 200u);
    }
  }
}

// ----- Section VI: in-driver matching / overlapped medium copies -----

TEST(MediumOverlap, PayloadIntactAcrossSizes) {
  core::OmxConfig cfg;
  cfg.ioat_medium_overlap = true;
  for (std::size_t len : {std::size_t{8192}, std::size_t{16 * 1024},
                          std::size_t{32 * 1024}}) {
    core::Cluster cluster;
    cluster.add_nodes(2, cfg);
    auto src = pattern(len, static_cast<std::uint8_t>(len & 0xff));
    std::vector<std::uint8_t> dst(len);
    cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
      core::Endpoint ep(p, 0);
      ep.wait(ep.isend(src.data(), len, {1, 1}, 1));
    });
    cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
      core::Endpoint ep(p, 1);
      ep.wait(ep.irecv(dst.data(), len, 1));
    });
    cluster.run();
    EXPECT_EQ(dst, src) << len;
    EXPECT_GT(cluster.node(1).driver().counters().get(
                  "driver.medium_overlap_bytes"),
              0u);
  }
}

TEST(MediumOverlap, BeatsBothSyncVariants) {
  // The whole point of moving the matching into the driver (Section VI):
  // medium fragment copies overlap, so the stream runs faster than both
  // the plain ring-memcpy path and the degraded synchronous offload.
  auto stream_time = [&](const core::OmxConfig& cfg) {
    core::Cluster cluster;
    cluster.add_nodes(2, cfg);
    const std::size_t len = 32 * 1024;
    auto src = pattern(len);
    std::vector<std::uint8_t> dst(len);
    sim::Time t = 0;
    cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
      core::Endpoint ep(p, 0);
      for (int i = 0; i < 40; ++i)
        ep.wait(ep.isend(src.data(), len, {1, 1}, 1));
    });
    cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
      core::Endpoint ep(p, 1);
      const sim::Time t0 = p.now();
      for (int i = 0; i < 40; ++i) ep.wait(ep.irecv(dst.data(), len, 1));
      t = p.now() - t0;
    });
    cluster.run();
    EXPECT_EQ(dst, src);
    return t;
  };
  core::OmxConfig plain;
  core::OmxConfig sync;
  sync.ioat_medium = true;
  core::OmxConfig overlap;
  overlap.ioat_medium_overlap = true;
  const sim::Time t_plain = stream_time(plain);
  const sim::Time t_sync = stream_time(sync);
  const sim::Time t_overlap = stream_time(overlap);
  EXPECT_LT(t_overlap, t_plain);
  EXPECT_LT(t_overlap, t_sync);
}

TEST(MediumOverlap, SurvivesLoss) {
  core::OmxConfig cfg;
  cfg.ioat_medium_overlap = true;
  cfg.retrans_timeout = 100 * sim::kMicrosecond;
  core::Cluster cluster({}, [] {
    openmx::net::NetParams p;
    p.loss_prob = 0.05;
    p.loss_seed = 77;
    return p;
  }());
  cluster.add_nodes(2, cfg);
  const std::size_t len = 24 * 1024;
  auto src = pattern(len);
  std::vector<std::uint8_t> dst(len);
  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    for (int i = 0; i < 10; ++i)
      ep.wait(ep.isend(src.data(), len, {1, 1}, 1));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    for (int i = 0; i < 10; ++i) ep.wait(ep.irecv(dst.data(), len, 1));
  });
  cluster.run();
  EXPECT_EQ(dst, src);
}
