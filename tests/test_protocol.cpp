// Protocol-level tests of the Open-MX driver: acknowledgment and
// deduplication behaviour, retransmission counters, stale-handle
// handling, event ordering, pull-block pipelining and wire accounting.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/cluster.hpp"
#include "core/endpoint.hpp"
#include "tests/test_common.hpp"

namespace sim = openmx::sim;
namespace core = openmx::core;
namespace net = openmx::net;

namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  std::uint8_t x = seed;
  for (auto& b : v) {
    x = static_cast<std::uint8_t>(x * 31 + 7);
    b = x;
  }
  return v;
}

struct Net2 {
  core::Cluster cluster;
  explicit Net2(core::OmxConfig cfg = {}, net::NetParams np = {})
      : cluster({}, np) {
    cluster.add_nodes(2, cfg);
  }
  core::Node& n0() { return cluster.node(0); }
  core::Node& n1() { return cluster.node(1); }
};

void simple_transfer(core::Cluster& cluster, std::size_t len,
                     std::vector<std::uint8_t>& src,
                     std::vector<std::uint8_t>& dst, int count = 1) {
  src = pattern(len);
  dst.assign(len ? len : 1, 0);
  cluster.spawn(cluster.node(0), 0, "s", [&, count](core::Process& p) {
    core::Endpoint ep(p, 0);
    for (int i = 0; i < count; ++i)
      ep.wait(ep.isend(src.data(), len, {1, 1}, 1));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&, count](core::Process& p) {
    core::Endpoint ep(p, 1);
    for (int i = 0; i < count; ++i)
      ep.wait(ep.irecv(dst.data(), len, 1));
  });
  cluster.run();
  dst.resize(len);
}

}  // namespace

TEST(Protocol, EagerMessageIsAckedOnce) {
  Net2 f;
  std::vector<std::uint8_t> src, dst;
  simple_transfer(f.cluster, 8 * 1024, src, dst);
  EXPECT_EQ(dst, src);
  // 2 data fragments + 1 ack on the wire.
  EXPECT_EQ(f.cluster.network().counters().get("net.tx_frames"), 3u);
  EXPECT_EQ(f.n0().driver().counters().get("driver.eager_retransmits"), 0u);
}

TEST(Protocol, LargeMessageFrameAccounting) {
  Net2 f;
  std::vector<std::uint8_t> src, dst;
  const std::size_t len = 256 * sim::KiB;  // 64 fragments, 8 blocks
  simple_transfer(f.cluster, len, src, dst);
  EXPECT_EQ(dst, src);
  const auto& net = f.cluster.network().counters();
  // rndv + 8 pull requests + 64 replies + 1 large-ack = 74 frames.
  EXPECT_EQ(net.get("net.tx_frames"), 74u);
  EXPECT_EQ(f.n0().driver().counters().get("driver.pull_replies"), 64u);
  EXPECT_EQ(f.n1().driver().counters().get("driver.pull_reqs"), 8u);
  EXPECT_EQ(f.n1().driver().counters().get("driver.pulls_finished"), 1u);
}

TEST(Protocol, PipelineKeepsTwoBlocksOutstanding) {
  core::OmxConfig cfg;
  cfg.pull_blocks_outstanding = 2;
  Net2 f(cfg);
  // Track the maximum number of requested-but-incomplete blocks by
  // watching pull requests vs finished blocks through wire counters over
  // time: the first two requests go out together.
  std::vector<std::uint8_t> src, dst;
  simple_transfer(f.cluster, 128 * sim::KiB, src, dst);
  EXPECT_EQ(dst, src);
  EXPECT_EQ(f.n1().driver().counters().get("driver.pull_reqs"), 4u);
}

TEST(Protocol, DuplicateEagerIsReackedNotRedelivered) {
  // Force a duplicate by dropping the first MsgAck: sender retransmits,
  // receiver must re-ack without delivering the payload twice.
  net::NetParams np;
  np.loss_prob = 0.35;
  np.loss_seed = 11;
  core::OmxConfig cfg;
  cfg.retrans_timeout = 50 * sim::kMicrosecond;
  Net2 f(cfg, np);
  std::vector<std::uint8_t> src, dst;
  int recv_count = 0;
  src = pattern(4096);
  dst.assign(4096, 0);
  f.cluster.spawn(f.n0(), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    for (int i = 0; i < 10; ++i)
      ep.wait(ep.isend(src.data(), src.size(), {1, 1}, 1));
  });
  f.cluster.spawn(f.n1(), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    for (int i = 0; i < 10; ++i) {
      ep.wait(ep.irecv(dst.data(), dst.size(), 1));
      ++recv_count;
    }
  });
  f.cluster.run();
  EXPECT_EQ(recv_count, 10);
  EXPECT_EQ(dst, src);
  // With 35 % loss something must have been retransmitted.
  EXPECT_GT(f.n0().driver().counters().get("driver.eager_retransmits"), 0u);
}

TEST(Protocol, SendToUnknownEndpointFailsAfterRetries) {
  core::OmxConfig cfg;
  cfg.retrans_timeout = 20 * sim::kMicrosecond;
  cfg.max_retries = 5;
  Net2 f(cfg);
  std::vector<std::uint8_t> src = pattern(512);
  bool failed = false;
  f.cluster.spawn(f.n0(), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    // Endpoint 9 was never opened on node 1; the send can never be acked,
    // so the driver gives up after max_retries and reports failure.
    const core::Request done = ep.wait(ep.isend(src.data(), src.size(),
                                                {1, 9}, 1));
    failed = done.failed;
  });
  f.cluster.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(f.n0().driver().counters().get("driver.aborted_sends"), 1u);
  // The receiver's driver nacks the unknown endpoint, so the sender fails
  // fast instead of burning its full retry budget.
  EXPECT_EQ(f.n1().driver().counters().get("driver.nacks_sent"), 1u);
  EXPECT_EQ(f.n0().driver().counters().get("driver.eager_retransmits"), 0u);
}

TEST(Protocol, RndvToUnknownEndpointFailsAfterRetries) {
  core::OmxConfig cfg;
  cfg.retrans_timeout = 20 * sim::kMicrosecond;
  cfg.max_retries = 5;
  Net2 f(cfg);
  std::vector<std::uint8_t> src = pattern(256 * 1024);
  bool failed = false;
  f.cluster.spawn(f.n0(), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    const core::Request done = ep.wait(ep.isend(src.data(), src.size(),
                                                {1, 9}, 1));
    failed = done.failed;
  });
  f.cluster.run();
  EXPECT_TRUE(failed);
}

TEST(Protocol, TruncatedPullTransfersOnlyCapacity) {
  Net2 f;
  const std::size_t sent = sim::MiB;
  const std::size_t cap = 256 * sim::KiB;
  auto src = pattern(sent);
  std::vector<std::uint8_t> dst(cap, 0);
  std::size_t got = 0;
  f.cluster.spawn(f.n0(), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(src.data(), sent, {1, 1}, 1));
  });
  f.cluster.spawn(f.n1(), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    got = ep.wait(ep.irecv(dst.data(), cap, 1)).recv_len;
  });
  f.cluster.run();
  EXPECT_EQ(got, cap);
  EXPECT_TRUE(std::equal(dst.begin(), dst.end(), src.begin()));
  // Only the truncated length crossed the wire: 64 fragments, not 256.
  EXPECT_EQ(f.n0().driver().counters().get("driver.pull_replies"), 64u);
}

TEST(Protocol, EventsArriveInFragmentStreamOrder) {
  // Single-fragment messages from one sender are delivered in send order
  // (the wire, rings and event queue are all FIFO).
  Net2 f;
  constexpr int kMsgs = 32;
  std::vector<int> order;
  f.cluster.spawn(f.n0(), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    std::vector<core::Request*> reqs;
    std::vector<std::vector<std::uint8_t>> bufs;
    for (int i = 0; i < kMsgs; ++i) {
      bufs.push_back(pattern(64, static_cast<std::uint8_t>(i)));
      reqs.push_back(ep.isend(bufs.back().data(), 64, {1, 1},
                              static_cast<std::uint64_t>(i)));
    }
    for (auto* r : reqs) ep.wait(r);
  });
  f.cluster.spawn(f.n1(), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    std::vector<std::uint8_t> buf(64);
    for (int i = 0; i < kMsgs; ++i) {
      // Wildcard receives: completion order == arrival order.
      const core::Request done = ep.wait(ep.irecv(buf.data(), 64, 0, 0));
      (void)done;
      order.push_back(static_cast<int>(buf[1]));
    }
  });
  f.cluster.run();
  // Message i's pattern(seed=i) second byte identifies it; they must come
  // out 0..kMsgs-1 in order.
  for (int i = 1; i < kMsgs; ++i)
    EXPECT_NE(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(i - 1)]);
}

TEST(Protocol, ConcurrentLargePullsUseDistinctHandles) {
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  Net2 f(cfg);
  constexpr int kMsgs = 4;
  const std::size_t len = 512 * sim::KiB;
  std::vector<std::vector<std::uint8_t>> src, dst(kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    src.push_back(pattern(len, static_cast<std::uint8_t>(i + 1)));
    dst[static_cast<std::size_t>(i)].resize(len);
  }
  f.cluster.spawn(f.n0(), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    std::vector<core::Request*> reqs;
    for (int i = 0; i < kMsgs; ++i)
      reqs.push_back(ep.isend(src[static_cast<std::size_t>(i)].data(), len,
                              {1, 1}, static_cast<std::uint64_t>(i)));
    for (auto* r : reqs) ep.wait(r);
  });
  f.cluster.spawn(f.n1(), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    std::vector<core::Request*> reqs;
    for (int i = 0; i < kMsgs; ++i)
      reqs.push_back(ep.irecv(dst[static_cast<std::size_t>(i)].data(), len,
                              static_cast<std::uint64_t>(i)));
    for (auto* r : reqs) ep.wait(r);
  });
  f.cluster.run();
  for (int i = 0; i < kMsgs; ++i)
    EXPECT_EQ(dst[static_cast<std::size_t>(i)],
              src[static_cast<std::size_t>(i)])
        << i;
  EXPECT_EQ(f.n1().driver().counters().get("driver.pulls_started"),
            static_cast<std::uint64_t>(kMsgs));
}

TEST(Protocol, HeavyLossEventuallyDeliversEverything) {
  net::NetParams np;
  np.loss_prob = 0.30;
  np.loss_seed = 321;
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  cfg.retrans_timeout = 40 * sim::kMicrosecond;
  Net2 f(cfg, np);
  std::vector<std::uint8_t> src, dst;
  simple_transfer(f.cluster, 512 * sim::KiB, src, dst);
  EXPECT_EQ(dst, src);
  EXPECT_GT(f.cluster.network().counters().get("net.dropped_frames"), 0u);
  openmx::testutil::expect_no_leaks(f.cluster);
  openmx::testutil::expect_frame_conservation(f.cluster);
}

TEST(Protocol, ZeroByteMessageCompletesBothSides) {
  Net2 f;
  bool send_done = false, recv_done = false;
  f.cluster.spawn(f.n0(), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(nullptr, 0, {1, 1}, 1));
    send_done = true;
  });
  f.cluster.spawn(f.n1(), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    const core::Request done = ep.wait(ep.irecv(nullptr, 0, 1));
    recv_done = true;
    EXPECT_EQ(done.recv_len, 0u);
  });
  f.cluster.run();
  EXPECT_TRUE(send_done);
  EXPECT_TRUE(recv_done);
}

TEST(Protocol, SelfSendThroughLocalPath) {
  // An endpoint sending to another endpoint of the same process's node
  // uses the local path even when both endpoints belong to one process.
  core::Cluster cluster;
  cluster.add_nodes(1, {});
  auto src = pattern(128 * 1024);
  std::vector<std::uint8_t> dst(src.size());
  cluster.spawn(cluster.node(0), 0, "p", [&](core::Process& p) {
    core::Endpoint ep0(p, 0);
    core::Endpoint ep1(p, 1);
    core::Request* r = ep1.irecv(dst.data(), dst.size(), 5);
    core::Request* s = ep0.isend(src.data(), src.size(), {0, 1}, 5);
    ep1.wait(r);
    ep0.wait(s);
  });
  cluster.run();
  EXPECT_EQ(dst, src);
  EXPECT_EQ(cluster.node(0).driver().counters().get("driver.local_sent"),
            1u);
  EXPECT_EQ(cluster.network().counters().get("net.tx_frames"), 0u);
}

TEST(Protocol, WildcardMaskMatchesAnything) {
  Net2 f;
  auto src = pattern(1024);
  std::vector<std::uint8_t> dst(1024);
  f.cluster.spawn(f.n0(), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(src.data(), src.size(), {1, 1}, 0xDEADBEEF));
  });
  f.cluster.spawn(f.n1(), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    const core::Request done =
        ep.wait(ep.irecv(dst.data(), dst.size(), 0, /*mask=*/0));
    EXPECT_EQ(done.recv_len, 1024u);
  });
  f.cluster.run();
  EXPECT_EQ(dst, src);
}

TEST(Protocol, TinyRxRingRecoversViaRetransmission) {
  // A receive ring far smaller than the pull window: frames are dropped
  // at the NIC while I/OAT holds skbuffs, and the pull protocol's
  // re-requests recover every fragment.
  net::NetParams np;
  np.rx_ring_slots = 6;
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  cfg.retrans_timeout = 100 * sim::kMicrosecond;
  Net2 f(cfg, np);
  std::vector<std::uint8_t> src, dst;
  simple_transfer(f.cluster, 512 * sim::KiB, src, dst);
  EXPECT_EQ(dst, src);
  EXPECT_GT(f.n1().nic().counters().get("nic.rx_ring_drops"), 0u);
  openmx::testutil::expect_no_leaks(f.cluster);
  openmx::testutil::expect_frame_conservation(f.cluster);
}

TEST(Protocol, ManySmallMessagesKeepRingBounded) {
  Net2 f;
  std::vector<std::uint8_t> src, dst;
  simple_transfer(f.cluster, 2048, src, dst, /*count=*/200);
  EXPECT_EQ(dst, src);
  EXPECT_EQ(f.n1().nic().counters().get("nic.rx_ring_drops"), 0u);
  openmx::testutil::expect_no_leaks(f.cluster);
  openmx::testutil::expect_frame_conservation(f.cluster);
}
