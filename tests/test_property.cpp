// Property-style randomized tests: deterministic "message storms" with
// random sizes, tags, posting orders and loss, across configuration
// corners.  The invariant is always the same: every payload arrives
// exactly once, intact, at the matching receive.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/endpoint.hpp"
#include "sim/rng.hpp"

namespace sim = openmx::sim;
namespace core = openmx::core;
namespace net = openmx::net;

namespace {

struct StormCase {
  std::uint64_t seed;
  bool ioat;
  double loss;
  bool local;  // intra-node instead of across the wire
};

/// Fills a buffer with a seed-derived pattern so payload mixups between
/// messages are detectable.
void fill(std::vector<std::uint8_t>& v, std::uint64_t tag) {
  sim::Rng rng(tag * 2654435761u + 1);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
}

bool check(const std::vector<std::uint8_t>& v, std::uint64_t tag,
           std::size_t expect_len) {
  if (v.size() != expect_len) return false;
  std::vector<std::uint8_t> want(expect_len);
  fill(want, tag);
  return v == want;
}

class MessageStorm : public ::testing::TestWithParam<StormCase> {};

}  // namespace

TEST_P(MessageStorm, EveryPayloadDeliveredIntact) {
  StormCase sc = GetParam();
  // OMX_TEST_SEED replays an arbitrary schedule without a rebuild; the
  // trace below names the seed to rerun when a draw fails.
  if (const char* env = std::getenv("OMX_TEST_SEED"))
    sc.seed = std::strtoull(env, nullptr, 10);
  SCOPED_TRACE("replay: OMX_TEST_SEED=" + std::to_string(sc.seed));
  sim::Rng rng(sc.seed);

  // Draw the plan: message sizes spanning tiny..multi-MB, a shuffled
  // receive order, and a split between pre-posted and late receives.
  constexpr int kMsgs = 24;
  std::vector<std::size_t> sizes;
  std::vector<int> recv_order;
  for (int i = 0; i < kMsgs; ++i) {
    const int bucket = static_cast<int>(rng.next_below(4));
    std::size_t len = 0;
    switch (bucket) {
      case 0: len = rng.next_below(128); break;                    // tiny
      case 1: len = 128 + rng.next_below(32 * 1024 - 128); break;  // medium
      case 2: len = 32 * 1024 + rng.next_below(256 * 1024); break; // large
      default: len = 256 * 1024 + rng.next_below(2 * 1024 * 1024); break;
    }
    sizes.push_back(len);
    recv_order.push_back(i);
  }
  for (int i = kMsgs - 1; i > 0; --i)
    std::swap(recv_order[static_cast<std::size_t>(i)],
              recv_order[rng.next_below(static_cast<std::uint64_t>(i + 1))]);

  net::NetParams np;
  np.loss_prob = sc.loss;
  np.loss_seed = sc.seed ^ 0xABCD;
  core::OmxConfig cfg;
  cfg.ioat_large = sc.ioat;
  cfg.ioat_shm = sc.ioat;
  if (sc.loss > 0) cfg.retrans_timeout = 80 * sim::kMicrosecond;

  core::Cluster cluster({}, np);
  cluster.add_nodes(2, cfg);
  core::Node& rx_node = sc.local ? cluster.node(0) : cluster.node(1);

  std::vector<std::vector<std::uint8_t>> payloads, sinks(kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    payloads.emplace_back(sizes[static_cast<std::size_t>(i)]);
    fill(payloads.back(), static_cast<std::uint64_t>(i));
    sinks[static_cast<std::size_t>(i)]
        .resize(sizes[static_cast<std::size_t>(i)]);
  }

  cluster.spawn(cluster.node(0), 0, "storm-tx", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    std::vector<core::Request*> reqs;
    for (int i = 0; i < kMsgs; ++i)
      reqs.push_back(ep.isend(payloads[static_cast<std::size_t>(i)].data(),
                              payloads[static_cast<std::size_t>(i)].size(),
                              {rx_node.id(), 1},
                              static_cast<std::uint64_t>(i)));
    for (auto* r : reqs) {
      const core::Request done = ep.wait(r);
      EXPECT_FALSE(done.failed);
    }
  });
  cluster.spawn(rx_node, sc.local ? 2 : 0, "storm-rx",
                [&](core::Process& p) {
                  core::Endpoint ep(p, 1);
                  // Post the first half in shuffled order, then wait a bit
                  // so the rest arrive unexpected, then post the others.
                  std::vector<core::Request*> reqs(kMsgs, nullptr);
                  for (int k = 0; k < kMsgs / 2; ++k) {
                    const int i = recv_order[static_cast<std::size_t>(k)];
                    reqs[static_cast<std::size_t>(i)] = ep.irecv(
                        sinks[static_cast<std::size_t>(i)].data(),
                        sinks[static_cast<std::size_t>(i)].size(),
                        static_cast<std::uint64_t>(i));
                  }
                  p.compute(200 * sim::kMicrosecond);
                  for (int k = kMsgs / 2; k < kMsgs; ++k) {
                    const int i = recv_order[static_cast<std::size_t>(k)];
                    reqs[static_cast<std::size_t>(i)] = ep.irecv(
                        sinks[static_cast<std::size_t>(i)].data(),
                        sinks[static_cast<std::size_t>(i)].size(),
                        static_cast<std::uint64_t>(i));
                  }
                  for (auto* r : reqs) {
                    const core::Request done = ep.wait(r);
                    EXPECT_FALSE(done.failed);
                  }
                });
  cluster.run();

  for (int i = 0; i < kMsgs; ++i)
    EXPECT_TRUE(check(sinks[static_cast<std::size_t>(i)],
                      static_cast<std::uint64_t>(i),
                      sizes[static_cast<std::size_t>(i)]))
        << "message " << i << " size " << sizes[static_cast<std::size_t>(i)];
}

INSTANTIATE_TEST_SUITE_P(
    Storms, MessageStorm,
    ::testing::Values(StormCase{1, false, 0.0, false},
                      StormCase{2, true, 0.0, false},
                      StormCase{3, true, 0.0, true},
                      StormCase{4, false, 0.0, true},
                      StormCase{5, true, 0.03, false},
                      StormCase{6, false, 0.03, false},
                      StormCase{7, true, 0.0, false},
                      StormCase{8, true, 0.03, false},
                      StormCase{9, false, 0.0, false},
                      StormCase{10, true, 0.0, true}),
    [](const ::testing::TestParamInfo<StormCase>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.ioat ? "_ioat" : "_memcpy") +
             (info.param.loss > 0 ? "_lossy" : "") +
             (info.param.local ? "_local" : "_net");
    });

TEST(Determinism, IdenticalRunsProduceIdenticalVirtualTimes) {
  auto run_once = [] {
    core::OmxConfig cfg;
    cfg.ioat_large = true;
    core::Cluster cluster;
    cluster.add_nodes(2, cfg);
    std::vector<std::uint8_t> src(3 * sim::MiB, 7), dst(src.size());
    sim::Time end = 0;
    cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
      core::Endpoint ep(p, 0);
      for (int i = 0; i < 3; ++i)
        ep.wait(ep.isend(src.data(), src.size(), {1, 1}, 1));
    });
    cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
      core::Endpoint ep(p, 1);
      for (int i = 0; i < 3; ++i)
        ep.wait(ep.irecv(dst.data(), dst.size(), 1));
      end = p.now();
    });
    cluster.run();
    return end;
  };
  const sim::Time a = run_once();
  const sim::Time b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Determinism, LossyRunsAreReproducibleGivenSeed) {
  auto run_once = [] {
    net::NetParams np;
    np.loss_prob = 0.1;
    np.loss_seed = 99;
    core::OmxConfig cfg;
    cfg.retrans_timeout = 60 * sim::kMicrosecond;
    core::Cluster cluster({}, np);
    cluster.add_nodes(2, cfg);
    std::vector<std::uint8_t> src(200 * 1024, 5), dst(src.size());
    sim::Time end = 0;
    cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
      core::Endpoint ep(p, 0);
      ep.wait(ep.isend(src.data(), src.size(), {1, 1}, 1));
    });
    cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
      core::Endpoint ep(p, 1);
      ep.wait(ep.irecv(dst.data(), dst.size(), 1));
      end = p.now();
    });
    cluster.run();
    return end;
  };
  EXPECT_EQ(run_once(), run_once());
}
