// End-to-end functional tests of the Open-MX stack: payload integrity
// across every path (eager, rendezvous, intra-node), matching semantics,
// unexpected messages, truncation, retransmission under loss, and the
// I/OAT offload invariants (identical payloads, bounded skbuff pool).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/cluster.hpp"
#include "core/endpoint.hpp"

namespace sim = openmx::sim;
namespace core = openmx::core;
namespace net = openmx::net;

namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  std::uint8_t x = seed;
  for (auto& b : v) {
    x = static_cast<std::uint8_t>(x * 31 + 7);
    b = x;
  }
  return v;
}

/// Runs one message of `len` bytes from node 0 to node 1 (or intra-node if
/// `local`), returns the received bytes.
struct TransferResult {
  std::vector<std::uint8_t> data;
  std::size_t recv_len = 0;
  sim::Time elapsed = 0;
};

TransferResult run_transfer(std::size_t len, core::OmxConfig cfg,
                            bool local = false,
                            net::NetParams netp = {},
                            bool post_recv_late = false) {
  core::Cluster cluster({}, netp);
  cluster.add_nodes(2, cfg);
  core::Node& n0 = cluster.node(0);
  core::Node& n1 = local ? cluster.node(0) : cluster.node(1);

  auto src = pattern(len);
  TransferResult result;
  result.data.assign(len ? len : 1, 0);

  cluster.spawn(n0, 0, "sender", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    if (post_recv_late) p.compute(50 * sim::kMicrosecond);
    ep.wait(ep.isend(src.data(), len,
                     core::Addr{n1.id(), 1}, /*match=*/0xAB));
  });
  cluster.spawn(n1, local ? 2 : 0, "receiver", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    if (!post_recv_late) {
      core::Request* r = ep.irecv(result.data.data(), len, 0xAB);
      const sim::Time t0 = p.now();
      core::Request done = ep.wait(r);
      result.elapsed = p.now() - t0;
      result.recv_len = done.recv_len;
    } else {
      // Let the message arrive unexpected first.
      p.compute(100 * sim::kMicrosecond);
      core::Request done =
          ep.wait(ep.irecv(result.data.data(), len, 0xAB));
      result.recv_len = done.recv_len;
    }
  });
  cluster.run();
  result.data.resize(len);
  if (len) {
    EXPECT_EQ(result.data == src, true) << "payload mismatch";
  }
  return result;
}

}  // namespace

// ----- eager path -----

class EagerSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EagerSizes, DeliversExactPayload) {
  auto r = run_transfer(GetParam(), {});
  EXPECT_EQ(r.recv_len, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllEagerSizes, EagerSizes,
                         ::testing::Values(0, 1, 13, 128, 1024, 4095, 4096,
                                           4097, 8192, 16 * 1024,
                                           32 * 1024));

// ----- rendezvous (large) path -----

class LargeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LargeSizes, DeliversExactPayloadWithoutIoat) {
  core::OmxConfig cfg;
  auto r = run_transfer(GetParam(), cfg);
  EXPECT_EQ(r.recv_len, GetParam());
}

TEST_P(LargeSizes, DeliversExactPayloadWithIoat) {
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  auto r = run_transfer(GetParam(), cfg);
  EXPECT_EQ(r.recv_len, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllLargeSizes, LargeSizes,
                         ::testing::Values(32 * 1024 + 1, 64 * 1024,
                                           100 * 1000, 256 * 1024,
                                           1024 * 1024, 4 * 1024 * 1024));

TEST(OmxLarge, IoatIsFasterThanMemcpyForLargeMessages) {
  core::OmxConfig off;
  core::OmxConfig on;
  on.ioat_large = true;
  const std::size_t len = sim::MiB;
  const auto t_off = run_transfer(len, off).elapsed;
  const auto t_on = run_transfer(len, on).elapsed;
  EXPECT_LT(t_on, t_off);
  // Paper: ~30-50 % throughput gain for large messages.
  EXPECT_GT(static_cast<double>(t_off) / static_cast<double>(t_on), 1.15);
}

TEST(OmxLarge, IgnoreBhCopyIsFastest) {
  core::OmxConfig ign;
  ign.ignore_bh_copy = true;
  core::OmxConfig on;
  on.ioat_large = true;
  const std::size_t len = 256 * sim::KiB;
  EXPECT_LE(run_transfer(len, ign).elapsed, run_transfer(len, on).elapsed);
}

TEST(OmxLarge, NativeMxBeatsOpenMxWithoutIoat) {
  core::OmxConfig mx;
  mx.native_mx = true;
  core::OmxConfig omx;
  const std::size_t len = sim::MiB;
  EXPECT_LT(run_transfer(len, mx).elapsed, run_transfer(len, omx).elapsed);
}

// ----- unexpected messages -----

TEST(OmxUnexpected, EagerBufferedUntilRecvPosted) {
  auto r = run_transfer(16 * 1024, {}, false, {}, /*post_recv_late=*/true);
  EXPECT_EQ(r.recv_len, 16u * 1024);
}

TEST(OmxUnexpected, RndvWaitsForMatch) {
  auto r = run_transfer(sim::MiB, {}, false, {}, /*post_recv_late=*/true);
  EXPECT_EQ(r.recv_len, sim::MiB);
}

TEST(OmxUnexpected, LocalWaitsForMatch) {
  auto r = run_transfer(64 * 1024, {}, true, {}, /*post_recv_late=*/true);
  EXPECT_EQ(r.recv_len, 64u * 1024);
}

// ----- intra-node path -----

class LocalSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LocalSizes, OneCopyDeliversPayload) {
  auto r = run_transfer(GetParam(), {}, /*local=*/true);
  EXPECT_EQ(r.recv_len, GetParam());
}

TEST_P(LocalSizes, OneCopyDeliversPayloadWithIoatShm) {
  core::OmxConfig cfg;
  cfg.ioat_shm = true;
  auto r = run_transfer(GetParam(), cfg, /*local=*/true);
  EXPECT_EQ(r.recv_len, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllLocalSizes, LocalSizes,
                         ::testing::Values(0, 64, 4096, 32 * 1024,
                                           sim::MiB, 4 * sim::MiB));

TEST(OmxLocal, IoatHelpsCrossSocketLargeMessages) {
  core::OmxConfig off;
  core::OmxConfig on;
  on.ioat_shm = true;
  const std::size_t len = 4 * sim::MiB;  // above shm threshold, beyond L2
  const auto t_off = run_transfer(len, off, true).elapsed;
  const auto t_on = run_transfer(len, on, true).elapsed;
  // Paper Figure 10: ~80 % higher throughput beyond the cache size.
  EXPECT_GT(static_cast<double>(t_off) / static_cast<double>(t_on), 1.4);
}

// ----- matching semantics -----

TEST(OmxMatching, MaskSelectsMessages) {
  core::Cluster cluster;
  cluster.add_nodes(2, {});
  auto a = pattern(512, 3), b = pattern(512, 9);
  std::vector<std::uint8_t> ra(512), rb(512);
  std::uint64_t src_a = 0, src_b = 0;

  cluster.spawn(cluster.node(0), 0, "sender", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    core::Request* s1 = ep.isend(a.data(), a.size(), {1, 1}, 0x1111);
    core::Request* s2 = ep.isend(b.data(), b.size(), {1, 1}, 0x2222);
    ep.wait(s1);
    ep.wait(s2);
  });
  cluster.spawn(cluster.node(1), 0, "receiver", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    // Match only messages whose low nibble is 2 (i.e. 0x2222).
    core::Request* r2 = ep.irecv(rb.data(), rb.size(), 0x0002, 0x000F);
    core::Request* r1 = ep.irecv(ra.data(), ra.size(), 0x0001, 0x000F);
    src_b = ep.wait(r2).match;
    src_a = ep.wait(r1).match;
  });
  cluster.run();
  EXPECT_EQ(ra, a);
  EXPECT_EQ(rb, b);
  (void)src_a;
  (void)src_b;
}

TEST(OmxMatching, TwoMessagesSameMatchArriveInOrder) {
  core::Cluster cluster;
  cluster.add_nodes(2, {});
  auto a = pattern(2048, 3), b = pattern(2048, 9);
  std::vector<std::uint8_t> r1(2048), r2(2048);

  cluster.spawn(cluster.node(0), 0, "sender", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    core::Request* s1 = ep.isend(a.data(), a.size(), {1, 1}, 5);
    core::Request* s2 = ep.isend(b.data(), b.size(), {1, 1}, 5);
    ep.wait(s1);
    ep.wait(s2);
  });
  cluster.spawn(cluster.node(1), 0, "receiver", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    core::Request* q1 = ep.irecv(r1.data(), r1.size(), 5);
    core::Request* q2 = ep.irecv(r2.data(), r2.size(), 5);
    ep.wait(q1);
    ep.wait(q2);
  });
  cluster.run();
  EXPECT_EQ(r1, a);
  EXPECT_EQ(r2, b);
}

// ----- truncation -----

TEST(OmxTruncation, EagerTruncatesToCapacity) {
  core::Cluster cluster;
  cluster.add_nodes(2, {});
  auto src = pattern(8192);
  std::vector<std::uint8_t> dst(1000, 0);
  std::size_t got = 0;

  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(src.data(), src.size(), {1, 1}, 1));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    got = ep.wait(ep.irecv(dst.data(), dst.size(), 1)).recv_len;
  });
  cluster.run();
  EXPECT_EQ(got, 1000u);
  EXPECT_TRUE(std::equal(dst.begin(), dst.end(), src.begin()));
}

// ----- reliability: loss injection -----

class LossySizes
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(LossySizes, RetransmissionRecoversPayload) {
  auto [len, loss] = GetParam();
  net::NetParams netp;
  netp.loss_prob = loss;
  netp.loss_seed = 1234;
  core::OmxConfig cfg;
  cfg.retrans_timeout = 100 * sim::kMicrosecond;
  auto r = run_transfer(len, cfg, false, netp);
  EXPECT_EQ(r.recv_len, len);
}

TEST_P(LossySizes, RetransmissionRecoversPayloadWithIoat) {
  auto [len, loss] = GetParam();
  net::NetParams netp;
  netp.loss_prob = loss;
  netp.loss_seed = 99;
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  cfg.retrans_timeout = 100 * sim::kMicrosecond;
  auto r = run_transfer(len, cfg, false, netp);
  EXPECT_EQ(r.recv_len, len);
}

INSTANTIATE_TEST_SUITE_P(
    LossMatrix, LossySizes,
    ::testing::Combine(::testing::Values(std::size_t{2048},
                                         std::size_t{32 * 1024},
                                         std::size_t{256 * 1024}),
                       ::testing::Values(0.02, 0.10)));

TEST(OmxLoss, RetransmitCountersIncrease) {
  net::NetParams netp;
  netp.loss_prob = 0.2;
  netp.loss_seed = 5;
  core::OmxConfig cfg;
  cfg.retrans_timeout = 50 * sim::kMicrosecond;

  core::Cluster cluster({}, netp);
  cluster.add_nodes(2, cfg);
  auto src = pattern(64 * 1024);
  std::vector<std::uint8_t> dst(src.size());
  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(src.data(), src.size(), {1, 1}, 1));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    ep.wait(ep.irecv(dst.data(), dst.size(), 1));
  });
  cluster.run();
  EXPECT_EQ(dst, src);
  const auto retrans =
      cluster.node(1).driver().counters().get("driver.pull_retransmits") +
      cluster.node(0).driver().counters().get("driver.rndv_retransmits");
  EXPECT_GT(retrans + cluster.network().counters().get("net.dropped_frames"),
            0u);
}

// ----- I/OAT resource tracking (Section III-B) -----

TEST(OmxResources, PendingSkbuffsBoundedDuringLargeIoatReceive) {
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  const std::size_t len = 8 * sim::MiB;
  auto src = pattern(len);
  std::vector<std::uint8_t> dst(len);

  // Sample the receiver's pending-skbuff count while the transfer runs.
  std::size_t max_pending = 0;
  bool transfer_done = false;
  std::function<void()> sampler = [&] {
    max_pending = std::max(
        max_pending, cluster.node(1).driver().pending_offload_skbuffs());
    if (!transfer_done)
      cluster.engine().schedule(20 * sim::kMicrosecond, [&] { sampler(); });
  };
  cluster.engine().schedule(20 * sim::kMicrosecond, [&] { sampler(); });

  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(src.data(), len, {1, 1}, 1));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    ep.wait(ep.irecv(dst.data(), len, 1));
    transfer_done = true;
  });
  cluster.run();
  EXPECT_EQ(dst, src);
  // The cleanup routine bounds pending copies to roughly the outstanding
  // window (2 blocks of 8 fragments) plus transient slack.
  EXPECT_LE(max_pending, 48u);
  EXPECT_GT(cluster.node(1).driver().counters().get("driver.cleanup_runs"), 0u);
}

TEST(OmxResources, RxRingNeverDropsInNormalOperation) {
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  const std::size_t len = 4 * sim::MiB;
  auto src = pattern(len);
  std::vector<std::uint8_t> dst(len);
  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(src.data(), len, {1, 1}, 1));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    ep.wait(ep.irecv(dst.data(), len, 1));
  });
  cluster.run();
  EXPECT_EQ(cluster.node(1).nic().counters().get("nic.rx_ring_drops"), 0u);
}

// ----- registration cache -----

TEST(OmxRegcache, ReusedBufferHitsCache) {
  core::OmxConfig cfg;
  cfg.regcache = true;
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  const std::size_t len = sim::MiB;
  auto src = pattern(len);
  std::vector<std::uint8_t> dst(len);
  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    for (int i = 0; i < 3; ++i)
      ep.wait(ep.isend(src.data(), len, {1, 1}, 1));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    for (int i = 0; i < 3; ++i)
      ep.wait(ep.irecv(dst.data(), len, 1));
  });
  cluster.run();
  EXPECT_EQ(dst, src);
  EXPECT_GE(
      cluster.node(0).driver().regcache().counters().get("regcache.hit"), 2u);
  EXPECT_GE(
      cluster.node(1).driver().regcache().counters().get("regcache.hit"), 2u);
}

// ----- bidirectional & many messages -----

TEST(OmxStress, ManyInterleavedMessagesBothDirections) {
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  constexpr int kMsgs = 20;
  std::vector<std::vector<std::uint8_t>> sent0, sent1, got0(kMsgs),
      got1(kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    const std::size_t len = 1000 + static_cast<std::size_t>(i) * 7919;
    sent0.push_back(pattern(len, static_cast<std::uint8_t>(i + 1)));
    sent1.push_back(pattern(len, static_cast<std::uint8_t>(i + 101)));
    got0[static_cast<std::size_t>(i)].resize(len);
    got1[static_cast<std::size_t>(i)].resize(len);
  }
  auto body = [&](core::Process& p, int me) {
    core::Endpoint ep(p, static_cast<std::uint16_t>(me));
    auto& mine = me == 0 ? sent0 : sent1;
    auto& theirs = me == 0 ? got1 : got0;
    std::vector<core::Request*> reqs;
    for (int i = 0; i < kMsgs; ++i) {
      reqs.push_back(ep.irecv(theirs[static_cast<std::size_t>(i)].data(),
                              theirs[static_cast<std::size_t>(i)].size(),
                              static_cast<std::uint64_t>(i)));
      reqs.push_back(ep.isend(mine[static_cast<std::size_t>(i)].data(),
                              mine[static_cast<std::size_t>(i)].size(),
                              {1 - me, static_cast<std::uint16_t>(1 - me)},
                              static_cast<std::uint64_t>(i)));
    }
    for (auto* r : reqs) ep.wait(r);
  };
  cluster.spawn(cluster.node(0), 0, "p0",
                [&](core::Process& p) { body(p, 0); });
  cluster.spawn(cluster.node(1), 0, "p1",
                [&](core::Process& p) { body(p, 1); });
  cluster.run();
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(got0[static_cast<std::size_t>(i)], sent0[static_cast<std::size_t>(i)]) << i;
    EXPECT_EQ(got1[static_cast<std::size_t>(i)], sent1[static_cast<std::size_t>(i)]) << i;
  }
}

TEST(OmxTest, TestPollsWithoutBlocking) {
  core::Cluster cluster;
  cluster.add_nodes(2, {});
  auto src = pattern(4096);
  std::vector<std::uint8_t> dst(4096);
  bool completed_by_test = false;
  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(src.data(), src.size(), {1, 1}, 1));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    core::Request* r = ep.irecv(dst.data(), dst.size(), 1);
    while (!ep.test(r)) p.compute(sim::kMicrosecond);
    completed_by_test = true;
  });
  cluster.run();
  EXPECT_TRUE(completed_by_test);
  EXPECT_EQ(dst, src);
}
