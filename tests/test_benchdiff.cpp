// omx_benchdiff analytics: metrics-tree parsing, direction heuristics,
// tolerance bands, and the headline contract — an injected 20 %
// regression is flagged as exactly one row while identical trees report
// nothing (zero spurious regressions).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "obs/benchdiff.hpp"
#include "obs/registry.hpp"

using namespace openmx;
namespace bd = obs::benchdiff;
namespace fs = std::filesystem;

namespace {

class BenchdiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::path(testing::TempDir()) / "bd_base";
    cur_ = fs::path(testing::TempDir()) / "bd_cur";
    fs::remove_all(base_);
    fs::remove_all(cur_);
    fs::create_directories(base_);
    fs::create_directories(cur_);
  }
  void TearDown() override {
    fs::remove_all(base_);
    fs::remove_all(cur_);
  }

  /// Writes `reg` as BENCH_<stem>_metrics.json into `dir` — the exact
  /// artifact shape every bench emits.
  static void write_metrics(const fs::path& dir, const std::string& stem,
                            const obs::Registry& reg) {
    const fs::path p = dir / ("BENCH_" + stem + "_metrics.json");
    std::FILE* f = std::fopen(p.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    reg.dump_json(f);
    std::fclose(f);
  }

  static obs::Registry demo_registry() {
    obs::Registry reg;
    reg.counter("fig.demo_1MB_mibs").add(1000);
    reg.counter("driver.pull_reqs").add(4456);
    reg.counter("driver.stall_ns").add(50'000);
    reg.histogram("driver.pull_ns").add(100);
    reg.histogram("driver.pull_ns").add(300);
    return reg;
  }

  fs::path base_, cur_;
};

TEST_F(BenchdiffTest, ParseRoundTripsRegistryDump) {
  write_metrics(base_, "demo", demo_registry());
  bd::MetricMap m;
  ASSERT_TRUE(bd::parse_metrics_file(
      (base_ / "BENCH_demo_metrics.json").string(), m));
  EXPECT_DOUBLE_EQ(m.at("fig.demo_1MB_mibs"), 1000.0);
  EXPECT_DOUBLE_EQ(m.at("driver.pull_reqs"), 4456.0);
  // Histograms flatten to name.field.
  EXPECT_DOUBLE_EQ(m.at("driver.pull_ns.count"), 2.0);
  EXPECT_DOUBLE_EQ(m.at("driver.pull_ns.mean"), 200.0);
  EXPECT_DOUBLE_EQ(m.at("driver.pull_ns.max"), 300.0);
}

TEST_F(BenchdiffTest, IdenticalTreesProduceEmptyDiff) {
  write_metrics(base_, "demo", demo_registry());
  write_metrics(cur_, "demo", demo_registry());
  const bd::Report rep =
      bd::diff_trees(bd::load_tree(base_.string()),
                     bd::load_tree(cur_.string()), bd::Tolerances{});
  EXPECT_EQ(rep.rows.size(), 0u);
  EXPECT_EQ(rep.files_compared, 1u);
  EXPECT_GT(rep.metrics_compared, 0u);
  EXPECT_EQ(rep.in_band, rep.metrics_compared);
}

TEST_F(BenchdiffTest, InjectedRegressionFlagsExactlyThatRow) {
  write_metrics(base_, "demo", demo_registry());
  obs::Registry reg;
  reg.counter("fig.demo_1MB_mibs").add(800);  // -20 % throughput
  reg.counter("driver.pull_reqs").add(4456);
  reg.counter("driver.stall_ns").add(50'000);
  reg.histogram("driver.pull_ns").add(100);
  reg.histogram("driver.pull_ns").add(300);
  write_metrics(cur_, "demo", reg);

  const bd::Report rep =
      bd::diff_trees(bd::load_tree(base_.string()),
                     bd::load_tree(cur_.string()), bd::Tolerances{});
  ASSERT_EQ(rep.rows.size(), 1u);
  const bd::Row& r = rep.rows[0];
  EXPECT_EQ(r.status, bd::Status::kRegression);
  EXPECT_EQ(r.bench, "demo");
  EXPECT_EQ(r.metric, "fig.demo_1MB_mibs");
  EXPECT_NEAR(r.delta, -0.2, 1e-9);
  EXPECT_EQ(rep.count(bd::Status::kRegression), 1u);
}

TEST_F(BenchdiffTest, DirectionHeuristics) {
  EXPECT_GT(bd::direction("fig08.ioat_256kB_mibs"), 0);
  EXPECT_GT(bd::direction("sim_speed.seq_events_per_sec"), 0);
  EXPECT_LT(bd::direction("driver.stall_ns"), 0);
  EXPECT_LT(bd::direction("lp.0.barrier_stall_ns"), 0);
  EXPECT_LT(bd::direction("driver.pull_ns.p99"), 0);
  EXPECT_EQ(bd::direction("driver.pull_reqs"), 0);
}

TEST_F(BenchdiffTest, LowerIsBetterMetricsRegressUpward) {
  write_metrics(base_, "demo", demo_registry());
  obs::Registry reg = demo_registry();
  reg.counter("driver.stall_ns").add(25'000);  // +50 % stalls on top
  write_metrics(cur_, "demo", reg);
  const bd::Report rep =
      bd::diff_trees(bd::load_tree(base_.string()),
                     bd::load_tree(cur_.string()), bd::Tolerances{});
  ASSERT_EQ(rep.rows.size(), 1u);
  EXPECT_EQ(rep.rows[0].status, bd::Status::kRegression);
  EXPECT_EQ(rep.rows[0].metric, "driver.stall_ns");
  // The same move downward is an improvement.
  obs::Registry better;
  better.counter("fig.demo_1MB_mibs").add(1000);
  better.counter("driver.pull_reqs").add(4456);
  better.counter("driver.stall_ns").add(25'000);
  better.histogram("driver.pull_ns").add(100);
  better.histogram("driver.pull_ns").add(300);
  write_metrics(cur_, "demo", better);
  const bd::Report rep2 =
      bd::diff_trees(bd::load_tree(base_.string()),
                     bd::load_tree(cur_.string()), bd::Tolerances{});
  ASSERT_EQ(rep2.rows.size(), 1u);
  EXPECT_EQ(rep2.rows[0].status, bd::Status::kImprovement);
}

TEST_F(BenchdiffTest, ChangesWithinToleranceBandAreNoise) {
  write_metrics(base_, "demo", demo_registry());
  obs::Registry reg = demo_registry();
  reg.counter("fig.demo_1MB_mibs").add(40);  // +4 %, inside the 5 % band
  write_metrics(cur_, "demo", reg);
  const bd::Report rep =
      bd::diff_trees(bd::load_tree(base_.string()),
                     bd::load_tree(cur_.string()), bd::Tolerances{});
  EXPECT_EQ(rep.rows.size(), 0u);
}

TEST_F(BenchdiffTest, GuardTolerancesOverrideTheDefaultBand) {
  const fs::path guard = base_ / "guard.json";
  std::FILE* f = std::fopen(guard.string().c_str(), "w");
  std::fprintf(f, "{\n  \"fig.demo_1MB_mibs\": {\"value\": 1000.000000, "
               "\"tol\": 0.30}\n}\n");
  std::fclose(f);
  bd::Tolerances tol;
  bd::load_guard_tolerances(guard.string(), tol);
  EXPECT_DOUBLE_EQ(tol.band_for("fig.demo_1MB_mibs"), 0.30);
  EXPECT_DOUBLE_EQ(tol.band_for("unlisted.metric"), tol.default_band);
  // Wall-derived metrics get the wide band without any listing.
  EXPECT_DOUBLE_EQ(tol.band_for("sim_speed.mlp_w4_events_per_sec"),
                   tol.wall_band);

  // A 20 % drop now sits inside the widened band: no finding.
  write_metrics(base_, "demo", demo_registry());
  obs::Registry reg = demo_registry();
  write_metrics(cur_, "demo", reg);
  auto cur = bd::load_tree(cur_.string());
  cur["demo"]["fig.demo_1MB_mibs"] = 800;
  const bd::Report rep =
      bd::diff_trees(bd::load_tree(base_.string()), cur, tol);
  EXPECT_EQ(rep.rows.size(), 0u);
}

TEST_F(BenchdiffTest, AddedAndRemovedMetricsAreReportedNotJudged) {
  write_metrics(base_, "demo", demo_registry());
  obs::Registry reg;
  reg.counter("fig.demo_1MB_mibs").add(1000);
  reg.counter("driver.pull_reqs").add(4456);
  // stall_ns + histogram gone, a new counter appears.
  reg.counter("driver.new_counter").add(7);
  write_metrics(cur_, "demo", reg);
  const bd::Report rep =
      bd::diff_trees(bd::load_tree(base_.string()),
                     bd::load_tree(cur_.string()), bd::Tolerances{});
  EXPECT_EQ(rep.count(bd::Status::kRegression), 0u);
  EXPECT_EQ(rep.count(bd::Status::kAdded), 1u);
  EXPECT_GE(rep.count(bd::Status::kRemoved), 1u);
}

TEST_F(BenchdiffTest, MarkdownReportNamesTheRegression) {
  write_metrics(base_, "demo", demo_registry());
  auto cur = bd::load_tree(base_.string());
  cur["demo"]["fig.demo_1MB_mibs"] = 800;
  const bd::Report rep =
      bd::diff_trees(bd::load_tree(base_.string()), cur, bd::Tolerances{});
  const fs::path p = cur_ / "report.md";
  std::FILE* f = std::fopen(p.string().c_str(), "w");
  bd::write_markdown(f, rep, "baselines", "run");
  std::fclose(f);
  f = std::fopen(p.string().c_str(), "r");
  std::string content(1 << 16, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  EXPECT_NE(content.find("**1 regressions**"), std::string::npos);
  EXPECT_NE(content.find("fig.demo_1MB_mibs"), std::string::npos);
  EXPECT_NE(content.find("-20.0%"), std::string::npos);
}

/// The committed baselines diff cleanly against themselves through the
/// full load path — the exact CI invariant (zero spurious findings).
TEST_F(BenchdiffTest, CommittedBaselinesSelfDiffIsEmpty) {
  fs::path dir;
  for (const char* c :
       {"bench/baselines", "../bench/baselines", "../../bench/baselines"})
    if (fs::exists(fs::path(c) / "guard.json")) dir = c;
  if (dir.empty()) GTEST_SKIP() << "bench/baselines not reachable from cwd";
  bd::Tolerances tol;
  bd::load_guard_tolerances((dir / "guard.json").string(), tol);
  const auto tree = bd::load_tree(dir.string());
  ASSERT_GT(tree.size(), 0u);
  const bd::Report rep = bd::diff_trees(tree, tree, tol);
  EXPECT_EQ(rep.rows.size(), 0u);
}

}  // namespace
