// Host wall-clock self-profiler: zone aggregation invariants, the
// disabled-mode zero-cost contract, and the separation guarantee that
// wall.* metrics never contaminate the deterministic metrics stream.
//
// Wall durations are inherently nondeterministic, so these tests assert
// *structural* properties (counts, nesting arithmetic, ordering bounds)
// rather than absolute times.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>

#include "bench/common.hpp"
#include "obs/registry.hpp"
#include "obs/wallprof.hpp"

using namespace openmx;

namespace {

obs::WallProfiler& prof() { return obs::WallProfiler::instance(); }

/// Spins until the profiler clock advances by roughly `ns` (coarse — the
/// tests only need "inner is a visible chunk of outer").
void spin_ns(std::uint64_t ns) {
  const double npt = prof().ns_per_tick();
  const std::uint64_t ticks =
      static_cast<std::uint64_t>(static_cast<double>(ns) / npt) + 1;
  const std::uint64_t t0 = obs::WallProfiler::now_raw();
  while (obs::WallProfiler::now_raw() - t0 < ticks) {
  }
}

class WallProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::WallProfiler::compiled_in())
      GTEST_SKIP() << "built with ENABLE_WALLPROF=OFF";
    prof().set_enabled(true);
    prof().reset();
  }
  void TearDown() override {
    prof().set_enabled(true);
    prof().set_slice_capacity(0);
    prof().reset();
  }
};

TEST_F(WallProfTest, CountsAndInclusiveTime) {
  for (int i = 0; i < 5; ++i) {
    OMX_WALL_ZONE("t.leaf");
    spin_ns(20'000);
  }
  const auto t = prof().totals("t.leaf");
  EXPECT_EQ(t.count, 5u);
  EXPECT_GE(t.ns, 5u * 20'000u);
  // A leaf zone has no children: exclusive == inclusive.
  EXPECT_EQ(t.excl_ns, t.ns);
}

TEST_F(WallProfTest, NestingExclusiveTimeIsExact) {
  for (int i = 0; i < 3; ++i) {
    OMX_WALL_ZONE("t.outer");
    spin_ns(30'000);
    {
      OMX_WALL_ZONE("t.inner");
      spin_ns(60'000);
    }
    {
      OMX_WALL_ZONE("t.inner");
      spin_ns(60'000);
    }
  }
  const auto outer = prof().totals("t.outer");
  const auto inner = prof().totals("t.inner");
  EXPECT_EQ(outer.count, 3u);
  EXPECT_EQ(inner.count, 6u);
  // The stack charges every inner tick to the parent's child accumulator,
  // so excl == incl - sum(child incl) exactly in ticks; the separate
  // tick->ns conversions may round each total by < 1 ns per occurrence.
  EXPECT_NEAR(static_cast<double>(outer.excl_ns),
              static_cast<double>(outer.ns - inner.ns), 16.0);
  // The spin ratios survive aggregation: inner ~2/3 of outer inclusive.
  EXPECT_GT(inner.ns, outer.ns / 2);
  EXPECT_GE(outer.ns, inner.ns);
  // Coverage of the outer zone = inner share of inclusive time.
  const double cov = prof().coverage("t.outer");
  EXPECT_GT(cov, 0.5);
  EXPECT_LE(cov, 1.0);
}

TEST_F(WallProfTest, ToplevelTimeCountsOnlyUnnestedZones) {
  {
    OMX_WALL_ZONE("t.top");
    spin_ns(20'000);
    OMX_WALL_ZONE("t.nested");
    spin_ns(20'000);
  }
  const auto top = prof().totals("t.top");
  EXPECT_EQ(prof().toplevel_ns(), top.ns);
}

TEST_F(WallProfTest, DisabledModeRecordsNothingAndRegistersNoThread) {
  prof().set_enabled(false);
  const std::size_t threads_before = prof().num_threads();
  // A brand-new thread running zones while disabled must not even
  // allocate its thread table — the whole zone is one atomic load.
  std::thread t([] {
    for (int i = 0; i < 100; ++i) {
      OMX_WALL_ZONE("t.disabled");
    }
  });
  t.join();
  EXPECT_EQ(prof().num_threads(), threads_before);
  EXPECT_EQ(prof().totals("t.disabled").count, 0u);
  prof().set_enabled(true);
}

TEST_F(WallProfTest, RuntimeToggleMidStreamIsSafe) {
  {
    OMX_WALL_ZONE("t.toggle");
    // Disabling with the zone open: it captured its table at entry and
    // still closes into it; only *new* zones become no-ops.
    prof().set_enabled(false);
    { OMX_WALL_ZONE("t.toggle_off"); }
    prof().set_enabled(true);
  }
  EXPECT_EQ(prof().totals("t.toggle").count, 1u);
  EXPECT_EQ(prof().totals("t.toggle_off").count, 0u);
}

TEST_F(WallProfTest, ResetClearsAggregatesButKeepsZones) {
  { OMX_WALL_ZONE("t.reset_me"); }
  EXPECT_EQ(prof().totals("t.reset_me").count, 1u);
  const std::size_t zones = prof().num_zones();
  prof().reset();
  EXPECT_EQ(prof().totals("t.reset_me").count, 0u);
  EXPECT_EQ(prof().num_zones(), zones);
}

TEST_F(WallProfTest, ExportMetricsEmitsWallSectionWithScope) {
  {
    OMX_WALL_ZONE("t.exported");
    spin_ns(10'000);
  }
  obs::Registry wall;
  prof().export_metrics(wall);
  prof().export_metrics(wall, "modeA.");
  EXPECT_GE(wall.counter("wall.t.exported.ns").value, 10'000u);
  EXPECT_EQ(wall.counter("wall.t.exported.count").value, 1u);
  EXPECT_EQ(wall.counter("wall.modeA.t.exported.count").value, 1u);
  EXPECT_LE(wall.counter("wall.t.exported.excl_ns").value,
            wall.counter("wall.t.exported.ns").value);
}

TEST_F(WallProfTest, SliceRingRendersHostThreadTraceProcess) {
  prof().set_slice_capacity(64);
  for (int i = 0; i < 4; ++i) {
    OMX_WALL_ZONE("t.sliced");
    spin_ns(5'000);
  }
  const std::string path = testing::TempDir() + "wallprof_trace.json";
  ASSERT_TRUE(prof().write_trace_file(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 16, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("host-thread"), std::string::npos);
  EXPECT_NE(content.find("\"t.sliced\""), std::string::npos);
  EXPECT_NE(content.find("\"cat\":\"wall\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Simulation-side contracts
// ---------------------------------------------------------------------

TEST_F(WallProfTest, OffAddsNoEventsAndOnDoesNotChangeTiming) {
  // The profiler observes host time only: toggling it must leave the
  // simulation bit-identical — same final virtual time, same event
  // count (the events_scheduled() pattern from test_attrib).
  auto run = [](bool on, std::uint64_t* events_out) {
    prof().set_enabled(on);
    bench::Cluster cluster;
    cluster.add_nodes(2, bench::cfg_omx_ioat());
    const sim::Time t = bench::run_pingpong(cluster, sim::MiB, 2,
                                            /*warmup=*/1);
    *events_out = cluster.engine().events_scheduled();
    return t;
  };
  std::uint64_t ev_off = 0, ev_on = 0;
  const sim::Time off = run(false, &ev_off);
  const sim::Time on = run(true, &ev_on);
  EXPECT_EQ(off, on);
  EXPECT_EQ(ev_off, ev_on);
  EXPECT_GT(off, 0);
  // And the instrumented layers actually recorded zones when enabled.
  EXPECT_GT(prof().totals("engine.dispatch").count, 0u);
  EXPECT_GT(prof().totals("engine.run").count, 0u);
}

TEST_F(WallProfTest, WallMetricsNeverLeakIntoDeterministicRegistry) {
  // The deterministic metrics stream (cluster counters, the replay
  // digest's input) must stay byte-identical whether or not the profiler
  // ran — wall.* lives only in the explicitly exported wall registry.
  auto dump = [](const obs::Registry& reg) {
    const std::string path = testing::TempDir() + "wallprof_dump.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    reg.dump_json(f);
    std::fclose(f);
    f = std::fopen(path.c_str(), "r");
    std::string content(1 << 20, '\0');
    content.resize(std::fread(content.data(), 1, content.size(), f));
    std::fclose(f);
    std::remove(path.c_str());
    return content;
  };
  auto run = [&](bool on) {
    prof().set_enabled(on);
    obs::Registry reg;
    bench::pingpong_oneway(bench::cfg_omx_ioat(), 256 * sim::KiB, 2, 1, {},
                           {}, &reg);
    return dump(reg);
  };
  const std::string off = run(false);
  const std::string on = run(true);
  EXPECT_EQ(off, on);
  EXPECT_EQ(on.find("wall."), std::string::npos);
  // The wall section exists only where it was asked for.
  obs::Registry wallside;
  prof().export_metrics(wallside);
  EXPECT_NE(dump(wallside).find("wall."), std::string::npos);
}

TEST_F(WallProfTest, BuildAndClockIntrospection) {
  EXPECT_TRUE(std::string(prof().clock_name()) == "rdtsc" ||
              std::string(prof().clock_name()) == "steady_clock");
  EXPECT_GT(prof().ns_per_tick(), 0.0);
}

}  // namespace
