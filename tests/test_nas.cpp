// Tests of the NAS-IS-like kernel: global sort correctness across
// layouts and configurations, key conservation, and the expected I/OAT
// speedup direction for communication-heavy sizes.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "mpi/world.hpp"
#include "nas/is_kernel.hpp"

namespace sim = openmx::sim;
namespace core = openmx::core;
namespace mpi = openmx::mpi;
namespace nas = openmx::nas;

namespace {

struct IsOutcome {
  nas::IsResult result;
  std::size_t total_keys = 0;
};

IsOutcome run_is(const core::OmxConfig& cfg, int nnodes, int ppn,
                 nas::IsParams params) {
  core::Cluster cluster;
  cluster.add_nodes(nnodes, cfg);
  mpi::World world(cluster, mpi::placements(nnodes, ppn));
  IsOutcome out;
  std::vector<std::size_t> counts(static_cast<std::size_t>(nnodes * ppn));
  world.run([&](mpi::Comm& c) {
    const nas::IsResult r = nas::run_is(c, params);
    counts[static_cast<std::size_t>(c.rank())] = r.keys_checked;
    if (c.rank() == 0) out.result = r;
  });
  for (std::size_t n : counts) out.total_keys += n;
  return out;
}

}  // namespace

struct IsLayout {
  int nnodes;
  int ppn;
  bool ioat;
};

class IsKernel : public ::testing::TestWithParam<IsLayout> {};

TEST_P(IsKernel, SortsAndConservesKeys) {
  const IsLayout& l = GetParam();
  core::OmxConfig cfg;
  cfg.ioat_large = l.ioat;
  cfg.ioat_shm = l.ioat;
  nas::IsParams params;
  params.keys_per_rank = 1 << 13;
  params.iterations = 3;
  const IsOutcome out = run_is(cfg, l.nnodes, l.ppn, params);
  EXPECT_TRUE(out.result.sorted);
  EXPECT_EQ(out.total_keys,
            params.keys_per_rank *
                static_cast<std::size_t>(l.nnodes * l.ppn));
  EXPECT_GT(out.result.time_per_iteration, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, IsKernel,
    ::testing::Values(IsLayout{2, 1, false}, IsLayout{2, 1, true},
                      IsLayout{2, 2, false}, IsLayout{2, 2, true},
                      IsLayout{1, 4, true}),
    [](const ::testing::TestParamInfo<IsLayout>& info) {
      return std::to_string(info.param.nnodes) + "n" +
             std::to_string(info.param.ppn) + "p" +
             (info.param.ioat ? "_ioat" : "_memcpy");
    });

TEST(IsKernel, IoatHelpsAtLargeKeyCounts) {
  nas::IsParams params;
  params.keys_per_rank = 1 << 18;
  params.iterations = 2;
  core::OmxConfig plain;
  core::OmxConfig ioat;
  ioat.ioat_large = true;
  ioat.ioat_shm = true;
  const auto t_plain = run_is(plain, 2, 2, params).result.time_per_iteration;
  const auto t_ioat = run_is(ioat, 2, 2, params).result.time_per_iteration;
  EXPECT_LT(t_ioat, t_plain);
}

TEST(IsKernel, DeterministicAcrossRuns) {
  nas::IsParams params;
  params.keys_per_rank = 1 << 12;
  const auto a = run_is({}, 2, 1, params).result.total_time;
  const auto b = run_is({}, 2, 1, params).result.total_time;
  EXPECT_EQ(a, b);
}
