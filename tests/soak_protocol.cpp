// Deterministic protocol soak harness (tier-2).
//
// Generates hundreds of randomized scenario x fault-plan schedules —
// each seed fully determines the cluster shape, the message mix, and a
// scripted fault::Plan (frame drops, duplicates, delays, corruption,
// Gilbert–Elliott burst loss, DMA descriptor failures and stalls) — and
// checks four invariants after quiesce:
//
//   1. every message delivered exactly once and byte-exact,
//   2. no leaked rx-ring slots or I/OAT-pinned skbuffs,
//   3. blame_sum() == total_ns for every span (exact attribution
//      partition, even across retransmissions),
//   4. wire-frame counters balance (tx + dups == rx + all drop classes).
//
// Replay a failure with   OMX_SOAK_SEED=<n> ./soak_protocol
// Override the run count with OMX_SOAK_RUNS=<n> (default 512).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iterator>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/cluster.hpp"
#include "core/endpoint.hpp"
#include "fault/fault.hpp"
#include "obs/attrib.hpp"
#include "obs/flight.hpp"
#include "obs/monitor.hpp"
#include "sim/rng.hpp"
#include "sim/sweep.hpp"
#include "sim/time.hpp"

namespace sim = openmx::sim;
namespace core = openmx::core;
namespace net = openmx::net;
namespace obs = openmx::obs;
namespace fault = openmx::fault;
namespace bench = openmx::bench;

namespace {

constexpr std::uint64_t kBaseSeed = 0xC0FFEE;
constexpr std::size_t kDefaultRuns = 512;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  sim::Rng rng(seed);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
  return v;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i)
    h = (h ^ p[i]) * 0x100000001b3ULL;
  return h;
}

struct Msg {
  int src = 0;
  int dst = 0;
  std::uint32_t match = 0;
  std::vector<std::uint8_t> data;  // what the sender transmits
  std::vector<std::uint8_t> out;   // what the receiver saw
  bool send_ok = false;
  bool recv_ok = false;
  std::size_t recv_len = 0;
};

struct RunResult {
  bool ok = true;
  std::string why;
  std::uint64_t digest = 0;  // state fingerprint for determinism checks
};

/// One message size drawn across the interesting regimes: tiny, one
/// fragment, multi-fragment eager, and rendezvous/pull.
std::size_t draw_len(sim::Rng& rng) {
  switch (rng.next_below(4)) {
    case 0: return 1 + rng.next_below(64);
    case 1: return 1 + rng.next_below(4 * sim::KiB);
    case 2: return 4 * sim::KiB + rng.next_below(28 * sim::KiB);
    default: return 64 * sim::KiB + rng.next_below(192 * sim::KiB);
  }
}

/// Builds the seed's fault schedule.  Every scripted rule is bounded
/// (finite occurrence count) and the burst channel always recovers, so
/// with a generous retry budget no message can legitimately fail.
void build_plan(fault::Plan& plan, sim::Rng& rng) {
  static constexpr fault::Match kMatches[] = {
      fault::Match::Eager,    fault::Match::PullReq, fault::Match::PullReply,
      fault::Match::MsgAck,   fault::Match::LargeAck, fault::Match::Rndv,
      fault::Match::Data,     fault::Match::AnyAck,
  };
  const std::size_t nrules = rng.next_below(5);  // 0..4 scripted rules
  for (std::size_t i = 0; i < nrules; ++i) {
    const fault::Match m = kMatches[rng.next_below(std::size(kMatches))];
    const std::uint64_t from = rng.next_below(24);
    const std::uint64_t count = 1 + rng.next_below(3);
    switch (rng.next_below(4)) {
      case 0: plan.drop_nth(m, from, count); break;
      case 1:
        plan.duplicate_nth(m, from, 1 + static_cast<int>(rng.next_below(2)),
                           count);
        break;
      case 2:
        plan.delay_nth(m, from,
                       (2 + rng.next_below(40)) * sim::kMicrosecond, count);
        break;
      default: plan.corrupt_nth(m, from, count); break;
    }
  }
  if (rng.chance(0.5)) {
    fault::GilbertElliott ge;
    ge.p_good_to_bad = 0.01 + 0.07 * rng.next_double();
    ge.p_bad_to_good = 0.2 + 0.3 * rng.next_double();
    ge.loss_bad = 0.3 + 0.4 * rng.next_double();
    plan.burst_loss(ge);
  }
  if (rng.chance(0.5))
    plan.fail_descriptors(rng.next_below(48), 1 + rng.next_below(4));
  if (rng.chance(0.3)) plan.fail_descriptors_prob(0.05 * rng.next_double());
  if (rng.chance(0.4))
    plan.stall_channel(-1, rng.next_below(16), 1 + rng.next_below(8),
                       (2 + rng.next_below(40)) * sim::kMicrosecond);
}

RunResult run_one(std::uint64_t seed) {
  RunResult res;
  auto fail = [&](std::string why) {
    res.ok = false;
    if (!res.why.empty()) res.why += "; ";
    res.why += std::move(why);
  };

  sim::Rng rng(seed);
  const int nnodes = 2 + static_cast<int>(rng.next_below(3));
  core::OmxConfig cfg;
  cfg.retrans_timeout = (30 + rng.next_below(60)) * sim::kMicrosecond;
  cfg.max_retries = 64;
  cfg.ioat_large = rng.chance(0.6);
  cfg.ioat_medium_overlap = rng.chance(0.4);
  cfg.ioat_shm = rng.chance(0.3);

  core::Cluster cluster;
  cluster.add_nodes(static_cast<std::size_t>(nnodes), cfg);
  cluster.engine().spans().enable();
  cluster.engine().attrib().enable();

  // Always-on flight recorder: whatever happens, the last ~512 trace
  // events survive for the postmortem dump below.
  obs::FlightRecorder recorder(1, 512);
  cluster.engine().trace().attach_flight(&recorder, 0);
  const std::string postmortem_path =
      bench::out_path("postmortem_" + std::to_string(seed) + ".json");
  cluster.engine().set_on_panic([&](const char* why) {
    recorder.dump_json_file(postmortem_path, why, seed);
    fail(std::string("engine panic: ") + why);
  });

  // Live monitor over the wire counters, polled from the event loop.
  // The fault-drop-share watchdog logs once if injected loss somehow
  // dominates the schedule (the plans are bounded, so it should never).
  obs::Monitor monitor(cluster.network().counters(), 100 * sim::kMicrosecond);
  monitor.watch("net.tx_frames");
  monitor.watch("net.fault_drops");
  monitor.add_slo("net.fault_drop_share", 0.95, [](const obs::Registry& r) {
    const double tx = static_cast<double>(r.get("net.tx_frames"));
    return tx > 0 ? static_cast<double>(r.get("net.fault_drops")) / tx : 0.0;
  });

  fault::Plan plan(rng.next_u64());
  build_plan(plan, rng);
  cluster.network().set_fault_injector(&plan);
  for (int n = 0; n < nnodes; ++n)
    cluster.node(static_cast<std::size_t>(n)).ioat().set_fault_injector(&plan);

  // ----- message mix: random directed pairs, a few local (shm) sends ---
  const std::size_t kmsgs = 3 + rng.next_below(8);
  std::vector<Msg> msgs(kmsgs);
  for (std::size_t i = 0; i < kmsgs; ++i) {
    Msg& m = msgs[i];
    m.src = static_cast<int>(rng.next_below(nnodes));
    m.dst = static_cast<int>(rng.next_below(nnodes));
    if (m.dst == m.src && !rng.chance(0.25))
      m.dst = (m.src + 1) % nnodes;  // mostly remote, occasionally local
    m.match = static_cast<std::uint32_t>(i + 1);
    m.data = pattern(draw_len(rng), seed ^ (i * 0x9e37ULL));
    m.out.assign(m.data.size(), 0);
  }

  // Per node: one process with a single endpoint doing both directions —
  // waiting on any request drives the endpoint's whole event ring, so
  // inbound rendezvous and local copies progress while sends block.
  // Half the inbound receives are pre-posted, half are posted after the
  // sends so the unexpected-message path soaks too.
  std::vector<std::uint64_t> late_mask(static_cast<std::size_t>(nnodes), 0);
  for (std::size_t i = 0; i < kmsgs; ++i)
    if (rng.chance(0.5))
      late_mask[static_cast<std::size_t>(msgs[i].dst)] |= 1ULL << i;

  for (int n = 0; n < nnodes; ++n) {
    cluster.spawn(
        cluster.node(static_cast<std::size_t>(n)), 0,
        "soak" + std::to_string(n), [&msgs, &late_mask, n](core::Process& p) {
          core::Endpoint ep(p, 0);
          std::vector<std::pair<std::size_t, core::Request*>> sends, recvs;
          auto post_recvs = [&](bool late) {
            for (std::size_t i = 0; i < msgs.size(); ++i) {
              Msg& m = msgs[i];
              const bool is_late =
                  (late_mask[static_cast<std::size_t>(n)] >> i) & 1;
              if (m.dst != n || is_late != late) continue;
              recvs.emplace_back(
                  i, ep.irecv(m.out.data(), m.out.size(), m.match));
            }
          };
          post_recvs(false);
          for (std::size_t i = 0; i < msgs.size(); ++i) {
            Msg& m = msgs[i];
            if (m.src != n) continue;
            sends.emplace_back(
                i, ep.isend(m.data.data(), m.data.size(), {m.dst, 0},
                            m.match));
          }
          post_recvs(true);
          for (auto& [i, r] : sends) msgs[i].send_ok = !ep.wait(r).failed;
          for (auto& [i, r] : recvs) {
            const core::Request done = ep.wait(r);
            msgs[i].recv_ok = !done.failed;
            msgs[i].recv_len = done.recv_len;
          }
        });
  }

  // On any failure — thrown, panicked, or caught by the post-run
  // invariants — leave a postmortem behind for omx_postmortem.
  auto dump_postmortem = [&]() {
    if (res.ok) return;
    if (recorder.dump_json_file(postmortem_path, res.why.c_str(), seed))
      std::fprintf(stderr, "postmortem: %s (pretty-print with omx_postmortem)\n",
                   postmortem_path.c_str());
  };

  try {
    cluster.run(&monitor);
  } catch (const std::exception& e) {
    fail(std::string("run threw: ") + e.what());
    dump_postmortem();
    return res;
  }

  // ----- invariant 1: exactly-once, byte-exact delivery ---------------
  for (std::size_t i = 0; i < kmsgs; ++i) {
    const Msg& m = msgs[i];
    if (!m.send_ok) fail("msg " + std::to_string(i) + " send failed");
    if (!m.recv_ok) fail("msg " + std::to_string(i) + " recv failed");
    if (m.recv_len != m.data.size())
      fail("msg " + std::to_string(i) + " short recv");
    if (m.out != m.data)
      fail("msg " + std::to_string(i) + " payload mismatch");
  }

  // ----- invariant 2: no leaked rx-ring slots / pinned skbuffs --------
  for (int n = 0; n < nnodes; ++n) {
    core::Node& node = cluster.node(static_cast<std::size_t>(n));
    if (node.nic().rx_ring_in_use() != 0)
      fail("node " + std::to_string(n) + " leaked rx-ring slots");
    if (node.driver().pending_offload_skbuffs() != 0)
      fail("node " + std::to_string(n) + " leaked offload skbuffs");
  }

  // ----- invariant 3: exact blame partition for every span ------------
  obs::AttribReport report;
  report.build(cluster.engine().spans(), cluster.engine().attrib());
  if (report.sum_mismatches() != 0)
    fail(std::to_string(report.sum_mismatches()) +
         " spans with blame_sum != total_ns");

  // ----- invariant 4: wire-frame conservation -------------------------
  const auto& netc = cluster.network().counters();
  std::uint64_t rx_frames = 0, ring_drops = 0;
  for (int n = 0; n < nnodes; ++n) {
    const auto& nic = cluster.node(static_cast<std::size_t>(n)).nic();
    rx_frames += nic.counters().get("nic.rx_frames");
    ring_drops += nic.counters().get("nic.rx_ring_drops");
  }
  const std::uint64_t lhs =
      netc.get("net.tx_frames") + netc.get("net.fault_dup_frames");
  const std::uint64_t rhs = rx_frames + ring_drops +
                            netc.get("net.dropped_frames") +
                            netc.get("net.fault_drops");
  if (lhs != rhs)
    fail("frame conservation violated: " + std::to_string(lhs) +
         " != " + std::to_string(rhs));

  // ----- determinism fingerprint --------------------------------------
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const sim::Time now = cluster.engine().now();
  h = fnv1a(h, &now, sizeof(now));
  h = fnv1a(h, &lhs, sizeof(lhs));
  h = fnv1a(h, &rhs, sizeof(rhs));
  for (const Msg& m : msgs)
    h = fnv1a(h, m.out.data(), m.out.size());
  res.digest = h;
  dump_postmortem();
  return res;
}

}  // namespace

int main() {
  // Replay mode: run exactly one schedule under the given derived seed.
  if (const char* env = std::getenv("OMX_SOAK_SEED")) {
    const std::uint64_t seed = std::strtoull(env, nullptr, 10);
    const RunResult r = run_one(seed);
    if (!r.ok) {
      std::fprintf(stderr, "FAIL seed=%llu: %s\n",
                   static_cast<unsigned long long>(seed), r.why.c_str());
      std::fprintf(stderr, "replay: OMX_SOAK_SEED=%llu ./soak_protocol\n",
                   static_cast<unsigned long long>(seed));
      return 1;
    }
    std::printf("OK seed=%llu digest=%016llx\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(r.digest));
    return 0;
  }

  std::size_t runs = kDefaultRuns;
  if (const char* env = std::getenv("OMX_SOAK_RUNS"))
    runs = std::strtoul(env, nullptr, 10);

  sim::SweepRunner runner(sim::sweep_options_from_env());
  const std::vector<RunResult> results = runner.map<RunResult>(
      runs, [](std::size_t i) { return run_one(sim::sweep_seed(kBaseSeed, i)); });

  int failures = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok) continue;
    ++failures;
    const std::uint64_t seed = sim::sweep_seed(kBaseSeed, i);
    std::fprintf(stderr, "FAIL run %zu: %s  [repro: OMX_SOAK_SEED=%llu]\n", i,
                 results[i].why.c_str(),
                 static_cast<unsigned long long>(seed));
  }

  // Determinism spot check: replaying a schedule must reproduce the
  // exact same end state (virtual clock, counters, received bytes).
  for (std::size_t i = 0; i < std::min<std::size_t>(3, results.size()); ++i) {
    const std::uint64_t seed = sim::sweep_seed(kBaseSeed, i);
    const RunResult again = run_one(seed);
    if (again.digest != results[i].digest || again.ok != results[i].ok) {
      ++failures;
      std::fprintf(stderr,
                   "FAIL determinism: run %zu replays differently  "
                   "[repro: OMX_SOAK_SEED=%llu]\n",
                   i, static_cast<unsigned long long>(seed));
    }
  }

  if (failures) {
    std::fprintf(stderr, "soak: %d/%zu schedules failed\n", failures, runs);
    return 1;
  }
  std::printf("soak: %zu fault schedules passed (base seed %llu)\n", runs,
              static_cast<unsigned long long>(kBaseSeed));
  return 0;
}
