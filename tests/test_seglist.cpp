// Unit tests for the scatter/gather segment list and functional tests of
// the vectorial isendv/irecvv paths, including the Section IV-A rule that
// sub-kilobyte chunks must not be offloaded to I/OAT.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/cluster.hpp"
#include "core/endpoint.hpp"
#include "core/seglist.hpp"

namespace sim = openmx::sim;
namespace core = openmx::core;

namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  std::uint8_t x = seed;
  for (auto& b : v) {
    x = static_cast<std::uint8_t>(x * 31 + 7);
    b = x;
  }
  return v;
}

/// Splits `buf` into segments of `seg` bytes.
std::vector<core::IoVec> split(std::vector<std::uint8_t>& buf,
                               std::size_t seg) {
  std::vector<core::IoVec> v;
  for (std::size_t off = 0; off < buf.size(); off += seg)
    v.push_back(core::IoVec{buf.data() + off,
                            std::min(seg, buf.size() - off)});
  return v;
}

}  // namespace

TEST(SegList, ContiguousBasics) {
  std::vector<std::uint8_t> buf(100);
  core::SegList s(buf.data(), buf.size());
  EXPECT_EQ(s.total(), 100u);
  EXPECT_EQ(s.segment_count(), 1u);
  EXPECT_EQ(s.min_piece(0, 100), 100u);
  EXPECT_EQ(s.min_piece(10, 20), 20u);
  EXPECT_EQ(s.piece_count(0, 100, 4096), 1u);
}

TEST(SegList, WriteAndReadRoundtrip) {
  std::vector<std::uint8_t> a(10), b(20), c(5);
  const core::IoVec segs[] = {{a.data(), 10}, {b.data(), 20}, {c.data(), 5}};
  core::SegList s(segs, 3);
  EXPECT_EQ(s.total(), 35u);
  auto src = pattern(35);
  EXPECT_EQ(s.write(0, src.data(), 35), 35u);
  std::vector<std::uint8_t> out(35);
  EXPECT_EQ(s.read(0, out.data(), 35), 35u);
  EXPECT_EQ(out, src);
  EXPECT_EQ(a[0], src[0]);
  EXPECT_EQ(b[0], src[10]);
  EXPECT_EQ(c[4], src[34]);
}

TEST(SegList, WriteClipsAtEnd) {
  std::vector<std::uint8_t> a(10);
  core::SegList s(a.data(), 10);
  auto src = pattern(64);
  EXPECT_EQ(s.write(6, src.data(), 64), 4u);
}

TEST(SegList, OffsetSpansSegments) {
  std::vector<std::uint8_t> a(8), b(8);
  const core::IoVec segs[] = {{a.data(), 8}, {b.data(), 8}};
  core::SegList s(segs, 2);
  auto src = pattern(6);
  EXPECT_EQ(s.write(5, src.data(), 6), 6u);
  EXPECT_EQ(a[5], src[0]);
  EXPECT_EQ(b[0], src[3]);
  EXPECT_EQ(s.min_piece(5, 6), 3u);   // 3 bytes in a, 3 in b
  EXPECT_EQ(s.piece_count(5, 6, 4096), 2u);
}

TEST(SegList, PieceCountHonorsPageChunking) {
  std::vector<std::uint8_t> a(10000);
  core::SegList s(a.data(), a.size());
  EXPECT_EQ(s.piece_count(0, 10000, 4096), 3u);
  EXPECT_EQ(s.piece_count(0, 4096, 4096), 1u);
}

TEST(SegList, EmptySegmentsAreDropped) {
  std::vector<std::uint8_t> a(4);
  const core::IoVec segs[] = {{a.data(), 0}, {a.data(), 4}, {nullptr, 0}};
  core::SegList s(segs, 3);
  EXPECT_EQ(s.segment_count(), 1u);
  EXPECT_EQ(s.total(), 4u);
}

TEST(SegList, PrefixClips) {
  std::vector<std::uint8_t> a(10), b(10);
  const core::IoVec segs[] = {{a.data(), 10}, {b.data(), 10}};
  core::SegList s(segs, 2);
  core::SegList p = s.prefix(14);
  EXPECT_EQ(p.total(), 14u);
  EXPECT_EQ(p.segment_count(), 2u);
  EXPECT_EQ(p.min_piece(0, 14), 4u);
}

TEST(SegList, PiecePairsIntersect) {
  std::vector<std::uint8_t> s1(7), s2(9), d1(4), d2(12);
  const core::IoVec ss[] = {{s1.data(), 7}, {s2.data(), 9}};
  const core::IoVec dd[] = {{d1.data(), 4}, {d2.data(), 12}};
  core::SegList src(ss, 2), dst(dd, 2);
  auto data = pattern(16);
  src.write(0, data.data(), 16);
  std::size_t pieces = 0, moved = 0;
  core::for_piece_pairs(src, dst, 16,
                        [&](const std::uint8_t* sp, std::uint8_t* dp,
                            std::size_t len) {
                          std::memcpy(dp, sp, len);
                          ++pieces;
                          moved += len;
                        });
  EXPECT_EQ(moved, 16u);
  EXPECT_GE(pieces, 3u);  // boundaries at 4, 7 split the run
  std::vector<std::uint8_t> out(16);
  dst.read(0, out.data(), 16);
  EXPECT_EQ(out, data);
}

// ----- vectorial messaging end to end -----

struct VecCase {
  std::size_t msg;
  std::size_t send_seg;
  std::size_t recv_seg;
  bool ioat;
};

class Vectorial : public ::testing::TestWithParam<VecCase> {};

TEST_P(Vectorial, PayloadSurvivesScatterGather) {
  const VecCase& c = GetParam();
  core::OmxConfig cfg;
  cfg.ioat_large = c.ioat;
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);

  auto src = pattern(c.msg);
  auto sendcopy = src;
  std::vector<std::uint8_t> dst(c.msg, 0);
  auto ssegs = split(sendcopy, c.send_seg);
  auto rsegs = split(dst, c.recv_seg);

  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isendv(ssegs.data(), ssegs.size(), {1, 1}, 9));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    const core::Request done =
        ep.wait(ep.irecvv(rsegs.data(), rsegs.size(), 9));
    EXPECT_EQ(done.recv_len, c.msg);
  });
  cluster.run();
  EXPECT_EQ(dst, src);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Vectorial,
    ::testing::Values(VecCase{8192, 1000, 3000, false},
                      VecCase{8192, 3000, 1000, true},
                      VecCase{256 * 1024, 4096, 4096, true},
                      VecCase{256 * 1024, 512, 100000, true},
                      VecCase{256 * 1024, 100000, 512, true},
                      VecCase{1024 * 1024, 777, 123456, true}));

TEST(Vectorial, SmallSegmentsBypassIoat) {
  // Section IV-A: fragments under ~1 kB must not be offloaded; a receive
  // buffer made of 512 B segments therefore falls back to memcpy.
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  const std::size_t msg = 256 * sim::KiB;
  auto src = pattern(msg);
  std::vector<std::uint8_t> dst(msg);
  auto rsegs = split(dst, 512);

  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(src.data(), msg, {1, 1}, 9));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    ep.wait(ep.irecvv(rsegs.data(), rsegs.size(), 9));
  });
  cluster.run();
  EXPECT_EQ(dst, src);
  EXPECT_EQ(cluster.node(1).driver().counters().get("driver.large_ioat_bytes"),
            0u);
  EXPECT_GT(
      cluster.node(1).driver().counters().get("driver.large_memcpy_bytes"),
      0u);
}

TEST(Vectorial, PageSegmentsDoUseIoat) {
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  const std::size_t msg = 256 * sim::KiB;
  auto src = pattern(msg);
  std::vector<std::uint8_t> dst(msg);
  auto rsegs = split(dst, 4096);

  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(src.data(), msg, {1, 1}, 9));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    ep.wait(ep.irecvv(rsegs.data(), rsegs.size(), 9));
  });
  cluster.run();
  EXPECT_EQ(dst, src);
  EXPECT_GT(cluster.node(1).driver().counters().get("driver.large_ioat_bytes"),
            0u);
}

TEST(Vectorial, LocalVectorialCopy) {
  core::OmxConfig cfg;
  core::Cluster cluster;
  cluster.add_nodes(1, cfg);
  const std::size_t msg = 64 * sim::KiB;
  auto srcdata = pattern(msg);
  auto sendcopy = srcdata;
  std::vector<std::uint8_t> dst(msg);
  auto ssegs = split(sendcopy, 3333);
  auto rsegs = split(dst, 7777);

  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isendv(ssegs.data(), ssegs.size(), {0, 1}, 9));
  });
  cluster.spawn(cluster.node(0), 2, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    ep.wait(ep.irecvv(rsegs.data(), rsegs.size(), 9));
  });
  cluster.run();
  EXPECT_EQ(dst, srcdata);
}
