// Unit tests for the I/OAT DMA engine model: in-order completion, real
// data movement at the virtual completion instant, chunking costs and the
// Section IV-A calibration points.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "dma/ioat.hpp"
#include "sim/engine.hpp"

namespace sim = openmx::sim;
namespace dma = openmx::dma;

namespace {
std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), std::uint8_t{1});
  return v;
}
}  // namespace

TEST(Ioat, SubmissionCostIs350nsPerDescriptor) {
  sim::Engine e;
  dma::IoatEngine io(e);
  EXPECT_EQ(io.submit_cost(1), 350);
  EXPECT_EQ(io.submit_cost(4), 1400);
}

TEST(Ioat, DataMovesExactlyAtCompletionTime) {
  sim::Engine e;
  dma::IoatEngine io(e);
  auto src = pattern(4096);
  std::vector<std::uint8_t> dst(4096, 0);
  const auto cookie = io.submit(0, src.data(), dst.data(), src.size());
  const sim::Time done = io.cookie_done_time(0, cookie);
  EXPECT_GT(done, 0);
  e.run_until(done - 1);
  EXPECT_EQ(dst[0], 0) << "copy must not be visible before completion";
  e.run();
  EXPECT_EQ(dst, src);
  EXPECT_EQ(io.completed(0), cookie);
}

TEST(Ioat, CompletionsAreInOrderPerChannel) {
  sim::Engine e;
  dma::IoatEngine io(e);
  auto src = pattern(1024);
  std::vector<std::uint8_t> d1(1024), d2(1024);
  const auto c1 = io.submit(0, src.data(), d1.data(), 1024);
  const auto c2 = io.submit(0, src.data(), d2.data(), 1024);
  EXPECT_LT(c1, c2);
  EXPECT_LE(io.cookie_done_time(0, c1), io.cookie_done_time(0, c2));
  e.run();
  EXPECT_EQ(io.completed(0), c2);
}

TEST(Ioat, ChannelsAreIndependent) {
  sim::Engine e;
  dma::IoatEngine io(e);
  auto src = pattern(1 * sim::MiB);
  std::vector<std::uint8_t> d1(src.size()), d2(4096);
  io.submit(0, src.data(), d1.data(), src.size());  // long copy on 0
  const auto c2 = io.submit(1, src.data(), d2.data(), 4096);
  // Channel 1's small copy does not queue behind channel 0's megabyte.
  EXPECT_LT(io.cookie_done_time(1, c2), io.drain_time(0));
  e.run();
}

TEST(Ioat, ChunkedSubmissionCountsDescriptors) {
  EXPECT_EQ(dma::IoatEngine::chunk_count(4096, 4096), 1u);
  EXPECT_EQ(dma::IoatEngine::chunk_count(4097, 4096), 2u);
  EXPECT_EQ(dma::IoatEngine::chunk_count(1, 4096), 1u);
  EXPECT_EQ(dma::IoatEngine::chunk_count(0, 4096), 0u);
  EXPECT_EQ(dma::IoatEngine::chunk_count(16384, 0), 1u);  // 0 = no chunking
}

TEST(Ioat, ChunkedCopyMovesAllData) {
  sim::Engine e;
  dma::IoatEngine io(e);
  auto src = pattern(40000);
  std::vector<std::uint8_t> dst(40000, 0);
  io.submit_chunked(2, src.data(), dst.data(), src.size(), 4096);
  e.run();
  EXPECT_EQ(dst, src);
}

TEST(Ioat, PageChunksReachAbout2400MiBs) {
  // Figure 7: with 4 kB chunks the engine sustains ~2.4 GiB/s.
  sim::Engine e;
  dma::IoatEngine io(e);
  const std::size_t total = 4 * sim::MiB;
  std::vector<std::uint8_t> src(total), dst(total);
  io.submit_chunked(0, src.data(), dst.data(), total, 4096);
  const sim::Time t = e.run();
  const double gib_s =
      static_cast<double>(total) * 1e9 / static_cast<double>(t) /
      static_cast<double>(sim::GiB);
  EXPECT_NEAR(gib_s, 2.35, 0.25);
}

TEST(Ioat, TinyChunksCollapseThroughput) {
  // Figure 7: 256 B chunks make offloaded copies slower than memcpy.
  sim::Engine e;
  dma::IoatEngine io(e);
  const std::size_t total = sim::MiB;
  std::vector<std::uint8_t> src(total), dst(total);
  io.submit_chunked(0, src.data(), dst.data(), total, 256);
  const sim::Time t = e.run();
  const double gib_s =
      static_cast<double>(total) * 1e9 / static_cast<double>(t) /
      static_cast<double>(sim::GiB);
  EXPECT_LT(gib_s, 1.0);
}

TEST(Ioat, CookieDoneTimeOfCompletedIsNow) {
  sim::Engine e;
  dma::IoatEngine io(e);
  std::vector<std::uint8_t> b(64);
  const auto c = io.submit(0, b.data(), b.data(), 64);
  e.run();
  EXPECT_EQ(io.cookie_done_time(0, c), e.now());
  EXPECT_TRUE(io.idle(0));
}

TEST(Ioat, UnknownCookieThrows) {
  sim::Engine e;
  dma::IoatEngine io(e);
  EXPECT_THROW((void)io.cookie_done_time(0, 42), std::logic_error);
  EXPECT_THROW(io.submit(7, nullptr, nullptr, 0), std::out_of_range);
}

TEST(Ioat, PickChannelRoundRobins) {
  sim::Engine e;
  dma::IoatEngine io(e);
  EXPECT_EQ(io.pick_channel(), 0);
  EXPECT_EQ(io.pick_channel(), 1);
  EXPECT_EQ(io.pick_channel(), 2);
  EXPECT_EQ(io.pick_channel(), 3);
  EXPECT_EQ(io.pick_channel(), 0);
}

TEST(Ioat, BreakEvenNearPaperValue) {
  // Section IV-A: ~600 bytes can be memcpy'd (uncached, 1.6 GiB/s) in the
  // 350 ns it takes to submit one descriptor.
  dma::IoatParams p;
  const double memcpy_bw = 1.6 * static_cast<double>(sim::GiB);
  const double bytes_in_submit =
      static_cast<double>(p.submit_ns) * memcpy_bw / 1e9;
  EXPECT_NEAR(bytes_in_submit, 600.0, 60.0);
}
