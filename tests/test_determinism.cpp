// Determinism regression tests for the rebuilt event engine.
//
// The engine's contract is a total dispatch order, lexicographic in
// (when, schedule-sequence) — FIFO per timestamp.  The seed engine got
// this from std::priority_queue over per-event sequence numbers; the
// slab engine gets it from 24-byte keys in an owned 4-ary heap or a
// hierarchical timer wheel.  These tests pin the contract down against
// a straightforward reference implementation and randomized workloads,
// and assert that SweepRunner fan-out cannot change experiment results.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/parallel_cluster.hpp"
#include "fault/fault.hpp"
#include "mem/aligned_buffer.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/sweep.hpp"

namespace sim = openmx::sim;

namespace {

// Reference scheduler: the seed engine's exact ordering logic — a
// std::priority_queue of (when, seq) popped smallest-first.
struct RefEvent {
  sim::Time when;
  std::uint64_t seq;
  int id;
};
struct RefLater {
  bool operator()(const RefEvent& a, const RefEvent& b) const {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }
};

struct WorkloadOp {
  sim::Time at;     // schedule-time of the op (engine time when issued)
  sim::Time delay;  // delay passed to schedule()
  int id;
};

// Random batches of same-time and distinct-time events, some scheduled
// from inside callbacks, exercising ties, far jumps and interleaving.
std::vector<WorkloadOp> random_workload(std::uint64_t seed, int n) {
  sim::Rng rng(seed);
  std::vector<WorkloadOp> ops;
  sim::Time t = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) t += static_cast<sim::Time>(rng.next_u64() % 1000);
    ops.push_back({t, static_cast<sim::Time>(rng.next_u64() % 128), i});
  }
  return ops;
}

// Dispatch order of the reference scheduler for a pre-built op list
// (ops whose `at` exceeds the current dispatch time are scheduled from
// a driver event at that time, mirroring what the engine test does).
std::vector<int> reference_order(const std::vector<WorkloadOp>& ops) {
  std::priority_queue<RefEvent, std::vector<RefEvent>, RefLater> q;
  std::uint64_t seq = 0;
  for (const auto& op : ops) q.push({op.at + op.delay, seq++, op.id});
  std::vector<int> order;
  while (!q.empty()) {
    order.push_back(q.top().id);
    q.pop();
  }
  return order;
}

std::vector<int> engine_order(const sim::EngineConfig& cfg,
                              const std::vector<WorkloadOp>& ops) {
  sim::Engine e(cfg);
  std::vector<int> order;
  // Schedule in op order so engine sequence numbers match the reference
  // seq assignment one-to-one.
  for (const auto& op : ops)
    e.schedule_at(op.at + op.delay, [&order, id = op.id] {
      order.push_back(id);
    });
  e.run();
  return order;
}

}  // namespace

TEST(Determinism, HeapMatchesPriorityQueueReference) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto ops = random_workload(seed, 500);
    EXPECT_EQ(engine_order(sim::EngineConfig{}, ops), reference_order(ops))
        << "seed " << seed;
  }
}

TEST(Determinism, WheelMatchesPriorityQueueReference) {
  sim::EngineConfig wheel;
  wheel.timer_wheel = true;
  wheel.wheel_granularity_shift = 0;
  sim::EngineConfig coarse = wheel;
  coarse.wheel_granularity_shift = 6;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto ops = random_workload(seed, 500);
    const auto ref = reference_order(ops);
    EXPECT_EQ(engine_order(wheel, ops), ref) << "seed " << seed;
    EXPECT_EQ(engine_order(coarse, ops), ref) << "seed " << seed;
  }
}

TEST(Determinism, NestedSchedulingMatchesAcrossQueues) {
  // Events scheduled from inside callbacks (the dominant pattern in the
  // driver) must interleave identically under heap and wheel.
  auto run = [](const sim::EngineConfig& cfg) {
    sim::Engine e(cfg);
    std::vector<std::pair<sim::Time, int>> trace;
    sim::Rng rng(99);
    for (int i = 0; i < 32; ++i) {
      e.schedule(static_cast<sim::Time>(rng.next_u64() % 64),
                 [&e, &trace, &rng, i] {
                   trace.push_back({e.now(), i});
                   for (int k = 0; k < 3; ++k)
                     e.schedule(static_cast<sim::Time>(rng.next_u64() % 32),
                                [&trace, &e, i, k] {
                                  trace.push_back({e.now(), 1000 + i * 10 + k});
                                });
                 });
    }
    e.run();
    return trace;
  };
  const auto heap_trace = run(sim::EngineConfig{});
  sim::EngineConfig wheel;
  wheel.timer_wheel = true;
  EXPECT_EQ(run(wheel), heap_trace);
  EXPECT_EQ(run(sim::EngineConfig{}), heap_trace);  // re-run: identical
}

TEST(Determinism, SimulatedPingPongIdenticalAcrossQueuesAndReruns) {
  // Whole-simulation check: one cluster ping-pong gives bit-identical
  // virtual times under the heap, the wheel, and on a re-run.
  const sim::Time heap1 =
      openmx::bench::pingpong_oneway(openmx::bench::cfg_omx(), 4096, 3, 1);
  const sim::Time heap2 =
      openmx::bench::pingpong_oneway(openmx::bench::cfg_omx(), 4096, 3, 1);
  EXPECT_EQ(heap1, heap2);
  EXPECT_GT(heap1, 0);
}

TEST(Determinism, SweepResultsIdenticalAcrossWorkerCounts) {
  // The fig12/ablation driver pattern: N independent simulations fanned
  // out across threads must give exactly the sequential results.
  auto job = [](std::size_t i) {
    return openmx::bench::pingpong_oneway(openmx::bench::cfg_omx(),
                                          1024 << (i % 4), 2, 1);
  };
  sim::SweepRunner seq{sim::SweepOptions{.threads = 1}};
  const std::vector<sim::Time> ref = seq.map<sim::Time>(8, job);
  for (unsigned threads : {2u, 4u, 8u}) {
    sim::SweepRunner par{sim::SweepOptions{.threads = threads}};
    EXPECT_EQ(par.map<sim::Time>(8, job), ref) << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Multi-LP execution: for the same workload, a partitioned run must be
// bit-identical to the sequential single-engine run — at every worker
// count.  The replay digest covers each process's finish time, the total
// event count, and every counter/histogram of the merged registry.
// ---------------------------------------------------------------------------

namespace {

namespace core = openmx::core;
namespace fault = openmx::fault;
namespace mem = openmx::mem;
namespace obs = openmx::obs;
using core::Addr;
using core::Endpoint;
using core::Process;

struct MeshDigest {
  std::vector<sim::Time> finish;  // per-node process completion times
  std::uint64_t events = 0;       // events scheduled, summed in LP order
  std::string metrics;            // merged registry JSON (sorted keys)

  bool operator==(const MeshDigest&) const = default;
};

std::string registry_json(const obs::Registry& reg) {
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* f = open_memstream(&buf, &len);
  reg.dump_json(f);
  std::fclose(f);
  std::string s(buf, len);
  std::free(buf);
  return s;
}

// Protocol-heavy ring traffic: every node sends eager, multi-fragment
// eager, and rendezvous-sized messages to its successor; the small
// receive is posted late (after compute) so the unexpected queue and
// both protocol paths are exercised on every link.
template <typename ClusterT>
void spawn_mesh_traffic(ClusterT& cluster, int nnodes, int iters,
                        std::vector<sim::Time>& finish) {
  struct NodeBufs {
    // Parenthesized construction: Buffer is a std::vector, so braces
    // would mean an initializer list.
    mem::Buffer s64 = mem::Buffer(64, 1);
    mem::Buffer s16k = mem::Buffer(16 * sim::KiB, 2);
    mem::Buffer s256k = mem::Buffer(256 * sim::KiB, 3);
    mem::Buffer r64 = mem::Buffer(64, 0);
    mem::Buffer r16k = mem::Buffer(16 * sim::KiB, 0);
    mem::Buffer r256k = mem::Buffer(256 * sim::KiB, 0);
  };
  auto bufs = std::make_shared<std::vector<NodeBufs>>(
      static_cast<std::size_t>(nnodes));
  finish.assign(static_cast<std::size_t>(nnodes), 0);

  for (int i = 0; i < nnodes; ++i) {
    const int next = (i + 1) % nnodes;
    cluster.spawn(
        cluster.node(static_cast<std::size_t>(i)), 0, "mesh" + std::to_string(i),
        [&finish, bufs, i, next, iters](Process& p) {
          Endpoint ep(p, i);
          NodeBufs& b = (*bufs)[static_cast<std::size_t>(i)];
          for (int it = 0; it < iters; ++it) {
            const std::uint64_t tag = static_cast<std::uint64_t>(it) * 8;
            // Large + medium receives posted up front...
            core::Request* r256k = ep.irecv(b.r256k.data(), 256 * sim::KiB,
                                            tag + 3);
            core::Request* r16k = ep.irecv(b.r16k.data(), 16 * sim::KiB,
                                           tag + 2);
            core::Request* s64 =
                ep.isend(b.s64.data(), 64, Addr{next, static_cast<std::uint16_t>(next)}, tag + 1);
            core::Request* s256k = ep.isend(b.s256k.data(), 256 * sim::KiB,
                                            Addr{next, static_cast<std::uint16_t>(next)}, tag + 3);
            // ...while the small one lands unexpected during this compute.
            p.compute(3 * sim::kMicrosecond);
            core::Request* r64 = ep.irecv(b.r64.data(), 64, tag + 1);
            core::Request* s16k = ep.isend(b.s16k.data(), 16 * sim::KiB,
                                           Addr{next, static_cast<std::uint16_t>(next)}, tag + 2);
            ep.wait(s64);
            ep.wait(s16k);
            ep.wait(s256k);
            ep.wait(r64);
            ep.wait(r16k);
            ep.wait(r256k);
          }
          finish[static_cast<std::size_t>(i)] = p.now();
        });
  }
}

MeshDigest sequential_mesh_digest(int nnodes, int iters) {
  MeshDigest d;
  core::Cluster cluster;
  cluster.add_nodes(nnodes, openmx::bench::cfg_omx());
  spawn_mesh_traffic(cluster, nnodes, iters, d.finish);
  cluster.run();
  d.events = cluster.engine().events_scheduled();
  obs::Registry reg;
  openmx::bench::collect_cluster_metrics(cluster, reg);
  d.metrics = registry_json(reg);
  return d;
}

MeshDigest parallel_mesh_digest(int nnodes, int num_lps, unsigned workers,
                                int iters) {
  MeshDigest d;
  core::ParallelCluster cluster(num_lps);
  cluster.add_nodes(nnodes, openmx::bench::cfg_omx());
  spawn_mesh_traffic(cluster, nnodes, iters, d.finish);
  cluster.run(workers);
  d.events = cluster.events_scheduled();
  obs::Registry reg;
  cluster.collect_metrics(reg);
  d.metrics = registry_json(reg);
  return d;
}

}  // namespace

TEST(Determinism, MultiLpMatchesSequentialAtEveryWorkerCount) {
  // One LP per node, 8 nodes of ring traffic over eager + rendezvous
  // paths: the partitioned digests must all equal the single-engine
  // reference bit for bit.
  const int kNodes = 8, kIters = 2;
  const MeshDigest ref = sequential_mesh_digest(kNodes, kIters);
  ASSERT_EQ(ref.finish.size(), 8u);
  for (sim::Time t : ref.finish) EXPECT_GT(t, 0);
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    const MeshDigest par = parallel_mesh_digest(kNodes, kNodes, workers,
                                                kIters);
    EXPECT_EQ(par.finish, ref.finish) << workers << " workers";
    EXPECT_EQ(par.events, ref.events) << workers << " workers";
    EXPECT_EQ(par.metrics, ref.metrics) << workers << " workers";
  }
}

TEST(Determinism, SchedulerMetricsIdenticalAcrossWorkersAndReruns) {
  // The per-LP scheduler telemetry (lp.<id>.* counters and histograms,
  // critical-LP attribution, virtual-time barrier stalls) is exported in
  // LP-id order and derives only from the deterministic window protocol —
  // so the merged registry must be byte-identical across repeated runs
  // AND across 1/2/4/8 workers.  Wall-clock barrier waits live in the
  // separate wall_metrics() registry precisely so this holds.
  const int kNodes = 8, kIters = 2;
  auto scheduler_digest = [&](unsigned workers) {
    core::ParallelCluster cluster(kNodes);
    cluster.add_nodes(kNodes, openmx::bench::cfg_omx());
    std::vector<sim::Time> finish;
    spawn_mesh_traffic(cluster, kNodes, kIters, finish);
    cluster.run(workers);
    obs::Registry reg;
    cluster.collect_scheduler_metrics(reg);
    return registry_json(reg);
  };
  const std::string ref = scheduler_digest(4);
  // The export actually carries the per-LP telemetry it promises.
  EXPECT_NE(ref.find("lp.0.events"), std::string::npos) << ref;
  EXPECT_NE(ref.find("lp.0.barrier_stall_ns"), std::string::npos);
  EXPECT_NE(ref.find("lp.critical.slack_ns"), std::string::npos);
  EXPECT_NE(ref.find("lp.max_inbox_depth"), std::string::npos);
  EXPECT_EQ(scheduler_digest(4), ref);  // repeated-run bit-identity
  for (unsigned workers : {1u, 2u, 8u})
    EXPECT_EQ(scheduler_digest(workers), ref) << workers << " workers";
}

TEST(Determinism, MultiLpFewerLpsThanNodesStillMatchesSequential) {
  // Round-robin placement with 2 nodes per LP: partition shape must not
  // change results either.
  const MeshDigest ref = sequential_mesh_digest(4, 1);
  for (unsigned workers : {1u, 2u}) {
    const MeshDigest par = parallel_mesh_digest(4, 2, workers, 1);
    EXPECT_EQ(par.finish, ref.finish) << workers << " workers";
    EXPECT_EQ(par.events, ref.events) << workers << " workers";
    EXPECT_EQ(par.metrics, ref.metrics) << workers << " workers";
  }
}

namespace {

// Fault-plan scenario: each fabric shard carries its own scripted plan
// (occurrence counts follow the shard-local transmit order, so the
// script is part of the partition, not global state).  The digest must
// be identical at every worker count.
MeshDigest faulted_mesh_digest(int nnodes, unsigned workers, int iters) {
  MeshDigest d;
  core::ParallelCluster cluster(nnodes);
  cluster.add_nodes(nnodes, openmx::bench::cfg_omx());
  std::vector<std::unique_ptr<fault::Plan>> plans;
  for (int i = 0; i < nnodes; ++i) {
    auto plan = std::make_unique<fault::Plan>(sim::sweep_seed(0xFA17, i));
    plan->drop_nth(fault::Match::Data, 2)
        .duplicate_nth(fault::Match::Eager, 4)
        .delay_nth(fault::Match::PullReply, 3, 20 * sim::kMicrosecond)
        .corrupt_nth(fault::Match::Data, 9);
    cluster.shard(static_cast<std::size_t>(i)).set_fault_injector(plan.get());
    plans.push_back(std::move(plan));
  }
  spawn_mesh_traffic(cluster, nnodes, iters, d.finish);
  cluster.run(workers);
  d.events = cluster.events_scheduled();
  obs::Registry reg;
  cluster.collect_metrics(reg);
  d.metrics = registry_json(reg);
  return d;
}

}  // namespace

TEST(Determinism, MultiLpFaultPlanIdenticalAcrossWorkerCounts) {
  // Drops force retransmission, duplicates force dedup, delays reorder,
  // corruption forces checksum discard — and the recovery machinery must
  // still replay bit-identically at 1/2/4/8 workers.
  const MeshDigest ref = faulted_mesh_digest(4, 1, 2);
  for (sim::Time t : ref.finish) EXPECT_GT(t, 0);
  // The plans must actually have fired or the scenario tests nothing.
  EXPECT_NE(ref.metrics.find("\"net.fault_drops\": 4"), std::string::npos)
      << ref.metrics;
  for (unsigned workers : {2u, 4u, 8u}) {
    const MeshDigest par = faulted_mesh_digest(4, workers, 2);
    EXPECT_EQ(par.finish, ref.finish) << workers << " workers";
    EXPECT_EQ(par.events, ref.events) << workers << " workers";
    EXPECT_EQ(par.metrics, ref.metrics) << workers << " workers";
  }
}
