// Determinism regression tests for the rebuilt event engine.
//
// The engine's contract is a total dispatch order, lexicographic in
// (when, schedule-sequence) — FIFO per timestamp.  The seed engine got
// this from std::priority_queue over per-event sequence numbers; the
// slab engine gets it from 24-byte keys in an owned 4-ary heap or a
// hierarchical timer wheel.  These tests pin the contract down against
// a straightforward reference implementation and randomized workloads,
// and assert that SweepRunner fan-out cannot change experiment results.
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "bench/common.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/sweep.hpp"

namespace sim = openmx::sim;

namespace {

// Reference scheduler: the seed engine's exact ordering logic — a
// std::priority_queue of (when, seq) popped smallest-first.
struct RefEvent {
  sim::Time when;
  std::uint64_t seq;
  int id;
};
struct RefLater {
  bool operator()(const RefEvent& a, const RefEvent& b) const {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }
};

struct WorkloadOp {
  sim::Time at;     // schedule-time of the op (engine time when issued)
  sim::Time delay;  // delay passed to schedule()
  int id;
};

// Random batches of same-time and distinct-time events, some scheduled
// from inside callbacks, exercising ties, far jumps and interleaving.
std::vector<WorkloadOp> random_workload(std::uint64_t seed, int n) {
  sim::Rng rng(seed);
  std::vector<WorkloadOp> ops;
  sim::Time t = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) t += static_cast<sim::Time>(rng.next_u64() % 1000);
    ops.push_back({t, static_cast<sim::Time>(rng.next_u64() % 128), i});
  }
  return ops;
}

// Dispatch order of the reference scheduler for a pre-built op list
// (ops whose `at` exceeds the current dispatch time are scheduled from
// a driver event at that time, mirroring what the engine test does).
std::vector<int> reference_order(const std::vector<WorkloadOp>& ops) {
  std::priority_queue<RefEvent, std::vector<RefEvent>, RefLater> q;
  std::uint64_t seq = 0;
  for (const auto& op : ops) q.push({op.at + op.delay, seq++, op.id});
  std::vector<int> order;
  while (!q.empty()) {
    order.push_back(q.top().id);
    q.pop();
  }
  return order;
}

std::vector<int> engine_order(const sim::EngineConfig& cfg,
                              const std::vector<WorkloadOp>& ops) {
  sim::Engine e(cfg);
  std::vector<int> order;
  // Schedule in op order so engine sequence numbers match the reference
  // seq assignment one-to-one.
  for (const auto& op : ops)
    e.schedule_at(op.at + op.delay, [&order, id = op.id] {
      order.push_back(id);
    });
  e.run();
  return order;
}

}  // namespace

TEST(Determinism, HeapMatchesPriorityQueueReference) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto ops = random_workload(seed, 500);
    EXPECT_EQ(engine_order(sim::EngineConfig{}, ops), reference_order(ops))
        << "seed " << seed;
  }
}

TEST(Determinism, WheelMatchesPriorityQueueReference) {
  sim::EngineConfig wheel;
  wheel.timer_wheel = true;
  wheel.wheel_granularity_shift = 0;
  sim::EngineConfig coarse = wheel;
  coarse.wheel_granularity_shift = 6;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto ops = random_workload(seed, 500);
    const auto ref = reference_order(ops);
    EXPECT_EQ(engine_order(wheel, ops), ref) << "seed " << seed;
    EXPECT_EQ(engine_order(coarse, ops), ref) << "seed " << seed;
  }
}

TEST(Determinism, NestedSchedulingMatchesAcrossQueues) {
  // Events scheduled from inside callbacks (the dominant pattern in the
  // driver) must interleave identically under heap and wheel.
  auto run = [](const sim::EngineConfig& cfg) {
    sim::Engine e(cfg);
    std::vector<std::pair<sim::Time, int>> trace;
    sim::Rng rng(99);
    for (int i = 0; i < 32; ++i) {
      e.schedule(static_cast<sim::Time>(rng.next_u64() % 64),
                 [&e, &trace, &rng, i] {
                   trace.push_back({e.now(), i});
                   for (int k = 0; k < 3; ++k)
                     e.schedule(static_cast<sim::Time>(rng.next_u64() % 32),
                                [&trace, &e, i, k] {
                                  trace.push_back({e.now(), 1000 + i * 10 + k});
                                });
                 });
    }
    e.run();
    return trace;
  };
  const auto heap_trace = run(sim::EngineConfig{});
  sim::EngineConfig wheel;
  wheel.timer_wheel = true;
  EXPECT_EQ(run(wheel), heap_trace);
  EXPECT_EQ(run(sim::EngineConfig{}), heap_trace);  // re-run: identical
}

TEST(Determinism, SimulatedPingPongIdenticalAcrossQueuesAndReruns) {
  // Whole-simulation check: one cluster ping-pong gives bit-identical
  // virtual times under the heap, the wheel, and on a re-run.
  const sim::Time heap1 =
      openmx::bench::pingpong_oneway(openmx::bench::cfg_omx(), 4096, 3, 1);
  const sim::Time heap2 =
      openmx::bench::pingpong_oneway(openmx::bench::cfg_omx(), 4096, 3, 1);
  EXPECT_EQ(heap1, heap2);
  EXPECT_GT(heap1, 0);
}

TEST(Determinism, SweepResultsIdenticalAcrossWorkerCounts) {
  // The fig12/ablation driver pattern: N independent simulations fanned
  // out across threads must give exactly the sequential results.
  auto job = [](std::size_t i) {
    return openmx::bench::pingpong_oneway(openmx::bench::cfg_omx(),
                                          1024 << (i % 4), 2, 1);
  };
  sim::SweepRunner seq{sim::SweepOptions{.threads = 1}};
  const std::vector<sim::Time> ref = seq.map<sim::Time>(8, job);
  for (unsigned threads : {2u, 4u, 8u}) {
    sim::SweepRunner par{sim::SweepOptions{.threads = threads}};
    EXPECT_EQ(par.map<sim::Time>(8, job), ref) << threads << " threads";
  }
}
