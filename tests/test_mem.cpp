// Unit tests for the cache model, memcpy cost model, pinning model and
// registration cache.
#include <gtest/gtest.h>

#include <vector>

#include "mem/cache_model.hpp"
#include "mem/memcpy_model.hpp"
#include "mem/pinning.hpp"
#include "sim/time.hpp"

namespace sim = openmx::sim;
namespace mem = openmx::mem;

TEST(CacheModel, TouchMakesResident) {
  mem::CacheModel c(64 * sim::KiB);
  std::vector<std::uint8_t> buf(16 * sim::KiB);
  EXPECT_DOUBLE_EQ(c.hit_fraction(buf.data(), buf.size()), 0.0);
  c.touch(buf.data(), buf.size());
  EXPECT_DOUBLE_EQ(c.hit_fraction(buf.data(), buf.size()), 1.0);
}

TEST(CacheModel, LruEvictsWhenOverCapacity) {
  mem::CacheModel c(16 * sim::KiB);  // 4 pages
  std::vector<std::uint8_t> a(16 * sim::KiB), b(16 * sim::KiB);
  c.touch(a.data(), a.size());
  EXPECT_GT(c.hit_fraction(a.data(), a.size()), 0.5);
  c.touch(b.data(), b.size());  // evicts a
  EXPECT_GT(c.hit_fraction(b.data(), b.size()), 0.5);
  EXPECT_LT(c.hit_fraction(a.data(), a.size()), 0.5);
}

TEST(CacheModel, BufferLargerThanCacheOnlyTailResident) {
  mem::CacheModel c(16 * sim::KiB);
  std::vector<std::uint8_t> big(64 * sim::KiB);
  c.touch(big.data(), big.size());
  // Only 4 of 16 pages fit.
  EXPECT_NEAR(c.hit_fraction(big.data(), big.size()), 4.0 / 17.0, 0.1);
}

TEST(CacheModel, FlushDropsEverything) {
  mem::CacheModel c(64 * sim::KiB);
  std::vector<std::uint8_t> buf(8 * sim::KiB);
  c.touch(buf.data(), buf.size());
  c.flush();
  EXPECT_EQ(c.resident_pages(), 0u);
  EXPECT_DOUBLE_EQ(c.hit_fraction(buf.data(), buf.size()), 0.0);
}

TEST(CacheModel, RepeatedTouchRefreshesLru) {
  mem::CacheModel c(8 * sim::KiB);  // 2 pages
  // Page-aligned slices of one region, so each buffer is exactly 1 page.
  static std::uint8_t region[4 * 4096] __attribute__((aligned(4096)));
  std::uint8_t* a = region;
  std::uint8_t* b = region + 4096;
  std::uint8_t* d = region + 2 * 4096;
  c.touch(a, 4096);
  c.touch(b, 4096);
  c.touch(a, 4096);  // refresh a; b is now LRU
  c.touch(d, 4096);  // evicts b
  EXPECT_DOUBLE_EQ(c.hit_fraction(a, 4096), 1.0);
  EXPECT_DOUBLE_EQ(c.hit_fraction(b, 4096), 0.0);
}

TEST(MemcpyModel, UncachedRateMatchesPaper) {
  // Section IV-A: "the processor copy rate is about 1.6 GiB/s".
  mem::MemcpyModel m;
  const sim::Time t = m.duration(sim::MiB, 4096, 0.0, false);
  const double gib_s = static_cast<double>(sim::MiB) * 1e9 /
                       static_cast<double>(t) / static_cast<double>(sim::GiB);
  EXPECT_NEAR(gib_s, 1.6, 0.1);
}

TEST(MemcpyModel, CachedIsMuchFaster) {
  // Section IV-A: "if the data fits in the cache, the memcpy performance
  // may reach up to 12 GiB/s".
  mem::MemcpyModel m;
  const sim::Time cold = m.duration(64 * sim::KiB, 4096, 0.0, false);
  const sim::Time hot = m.duration(64 * sim::KiB, 4096, 1.0, false);
  EXPECT_GT(cold, 6 * hot);
}

TEST(MemcpyModel, ChunkingBarelyMattersForMemcpy) {
  // Figure 7: splitting a stream into 256 B chunks costs memcpy little.
  mem::MemcpyModel m;
  const sim::Time pages = m.duration(sim::MiB, 4096, 0.0, false);
  const sim::Time tiny = m.duration(sim::MiB, 256, 0.0, false);
  EXPECT_LT(static_cast<double>(tiny) / static_cast<double>(pages), 1.25);
}

TEST(MemcpyModel, ContentionSlowsUncachedCopies) {
  mem::MemcpyModel m;
  EXPECT_GT(m.duration(sim::MiB, 4096, 0.0, true),
            m.duration(sim::MiB, 4096, 0.0, false));
}

TEST(MemcpyModel, ZeroBytesZeroTime) {
  mem::MemcpyModel m;
  EXPECT_EQ(m.duration(0, 4096, 0.0, false), 0);
}

TEST(MemBus, TracksNicDmaWindow) {
  mem::MemBus bus;
  EXPECT_FALSE(bus.nic_dma_active(0));
  bus.note_nic_dma_until(100);
  EXPECT_TRUE(bus.nic_dma_active(50));
  EXPECT_FALSE(bus.nic_dma_active(100));
  bus.note_nic_dma_until(50);  // must not shrink the window
  EXPECT_TRUE(bus.nic_dma_active(99));
}

TEST(PinModel, CostScalesWithPages) {
  mem::PinModel p;
  EXPECT_EQ(p.cost(4096), p.base_ns + p.per_page_ns);
  EXPECT_EQ(p.cost(8192), p.base_ns + 2 * p.per_page_ns);
  EXPECT_EQ(p.cost(1), p.base_ns + p.per_page_ns);  // partial page pins
}

TEST(RegCache, HitSkipsPinning) {
  mem::RegCache rc(true);
  int dummy = 0;
  EXPECT_FALSE(rc.lookup_or_insert(&dummy, 64));  // miss
  EXPECT_TRUE(rc.lookup_or_insert(&dummy, 64));   // hit
  EXPECT_FALSE(rc.lookup_or_insert(&dummy, 128)); // different length: miss
  EXPECT_EQ(rc.counters().get("regcache.hit"), 1u);
  EXPECT_EQ(rc.counters().get("regcache.miss"), 2u);
}

TEST(RegCache, DisabledAlwaysMisses) {
  mem::RegCache rc(false);
  int dummy = 0;
  EXPECT_FALSE(rc.lookup_or_insert(&dummy, 64));
  EXPECT_FALSE(rc.lookup_or_insert(&dummy, 64));
  EXPECT_EQ(rc.size(), 0u);
}

TEST(RegCache, InvalidateAllForgets) {
  mem::RegCache rc(true);
  int dummy = 0;
  rc.lookup_or_insert(&dummy, 64);
  rc.invalidate_all();
  EXPECT_FALSE(rc.lookup_or_insert(&dummy, 64));
}
