// Tests for the Node/Cluster composition layer: cache-coherence helpers,
// deadlock detection, process exception propagation, and node wiring.
#include <gtest/gtest.h>

#include <vector>

#include "core/cluster.hpp"
#include "core/endpoint.hpp"

namespace sim = openmx::sim;
namespace core = openmx::core;
namespace cpu = openmx::cpu;

TEST(Node, CacheForCoreFollowsSubchips) {
  core::Cluster cluster;
  cluster.add_nodes(1, {});
  core::Node& n = cluster.node(0);
  EXPECT_EQ(&n.cache_for_core(0), &n.cache_for_core(1));
  EXPECT_NE(&n.cache_for_core(0), &n.cache_for_core(2));
  EXPECT_NE(&n.cache_for_core(1), &n.cache_for_core(4));
}

TEST(Node, TouchExclusiveInvalidatesOtherCaches) {
  core::Cluster cluster;
  cluster.add_nodes(1, {});
  core::Node& n = cluster.node(0);
  static std::uint8_t buf[4096 * 4] __attribute__((aligned(4096)));
  // Make the range resident everywhere first.
  for (int c = 0; c < cpu::Machine::kNumCores; c += 2)
    n.cache_for_core(c).touch(buf, sizeof buf);
  // A store by core 0 takes exclusive ownership.
  n.touch_exclusive(0, buf, sizeof buf);
  EXPECT_DOUBLE_EQ(n.cache_for_core(0).hit_fraction(buf, sizeof buf), 1.0);
  EXPECT_DOUBLE_EQ(n.cache_for_core(2).hit_fraction(buf, sizeof buf), 0.0);
  EXPECT_DOUBLE_EQ(n.cache_for_core(4).hit_fraction(buf, sizeof buf), 0.0);
}

TEST(Node, FlushCachesDropsEverything) {
  core::Cluster cluster;
  cluster.add_nodes(1, {});
  core::Node& n = cluster.node(0);
  static std::uint8_t buf[4096];
  n.cache_for_core(0).touch(buf, sizeof buf);
  n.flush_caches();
  EXPECT_EQ(n.cache_for_core(0).resident_pages(), 0u);
}

TEST(Cluster, NodesGetSequentialIds) {
  core::Cluster cluster;
  cluster.add_nodes(3, {});
  EXPECT_EQ(cluster.num_nodes(), 3u);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(cluster.node(static_cast<std::size_t>(i)).id(), i);
}

TEST(Cluster, DeadlockedProcessIsReported) {
  core::Cluster cluster;
  cluster.add_nodes(1, {});
  cluster.spawn(cluster.node(0), 0, "waits-forever", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    std::uint8_t buf[16];
    ep.wait(ep.irecv(buf, sizeof buf, 1));  // nothing ever arrives
  });
  try {
    cluster.run();
    FAIL() << "expected deadlock report";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("waits-forever"),
              std::string::npos);
  }
}

TEST(Cluster, ProcessExceptionPropagates) {
  core::Cluster cluster;
  cluster.add_nodes(1, {});
  cluster.spawn(cluster.node(0), 0, "thrower", [](core::Process&) {
    throw std::logic_error("app bug");
  });
  EXPECT_THROW(cluster.run(), std::logic_error);
}

TEST(Cluster, ProcessesComputeConcurrentlyOnDifferentCores) {
  core::Cluster cluster;
  cluster.add_nodes(1, {});
  sim::Time end0 = 0, end1 = 0;
  cluster.spawn(cluster.node(0), 0, "a", [&](core::Process& p) {
    p.compute(100 * sim::kMicrosecond);
    end0 = p.now();
  });
  cluster.spawn(cluster.node(0), 2, "b", [&](core::Process& p) {
    p.compute(100 * sim::kMicrosecond);
    end1 = p.now();
  });
  cluster.run();
  EXPECT_EQ(end0, 100 * sim::kMicrosecond);
  EXPECT_EQ(end1, 100 * sim::kMicrosecond);  // parallel, not serialized
}

TEST(Cluster, ProcessesSerializeOnSameCore) {
  core::Cluster cluster;
  cluster.add_nodes(1, {});
  sim::Time end0 = 0, end1 = 0;
  cluster.spawn(cluster.node(0), 0, "a", [&](core::Process& p) {
    p.compute(100 * sim::kMicrosecond);
    end0 = p.now();
  });
  cluster.spawn(cluster.node(0), 0, "b", [&](core::Process& p) {
    p.compute(100 * sim::kMicrosecond);
    end1 = p.now();
  });
  cluster.run();
  // One of them must have waited for the core.
  EXPECT_EQ(std::max(end0, end1), 200 * sim::kMicrosecond);
}

TEST(Cluster, PerNodeConfigsAreIndependent) {
  core::OmxConfig a;
  a.ioat_large = true;
  core::OmxConfig b;
  b.native_mx = true;
  core::Cluster cluster;
  cluster.add_node(a);
  cluster.add_node(b);
  EXPECT_TRUE(cluster.node(0).driver().config().ioat_large);
  EXPECT_FALSE(cluster.node(0).driver().config().native_mx);
  EXPECT_TRUE(cluster.node(1).driver().config().native_mx);
}
