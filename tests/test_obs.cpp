// Tests for the obs:: telemetry subsystem: histogram bucket math,
// deterministic registry merge under SweepRunner, the utilization
// timeline vs. the Machine's own busy accounting (the Fig. 9 regression
// gate), message-lifecycle spans on a real I/OAT receive, the pinned
// Perfetto exporter format, and the telemetry-is-free-when-off contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/parallel_cluster.hpp"
#include "obs/flight.hpp"
#include "obs/monitor.hpp"
#include "obs/perfetto.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "sim/sweep.hpp"
#include "sim/trace.hpp"

using namespace openmx;

namespace {

/// Renders `fn(FILE*)` into a string via a tmpfile, so exact output can
/// be compared.
template <typename Fn>
std::string render(Fn&& fn) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  fn(f);
  const long len = (std::fseek(f, 0, SEEK_END), std::ftell(f));
  std::rewind(f);
  std::string out(static_cast<std::size_t>(len), '\0');
  EXPECT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
  std::fclose(f);
  return out;
}

// ---------------------------------------------------------------------
// Histogram bucket layout
// ---------------------------------------------------------------------

TEST(Histogram, ExactBucketsBelowLinearMax) {
  // Values below kLinearMax (8) land in their own bucket: no error at all
  // for tiny samples (packet counts, small chunk counts).
  for (std::uint64_t v = 0; v < obs::Histogram::kLinearMax; ++v) {
    EXPECT_EQ(obs::Histogram::bucket_of(v), v);
    EXPECT_EQ(obs::Histogram::bucket_lo(static_cast<std::uint32_t>(v)), v);
  }
}

TEST(Histogram, LogBucketBoundaries) {
  // Above kLinearMax each power of two splits into kSub=4 linear
  // sub-buckets.  Pin the first few boundaries explicitly.
  EXPECT_EQ(obs::Histogram::bucket_of(8), 8u);
  EXPECT_EQ(obs::Histogram::bucket_of(9), 8u);   // [8, 10) share a bucket
  EXPECT_EQ(obs::Histogram::bucket_of(10), 9u);
  EXPECT_EQ(obs::Histogram::bucket_of(15), 11u);
  EXPECT_EQ(obs::Histogram::bucket_of(16), 12u);  // next power of two
  EXPECT_EQ(obs::Histogram::bucket_of(31), 15u);
  EXPECT_EQ(obs::Histogram::bucket_of(32), 16u);

  EXPECT_EQ(obs::Histogram::bucket_lo(8), 8u);
  EXPECT_EQ(obs::Histogram::bucket_lo(12), 16u);
  EXPECT_EQ(obs::Histogram::bucket_lo(16), 32u);
}

TEST(Histogram, BucketRoundTrip) {
  // bucket_lo is the smallest value of its bucket, and every value maps
  // to a bucket whose lower bound does not exceed it — across the whole
  // range, including the u64 extremes.
  std::vector<std::uint64_t> probes = {0, 1, 7, 8, 1000, 4096, 1 << 20};
  for (int shift = 3; shift < 64; ++shift) {
    probes.push_back(std::uint64_t{1} << shift);
    probes.push_back((std::uint64_t{1} << shift) - 1);
    probes.push_back((std::uint64_t{1} << shift) + 1);
  }
  probes.push_back(std::numeric_limits<std::uint64_t>::max());
  for (std::uint64_t v : probes) {
    const std::uint32_t b = obs::Histogram::bucket_of(v);
    ASSERT_LT(b, obs::Histogram::kNumBuckets) << "v=" << v;
    EXPECT_LE(obs::Histogram::bucket_lo(b), v) << "v=" << v;
    EXPECT_EQ(obs::Histogram::bucket_of(obs::Histogram::bucket_lo(b)), b)
        << "v=" << v;
    if (v + 1 != 0) {  // next bucket starts above v's bucket's lower bound
      EXPECT_GE(obs::Histogram::bucket_of(v + 1), b) << "v=" << v;
    }
  }
}

TEST(Histogram, RelativeErrorBounded) {
  // The reported quantile is a lower bound with at most ~25% relative
  // error: bucket_lo(bucket_of(v)) > v/2 always, and > 3v/4 for v >= 8.
  for (std::uint64_t v = 8; v < (1u << 20); v = v * 5 / 4 + 1) {
    const std::uint64_t lo = obs::Histogram::bucket_lo(obs::Histogram::bucket_of(v));
    EXPECT_LE(lo, v);
    EXPECT_GT(lo * 4, v * 3) << "v=" << v;
  }
}

TEST(Histogram, StatsAndPercentiles) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Quantiles are deterministic lower bounds of the true quantile.
  EXPECT_LE(h.p50(), 50u);
  EXPECT_GE(h.p50(), 38u);  // within one log-bucket of the true median
  EXPECT_LE(h.p99(), 99u);
  EXPECT_GE(h.p99(), 74u);
  // The weight argument is equivalent to repeated adds.
  obs::Histogram w;
  w.add(7, 100);
  EXPECT_EQ(w.count(), 100u);
  EXPECT_EQ(w.p50(), 7u);
  EXPECT_EQ(w.p99(), 7u);
}

TEST(Histogram, EmptyHistogramReportsZeroes) {
  // Percentile boundaries start with the degenerate case: an empty
  // histogram must report zeroes everywhere, not garbage from the
  // untouched min sentinel.
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(Histogram, SingleSampleOwnsEveryPercentile) {
  // With one sample every quantile is that sample's bucket lower bound —
  // exact below kLinearMax, a deterministic lower bound above it.
  obs::Histogram h;
  h.add(5);
  for (double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
    EXPECT_EQ(h.percentile(p), 5u) << "p=" << p;
  obs::Histogram big;
  big.add(1000);
  const std::uint64_t lo =
      obs::Histogram::bucket_lo(obs::Histogram::bucket_of(1000));
  for (double p : {0.0, 0.5, 1.0}) EXPECT_EQ(big.percentile(p), lo);
  EXPECT_EQ(big.min(), 1000u);
  EXPECT_EQ(big.max(), 1000u);
}

TEST(Histogram, PercentileAtExactBucketEdges) {
  // Samples sitting exactly on bucket boundaries: 8 and 10 start
  // adjacent buckets (8..9 and 10..11), so the rank rounding is visible:
  // with two samples, p50 has rank 1 (the lower bucket) and p100 rank 2.
  obs::Histogram h;
  h.add(8);
  h.add(10);
  EXPECT_EQ(h.percentile(0.5), 8u);
  EXPECT_EQ(h.percentile(1.0), 10u);
  // Three edge samples: ranks 2 and 3 land on the middle and top edges.
  h.add(16);
  EXPECT_EQ(h.percentile(0.5), 10u);
  EXPECT_EQ(h.percentile(1.0), 16u);
  // Values inside a bucket report the bucket's lower edge: 9 shares
  // bucket_of(8), so a histogram of only 9s reports 8.
  obs::Histogram inner;
  inner.add(9);
  EXPECT_EQ(inner.percentile(0.5), 8u);
  EXPECT_EQ(inner.max(), 9u);
}

TEST(Histogram, MergeMatchesCombined) {
  obs::Histogram a, b, both;
  for (std::uint64_t v = 0; v < 1000; v += 3) { a.add(v); both.add(v); }
  for (std::uint64_t v = 1; v < 50000; v += 7) { b.add(v); both.add(v); }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.mean(), both.mean());
  EXPECT_EQ(a.p50(), both.p50());
  EXPECT_EQ(a.p90(), both.p90());
  EXPECT_EQ(a.p99(), both.p99());
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(Registry, HandlesAreStable) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("x");
  obs::Histogram& h = reg.histogram("h");
  // Interning many more names must not invalidate earlier references.
  for (int i = 0; i < 1000; ++i)
    (void)reg.counter("filler." + std::to_string(i));
  c.add(41);
  c.add();
  h.add(5);
  EXPECT_EQ(reg.get("x"), 42u);
  EXPECT_EQ(reg.all_histograms().at("h").count(), 1u);
  // reset() zeroes in place: handles survive.
  reg.reset();
  EXPECT_EQ(c.value, 0u);
  c.add(7);
  EXPECT_EQ(reg.get("x"), 7u);
}

TEST(Registry, MergeIsDeterministicAcrossSweepWorkerCounts) {
  // Each sweep job builds its own registry; folding the per-job results
  // in index order must give bit-identical output no matter how many
  // worker threads ran the jobs.  This is the contract bench_fig12 leans
  // on when it merges per-point metrics from a parallel panel run.
  const std::size_t n = 12;
  auto job = [](std::size_t i) {
    obs::Registry r;
    r.add("jobs.run");
    r.add("bytes", (i + 1) * 1000);
    obs::Histogram& h = r.histogram("latency_ns");
    for (std::uint64_t k = 0; k < 50; ++k)
      h.add(sim::sweep_seed(42, i) % 100000 + k * (i + 1));
    return r;
  };

  auto run_with = [&](unsigned threads) {
    sim::SweepRunner runner(sim::SweepOptions{threads});
    std::vector<obs::Registry> parts =
        runner.map<obs::Registry>(n, job);
    obs::Registry total;
    for (const obs::Registry& p : parts) total.merge(p);
    return render([&](std::FILE* f) { total.dump_json(f); });
  };

  const std::string seq = run_with(1);
  EXPECT_EQ(seq, run_with(4));
  EXPECT_EQ(seq, run_with(3));
  EXPECT_NE(seq.find("\"jobs.run\": 12"), std::string::npos);
}

TEST(Registry, MergeOrderDoesNotChangeResult) {
  // Counter adds and histogram bucket sums are commutative, so folding
  // the same parts in any order must render identical JSON — the
  // property the deterministic-merge contract is built on.
  auto part = [](unsigned seed) {
    obs::Registry r;
    r.add("events", seed * 11 + 1);
    obs::Histogram& h = r.histogram("ns");
    for (std::uint64_t k = 0; k < 40; ++k) h.add(seed * 1000 + k * 37);
    return r;
  };
  const obs::Registry a = part(1), b = part(2), c = part(3);
  auto fold = [](std::initializer_list<const obs::Registry*> parts) {
    obs::Registry total;
    for (const obs::Registry* p : parts) total.merge(*p);
    return render([&](std::FILE* f) { total.dump_json(f); });
  };
  const std::string abc = fold({&a, &b, &c});
  EXPECT_EQ(abc, fold({&c, &b, &a}));
  EXPECT_EQ(abc, fold({&b, &a, &c}));
}

// ---------------------------------------------------------------------
// Timeline
// ---------------------------------------------------------------------

TEST(Timeline, DisabledRecordsNothing) {
  obs::Timeline tl;
  tl.record(0, obs::kCatDriver, 100, 50);
  EXPECT_EQ(tl.size(), 0u);
  tl.enable();
  tl.record(0, obs::kCatDriver, 100, 50);
  tl.record(0, obs::kCatDriver, 200, 0);  // zero-length: dropped
  EXPECT_EQ(tl.size(), 1u);
}

TEST(Timeline, WindowClipping) {
  obs::Timeline tl;
  tl.enable();
  // Node 0, core 0: driver slice [100, 300); bottom half [250, 400).
  tl.record(obs::cpu_track(0, 0), obs::kCatDriver, 100, 200);
  tl.record(obs::cpu_track(0, 1), obs::kCatBottomHalf, 250, 150);
  // Node 0 DMA channel 2 busy [200, 600); node 1 traffic must not leak in.
  tl.record(obs::dma_track(0, 2), obs::kCatDma, 200, 400);
  tl.record(obs::cpu_track(1, 0), obs::kCatDriver, 0, 1000);

  EXPECT_EQ(tl.busy_in_window(0, obs::kCatDriver, 0, 1000), 200);
  EXPECT_EQ(tl.busy_in_window(0, obs::kCatDriver, 150, 250), 100);
  EXPECT_EQ(tl.busy_in_window(0, obs::kCatDriver, 300, 1000), 0);
  EXPECT_EQ(tl.busy_in_window(0, obs::kCatBottomHalf, 0, 260), 10);
  EXPECT_EQ(tl.dma_busy_in_window(0, 0, 1000), 400);
  EXPECT_EQ(tl.dma_busy_in_window(0, 500, 1000), 100);
  EXPECT_EQ(tl.dma_busy_in_window(1, 0, 1000), 0);
  EXPECT_EQ(tl.busy_total(obs::cpu_track(1, 0), obs::kCatDriver), 1000);
}

TEST(Timeline, TrackArithmetic) {
  const int t = obs::dma_track(3, 1);
  EXPECT_EQ(obs::track_node(t), 3);
  EXPECT_EQ(obs::track_local(t), obs::kDmaTrackOffset + 1);
  EXPECT_TRUE(obs::track_is_dma(t));
  EXPECT_FALSE(obs::track_is_dma(obs::cpu_track(3, 7)));
  EXPECT_EQ(obs::track_node(obs::cpu_track(2, 5)), 2);
  EXPECT_EQ(obs::track_local(obs::cpu_track(2, 5)), 5);
}

/// The Fig. 9 regression gate: the utilization timeline and the
/// Machine's own busy-time accounting are two views of the same
/// dispatch, so they must agree exactly when the timeline covers the
/// whole run.  bench_fig09 derives its CPU breakdown from the timeline;
/// this keeps that derivation honest.
TEST(Timeline, AgreesWithMachineBusyAccounting) {
  bench::Cluster cluster;
  cluster.add_nodes(2, bench::cfg_omx_ioat());
  cluster.engine().timeline().enable();
  bench::run_pingpong(cluster, 256 * sim::KiB, 4, /*warmup=*/1);

  const obs::Timeline& tl = cluster.engine().timeline();
  ASSERT_GT(tl.size(), 0u);
  for (int node = 0; node < 2; ++node) {
    const cpu::Machine& m = cluster.node(node).machine();
    for (int core = 0; core < cpu::Machine::kNumCores; ++core) {
      for (std::size_t c = 0; c < cpu::kNumCats; ++c) {
        const auto cat = static_cast<cpu::Cat>(c);
        EXPECT_EQ(tl.busy_total(obs::cpu_track(node, core),
                                static_cast<std::uint8_t>(c)),
                  m.busy(core, cat))
            << "node " << node << " core " << core << " cat "
            << cpu::cat_name(cat);
      }
    }
  }
  // And the DMA tracks saw real copy activity on the I/OAT config.
  EXPECT_GT(tl.dma_busy_in_window(1, 0,
                                  std::numeric_limits<sim::Time>::max()),
            0);
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

TEST(Span, MarkKeepsFirstAndLast) {
  obs::Span s;
  EXPECT_FALSE(s.has(obs::Phase::BottomHalf));
  s.mark(obs::Phase::BottomHalf, 500);
  s.mark(obs::Phase::BottomHalf, 200);
  s.mark(obs::Phase::BottomHalf, 900);
  EXPECT_EQ(s.first_at(obs::Phase::BottomHalf), 200);
  EXPECT_EQ(s.last_at(obs::Phase::BottomHalf), 900);
  EXPECT_EQ(s.total_ns(), 700);
  // No DMA phases marked: memcpy-path spans report zero overlap.
  EXPECT_EQ(s.overlap_ns(), 0);
}

TEST(Span, OverlapWindowIntersection) {
  obs::Span s;
  s.mark(obs::Phase::WireArrival, 100);
  s.mark(obs::Phase::WireArrival, 800);
  s.mark(obs::Phase::BottomHalf, 150);
  s.mark(obs::Phase::BottomHalf, 900);
  s.mark(obs::Phase::IoatSubmit, 300);
  s.mark(obs::Phase::DmaComplete, 1200);
  // DMA window [300, 1200) x ingress window [100, 900) = [300, 900).
  EXPECT_EQ(s.overlap_ns(), 600);
}

TEST(SpanTable, DisabledIsInert) {
  obs::SpanTable t;
  t.begin(obs::span_key(0, 1), 0, 4096);
  t.mark(obs::span_key(0, 1), obs::Phase::Notify, 10);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.find(obs::span_key(0, 1)), nullptr);
}

/// End-to-end: a real I/OAT large receive produces spans whose phases
/// appear in protocol order with genuine DMA/ingress overlap — the
/// quantity Figure 8 of the paper is about.
TEST(SpanTable, IoatPingpongProducesOrderedSpansWithOverlap) {
  bench::Cluster cluster;
  cluster.add_nodes(2, bench::cfg_omx_ioat());
  cluster.engine().spans().enable();
  bench::run_pingpong(cluster, 256 * sim::KiB, 2, /*warmup=*/0);

  const obs::SpanTable& spans = cluster.engine().spans();
  ASSERT_EQ(spans.size(), 4u);  // 2 iters x 2 directions, no warmup
  for (const auto& [key, s] : spans.all()) {
    EXPECT_EQ(s.bytes, 256 * sim::KiB);
    ASSERT_TRUE(s.has(obs::Phase::WireArrival));
    ASSERT_TRUE(s.has(obs::Phase::BottomHalf));
    ASSERT_TRUE(s.has(obs::Phase::IoatSubmit));
    ASSERT_TRUE(s.has(obs::Phase::DmaComplete));
    ASSERT_TRUE(s.has(obs::Phase::Notify));
    // Protocol order of the first stamps.
    EXPECT_LE(s.first_at(obs::Phase::WireArrival),
              s.first_at(obs::Phase::BottomHalf));
    EXPECT_LE(s.first_at(obs::Phase::BottomHalf),
              s.first_at(obs::Phase::IoatSubmit));
    EXPECT_LT(s.first_at(obs::Phase::IoatSubmit),
              s.last_at(obs::Phase::DmaComplete));
    EXPECT_LE(s.last_at(obs::Phase::DmaComplete),
              s.last_at(obs::Phase::Notify));
    // A 256 KiB receive streams many fragments: the DMA engine must have
    // worked while later fragments were still arriving.
    EXPECT_GT(s.overlap_ns(), 0);
    EXPECT_LE(s.overlap_ns(), s.total_ns());
  }
}

TEST(Span, SingleFragmentMessageDegenerateWindows) {
  // A message carried by a single fragment stamps every phase exactly
  // once, so first == last for each phase and the overlap window
  // degenerates to the DMA window clipped by the single-arrival ingress
  // "window".
  obs::Span s;
  s.mark(obs::Phase::WireArrival, 100);
  s.mark(obs::Phase::BottomHalf, 150);
  s.mark(obs::Phase::IoatSubmit, 160);
  s.mark(obs::Phase::DmaComplete, 400);
  s.mark(obs::Phase::Notify, 420);
  for (auto p : {obs::Phase::WireArrival, obs::Phase::BottomHalf,
                 obs::Phase::IoatSubmit, obs::Phase::DmaComplete})
    EXPECT_EQ(s.first_at(p), s.last_at(p));
  // DMA window [160, 400) x ingress window [100, 150): empty — a single
  // fragment cannot overlap DMA with further arrivals.
  EXPECT_EQ(s.overlap_ns(), 0);
  EXPECT_EQ(s.total_ns(), 320);
}

TEST(Span, BelowDmaThresholdHasNoIoatSubmitStamp) {
  // A pull under ioat_min_msg (64 KiB) on the I/OAT config takes the
  // memcpy path: real spans must carry no ioat-submit/dma-complete
  // stamps, report zero overlap, and still total correctly.
  bench::Cluster cluster;
  cluster.add_nodes(2, bench::cfg_omx_ioat());
  cluster.engine().spans().enable();
  bench::run_pingpong(cluster, 48 * sim::KiB, 2, /*warmup=*/0);

  const obs::SpanTable& spans = cluster.engine().spans();
  ASSERT_GT(spans.size(), 0u);
  for (const auto& [key, s] : spans.all()) {
    EXPECT_EQ(s.bytes, 48 * sim::KiB);
    EXPECT_TRUE(s.has(obs::Phase::WireArrival));
    EXPECT_TRUE(s.has(obs::Phase::CopyOut));
    EXPECT_FALSE(s.has(obs::Phase::IoatSubmit));
    EXPECT_FALSE(s.has(obs::Phase::DmaComplete));
    EXPECT_EQ(s.overlap_ns(), 0);
    EXPECT_GT(s.total_ns(), 0);
  }
}

TEST(Span, RepeatedStampsAcrossPhasesKeepFirstLast) {
  // Stamps arrive out of order (retransmits, per-fragment marks): each
  // phase keeps its own min/max and total_ns spans the global extremes.
  obs::Span s;
  s.mark(obs::Phase::WireArrival, 50);
  s.mark(obs::Phase::WireArrival, 10);
  s.mark(obs::Phase::WireArrival, 30);
  s.mark(obs::Phase::Notify, 900);
  s.mark(obs::Phase::Notify, 700);
  EXPECT_EQ(s.first_at(obs::Phase::WireArrival), 10);
  EXPECT_EQ(s.last_at(obs::Phase::WireArrival), 50);
  EXPECT_EQ(s.first_at(obs::Phase::Notify), 700);
  EXPECT_EQ(s.last_at(obs::Phase::Notify), 900);
  EXPECT_EQ(s.total_ns(), 890);
}

// ---------------------------------------------------------------------
// Perfetto exporter — format pin
// ---------------------------------------------------------------------

/// Golden test for the Chrome trace-event output.  If this fails because
/// the format intentionally changed, re-generate the golden string and
/// update tests/golden_trace.json.inc to match (and check the new output
/// still loads at ui.perfetto.dev).
TEST(Perfetto, GoldenFormat) {
  obs::Timeline tl;
  tl.enable();
  tl.record(obs::cpu_track(0, 1), obs::kCatBottomHalf, 1000, 500);
  tl.record(obs::dma_track(0, 0), obs::kCatDma, 1500, 2500);

  obs::SpanTable spans;
  spans.enable();
  const std::uint64_t key = obs::span_key(0, 1);
  spans.begin(key, 0, 4096);
  spans.mark(key, obs::Phase::WireArrival, 1000);
  spans.mark(key, obs::Phase::BottomHalf, 1200);
  spans.mark(key, obs::Phase::BottomHalf, 1500);
  spans.mark(key, obs::Phase::IoatSubmit, 1500);
  spans.mark(key, obs::Phase::DmaComplete, 4000);
  spans.mark(key, obs::Phase::Notify, 4200);

  const std::string got = render([&](std::FILE* f) {
    obs::write_chrome_trace(f, tl, spans, /*num_nodes=*/1);
  });
  const std::string want =
#include "golden_trace.json.inc"
      ;
  EXPECT_EQ(got, want);
}

TEST(Perfetto, WriteFileRoundTrip) {
  obs::Timeline tl;
  tl.enable();
  tl.record(obs::cpu_track(0, 0), obs::kCatDriver, 0, 100);
  obs::SpanTable spans;
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(obs::write_chrome_trace_file(path, tl, spans, 1));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_FALSE(obs::write_chrome_trace_file("/nonexistent-dir/x.json", tl,
                                            spans, 1));
}

// ---------------------------------------------------------------------
// Telemetry must not perturb the simulation
// ---------------------------------------------------------------------

TEST(Telemetry, EnablingEverythingDoesNotChangeSimTime) {
  auto run = [](bool on) {
    bench::Cluster cluster;
    cluster.add_nodes(2, bench::cfg_omx_ioat());
    if (on) {
      cluster.engine().trace().enable();
      cluster.engine().spans().enable();
      cluster.engine().timeline().enable();
      cluster.engine().attrib().enable();
    }
    return bench::run_pingpong(cluster, sim::MiB, 2, /*warmup=*/1);
  };
  const sim::Time off = run(false);
  const sim::Time on = run(true);
  EXPECT_EQ(off, on);
  EXPECT_GT(off, 0);
}

// ---------------------------------------------------------------------
// Counter merge provenance across partitions
// ---------------------------------------------------------------------

// ParallelCluster::collect_metrics folds per-node and per-shard
// registries in a fixed global order (node index, then LP index), and
// events_scheduled() accumulates per-LP counts in LP-id order — so the
// merged registry dump and the event total must be byte-identical no
// matter how many workers executed the partitions.
TEST(Registry, ParallelClusterMergeIsWorkerCountInvariant) {
  auto run = [](unsigned workers) {
    core::ParallelCluster cluster(4);
    cluster.add_nodes(4, bench::cfg_omx());
    std::vector<mem::Buffer> sb, rb;
    for (int i = 0; i < 4; ++i) {
      sb.emplace_back(8 * sim::KiB, static_cast<std::uint8_t>(i + 1));
      rb.emplace_back(8 * sim::KiB, 0);
    }
    for (int i = 0; i < 4; ++i) {
      const int next = (i + 1) % 4;
      cluster.spawn(cluster.node(static_cast<std::size_t>(i)), 0,
                    "n" + std::to_string(i), [&, i, next](core::Process& p) {
                      core::Endpoint ep(p, i);
                      auto* r = ep.irecv(rb[static_cast<std::size_t>(i)].data(),
                                         8 * sim::KiB, 5);
                      ep.wait(ep.isend(
                          sb[static_cast<std::size_t>(i)].data(), 8 * sim::KiB,
                          core::Addr{next, static_cast<std::uint16_t>(next)},
                          5));
                      ep.wait(r);
                    });
    }
    cluster.run(workers);
    obs::Registry reg;
    cluster.collect_metrics(reg);
    return std::make_pair(
        render([&](std::FILE* f) { reg.dump_json(f); }),
        cluster.events_scheduled());
  };
  const auto ref = run(1);
  EXPECT_GT(ref.second, 0u);
  EXPECT_NE(ref.first.find("nic.rx_frames"), std::string::npos);
  EXPECT_EQ(run(4), ref);
  EXPECT_EQ(run(2), ref);
}

// ---------------------------------------------------------------------
// Gauge merge semantics across LP shards
// ---------------------------------------------------------------------

// Gauges are instantaneous (ring occupancy, inbox depth): folding two
// shards must take the componentwise peak, never the sum — two LPs each
// holding 5 slots is a peak of 5, not a phantom 10.
TEST(Registry, GaugeMergeTakesPeakNotSum) {
  obs::Registry a, b;
  a.gauge("lp.max_inbox_depth").set(5);
  b.gauge("lp.max_inbox_depth").set(3);
  a.counter("lp.windows").add(7);
  b.counter("lp.windows").add(11);

  obs::Registry merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.gauge("lp.max_inbox_depth").value, 5);
  EXPECT_EQ(merged.get("lp.windows"), 18u);  // counters still add

  // Peak semantics make the fold order irrelevant for gauges too.
  obs::Registry flipped;
  flipped.merge(b);
  flipped.merge(a);
  EXPECT_EQ(render([&](std::FILE* f) { merged.dump_json(f); }),
            render([&](std::FILE* f) { flipped.dump_json(f); }));
}

// Per-LP shard registries merge deterministically when folded in LP-id
// order: the merged dump is byte-identical no matter how shard contents
// were produced, because every lp.<id>.* name is disjoint and gauges
// take maxima.
TEST(Registry, LpShardMergeInLpOrderIsByteStable) {
  auto shard = [](int id, std::uint64_t events, std::int64_t depth) {
    obs::Registry r;
    r.counter("lp." + std::to_string(id) + ".events").add(events);
    r.gauge("lp.max_inbox_depth").set(depth);
    return r;
  };
  auto fold = [&] {
    obs::Registry out;
    for (int id = 0; id < 4; ++id) {
      const obs::Registry s = shard(id, 100u * (id + 1), 2 * id);
      out.merge(s);
    }
    return render([&](std::FILE* f) { out.dump_json(f); });
  };
  const std::string once = fold();
  EXPECT_EQ(fold(), once);
  EXPECT_NE(once.find("lp.3.events"), std::string::npos);
  EXPECT_NE(once.find("lp.max_inbox_depth"), std::string::npos);
}

// ---------------------------------------------------------------------
// Flight recorder: always-on postmortem ring
// ---------------------------------------------------------------------

TEST(FlightRecorder, RingKeepsChronologicalTail) {
  obs::FlightRecorder fr(1, 256);
  ASSERT_EQ(fr.per_shard_capacity(), 256u);
  for (std::uint64_t i = 0; i < 300; ++i) {
    obs::TraceEvent e;
    e.when = static_cast<sim::Time>(i);
    e.a0 = i;
    fr.record(0, e);
  }
  EXPECT_EQ(fr.recorded(0), 300u);
  const auto tail = fr.tail(0);
  ASSERT_EQ(tail.size(), 256u);  // oldest 44 overwritten
  EXPECT_EQ(tail.front().a0, 44u);
  EXPECT_EQ(tail.back().a0, 299u);
  for (std::size_t i = 1; i < tail.size(); ++i)
    EXPECT_EQ(tail[i].a0, tail[i - 1].a0 + 1);
}

// The whole point of the recorder: it captures the typed event stream
// even while the sim::Trace itself is disabled, and the trace buffer
// stays empty (recording adds no opt-in telemetry).
TEST(FlightRecorder, CapturesEventsWhileTraceDisabled) {
  sim::Trace trace;
  obs::FlightRecorder fr(1, 64);
  trace.attach_flight(&fr, 0);
  ASSERT_FALSE(trace.enabled());

  const obs::EventId id = trace.intern_event("wire.tx");
  trace.event(1000, 0, id, /*a0=*/7, /*a1=*/4096);
  trace.record(2000, 1, "pull.start", "handle=7");

  EXPECT_EQ(trace.size(), 0u);  // disabled trace stored nothing
  EXPECT_EQ(fr.recorded(0), 2u);
  const auto tail = fr.tail(0);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].when, 1000);
  EXPECT_EQ(tail[0].a0, 7u);
  EXPECT_EQ(tail[1].when, 2000);

  trace.attach_flight(nullptr);  // detach: back to one-branch disabled path
  trace.event(3000, 0, id);
  EXPECT_EQ(fr.recorded(0), 2u);
}

// The dump format is a contract with omx_postmortem: header first, then
// one sscanf-parseable instant event per line.
TEST(FlightRecorder, DumpFormatRoundTrips) {
  sim::Trace trace;
  obs::FlightRecorder fr(1, 64);
  trace.attach_flight(&fr, 0);
  const obs::EventId id = trace.intern_event("pull.start");
  trace.event(1500, 2, id, 9, 65536);

  const std::string dump = render(
      [&](std::FILE* f) { fr.dump_json(f, "pull retries exhausted handle=9",
                                       /*seed=*/1234); });

  char reason[128];
  unsigned long long seed = 0;
  ASSERT_EQ(std::sscanf(dump.c_str(),
                        "{\"postmortem\":{\"reason\":\"%127[^\"]\","
                        "\"seed\":%llu",
                        reason, &seed),
            2);
  EXPECT_STREQ(reason, "pull retries exhausted handle=9");
  EXPECT_EQ(seed, 1234u);

  const std::size_t pos = dump.find("{\"name\":\"pull.start\"");
  ASSERT_NE(pos, std::string::npos);
  char name[64], cat[32];
  unsigned pid = 0;
  int tid = 0, node = -1;
  double ts = 0;
  unsigned long long a0 = 0, a1 = 0;
  ASSERT_EQ(std::sscanf(dump.c_str() + pos,
                        "{\"name\":\"%63[^\"]\",\"cat\":\"%31[^\"]\","
                        "\"ph\":\"i\",\"s\":\"t\",\"pid\":%u,\"tid\":%d,"
                        "\"ts\":%lf,\"args\":{\"node\":%d,\"a0\":%llu,"
                        "\"a1\":%llu",
                        name, cat, &pid, &tid, &ts, &node, &a0, &a1),
            8);
  EXPECT_EQ(node, 2);
  EXPECT_EQ(a0, 9u);
  EXPECT_EQ(a1, 65536u);
  EXPECT_DOUBLE_EQ(ts, 1.5);  // microseconds
  EXPECT_NE(dump.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Live run monitor
// ---------------------------------------------------------------------

TEST(Monitor, SamplesAtAlignedSimCadence) {
  obs::Registry reg;
  reg.counter("c").add(1);
  obs::Monitor mon(reg, 100 * sim::kMicrosecond);
  mon.watch("c");
  mon.set_log(nullptr);

  // Dense polling: samples land only on period boundaries (aligned to
  // multiples, not to the first poll time).
  for (sim::Time t = 0; t <= 450 * sim::kMicrosecond;
       t += 10 * sim::kMicrosecond)
    mon.poll(t);
  // Due at t=0 (first poll), then 100, 200, 300, 400 us.
  EXPECT_EQ(mon.samples_taken(), 5u);
  ASSERT_EQ(mon.snapshot_count(), 5u);
  EXPECT_EQ(mon.snapshot(0).when, 0);
  EXPECT_EQ(mon.snapshot(1).when, 100 * sim::kMicrosecond);
  EXPECT_EQ(mon.snapshot(4).when, 400 * sim::kMicrosecond);
  ASSERT_EQ(mon.snapshot(0).values.size(), 1u);
  EXPECT_DOUBLE_EQ(mon.snapshot(0).values[0], 1.0);

  // Sparse polling never samples more than once per poll.
  obs::Monitor sparse(reg, 100 * sim::kMicrosecond);
  sparse.set_log(nullptr);
  sparse.poll(0);
  sparse.poll(1000 * sim::kMicrosecond);  // 9 periods skipped: 1 sample
  EXPECT_EQ(sparse.samples_taken(), 2u);
}

TEST(Monitor, SloBreachesOnceAndRemembersFirst) {
  obs::Registry reg;
  auto& c = reg.counter("hot");
  obs::Monitor mon(reg, 10 * sim::kMicrosecond);
  mon.set_log(nullptr);  // keep test output clean; logging is one fprintf
  mon.add_slo("hot.bound", 5.0, [](const obs::Registry& r) {
    return static_cast<double>(r.get("hot"));
  });

  mon.poll(0);  // value 0: healthy
  EXPECT_EQ(mon.breaches(), 0u);
  c.add(7);
  mon.poll(10 * sim::kMicrosecond);  // 7 > 5: first breach
  c.add(100);
  mon.poll(20 * sim::kMicrosecond);  // still sick: must not re-arm
  ASSERT_EQ(mon.breaches(), 1u);
  const auto& slo = mon.slos()[0];
  EXPECT_TRUE(slo.breached);
  EXPECT_EQ(slo.breach_when, 10 * sim::kMicrosecond);
  EXPECT_DOUBLE_EQ(slo.breach_value, 7.0);  // the first breach, not 107

  const std::string json = render([&](std::FILE* f) { mon.dump_json(f); });
  EXPECT_NE(json.find("\"name\":\"hot.bound\""), std::string::npos);
  EXPECT_NE(json.find("\"breached\":true"), std::string::npos);
}

TEST(Monitor, SnapshotRingOverwritesOldest) {
  obs::Registry reg;
  obs::Monitor mon(reg, 1, /*max_snapshots=*/4);
  mon.set_log(nullptr);
  for (sim::Time t = 1; t <= 10; ++t) mon.poll(t);
  EXPECT_EQ(mon.samples_taken(), 10u);
  ASSERT_EQ(mon.snapshot_count(), 4u);
  EXPECT_EQ(mon.snapshot(0).when, 7);
  EXPECT_EQ(mon.snapshot(3).when, 10);
}

// ---------------------------------------------------------------------
// Per-LP Perfetto export
// ---------------------------------------------------------------------

// Pinned output format for the per-LP scheduler tracks, like
// Perfetto.GoldenFormat pins the node/core exporter: busy slice with
// event/inbox args, stall slice covering [busy_end, window_end-1), and
// a critical-LP instant with the window's slack.
TEST(Perfetto, LpTraceGoldenFormat) {
  obs::LpWindowLog log;
  log.reset(/*num_lps=*/2, /*capacity=*/8);

  // Window [1000, 3001): LP0 busy to 2000 then stalled, LP1 idle all
  // window; LP0 is critical with 500 ns slack.
  obs::LpWindow& w = log.append(1000, 3001, /*critical_lp=*/0,
                                /*slack_ns=*/500);
  w.per_lp[0] = obs::LpWindowStat{/*events=*/3, /*inbox=*/2,
                                  /*busy_until=*/2000};
  w.per_lp[1] = obs::LpWindowStat{/*events=*/0, /*inbox=*/0,
                                  /*busy_until=*/0};

  const std::string got =
      render([&](std::FILE* f) { obs::write_lp_trace(f, log); });
  const std::string want =
      "{\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1000,\"name\":\"process_name\","
      "\"args\":{\"name\":\"lp0\"}},\n"
      "{\"ph\":\"M\",\"pid\":1001,\"name\":\"process_name\","
      "\"args\":{\"name\":\"lp1\"}},\n"
      "{\"name\":\"busy\",\"cat\":\"lp\",\"ph\":\"X\",\"pid\":1000,"
      "\"tid\":0,\"ts\":1.000,\"dur\":1.000,"
      "\"args\":{\"events\":3,\"inbox\":2}},\n"
      "{\"name\":\"stall\",\"cat\":\"lp\",\"ph\":\"X\",\"pid\":1000,"
      "\"tid\":0,\"ts\":2.000,\"dur\":1.000},\n"
      "{\"name\":\"critical\",\"cat\":\"lp\",\"ph\":\"i\",\"s\":\"t\","
      "\"pid\":1000,\"tid\":0,\"ts\":1.000,\"args\":{\"slack_us\":0.500}},\n"
      "{\"name\":\"stall\",\"cat\":\"lp\",\"ph\":\"X\",\"pid\":1001,"
      "\"tid\":0,\"ts\":1.000,\"dur\":2.000}\n"
      "],\"displayTimeUnit\":\"ns\"}\n";
  EXPECT_EQ(got, want);
}

TEST(Perfetto, LpWindowLogRingOverwritesOldest) {
  obs::LpWindowLog log;
  log.reset(1, /*capacity=*/2);
  for (sim::Time t = 0; t < 5; ++t)
    log.append(t * 100, t * 100 + 100, 0, 0);
  EXPECT_EQ(log.total(), 5u);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.window(0).start, 300);  // chronological: oldest retained
  EXPECT_EQ(log.window(1).start, 400);
}

}  // namespace
