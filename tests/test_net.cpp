// Unit tests for the Ethernet substrate: line-rate serialization, rx-ring
// skbuff accounting, loss injection and MTU enforcement.
#include <gtest/gtest.h>

#include <vector>

#include "cpu/machine.hpp"
#include "mem/memcpy_model.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace sim = openmx::sim;
namespace net = openmx::net;
namespace cpu = openmx::cpu;

namespace {

struct TestPayload : net::Payload {
  int value = 0;
  explicit TestPayload(int v) : value(v) {}
};

struct Fixture {
  sim::Engine engine;
  cpu::Machine m0{engine}, m1{engine};
  openmx::mem::MemBus b0, b1;
  net::Network network{engine};
  net::Nic nic0{engine, m0, b0, 0, 1};
  net::Nic nic1{engine, m1, b1, 1, 1};

  explicit Fixture(net::NetParams p = {}) : network(engine, p) {
    network.attach(nic0);
    network.attach(nic1);
  }

  void send(int from, int to, std::size_t bytes, int tag = 0) {
    net::Frame f;
    f.src_node = from;
    f.dst_node = to;
    f.wire_bytes = bytes;
    f.payload = std::make_shared<TestPayload>(tag);
    network.transmit(std::move(f));
  }
};

}  // namespace

TEST(Network, DeliversFrameWithPayload) {
  Fixture fx;
  int got = -1;
  fx.nic1.set_rx_callback([&](net::Skbuff skb) {
    got = skb.as<TestPayload>().value;
    EXPECT_EQ(skb.src_node(), 0);
  });
  fx.send(0, 1, 1000, 77);
  fx.engine.run();
  EXPECT_EQ(got, 77);
}

TEST(Network, SerializationMatchesLineRate) {
  // 9953 Mbit/s data rate: a 1244125-byte payload (plus overhead) is one
  // millisecond of wire time.
  Fixture fx;
  const sim::Time t = fx.network.serialization_time(1244125 - 38);
  EXPECT_NEAR(static_cast<double>(t), 1e6, 1e3);
}

TEST(Network, BackToBackFramesArePacedByTheWire) {
  Fixture fx;
  std::vector<sim::Time> arrivals;
  fx.nic1.set_rx_callback([&](net::Skbuff) { arrivals.push_back(fx.engine.now()); });
  for (int i = 0; i < 4; ++i) fx.send(0, 1, 4096);
  fx.engine.run();
  ASSERT_EQ(arrivals.size(), 4u);
  const sim::Time ser = fx.network.serialization_time(4096);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    // The interrupt cost is constant, so arrival spacing equals wire pacing.
    EXPECT_NEAR(static_cast<double>(arrivals[i] - arrivals[i - 1]),
                static_cast<double>(ser), 2.0);
  }
}

TEST(Network, LatencyAppliesToFirstFrame) {
  Fixture fx;
  sim::Time arrival = -1;
  fx.nic1.set_rx_callback([&](net::Skbuff) { arrival = fx.engine.now(); });
  fx.send(0, 1, 100);
  fx.engine.run();
  const auto& p = fx.network.params();
  EXPECT_EQ(arrival, fx.network.serialization_time(100) + p.latency_ns +
                         p.intr_ns);
}

TEST(Network, FullDuplexDirectionsDoNotSerialize) {
  Fixture fx;
  sim::Time a01 = -1, a10 = -1;
  fx.nic1.set_rx_callback([&](net::Skbuff) { a01 = fx.engine.now(); });
  fx.nic0.set_rx_callback([&](net::Skbuff) { a10 = fx.engine.now(); });
  fx.send(0, 1, 8000);
  fx.send(1, 0, 8000);
  fx.engine.run();
  EXPECT_EQ(a01, a10);  // opposite directions use independent wires
}

TEST(Network, RxRingFillsAndDrops) {
  net::NetParams p;
  p.rx_ring_slots = 2;
  Fixture fx(p);
  std::vector<net::Skbuff> held;
  fx.nic1.set_rx_callback([&](net::Skbuff skb) { held.push_back(std::move(skb)); });
  for (int i = 0; i < 5; ++i) fx.send(0, 1, 512);
  fx.engine.run();
  EXPECT_EQ(held.size(), 2u);
  EXPECT_EQ(fx.nic1.counters().get("nic.rx_ring_drops"), 3u);
  EXPECT_EQ(fx.nic1.rx_ring_in_use(), 2u);
  held.clear();  // releasing skbuffs returns the slots
  EXPECT_EQ(fx.nic1.rx_ring_in_use(), 0u);
}

TEST(Network, SkbuffExplicitReleaseReturnsSlot) {
  Fixture fx;
  net::Skbuff kept;
  fx.nic1.set_rx_callback([&](net::Skbuff skb) { kept = std::move(skb); });
  fx.send(0, 1, 256);
  fx.engine.run();
  EXPECT_EQ(fx.nic1.rx_ring_in_use(), 1u);
  kept.release();
  EXPECT_EQ(fx.nic1.rx_ring_in_use(), 0u);
  EXPECT_FALSE(kept.valid());
}

TEST(Network, LossInjectionDropsDeterministically) {
  net::NetParams p;
  p.loss_prob = 0.5;
  p.loss_seed = 7;
  Fixture fx(p);
  int received = 0;
  fx.nic1.set_rx_callback([&](net::Skbuff) { ++received; });
  for (int i = 0; i < 200; ++i) fx.send(0, 1, 64);
  fx.engine.run();
  EXPECT_GT(received, 50);
  EXPECT_LT(received, 150);
  EXPECT_EQ(fx.network.counters().get("net.dropped_frames"),
            200u - static_cast<unsigned>(received));
}

TEST(Network, OversizedFrameThrows) {
  Fixture fx;
  EXPECT_THROW(fx.send(0, 1, 10000), std::logic_error);
}

TEST(Network, UnattachedNodeThrows) {
  Fixture fx;
  EXPECT_THROW(fx.send(0, 5, 100), std::logic_error);
}

TEST(Network, NicDmaWindowIsNotedOnBus) {
  Fixture fx;
  fx.nic1.set_rx_callback([&](net::Skbuff) {});
  fx.send(0, 1, 4096);
  fx.engine.run();
  // Bus saw the NIC stream recently (window extends past delivery).
  EXPECT_TRUE(fx.b1.nic_dma_active(fx.engine.now()));
}

TEST(Network, InterruptCostChargedToBhCore) {
  Fixture fx;
  fx.nic1.set_rx_callback([&](net::Skbuff) {});
  fx.send(0, 1, 1000);
  fx.engine.run();
  EXPECT_EQ(fx.m1.busy(1, cpu::Cat::BottomHalf),
            fx.network.params().intr_ns);
}

// ---- rx-claim arbitration edge cases ----------------------------------
// The claim heap orders same-nanosecond contenders by the
// location-independent key (claim_time, src_node, src_seq); these tests
// pin the tie-breaking behavior that the multi-LP partitioning relies on.

namespace {

/// Three nodes on one fabric: two senders contending for node 1's rx port.
struct Fixture3 {
  sim::Engine engine;
  cpu::Machine m0{engine}, m1{engine}, m2{engine};
  openmx::mem::MemBus b0, b1, b2;
  net::Network network{engine};
  net::Nic nic0{engine, m0, b0, 0, 1};
  net::Nic nic1{engine, m1, b1, 1, 1};
  net::Nic nic2{engine, m2, b2, 2, 1};

  Fixture3() {
    network.attach(nic0);
    network.attach(nic1);
    network.attach(nic2);
  }

  void send(int from, int to, std::size_t bytes, int tag = 0) {
    net::Frame f;
    f.src_node = from;
    f.dst_node = to;
    f.wire_bytes = bytes;
    f.payload = std::make_shared<TestPayload>(tag);
    network.transmit(std::move(f));
  }
};

/// Duplicates the first `count` matching frames, `copies` extra each —
/// a minimal injector for exercising the claim heap without the fault
/// library.
struct DupFirst : net::FaultInjector {
  int remaining;
  int copies;
  DupFirst(int count, int c) : remaining(count), copies(c) {}
  net::FaultDecision on_transmit(const net::Frame&) override {
    net::FaultDecision d;
    if (remaining > 0) {
      --remaining;
      d.duplicates = copies;
    }
    return d;
  }
};

}  // namespace

TEST(RxClaim, SameNanosecondClaimsServeInSrcNodeOrder) {
  // Both senders transmit the same size at the same engine instant, so
  // their claims carry identical claim_times.  The heap must serve src 0
  // before src 2 even though src 2's transmit ran first — arbitration
  // follows the key, not call order (and therefore not LP placement).
  Fixture3 fx;
  std::vector<int> arrival_src;
  std::vector<sim::Time> arrival_at;
  fx.nic1.set_rx_callback([&](net::Skbuff skb) {
    arrival_src.push_back(skb.src_node());
    arrival_at.push_back(fx.engine.now());
  });
  fx.send(2, 1, 4096);
  fx.send(0, 1, 4096);
  fx.engine.run();
  ASSERT_EQ(arrival_src.size(), 2u);
  EXPECT_EQ(arrival_src, (std::vector<int>{0, 2}));
  // The loser serializes right behind the winner on the shared rx port.
  const sim::Time ser = fx.network.serialization_time(4096);
  EXPECT_EQ(arrival_at[1] - arrival_at[0], ser);
}

TEST(RxClaim, DuplicateFaultFramesQueueBehindTheOriginal) {
  // A duplicated frame shares the original's claim_time but takes fresh
  // src_seq values, so every copy lines up behind the original in heap
  // order and serializes back-to-back on the rx port — duplicates are
  // real extra frames, not free deliveries.
  Fixture fx;
  DupFirst dup(/*count=*/1, /*copies=*/2);
  fx.network.set_fault_injector(&dup);
  std::vector<sim::Time> arrivals;
  fx.nic1.set_rx_callback([&](net::Skbuff skb) {
    arrivals.push_back(fx.engine.now());
    EXPECT_EQ(skb.as<TestPayload>().value, 9);
  });
  fx.send(0, 1, 2048, 9);
  fx.engine.run();
  ASSERT_EQ(arrivals.size(), 3u);
  const sim::Time ser = fx.network.serialization_time(2048);
  EXPECT_EQ(arrivals[1] - arrivals[0], ser);
  EXPECT_EQ(arrivals[2] - arrivals[1], ser);
  EXPECT_EQ(fx.network.counters().get("net.fault_dup_frames"), 2u);
}

TEST(RxClaim, DuplicatesInterleaveWithAContendingSenderByKey) {
  // Duplicate copies of src 0's frame and a same-instant frame from
  // src 2 all carry the same claim_time; the total key order is then
  // (src_node, src_seq): original 0, dup 0, dup 0, then src 2.
  Fixture3 fx;
  DupFirst dup(1, 2);
  fx.network.set_fault_injector(&dup);
  std::vector<int> arrival_src;
  fx.nic1.set_rx_callback([&](net::Skbuff skb) {
    arrival_src.push_back(skb.src_node());
  });
  fx.send(2, 1, 4096);  // injector sees this first: it gets duplicated
  fx.send(0, 1, 4096);
  fx.engine.run();
  EXPECT_EQ(arrival_src, (std::vector<int>{0, 2, 2, 2}));
}
