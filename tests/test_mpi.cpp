// Functional tests of the mini-MPI layer: point-to-point semantics and
// the correctness of every collective used by the IMB suite, on 2 and 4
// ranks, over the network and mixed network/shared-memory placements.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/world.hpp"

namespace sim = openmx::sim;
namespace core = openmx::core;
namespace mpi = openmx::mpi;

namespace {

/// Runs `body` as an SPMD program on `nnodes` x `ppn` ranks.
void spmd(int nnodes, int ppn, core::OmxConfig cfg,
          std::function<void(mpi::Comm&)> body) {
  core::Cluster cluster;
  cluster.add_nodes(nnodes, cfg);
  mpi::World world(cluster, mpi::placements(nnodes, ppn));
  world.run(std::move(body));
}

struct RankConfig {
  int nnodes;
  int ppn;
  bool ioat;
};

class MpiCollectives : public ::testing::TestWithParam<RankConfig> {
 protected:
  core::OmxConfig config() const {
    core::OmxConfig c;
    c.ioat_large = GetParam().ioat;
    c.ioat_shm = GetParam().ioat;
    return c;
  }
  int nnodes() const { return GetParam().nnodes; }
  int ppn() const { return GetParam().ppn; }
  int nranks() const { return nnodes() * ppn(); }
};

}  // namespace

TEST(MpiP2p, SendRecvRoundtrip) {
  std::vector<int> got(4, -1);
  spmd(2, 1, {}, [&](mpi::Comm& c) {
    if (c.rank() == 0) {
      const int v = 42;
      c.send(&v, sizeof v, 1, 9);
      int back = 0;
      c.recv(&back, sizeof back, 1, 10);
      got[0] = back;
    } else {
      int v = 0;
      c.recv(&v, sizeof v, 0, 9);
      const int reply = v * 2;
      c.send(&reply, sizeof reply, 0, 10);
      got[1] = v;
    }
  });
  EXPECT_EQ(got[0], 84);
  EXPECT_EQ(got[1], 42);
}

TEST(MpiP2p, TagsDisambiguate) {
  std::vector<int> order;
  spmd(2, 1, {}, [&](mpi::Comm& c) {
    if (c.rank() == 0) {
      const int a = 1, b = 2;
      c.send(&a, sizeof a, 1, 100);
      c.send(&b, sizeof b, 1, 200);
    } else {
      int x = 0;
      c.recv(&x, sizeof x, 0, 200);  // receive the *second* tag first
      order.push_back(x);
      c.recv(&x, sizeof x, 0, 100);
      order.push_back(x);
    }
  });
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(MpiP2p, NonblockingOverlap) {
  bool ok = false;
  spmd(2, 1, {}, [&](mpi::Comm& c) {
    std::vector<std::uint8_t> buf(64 * 1024, static_cast<std::uint8_t>(7));
    if (c.rank() == 0) {
      core::Request* s = c.isend(buf.data(), buf.size(), 1, 1);
      c.process().compute(10 * sim::kMicrosecond);
      c.wait(s);
    } else {
      std::vector<std::uint8_t> r(buf.size());
      core::Request* q = c.irecv(r.data(), r.size(), 0, 1);
      c.wait(q);
      ok = r == buf;
    }
  });
  EXPECT_TRUE(ok);
}

TEST_P(MpiCollectives, BarrierSynchronizes) {
  std::vector<sim::Time> after(static_cast<std::size_t>(nranks()));
  spmd(nnodes(), ppn(), config(), [&](mpi::Comm& c) {
    // Stagger the ranks, then barrier: everyone leaves no earlier than
    // the slowest entrant.
    c.process().compute(c.rank() * 10 * sim::kMicrosecond);
    c.barrier();
    after[static_cast<std::size_t>(c.rank())] = c.now();
  });
  const sim::Time slowest = (nranks() - 1) * 10 * sim::kMicrosecond;
  for (auto t : after) EXPECT_GE(t, slowest);
}

TEST_P(MpiCollectives, BcastDeliversFromEveryRoot) {
  const int p = nranks();
  for (int root = 0; root < p; ++root) {
    std::vector<std::vector<std::uint8_t>> out(
        static_cast<std::size_t>(p));
    spmd(nnodes(), ppn(), config(), [&](mpi::Comm& c) {
      std::vector<std::uint8_t> buf(40000, 0);
      if (c.rank() == root)
        for (std::size_t i = 0; i < buf.size(); ++i)
          buf[i] = static_cast<std::uint8_t>(i * 13 + root);
      c.bcast(buf.data(), buf.size(), root);
      out[static_cast<std::size_t>(c.rank())] = buf;
    });
    for (int r = 0; r < p; ++r)
      for (std::size_t i = 0; i < out[static_cast<std::size_t>(r)].size();
           i += 997)
        EXPECT_EQ(out[static_cast<std::size_t>(r)][i],
                  static_cast<std::uint8_t>(i * 13 + root))
            << "root=" << root << " rank=" << r;
  }
}

TEST_P(MpiCollectives, AllreduceSums) {
  const int p = nranks();
  std::vector<std::vector<double>> out(static_cast<std::size_t>(p));
  spmd(nnodes(), ppn(), config(), [&](mpi::Comm& c) {
    std::vector<double> v(1000);
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = static_cast<double>(c.rank() + 1) * static_cast<double>(i);
    c.allreduce(v.data(), v.size());
    out[static_cast<std::size_t>(c.rank())] = v;
  });
  const double rank_sum = p * (p + 1) / 2.0;
  for (int r = 0; r < p; ++r)
    for (std::size_t i = 0; i < 1000; i += 97)
      EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)][i],
                       rank_sum * static_cast<double>(i));
}

TEST_P(MpiCollectives, ReduceSumsAtRoot) {
  const int p = nranks();
  std::vector<double> at_root;
  spmd(nnodes(), ppn(), config(), [&](mpi::Comm& c) {
    std::vector<double> v(512, static_cast<double>(c.rank() + 1));
    c.reduce(v.data(), v.size(), 0);
    if (c.rank() == 0) at_root = v;
  });
  const double expect = p * (p + 1) / 2.0;
  for (double x : at_root) EXPECT_DOUBLE_EQ(x, expect);
}

TEST_P(MpiCollectives, ReduceScatterGivesEachRankItsBlock) {
  const int p = nranks();
  std::vector<std::vector<double>> out(static_cast<std::size_t>(p));
  const std::size_t per = 128;
  spmd(nnodes(), ppn(), config(), [&](mpi::Comm& c) {
    std::vector<double> v(per * static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = static_cast<double>(i);  // same on every rank
    c.reduce_scatter(v.data(), per);
    out[static_cast<std::size_t>(c.rank())].assign(v.begin(),
                                                   v.begin() + per);
  });
  for (int r = 0; r < p; ++r)
    for (std::size_t i = 0; i < per; i += 31)
      EXPECT_DOUBLE_EQ(
          out[static_cast<std::size_t>(r)][i],
          static_cast<double>(p) *
              static_cast<double>(static_cast<std::size_t>(r) * per + i));
}

TEST_P(MpiCollectives, AllgatherCollectsInRankOrder) {
  const int p = nranks();
  const std::size_t n = 5000;
  std::vector<std::vector<std::uint8_t>> out(static_cast<std::size_t>(p));
  spmd(nnodes(), ppn(), config(), [&](mpi::Comm& c) {
    std::vector<std::uint8_t> mine(n, static_cast<std::uint8_t>(c.rank() + 1));
    std::vector<std::uint8_t> all(n * static_cast<std::size_t>(p));
    c.allgather(mine.data(), n, all.data());
    out[static_cast<std::size_t>(c.rank())] = all;
  });
  for (int r = 0; r < p; ++r)
    for (int blk = 0; blk < p; ++blk)
      EXPECT_EQ(out[static_cast<std::size_t>(r)]
                   [static_cast<std::size_t>(blk) * n + n / 2],
                static_cast<std::uint8_t>(blk + 1));
}

TEST_P(MpiCollectives, AllgathervVariableSizes) {
  const int p = nranks();
  std::vector<std::size_t> lens;
  for (int r = 0; r < p; ++r)
    lens.push_back(1000 * static_cast<std::size_t>(r + 1));
  const std::size_t total = std::accumulate(lens.begin(), lens.end(),
                                            std::size_t{0});
  std::vector<std::vector<std::uint8_t>> out(static_cast<std::size_t>(p));
  spmd(nnodes(), ppn(), config(), [&](mpi::Comm& c) {
    const std::size_t mine = lens[static_cast<std::size_t>(c.rank())];
    std::vector<std::uint8_t> sbuf(mine,
                                   static_cast<std::uint8_t>(c.rank() + 1));
    std::vector<std::uint8_t> all(total);
    c.allgatherv(sbuf.data(), mine, lens, all.data());
    out[static_cast<std::size_t>(c.rank())] = all;
  });
  for (int r = 0; r < p; ++r) {
    std::size_t off = 0;
    for (int blk = 0; blk < p; ++blk) {
      EXPECT_EQ(out[static_cast<std::size_t>(r)][off],
                static_cast<std::uint8_t>(blk + 1));
      off += lens[static_cast<std::size_t>(blk)];
    }
  }
}

TEST_P(MpiCollectives, AlltoallPermutesBlocks) {
  const int p = nranks();
  const std::size_t n = 3000;
  std::vector<std::vector<std::uint8_t>> out(static_cast<std::size_t>(p));
  spmd(nnodes(), ppn(), config(), [&](mpi::Comm& c) {
    std::vector<std::uint8_t> sbuf(n * static_cast<std::size_t>(p));
    for (int dst = 0; dst < p; ++dst)
      std::fill_n(sbuf.begin() + static_cast<std::ptrdiff_t>(n) * dst, n,
                  static_cast<std::uint8_t>(10 * c.rank() + dst));
    std::vector<std::uint8_t> rbuf(n * static_cast<std::size_t>(p));
    c.alltoall(sbuf.data(), n, rbuf.data());
    out[static_cast<std::size_t>(c.rank())] = rbuf;
  });
  for (int r = 0; r < p; ++r)
    for (int src = 0; src < p; ++src)
      EXPECT_EQ(out[static_cast<std::size_t>(r)]
                   [static_cast<std::size_t>(src) * n],
                static_cast<std::uint8_t>(10 * src + r));
}

TEST_P(MpiCollectives, AlltoallvVariableBlocks) {
  const int p = nranks();
  // Rank r sends (r+1)*100 bytes to everyone.
  std::vector<std::vector<std::uint8_t>> out(static_cast<std::size_t>(p));
  spmd(nnodes(), ppn(), config(), [&](mpi::Comm& c) {
    const std::size_t mine = 100 * static_cast<std::size_t>(c.rank() + 1);
    std::vector<std::size_t> slens(static_cast<std::size_t>(p), mine);
    std::vector<std::size_t> rlens;
    for (int s = 0; s < p; ++s)
      rlens.push_back(100 * static_cast<std::size_t>(s + 1));
    std::vector<std::uint8_t> sbuf(mine * static_cast<std::size_t>(p),
                                   static_cast<std::uint8_t>(c.rank() + 1));
    std::vector<std::uint8_t> rbuf(
        std::accumulate(rlens.begin(), rlens.end(), std::size_t{0}));
    c.alltoallv(sbuf.data(), slens, rbuf.data(), rlens);
    out[static_cast<std::size_t>(c.rank())] = rbuf;
  });
  for (int r = 0; r < p; ++r) {
    std::size_t off = 0;
    for (int src = 0; src < p; ++src) {
      EXPECT_EQ(out[static_cast<std::size_t>(r)][off],
                static_cast<std::uint8_t>(src + 1));
      off += 100 * static_cast<std::size_t>(src + 1);
    }
  }
}

TEST_P(MpiCollectives, LargeAllreduceUsesRendezvousPath) {
  const int p = nranks();
  std::vector<double> got;
  spmd(nnodes(), ppn(), config(), [&](mpi::Comm& c) {
    std::vector<double> v(64 * 1024, 1.0);  // 512 kB > eager threshold
    c.allreduce(v.data(), v.size());
    if (c.rank() == 0) got = v;
  });
  for (std::size_t i = 0; i < got.size(); i += 4096)
    EXPECT_DOUBLE_EQ(got[i], static_cast<double>(p));
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, MpiCollectives,
    ::testing::Values(RankConfig{2, 1, false}, RankConfig{2, 1, true},
                      RankConfig{2, 2, false}, RankConfig{2, 2, true},
                      RankConfig{1, 4, false}, RankConfig{4, 1, false}),
    [](const ::testing::TestParamInfo<RankConfig>& info) {
      return std::to_string(info.param.nnodes) + "n" +
             std::to_string(info.param.ppn) + "p" +
             (info.param.ioat ? "_ioat" : "_memcpy");
    });

TEST_P(MpiCollectives, GatherCollectsAtRoot) {
  const int p = nranks();
  const std::size_t n = 2000;
  std::vector<std::uint8_t> at_root;
  spmd(nnodes(), ppn(), config(), [&](mpi::Comm& c) {
    std::vector<std::uint8_t> mine(n, static_cast<std::uint8_t>(c.rank() + 1));
    std::vector<std::uint8_t> all(n * static_cast<std::size_t>(p));
    c.gather(mine.data(), n, all.data(), 0);
    if (c.rank() == 0) at_root = all;
  });
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(at_root[static_cast<std::size_t>(r) * n],
              static_cast<std::uint8_t>(r + 1));
}

TEST_P(MpiCollectives, ScatterDistributesFromRoot) {
  const int p = nranks();
  const std::size_t n = 2000;
  std::vector<std::vector<std::uint8_t>> got(static_cast<std::size_t>(p));
  spmd(nnodes(), ppn(), config(), [&](mpi::Comm& c) {
    std::vector<std::uint8_t> all(n * static_cast<std::size_t>(p));
    if (c.rank() == 0)
      for (int r = 0; r < p; ++r)
        std::fill_n(all.begin() + static_cast<std::ptrdiff_t>(n) * r, n,
                    static_cast<std::uint8_t>(r + 10));
    std::vector<std::uint8_t> mine(n);
    c.scatter(all.data(), n, mine.data(), 0);
    got[static_cast<std::size_t>(c.rank())] = mine;
  });
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(got[static_cast<std::size_t>(r)][n / 2],
              static_cast<std::uint8_t>(r + 10));
}
