// Tests of the IMB benchmark kernels: every kernel runs collectively,
// returns a positive, monotone-ish time, respects the t_max convention,
// and the I/OAT configurations order as the paper's Figures 11/12 say.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.hpp"
#include "imb/imb.hpp"
#include "mpi/world.hpp"

namespace sim = openmx::sim;
namespace core = openmx::core;
namespace mpi = openmx::mpi;
namespace imb = openmx::imb;

namespace {

sim::Time imb_time(const core::OmxConfig& cfg, imb::Test test,
                   std::size_t bytes, int nnodes, int ppn, int reps) {
  core::Cluster cluster;
  cluster.add_nodes(nnodes, cfg);
  mpi::World world(cluster, mpi::placements(nnodes, ppn));
  sim::Time out = 0;
  std::vector<sim::Time> per_rank(
      static_cast<std::size_t>(nnodes * ppn), 0);
  world.run([&](mpi::Comm& c) {
    const sim::Time t = imb::run_test(c, test, bytes, reps);
    per_rank[static_cast<std::size_t>(c.rank())] = t;
    if (c.rank() == 0) out = t;
  });
  // t_max convention: every rank reports the same aggregated number.
  for (sim::Time t : per_rank) EXPECT_EQ(t, out);
  return out;
}

struct KernelCase {
  imb::Test test;
  int nnodes;
  int ppn;
};

class ImbKernels : public ::testing::TestWithParam<KernelCase> {};

}  // namespace

TEST_P(ImbKernels, RunsAndScalesWithSize) {
  const KernelCase& k = GetParam();
  const sim::Time t_small = imb_time({}, k.test, 1024, k.nnodes, k.ppn, 4);
  const sim::Time t_big =
      imb_time({}, k.test, 256 * sim::KiB, k.nnodes, k.ppn, 4);
  EXPECT_GT(t_small, 0);
  // 256x the bytes must take at least 3x the time for any data-moving
  // kernel (very loose monotonicity bound).
  EXPECT_GT(t_big, 3 * t_small);
}

TEST_P(ImbKernels, IoatNeverSlowerAtLargeSizes) {
  const KernelCase& k = GetParam();
  core::OmxConfig ioat;
  ioat.ioat_large = true;
  ioat.ioat_shm = true;
  const sim::Time t_plain =
      imb_time({}, k.test, sim::MiB, k.nnodes, k.ppn, 3);
  const sim::Time t_ioat =
      imb_time(ioat, k.test, sim::MiB, k.nnodes, k.ppn, 3);
  EXPECT_LE(t_ioat, t_plain + t_plain / 20);  // allow 5 % noise
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels2n1p, ImbKernels,
    ::testing::Values(KernelCase{imb::Test::PingPong, 2, 1},
                      KernelCase{imb::Test::PingPing, 2, 1},
                      KernelCase{imb::Test::SendRecv, 2, 1},
                      KernelCase{imb::Test::Exchange, 2, 1},
                      KernelCase{imb::Test::Allreduce, 2, 1},
                      KernelCase{imb::Test::Reduce, 2, 1},
                      KernelCase{imb::Test::ReduceScatter, 2, 1},
                      KernelCase{imb::Test::Allgather, 2, 1},
                      KernelCase{imb::Test::Allgatherv, 2, 1},
                      KernelCase{imb::Test::Alltoall, 2, 1},
                      KernelCase{imb::Test::Bcast, 2, 1}),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      std::string n = imb::test_name(info.param.test);
      n.erase(std::remove(n.begin(), n.end(), '.'), n.end());
      return n + std::string("_") + std::to_string(info.param.nnodes) + "n";
    });

INSTANTIATE_TEST_SUITE_P(
    AllKernels2n2p, ImbKernels,
    ::testing::Values(KernelCase{imb::Test::SendRecv, 2, 2},
                      KernelCase{imb::Test::Exchange, 2, 2},
                      KernelCase{imb::Test::Allreduce, 2, 2},
                      KernelCase{imb::Test::ReduceScatter, 2, 2},
                      KernelCase{imb::Test::Allgather, 2, 2},
                      KernelCase{imb::Test::Alltoall, 2, 2},
                      KernelCase{imb::Test::Bcast, 2, 2}),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      std::string n = imb::test_name(info.param.test);
      n.erase(std::remove(n.begin(), n.end(), '.'), n.end());
      return n + std::string("_2n2p");
    });

TEST(ImbSemantics, PingPongMatchesEndpointLevelPingPong) {
  // The MPI-level PingPong should cost the endpoint-level ping-pong plus
  // small library overhead: same order of magnitude, never faster.
  const sim::Time t_mpi = imb_time({}, imb::Test::PingPong, 4096, 2, 1, 10);
  EXPECT_GT(t_mpi, 0);
  EXPECT_LT(sim::to_micros(t_mpi), 100.0);  // sanity: a few us RTT
}

TEST(ImbSemantics, NativeMxFasterThanOpenMx) {
  core::OmxConfig mx;
  mx.native_mx = true;
  for (imb::Test t : {imb::Test::PingPong, imb::Test::Allreduce}) {
    EXPECT_LT(imb_time(mx, t, 128 * sim::KiB, 2, 1, 4),
              imb_time({}, t, 128 * sim::KiB, 2, 1, 4))
        << imb::test_name(t);
  }
}

TEST(ImbSemantics, TwoPpnUsesLocalPath) {
  // With 2 ppn, intra-node pairs exist; the shm counters must move.
  core::Cluster cluster;
  cluster.add_nodes(2, {});
  mpi::World world(cluster, mpi::placements(2, 2));
  world.run([&](mpi::Comm& c) {
    imb::run_test(c, imb::Test::Alltoall, 64 * sim::KiB, 2);
  });
  EXPECT_GT(cluster.node(0).driver().counters().get("driver.local_sent"),
            0u);
}
