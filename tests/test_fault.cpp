// Scripted-fault regression tests: one named test per adversarial
// scenario the protocol must survive.  Each installs a deterministic
// fault::Plan at the network (and/or DMA) injection point, runs a
// transfer, and asserts byte-exact delivery plus the expected
// retransmit/dedup/fallback counters.
#include <gtest/gtest.h>

#include <vector>

#include "core/cluster.hpp"
#include "core/endpoint.hpp"
#include "fault/fault.hpp"
#include "tests/test_common.hpp"

namespace sim = openmx::sim;
namespace core = openmx::core;
namespace net = openmx::net;
namespace fault = openmx::fault;
namespace testutil = openmx::testutil;

namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  std::uint8_t x = seed;
  for (auto& b : v) {
    x = static_cast<std::uint8_t>(x * 31 + 7);
    b = x;
  }
  return v;
}

struct Net2 {
  core::Cluster cluster;
  explicit Net2(core::OmxConfig cfg = {}, net::NetParams np = {})
      : cluster({}, np) {
    cluster.add_nodes(2, cfg);
  }
  core::Node& n0() { return cluster.node(0); }
  core::Node& n1() { return cluster.node(1); }
};

/// One eager/rendezvous transfer node0 -> node1 under the installed
/// faults; returns true iff the receive completed without failure.
bool transfer(Net2& f, std::size_t len, std::vector<std::uint8_t>& src,
              std::vector<std::uint8_t>& dst, int count = 1) {
  src = pattern(len);
  dst.assign(len ? len : 1, 0);
  bool ok = true;
  f.cluster.spawn(f.n0(), 0, "s", [&, count](core::Process& p) {
    core::Endpoint ep(p, 0);
    for (int i = 0; i < count; ++i)
      if (ep.wait(ep.isend(src.data(), len, {1, 1}, 1)).failed) ok = false;
  });
  f.cluster.spawn(f.n1(), 0, "r", [&, count](core::Process& p) {
    core::Endpoint ep(p, 1);
    for (int i = 0; i < count; ++i)
      if (ep.wait(ep.irecv(dst.data(), len, 1)).failed) ok = false;
  });
  f.cluster.run();
  dst.resize(len);
  return ok;
}

core::OmxConfig fast_retrans() {
  core::OmxConfig cfg;
  cfg.retrans_timeout = 40 * sim::kMicrosecond;
  return cfg;
}

}  // namespace

TEST(Fault, LastFragmentDropIsRetransmitted) {
  Net2 f(fast_retrans());
  fault::Plan plan(1);
  // An 8 KiB eager message is two fragments; eat the second (last) one.
  plan.drop_nth(fault::Match::Eager, 1);
  f.cluster.network().set_fault_injector(&plan);
  std::vector<std::uint8_t> src, dst;
  ASSERT_TRUE(transfer(f, 8 * 1024, src, dst));
  EXPECT_EQ(dst, src);
  EXPECT_EQ(f.cluster.network().counters().get("net.fault_drops"), 1u);
  EXPECT_GT(f.n0().driver().counters().get("driver.eager_retransmits"), 0u);
  // The retransmission resends both fragments; the receiver already has
  // fragment 0 and must swallow it as a duplicate.
  EXPECT_GT(f.n1().driver().counters().get("driver.eager_dup_frags"), 0u);
  testutil::expect_no_leaks(f.cluster);
  testutil::expect_frame_conservation(f.cluster);
}

TEST(Fault, AckOnlyDropForcesReackWithoutRedelivery) {
  Net2 f(fast_retrans());
  fault::Plan plan(2);
  // The receiver's first MsgAck vanishes: the sender must retransmit and
  // the receiver must re-ack from its completed set, not redeliver.
  plan.drop_nth(fault::Match::MsgAck, 0);
  f.cluster.network().set_fault_injector(&plan);
  std::vector<std::uint8_t> src, dst;
  ASSERT_TRUE(transfer(f, 2048, src, dst));
  EXPECT_EQ(dst, src);
  EXPECT_GT(f.n0().driver().counters().get("driver.eager_retransmits"), 0u);
  EXPECT_GT(f.n1().driver().counters().get("driver.eager_dup_reacks"), 0u);
  testutil::expect_no_leaks(f.cluster);
  testutil::expect_frame_conservation(f.cluster);
}

TEST(Fault, NackOnlyDropExhaustsRetriesInsteadOfFailingFast) {
  core::OmxConfig cfg = fast_retrans();
  cfg.max_retries = 4;
  Net2 f(cfg);
  fault::Plan plan(3);
  // Every Nack is eaten: the fail-fast path is gone, so the sender must
  // burn its full retry budget before reporting the failure.
  plan.drop_all(fault::Match::Nack);
  f.cluster.network().set_fault_injector(&plan);
  auto src = pattern(512);
  bool failed = false;
  f.cluster.spawn(f.n0(), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    // Endpoint 9 does not exist on node 1.
    failed = ep.wait(ep.isend(src.data(), src.size(), {1, 9}, 1)).failed;
  });
  f.cluster.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(f.n0().driver().counters().get("driver.aborted_sends"), 1u);
  // Without the nacks the sender retried all the way to the cap.
  EXPECT_EQ(f.n0().driver().counters().get("driver.eager_retransmits"),
            static_cast<std::uint64_t>(cfg.max_retries));
  EXPECT_GT(f.n1().driver().counters().get("driver.nacks_sent"), 1u);
  EXPECT_GT(f.cluster.network().counters().get("net.fault_drops"), 1u);
  testutil::expect_no_leaks(f.cluster);
  testutil::expect_frame_conservation(f.cluster);
}

TEST(Fault, DuplicateDeliveryIsDeduplicated) {
  Net2 f;
  fault::Plan plan(4);
  // The single data fragment is delivered twice; the second copy arrives
  // after completion and must only trigger a re-ack.
  plan.duplicate_nth(fault::Match::Eager, 0);
  f.cluster.network().set_fault_injector(&plan);
  std::vector<std::uint8_t> src, dst;
  ASSERT_TRUE(transfer(f, 1024, src, dst));
  EXPECT_EQ(dst, src);
  EXPECT_EQ(f.cluster.network().counters().get("net.fault_dup_frames"), 1u);
  const auto& d1 = f.n1().driver().counters();
  // The duplicate hit either the completed-set re-ack or the
  // duplicate-fragment guard — in both cases it was not delivered twice.
  EXPECT_EQ(d1.get("driver.eager_dup_reacks") +
                d1.get("driver.eager_dup_frags"),
            1u);
  testutil::expect_no_leaks(f.cluster);
  testutil::expect_frame_conservation(f.cluster);
}

TEST(Fault, ReorderWindowStillAssemblesInOrder) {
  Net2 f(fast_retrans());
  fault::Plan plan(5);
  // Hold the first fragment back 20 us: fragments 1..3 overtake it on
  // the wire and arrive first; reassembly must still be byte-exact.
  plan.delay_nth(fault::Match::Eager, 0, 20 * sim::kMicrosecond);
  f.cluster.network().set_fault_injector(&plan);
  std::vector<std::uint8_t> src, dst;
  ASSERT_TRUE(transfer(f, 16 * 1024, src, dst));
  EXPECT_EQ(dst, src);
  EXPECT_EQ(f.cluster.network().counters().get("net.fault_delayed"), 1u);
  testutil::expect_no_leaks(f.cluster);
  testutil::expect_frame_conservation(f.cluster);
}

TEST(Fault, GilbertElliottBurstLossEventuallyDelivers) {
  core::OmxConfig cfg = fast_retrans();
  cfg.ioat_large = true;
  Net2 f(cfg);
  fault::Plan plan(6);
  fault::GilbertElliott ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.3;
  ge.loss_bad = 0.7;
  plan.burst_loss(ge);
  f.cluster.network().set_fault_injector(&plan);
  std::vector<std::uint8_t> src, dst;
  ASSERT_TRUE(transfer(f, 256 * sim::KiB, src, dst));
  EXPECT_EQ(dst, src);
  EXPECT_GT(plan.counters().get("fault.burst_drops"), 0u);
  testutil::expect_no_leaks(f.cluster);
  testutil::expect_frame_conservation(f.cluster);
}

TEST(Fault, CorruptedFragmentIsDetectedAndRetransmitted) {
  Net2 f(fast_retrans());
  fault::Plan plan(7);
  // Damage the first data fragment's wire image: the receiver's checksum
  // verify must turn it into a silent drop, recovered by retransmission.
  plan.corrupt_nth(fault::Match::Eager, 0);
  f.cluster.network().set_fault_injector(&plan);
  std::vector<std::uint8_t> src, dst;
  ASSERT_TRUE(transfer(f, 4096, src, dst));
  EXPECT_EQ(dst, src);
  EXPECT_EQ(f.cluster.network().counters().get("net.fault_corrupted"), 1u);
  EXPECT_EQ(f.n1().driver().counters().get("driver.csum_drops"), 1u);
  EXPECT_GT(f.n0().driver().counters().get("driver.eager_retransmits"), 0u);
  testutil::expect_no_leaks(f.cluster);
  testutil::expect_frame_conservation(f.cluster);
}

TEST(Fault, CorruptedAckIsDiscardedBeforeDispatch) {
  Net2 f(fast_retrans());
  fault::Plan plan(8);
  plan.corrupt_nth(fault::Match::MsgAck, 0);
  f.cluster.network().set_fault_injector(&plan);
  std::vector<std::uint8_t> src, dst;
  ASSERT_TRUE(transfer(f, 1024, src, dst));
  EXPECT_EQ(dst, src);
  EXPECT_EQ(f.n0().driver().counters().get("driver.csum_drops"), 1u);
  EXPECT_GT(f.n1().driver().counters().get("driver.eager_dup_reacks"), 0u);
  testutil::expect_no_leaks(f.cluster);
}

TEST(Fault, DmaDescriptorFailureFallsBackToMemcpy) {
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  Net2 f(cfg);
  fault::Plan plan(9);
  // Fail three early descriptors of the receiver's engine: their bytes
  // never move, and the driver must repair the fragments with the CPU
  // instead of throwing or delivering garbage.
  plan.fail_descriptors(/*from=*/4, /*count=*/3);
  f.n1().ioat().set_fault_injector(&plan);
  std::vector<std::uint8_t> src, dst;
  ASSERT_TRUE(transfer(f, 512 * sim::KiB, src, dst));
  EXPECT_EQ(dst, src);
  const auto& d1 = f.n1().driver().counters();
  EXPECT_GT(d1.get("driver.dma_faults"), 0u);
  EXPECT_GT(d1.get("driver.dma_fallback_bytes"), 0u);
  EXPECT_EQ(f.n1().ioat().counters().get("ioat.desc_failures"), 3u);
  testutil::expect_no_leaks(f.cluster);
  testutil::expect_frame_conservation(f.cluster);
}

TEST(Fault, DmaChannelStallDelaysButDelivers) {
  core::OmxConfig cfg;
  cfg.ioat_large = true;
  Net2 f(cfg);
  fault::Plan plan(10);
  // The first eight descriptors each stall 30 us before starting: the
  // drain wait absorbs the delay; nothing is lost.
  plan.stall_channel(/*chan=*/-1, /*from=*/0, /*count=*/8,
                     30 * sim::kMicrosecond);
  f.n1().ioat().set_fault_injector(&plan);
  std::vector<std::uint8_t> src, dst;
  ASSERT_TRUE(transfer(f, 256 * sim::KiB, src, dst));
  EXPECT_EQ(dst, src);
  EXPECT_EQ(f.n1().ioat().counters().get("ioat.stalls"), 8u);
  testutil::expect_no_leaks(f.cluster);
}

TEST(Fault, MediumOverlapDescriptorFailureFallsBack) {
  core::OmxConfig cfg;
  cfg.ioat_medium_overlap = true;
  Net2 f(cfg);
  fault::Plan plan(11);
  plan.fail_descriptors(/*from=*/1, /*count=*/2);
  f.n1().ioat().set_fault_injector(&plan);
  std::vector<std::uint8_t> src, dst;
  // A 16 KiB eager message: four overlapped ring copies on one channel.
  ASSERT_TRUE(transfer(f, 16 * 1024, src, dst));
  EXPECT_EQ(dst, src);
  EXPECT_GT(f.n1().driver().counters().get("driver.dma_faults"), 0u);
  testutil::expect_no_leaks(f.cluster);
}

TEST(Fault, ShmCopyDescriptorFailureFallsBack) {
  core::OmxConfig cfg;
  cfg.ioat_shm = true;
  core::Cluster cluster;
  cluster.add_nodes(1, cfg);
  fault::Plan plan(12);
  plan.fail_descriptors(/*from=*/10, /*count=*/5);
  cluster.node(0).ioat().set_fault_injector(&plan);
  auto src = pattern(2 * sim::MiB);
  std::vector<std::uint8_t> dst(src.size());
  cluster.spawn(cluster.node(0), 0, "p", [&](core::Process& p) {
    core::Endpoint ep0(p, 0);
    core::Endpoint ep1(p, 1);
    core::Request* r = ep1.irecv(dst.data(), dst.size(), 5);
    core::Request* s = ep0.isend(src.data(), src.size(), {0, 1}, 5);
    ep1.wait(r);
    ep0.wait(s);
  });
  cluster.run();
  EXPECT_EQ(dst, src);
  const auto& d = cluster.node(0).driver().counters();
  EXPECT_GT(d.get("driver.dma_faults"), 0u);
  EXPECT_EQ(d.get("driver.dma_fallback_bytes"), 2 * sim::MiB);
}

TEST(Fault, RendezvousSurvivesPullRequestAndReplyDrops) {
  core::OmxConfig cfg = fast_retrans();
  cfg.ioat_large = true;
  Net2 f(cfg);
  fault::Plan plan(13);
  plan.drop_nth(fault::Match::PullReq, 1);
  plan.drop_nth(fault::Match::PullReply, 5, /*count=*/3);
  plan.drop_nth(fault::Match::LargeAck, 0);
  f.cluster.network().set_fault_injector(&plan);
  std::vector<std::uint8_t> src, dst;
  ASSERT_TRUE(transfer(f, 256 * sim::KiB, src, dst));
  EXPECT_EQ(dst, src);
  EXPECT_GT(f.n1().driver().counters().get("driver.pull_retransmits") +
                f.n1().driver().counters().get("driver.pull_rereqs"),
            0u);
  testutil::expect_no_leaks(f.cluster);
  testutil::expect_frame_conservation(f.cluster);
}

TEST(Fault, InjectorRemovalRestoresCleanWire) {
  // A plan installed and then cleared must leave no residue: the second
  // transfer sees a fault-free wire.
  Net2 f;
  fault::Plan plan(14);
  plan.drop_prob(fault::Match::Any, 1.0);
  f.cluster.network().set_fault_injector(&plan);
  f.cluster.network().set_fault_injector(nullptr);
  std::vector<std::uint8_t> src, dst;
  ASSERT_TRUE(transfer(f, 4096, src, dst));
  EXPECT_EQ(dst, src);
  EXPECT_EQ(f.cluster.network().counters().get("net.fault_drops"), 0u);
  EXPECT_EQ(plan.frames_seen(), 0u);
}
