// Unit tests for the fluid network model and the hybrid-fidelity
// coupling: max-min fair-share allocation, incremental re-solve,
// oversubscribed fabrics, packet-path parity, throttle coupling in both
// directions, and cross-shard determinism of a partitioned FlowNetwork.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/endpoint.hpp"
#include "core/hybrid_cluster.hpp"
#include "cpu/machine.hpp"
#include "mem/aligned_buffer.hpp"
#include "mem/memcpy_model.hpp"
#include "net/flow.hpp"
#include "net/hybrid.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/lp.hpp"
#include "sim/time.hpp"

namespace sim = openmx::sim;
namespace net = openmx::net;
namespace cpu = openmx::cpu;
namespace core = openmx::core;

namespace {

constexpr double kBw = 1244.125e6;  // default port rate, bytes/s

/// Wire time of `wire_bytes` at a fraction of the port rate, in ns.
double ns_at(double wire_bytes, double rate_frac) {
  return wire_bytes * 1e9 / (kBw * rate_frac);
}

struct TestPayload : net::Payload {
  int value = 0;
  explicit TestPayload(int v) : value(v) {}
};

/// Minimal packet fixture (mirrors test_net.cpp) for parity and
/// coupling tests.
struct PacketPair {
  sim::Engine engine;
  cpu::Machine m0{engine}, m1{engine};
  openmx::mem::MemBus b0, b1;
  net::Network network{engine};
  net::Nic nic0{engine, m0, b0, 0, 1};
  net::Nic nic1{engine, m1, b1, 1, 1};

  PacketPair() {
    network.attach(nic0);
    network.attach(nic1);
  }

  void send(int from, int to, std::size_t bytes, int tag = 0) {
    net::Frame f;
    f.src_node = from;
    f.dst_node = to;
    f.wire_bytes = bytes;
    f.payload = std::make_shared<TestPayload>(tag);
    network.transmit(std::move(f));
  }
};

}  // namespace

TEST(FlowNetwork, UncontendedFlowDeliversAtAnalyticTime) {
  sim::Engine eng;
  net::FlowNetwork flow(eng);
  sim::Time delivered = -1;
  net::FlowInfo got;
  flow.transfer(0, 1, sim::MiB, [&](const net::FlowInfo& fi) {
    delivered = eng.now();
    got = fi;
  });
  eng.run();
  EXPECT_EQ(delivered, flow.uncontended_delivery_ns(sim::MiB));
  EXPECT_EQ(got.src, 0);
  EXPECT_EQ(got.dst, 1);
  EXPECT_EQ(got.bytes, sim::MiB);
  EXPECT_EQ(got.finish + flow.params().latency_ns, delivered);
  EXPECT_EQ(flow.counters().get("flow.completed"), 1u);
  EXPECT_EQ(flow.active_flows(), 0u);
}

TEST(FlowNetwork, TwoFlowsShareTheirCommonTxPort) {
  // Same source, different destinations: the tx port is the bottleneck,
  // so each flow runs at half rate and finishes in twice the solo time.
  sim::Engine eng;
  net::FlowNetwork flow(eng);
  const std::size_t bytes = sim::MiB;
  const double wire = static_cast<double>(flow.wire_bytes_for(bytes));
  std::vector<sim::Time> done;
  for (int dst : {1, 2})
    flow.transfer(0, dst, bytes,
                  [&](const net::FlowInfo& fi) { done.push_back(fi.finish); });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(static_cast<double>(done[0]), ns_at(wire, 0.5), 5.0);
  EXPECT_NEAR(static_cast<double>(done[1]), ns_at(wire, 0.5), 5.0);
}

TEST(FlowNetwork, MaxMinGivesUnequalSharesAcrossLinks) {
  // Three flows share tx port 0 (each gets C/3); a fourth flow from an
  // idle source contends with one of them on rx port 1.  Max-min: the
  // fourth flow gets the 2C/3 the bottlenecked flow cannot use — not the
  // C/2 a naive per-link equal split would give.
  sim::Engine eng;
  net::FlowNetwork flow(eng);
  const std::size_t bytes = sim::MiB;
  const double wire = static_cast<double>(flow.wire_bytes_for(bytes));
  std::map<int, sim::Time> finish;  // keyed by src*10+dst
  auto track = [&](const net::FlowInfo& fi) {
    finish[fi.src * 10 + fi.dst] = fi.finish;
  };
  flow.transfer(0, 1, bytes, track);
  flow.transfer(0, 2, bytes, track);
  flow.transfer(0, 3, bytes, track);
  flow.transfer(4, 1, bytes, track);
  eng.run();
  ASSERT_EQ(finish.size(), 4u);
  // The cross-traffic flow 4->1 finishes first, at rate 2C/3.
  EXPECT_NEAR(static_cast<double>(finish[41]), ns_at(wire, 2.0 / 3.0), 10.0);
  // The tx-0 flows stay pinned at C/3 throughout (4->1 finishing frees
  // rx-1 headroom, but tx 0 is still their bottleneck).
  for (int key : {1, 2, 3})
    EXPECT_NEAR(static_cast<double>(finish[key]), ns_at(wire, 1.0 / 3.0),
                10.0);
}

TEST(FlowNetwork, CompletionReleasesBandwidthIncrementally) {
  // A 2 MiB and a 1 MiB flow share a tx port at C/2 each; when the small
  // one drains, the big one is re-solved up to full rate mid-flight:
  //   phase 1: both at C/2 until t1 = small_wire/(C/2)
  //   phase 2: big alone at C, finishing at 3*small_wire/C (not 4x).
  sim::Engine eng;
  net::FlowNetwork flow(eng);
  const std::size_t small = sim::MiB;
  const double ws = static_cast<double>(flow.wire_bytes_for(small));
  sim::Time big_done = 0, small_done = 0;
  flow.transfer(0, 1, 2 * small,
                [&](const net::FlowInfo& fi) { big_done = fi.finish; });
  flow.transfer(0, 2, small,
                [&](const net::FlowInfo& fi) { small_done = fi.finish; });
  eng.run();
  EXPECT_NEAR(static_cast<double>(small_done), ns_at(ws, 0.5), 10.0);
  // Wire bytes of 2 MiB are ~2x those of 1 MiB (chunk rounding differs
  // by at most one frame's overhead, far under the tolerance here).
  EXPECT_NEAR(static_cast<double>(big_done), 3.0 * ns_at(ws, 1.0), 100.0);
  EXPECT_GE(flow.counters().get("flow.resolves"), 3u);
}

TEST(FlowNetwork, OversubscribedFabricCouplesDisjointPairs) {
  // With oversub=4 and four ports, the fabric aggregate (4C/4 = C) binds
  // before any port does: two otherwise-disjoint pairs each get C/2.
  sim::Engine eng;
  net::FlowParams fp;
  fp.oversub = 4.0;
  net::FlowNetwork flow(eng, fp);
  flow.ensure_endpoints(4);
  const std::size_t bytes = sim::MiB;
  const double wire = static_cast<double>(flow.wire_bytes_for(bytes));
  std::vector<sim::Time> done;
  flow.transfer(0, 1, bytes,
                [&](const net::FlowInfo& fi) { done.push_back(fi.finish); });
  flow.transfer(2, 3, bytes,
                [&](const net::FlowInfo& fi) { done.push_back(fi.finish); });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  for (sim::Time t : done)
    EXPECT_NEAR(static_cast<double>(t), ns_at(wire, 0.5), 10.0);
}

TEST(FlowNetwork, DisjointPairsResolveInConstantWork) {
  // The incremental solver only visits the changed flow's component:
  // for disjoint pairs that is exactly one flow per resolve, no matter
  // how many pairs are active — the O(active flows) scaling claim.
  for (int pairs : {8, 256}) {
    sim::Engine eng;
    net::FlowNetwork flow(eng);
    flow.ensure_endpoints(static_cast<std::size_t>(2 * pairs));
    for (int p = 0; p < pairs; ++p)
      flow.transfer(2 * p, 2 * p + 1, sim::MiB, {});
    eng.run();
    const auto visits = flow.counters().get("flow.solver_visits");
    const auto done = flow.counters().get("flow.completed");
    EXPECT_EQ(done, static_cast<std::uint64_t>(pairs));
    EXPECT_EQ(visits, done);  // exactly one visit per flow
  }
}

TEST(FlowNetwork, GaugeTracksActiveFlowPeak) {
  sim::Engine eng;
  net::FlowNetwork flow(eng);
  for (int p = 0; p < 3; ++p) flow.transfer(2 * p, 2 * p + 1, sim::MiB, {});
  EXPECT_EQ(flow.active_flows(), 3u);
  eng.run();
  const auto& g = flow.counters().all_gauges().at("flow.active");
  EXPECT_EQ(g.peak, 3);
  EXPECT_EQ(g.value, 0);
}

TEST(FlowNetwork, WireBytesMatchFramingGranularity) {
  sim::Engine eng;
  net::FlowParams fp = net::FlowParams::match(net::NetParams{}, 1.0,
                                              /*chunk=*/4096,
                                              /*chunk_overhead=*/32);
  net::FlowNetwork flow(eng, fp);
  // One full 4 KiB fragment: payload + OMX header + Ethernet overhead.
  EXPECT_EQ(flow.wire_bytes_for(4096), 4096u + 32 + 38);
  // 1 MiB = 256 fragments, each charged the per-fragment overhead.
  EXPECT_EQ(flow.wire_bytes_for(sim::MiB), sim::MiB + 256 * (32u + 38u));
  // Zero-byte transfers still cross the wire as one header-only frame.
  EXPECT_EQ(flow.wire_bytes_for(0), 70u);
}

TEST(FlowNetwork, TransferValidatesEndpoints) {
  sim::Engine eng;
  net::FlowNetwork flow(eng);
  EXPECT_THROW(flow.transfer(1, 1, 64, {}), std::logic_error);
  EXPECT_THROW(flow.transfer(-1, 1, 64, {}), std::logic_error);
}

// ---- hybrid coupling ---------------------------------------------------

TEST(HybridNetwork, PacketPathIsBitIdenticalWithIdleCoupling) {
  // Installing the hybrid router (throttle hook active, but no
  // background flows anywhere) must not move a single packet event:
  // same arrival times, same event count as a plain packet run.
  auto run = [](bool hybrid) {
    PacketPair fx;
    sim::Engine flow_eng;  // separate engine: the coupling is stateless
    net::FlowNetwork flow(flow_eng);
    std::unique_ptr<net::HybridNetwork> hy;
    if (hybrid) hy = std::make_unique<net::HybridNetwork>(fx.network, flow);
    std::vector<sim::Time> arrivals;
    fx.nic1.set_rx_callback(
        [&](net::Skbuff) { arrivals.push_back(fx.engine.now()); });
    for (int i = 0; i < 8; ++i) fx.send(0, 1, 4096, i);
    fx.engine.run();
    arrivals.push_back(static_cast<sim::Time>(fx.engine.events_scheduled()));
    return arrivals;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(HybridNetwork, BackgroundFlowSlowsForegroundFrames) {
  // A background flow landing on node 1 holds its rx port; a foreground
  // frame into node 1 must serialize at the residual rate and arrive
  // later than on an idle fabric.
  auto arrival_with_bg = [](bool background) {
    PacketPair fx;
    net::FlowNetwork flow(fx.engine);
    net::HybridNetwork hy(fx.network, flow);
    hy.set_fidelity(2, 1, net::Fidelity::kFlow);
    if (background) hy.transfer(2, 1, 64 * sim::MiB);
    sim::Time arrival = -1;
    fx.nic1.set_rx_callback([&](net::Skbuff) { arrival = fx.engine.now(); });
    fx.send(0, 1, 4096);
    fx.engine.run();
    return arrival;
  };
  const sim::Time idle = arrival_with_bg(false);
  const sim::Time contended = arrival_with_bg(true);
  EXPECT_GT(contended, idle);
}

TEST(HybridNetwork, ForegroundLoadSlowsBackgroundFlows) {
  // The reverse direction: foreground frames reported through on_wire
  // reserve capacity in the fluid solver, so a background flow across
  // the loaded port completes later than uncontended.
  sim::Engine eng;
  net::FlowNetwork flow(eng);
  flow.ensure_endpoints(2);
  const sim::Time solo = flow.uncontended_delivery_ns(sim::MiB);
  // Report heavy foreground traffic into port 1's rx side, then start
  // the background flow over the same port.
  for (int i = 0; i < 64; ++i)
    flow.note_foreground(0, 1, 256 * sim::KiB);
  sim::Time delivered = 0;
  flow.transfer(0, 1, sim::MiB,
                [&](const net::FlowInfo&) { delivered = eng.now(); });
  eng.run();
  EXPECT_GT(delivered, solo + solo / 2);  // at least 1.5x slower
}

TEST(HybridNetwork, TransferRequiresFlowFidelitySource) {
  PacketPair fx;
  net::FlowNetwork flow(fx.engine);
  net::HybridNetwork hy(fx.network, flow);
  // Node 0 defaults to packet fidelity: flows may not originate there.
  EXPECT_THROW(hy.transfer(0, 5, 64), std::logic_error);
  hy.set_fidelity(4, 2, net::Fidelity::kFlow);
  EXPECT_NO_THROW(hy.transfer(4, 5, 64));
  fx.engine.run();
}

TEST(HybridCluster, ForegroundPingpongRunsOverBackgroundTraffic) {
  // Full-stack smoke: two Open-MX nodes ping-pong while 64 background
  // endpoints keep fluid flows running.  The run must terminate, count
  // background completions, and the foreground must still complete.
  core::HybridCluster hc;
  core::OmxConfig cfg;
  core::Node& n0 = hc.add_node(cfg);
  core::Node& n1 = hc.add_node(cfg);
  (void)n1;
  core::BackgroundTraffic bg;
  bg.bytes = 256 * sim::KiB;
  bg.restarts_per_pair = 3;
  hc.add_background(64, bg);
  int rounds_done = 0;
  hc.spawn(n0, 0, "ping", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    openmx::mem::Buffer buf(4096, 1);
    for (int i = 0; i < 4; ++i) {
      ep.wait(ep.isend(buf.data(), 4096, core::Addr{1, 1}, 7));
      ep.wait(ep.irecv(buf.data(), 4096, 7));
      ++rounds_done;
    }
  });
  hc.spawn(hc.cluster().node(1), 0, "pong", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    openmx::mem::Buffer buf(4096, 2);
    for (int i = 0; i < 4; ++i) {
      ep.wait(ep.irecv(buf.data(), 4096, 7));
      ep.wait(ep.isend(buf.data(), 4096, core::Addr{0, 0}, 7));
    }
  });
  hc.run();
  EXPECT_EQ(rounds_done, 4);
  EXPECT_EQ(hc.background_completions(), 32u * 3u);
  // Every start (initial + each restart) routes through the hybrid.
  EXPECT_EQ(hc.hybrid().counters().get("hybrid.bg_flows"), 32u * 3u);
  EXPECT_GT(hc.hybrid().counters().get("hybrid.fg_frames"), 0u);
}

// ---- multi-LP sharding -------------------------------------------------

TEST(FlowNetwork, CrossShardFlowsMatchTheSingleEngineRun) {
  // Four endpoints, two shards (0,1 | 2,3); flows 0->2 and 0->3 share
  // shard 0's tx port and cross the boundary, 2->1 crosses back.
  // Delivery times must equal the unpartitioned single-engine run
  // exactly.  (Contention here is tx-side and shard-local by design:
  // rx-port sharing *between* shards is approximated, not shared — see
  // DESIGN.md on fidelity-boundary semantics.)
  const std::size_t bytes = 3 * sim::MiB;
  auto run_single = [&] {
    sim::Engine eng;
    net::FlowNetwork flow(eng);
    flow.ensure_endpoints(4);
    std::map<int, sim::Time> at;
    auto track = [&](const net::FlowInfo& fi) {
      at[fi.src * 10 + fi.dst] = fi.finish;
    };
    flow.transfer(0, 2, bytes, track);
    flow.transfer(0, 3, bytes, track);
    flow.transfer(2, 1, bytes, track);
    eng.run();
    return at;
  };
  auto run_sharded = [&] {
    const std::vector<int> lp_of_ep{0, 0, 1, 1};
    sim::Lp lp0(0), lp1(1);
    net::FlowNetwork f0(lp0.engine()), f1(lp1.engine());
    std::vector<net::FlowNetwork*> shards{&f0, &f1};
    f0.bind_partition(lp0, lp_of_ep, shards);
    f1.bind_partition(lp1, lp_of_ep, shards);
    std::map<int, sim::Time> at;
    auto track = [&](const net::FlowInfo& fi) {
      at[fi.src * 10 + fi.dst] = fi.finish;
    };
    f0.transfer(0, 2, bytes, track);
    f0.transfer(0, 3, bytes, track);
    f1.transfer(2, 1, bytes, track);
    sim::LpScheduler sched(net::FlowParams{}.latency_ns);
    sched.add(lp0);
    sched.add(lp1);
    sched.run(1);
    EXPECT_GT(f0.counters().get("flow.completed") +
                  f1.counters().get("flow.completed"),
              0u);
    EXPECT_GT(f1.counters().get("flow.lp_deliveries"), 0u);
    return at;
  };
  const auto single = run_single();
  const auto sharded = run_sharded();
  ASSERT_EQ(single.size(), 3u);
  EXPECT_EQ(single, sharded);
}

TEST(FlowNetwork, ShardedTransferMustStartOnOwningShard) {
  const std::vector<int> lp_of_ep{0, 1};
  sim::Lp lp0(0), lp1(1);
  net::FlowNetwork f0(lp0.engine()), f1(lp1.engine());
  std::vector<net::FlowNetwork*> shards{&f0, &f1};
  f0.bind_partition(lp0, lp_of_ep, shards);
  f1.bind_partition(lp1, lp_of_ep, shards);
  // Endpoint 1 lives on shard 1: shard 0 may not originate its flows.
  EXPECT_THROW(f0.transfer(1, 0, 64, {}), std::logic_error);
}
