#pragma once

// Shared post-run invariant helpers for the protocol, fault and soak
// suites.  Call after Cluster::run() returned (the engine is quiescent):
// every resource with bounded ownership must be back at zero.
#include <gtest/gtest.h>

#include <cstddef>

#include "core/cluster.hpp"

namespace openmx::testutil {

/// No leaked rx-ring slots and no skbuffs still held by asynchronous
/// I/OAT copies, on any node.  Ring slots are owned by skbuffs
/// (net::Skbuff::State::on_free returns them), so a nonzero count after
/// quiesce means a protocol path dropped a reference on the floor.
inline void expect_no_leaks(core::Cluster& cluster) {
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    core::Node& node = cluster.node(i);
    EXPECT_EQ(node.nic().rx_ring_in_use(), 0u)
        << "node " << i << ": rx-ring slots leaked after quiesce";
    EXPECT_EQ(node.driver().pending_offload_skbuffs(), 0u)
        << "node " << i << ": skbuffs still pinned by I/OAT copies";
  }
}

/// Wire-frame conservation: every transmitted frame (plus injected
/// duplicates) is accounted for as received, dropped at the rx ring,
/// dropped by Bernoulli loss, or eaten by a scripted fault.
inline void expect_frame_conservation(core::Cluster& cluster) {
  const auto& net = cluster.network().counters();
  std::uint64_t rx = 0, ring_drops = 0;
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    rx += cluster.node(i).nic().counters().get("nic.rx_frames");
    ring_drops += cluster.node(i).nic().counters().get("nic.rx_ring_drops");
  }
  EXPECT_EQ(net.get("net.tx_frames") + net.get("net.fault_dup_frames"),
            rx + ring_drops + net.get("net.dropped_frames") +
                net.get("net.fault_drops"))
      << "wire frames do not balance: some frame was neither delivered "
         "nor accounted as dropped";
}

}  // namespace openmx::testutil
