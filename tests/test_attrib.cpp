// Tests for the obs::attrib causal latency-attribution layer: the
// exact-partition contract (per-message blame sums equal the span
// total), the wait-state stamp sites in cpu::Machine and
// dma::IoatEngine, the critical-path walker, the per-size-class report,
// and the attribution-off-is-free contract.
#include <gtest/gtest.h>

#include <string>

#include "bench/common.hpp"
#include "cpu/machine.hpp"
#include "dma/ioat.hpp"
#include "fault/fault.hpp"
#include "obs/attrib.hpp"
#include "sim/engine.hpp"

using namespace openmx;

namespace {

sim::Time get_wait(const obs::MsgWaits* m, obs::Wait w) {
  return m ? m->get(w) : -1;
}

// ---------------------------------------------------------------------
// Partition walker on synthetic spans
// ---------------------------------------------------------------------

TEST(AttribWalker, EmptySpanBlamesNothing) {
  obs::Span s;
  const obs::BlameVec v = obs::attribute_blame(s, nullptr);
  EXPECT_EQ(obs::blame_sum(v), 0);
}

TEST(AttribWalker, PartitionIsExactWithoutRawStamps) {
  // No wait-state stamps: the residual after ingress is generic
  // bottom-half time, and the partition still sums exactly.
  obs::Span s;
  s.mark(obs::Phase::WireArrival, 100);
  s.mark(obs::Phase::WireArrival, 700);
  s.mark(obs::Phase::BottomHalf, 150);
  s.mark(obs::Phase::BottomHalf, 900);
  s.mark(obs::Phase::Notify, 900);
  s.mark(obs::Phase::Notify, 950);
  const obs::BlameVec v = obs::attribute_blame(s, nullptr);
  EXPECT_EQ(obs::blame_sum(v), s.total_ns());
  EXPECT_EQ(v[static_cast<std::size_t>(obs::Blame::Wire)], 600);
  EXPECT_EQ(v[static_cast<std::size_t>(obs::Blame::BhExec)], 200);
  EXPECT_EQ(v[static_cast<std::size_t>(obs::Blame::Notify)], 50);
  EXPECT_EQ(obs::critical_blame(v), obs::Blame::Wire);
}

TEST(AttribWalker, DmaTailSplitsQueueWaitFromTransfer) {
  // The measured drain wait is peeled off the host residual and split
  // between ring-queue wait and transfer time by the message's own
  // descriptor totals — queue wait reported separately from transfer.
  obs::Span s;
  s.mark(obs::Phase::WireArrival, 0);
  s.mark(obs::Phase::WireArrival, 1000);
  s.mark(obs::Phase::BottomHalf, 10);
  s.mark(obs::Phase::BottomHalf, 2000);
  s.mark(obs::Phase::Notify, 2000);
  s.mark(obs::Phase::Notify, 2100);

  obs::MsgWaits raw;
  raw.wait[static_cast<std::size_t>(obs::Wait::DmaDrainWait)] = 600;
  raw.wait[static_cast<std::size_t>(obs::Wait::DmaQueueWait)] = 300;
  raw.wait[static_cast<std::size_t>(obs::Wait::DmaTransfer)] = 900;
  raw.wait[static_cast<std::size_t>(obs::Wait::BhExec)] = 400;

  const obs::BlameVec v = obs::attribute_blame(s, &raw);
  EXPECT_EQ(obs::blame_sum(v), s.total_ns());
  // Tail of 600 split 300:900 -> 150 queue / 450 transfer.
  EXPECT_EQ(v[static_cast<std::size_t>(obs::Blame::DmaQueueWait)], 150);
  EXPECT_EQ(v[static_cast<std::size_t>(obs::Blame::DmaTransfer)], 450);
  // Remaining residual (1000 - 600) goes to the only host category.
  EXPECT_EQ(v[static_cast<std::size_t>(obs::Blame::BhExec)], 400);
  EXPECT_EQ(v[static_cast<std::size_t>(obs::Blame::Wire)], 1000);
  EXPECT_EQ(v[static_cast<std::size_t>(obs::Blame::Notify)], 100);
}

TEST(AttribWalker, HostResidualSplitsProportionally) {
  // Memcpy-path residual is apportioned across the measured host-side
  // categories; bus-contention stall stays distinct from copy execution.
  obs::Span s;
  s.mark(obs::Phase::WireArrival, 0);
  s.mark(obs::Phase::WireArrival, 500);
  s.mark(obs::Phase::BottomHalf, 5);
  s.mark(obs::Phase::BottomHalf, 1500);
  s.mark(obs::Phase::Notify, 1500);

  obs::MsgWaits raw;
  raw.wait[static_cast<std::size_t>(obs::Wait::BhQueueWait)] = 100;
  raw.wait[static_cast<std::size_t>(obs::Wait::BhExec)] = 100;
  raw.wait[static_cast<std::size_t>(obs::Wait::MemcpyExec)] = 600;
  raw.wait[static_cast<std::size_t>(obs::Wait::BusStall)] = 200;

  const obs::BlameVec v = obs::attribute_blame(s, &raw);
  EXPECT_EQ(obs::blame_sum(v), s.total_ns());
  // Residual 1000 split 100:100:600:200.
  EXPECT_EQ(v[static_cast<std::size_t>(obs::Blame::BhQueueWait)], 100);
  EXPECT_EQ(v[static_cast<std::size_t>(obs::Blame::BhExec)], 100);
  EXPECT_EQ(v[static_cast<std::size_t>(obs::Blame::MemcpyExec)], 600);
  EXPECT_EQ(v[static_cast<std::size_t>(obs::Blame::BusStall)], 200);
  EXPECT_EQ(obs::critical_blame(v), obs::Blame::MemcpyExec);
}

TEST(AttribWalker, CriticalBlameTieBreaksDeterministically) {
  obs::BlameVec v{};
  v[static_cast<std::size_t>(obs::Blame::Wire)] = 500;
  v[static_cast<std::size_t>(obs::Blame::DmaTransfer)] = 500;
  EXPECT_EQ(obs::critical_blame(v), obs::Blame::Wire);  // earlier enum wins
  v[static_cast<std::size_t>(obs::Blame::DmaTransfer)] = 501;
  EXPECT_EQ(obs::critical_blame(v), obs::Blame::DmaTransfer);
}

// ---------------------------------------------------------------------
// Stamp sites
// ---------------------------------------------------------------------

TEST(AttribStamps, MachineStampsRunQueueDelay) {
  sim::Engine eng;
  eng.attrib().enable();
  cpu::Machine m(eng);
  // Two keyed tasks on one core: the first runs immediately (zero queue
  // wait), the second waits exactly the first's cost.
  m.submit_keyed(0, cpu::Cat::BottomHalf, 111,
                 [] { return cpu::TaskResult{1000, {}}; });
  m.submit_keyed(0, cpu::Cat::BottomHalf, 222,
                 [] { return cpu::TaskResult{500, {}}; });
  eng.run();
  EXPECT_EQ(get_wait(eng.attrib().find(111), obs::Wait::BhQueueWait), 0);
  EXPECT_EQ(get_wait(eng.attrib().find(222), obs::Wait::BhQueueWait), 1000);
  // Unkeyed work records nothing.
  m.submit(0, cpu::Cat::BottomHalf, [] { return cpu::TaskResult{100, {}}; });
  eng.run();
  EXPECT_EQ(eng.attrib().size(), 2u);
}

TEST(AttribStamps, IoatStampsQueueWaitAndTransferSeparately) {
  sim::Engine eng;
  eng.attrib().enable();
  dma::IoatEngine ioat(eng);
  std::uint8_t src[256] = {1}, dst[256] = {0};
  // Two descriptors on the same channel: the second queues behind the
  // first, so its queue wait equals the first's remaining engine time.
  ioat.submit(0, src, dst, 128, /*attrib_key=*/7);
  const sim::Time first_done = ioat.cookie_done_time(0, 1);
  ioat.submit(0, src + 128, dst + 128, 128, /*attrib_key=*/9);
  eng.run();

  const obs::MsgWaits* a = eng.attrib().find(7);
  const obs::MsgWaits* b = eng.attrib().find(9);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->get(obs::Wait::DmaQueueWait), 0);
  EXPECT_GT(a->get(obs::Wait::DmaTransfer), 0);
  EXPECT_EQ(b->get(obs::Wait::DmaQueueWait), first_done);
  EXPECT_GT(b->get(obs::Wait::DmaTransfer), 0);
  // The per-engine queue-wait histogram saw both submissions.
  EXPECT_EQ(ioat.counters().all_histograms().at("ioat.queue_wait_ns").count(),
            2u);
}

// ---------------------------------------------------------------------
// End-to-end on real receives
// ---------------------------------------------------------------------

TEST(AttribEndToEnd, IoatPingpongPartitionsExactly) {
  bench::Cluster cluster;
  cluster.add_nodes(2, bench::cfg_omx_ioat());
  cluster.engine().spans().enable();
  cluster.engine().attrib().enable();
  bench::run_pingpong(cluster, 512 * sim::KiB, 2, /*warmup=*/0);

  const obs::SpanTable& spans = cluster.engine().spans();
  const obs::AttribTable& attrib = cluster.engine().attrib();
  ASSERT_EQ(spans.size(), 4u);
  ASSERT_EQ(attrib.size(), 4u);
  for (const auto& [key, s] : spans.all()) {
    const obs::MsgWaits* raw = attrib.find(key);
    ASSERT_NE(raw, nullptr);
    // Offload path: descriptor stamps present, no memcpy categories.
    EXPECT_GT(raw->get(obs::Wait::DmaTransfer), 0);
    EXPECT_GT(raw->get(obs::Wait::BhExec), 0);
    EXPECT_GT(raw->get(obs::Wait::DmaDrainWait), 0);
    EXPECT_EQ(raw->get(obs::Wait::MemcpyExec), 0);
    EXPECT_EQ(raw->get(obs::Wait::BusStall), 0);
    // The acceptance contract: blame partitions the span total exactly.
    const obs::BlameVec v = obs::attribute_blame(s, raw);
    EXPECT_EQ(obs::blame_sum(v), s.total_ns());
    // The DMA tail is visible as transfer blame distinct from BH time.
    EXPECT_GT(v[static_cast<std::size_t>(obs::Blame::DmaTransfer)], 0);
  }
}

TEST(AttribEndToEnd, MemcpyPingpongStampsCopyCategories) {
  bench::Cluster cluster;
  cluster.add_nodes(2, bench::cfg_omx());
  cluster.engine().spans().enable();
  cluster.engine().attrib().enable();
  bench::run_pingpong(cluster, 512 * sim::KiB, 2, /*warmup=*/0);

  const obs::AttribTable& attrib = cluster.engine().attrib();
  ASSERT_EQ(attrib.size(), 4u);
  for (const auto& [key, raw] : attrib.all()) {
    EXPECT_GT(raw.get(obs::Wait::MemcpyExec), 0);
    // Concurrent NIC DMA makes at least some fragment copies contended.
    EXPECT_GT(raw.get(obs::Wait::BusStall), 0);
    EXPECT_EQ(raw.get(obs::Wait::DmaQueueWait), 0);
    EXPECT_EQ(raw.get(obs::Wait::DmaTransfer), 0);
    const obs::Span* s = cluster.engine().spans().find(key);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(obs::blame_sum(obs::attribute_blame(*s, &raw)), s->total_ns());
  }
}

TEST(AttribEndToEnd, PartitionStaysExactUnderRetransmission) {
  // Drop a pull reply and a completion ack mid-transfer: the receive
  // span now covers a retransmission round-trip, and the blame walker
  // must still partition the (much longer) total exactly — lost time
  // lands in a category, never in an unaccounted residual.
  bench::Cluster cluster;
  bench::OmxConfig cfg = bench::cfg_omx_ioat();
  cfg.retrans_timeout = 40 * sim::kMicrosecond;
  cluster.add_nodes(2, cfg);
  cluster.engine().spans().enable();
  cluster.engine().attrib().enable();
  fault::Plan plan(21);
  plan.drop_nth(fault::Match::PullReply, 3);
  plan.drop_nth(fault::Match::LargeAck, 0);
  cluster.network().set_fault_injector(&plan);
  bench::run_pingpong(cluster, 512 * sim::KiB, 2, /*warmup=*/0);

  EXPECT_EQ(cluster.network().counters().get("net.fault_drops"), 2u);
  std::uint64_t recoveries = 0;
  for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
    const auto& d = cluster.node(n).driver().counters();
    recoveries += d.get("driver.pull_retransmits") +
                  d.get("driver.pull_rereqs") +
                  d.get("driver.eager_retransmits");
  }
  EXPECT_GT(recoveries, 0u);

  const obs::SpanTable& spans = cluster.engine().spans();
  ASSERT_EQ(spans.size(), 4u);
  for (const auto& [key, s] : spans.all()) {
    const obs::BlameVec v =
        obs::attribute_blame(s, cluster.engine().attrib().find(key));
    EXPECT_EQ(obs::blame_sum(v), s.total_ns());
  }
  obs::AttribReport report;
  report.build(spans, cluster.engine().attrib());
  EXPECT_EQ(report.sum_mismatches(), 0u);
}

TEST(AttribReport, AggregatesAndExportsDeterministically) {
  bench::Cluster cluster;
  cluster.add_nodes(2, bench::cfg_omx_ioat());
  cluster.engine().spans().enable();
  cluster.engine().attrib().enable();
  bench::run_pingpong(cluster, sim::MiB, 2, /*warmup=*/0);

  obs::AttribReport report;
  report.build(cluster.engine().spans(), cluster.engine().attrib());
  EXPECT_EQ(report.messages(), 4u);
  EXPECT_EQ(report.sum_mismatches(), 0u);
  ASSERT_EQ(report.classes().count(sim::MiB), 1u);
  const auto& agg = report.classes().at(sim::MiB);
  EXPECT_EQ(agg.msgs, 4u);
  // Overlapped I/OAT receive: wire serialization is the critical path.
  EXPECT_EQ(obs::AttribReport::class_critical(agg), obs::Blame::Wire);

  obs::Registry reg;
  report.to_registry(reg);
  cluster.engine().attrib().to_registry(reg);
  EXPECT_EQ(reg.all_histograms().at("attrib.1MB.total_ns").count(), 4u);
  EXPECT_EQ(reg.all_histograms().at("attrib.1MB.wire_ns").count(), 4u);
  EXPECT_EQ(reg.get("attrib.1MB.critical.wire"), 4u);
  EXPECT_GT(reg.all_histograms().at("attrib.wait.dma-transfer_ns").count(),
            0u);
  // Two identical runs export identical JSON (determinism).
  bench::Cluster c2;
  c2.add_nodes(2, bench::cfg_omx_ioat());
  c2.engine().spans().enable();
  c2.engine().attrib().enable();
  bench::run_pingpong(c2, sim::MiB, 2, /*warmup=*/0);
  obs::AttribReport r2;
  r2.build(c2.engine().spans(), c2.engine().attrib());
  obs::Registry reg2;
  r2.to_registry(reg2);
  c2.engine().attrib().to_registry(reg2);
  auto dump = [](const obs::Registry& r) {
    std::FILE* f = std::tmpfile();
    r.dump_json(f);
    const long len = (std::fseek(f, 0, SEEK_END), std::ftell(f));
    std::rewind(f);
    std::string out(static_cast<std::size_t>(len), '\0');
    EXPECT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
    std::fclose(f);
    return out;
  };
  EXPECT_EQ(dump(reg), dump(reg2));
}

// ---------------------------------------------------------------------
// Attribution off is free
// ---------------------------------------------------------------------

TEST(AttribTable, DisabledIsInert) {
  obs::AttribTable t;
  t.begin(obs::span_key(0, 1), 0, 4096);
  t.add(obs::span_key(0, 1), obs::Wait::BhExec, 100);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.find(obs::span_key(0, 1)), nullptr);
  EXPECT_EQ(t.stamp_hist(obs::Wait::BhExec).count(), 0u);
}

TEST(AttribTable, OffAddsNoEventsAndOnDoesNotChangeTiming) {
  // Attribution is bookkeeping only: with it off nothing is recorded
  // and with it on the simulated timing is bit-identical.
  auto run = [](bool on, std::uint64_t* events_out) {
    bench::Cluster cluster;
    cluster.add_nodes(2, bench::cfg_omx_ioat());
    if (on) cluster.engine().attrib().enable();
    const sim::Time t = bench::run_pingpong(cluster, sim::MiB, 2,
                                            /*warmup=*/1);
    if (!on) {
      EXPECT_EQ(cluster.engine().attrib().size(), 0u);
    }
    if (events_out) *events_out = cluster.engine().events_scheduled();
    return t;
  };
  std::uint64_t ev_off = 0, ev_on = 0;
  const sim::Time off = run(false, &ev_off);
  const sim::Time on = run(true, &ev_on);
  EXPECT_EQ(off, on);
  EXPECT_EQ(ev_off, ev_on);
  EXPECT_GT(off, 0);
}

}  // namespace
