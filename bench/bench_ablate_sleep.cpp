// Ablation / Section VI extension: the I/OAT hardware cannot raise an
// interrupt, so synchronous copies busy-poll.  The paper proposes
// sleeping until the predicted completion instead.  Compares busy-poll
// and predicted-sleep for the shared-memory path: same throughput, far
// less CPU burnt in the driver.
#include <cstdio>

#include "common.hpp"

using namespace openmx;
using namespace openmx::bench;

namespace {

struct SleepStats {
  double mibs = 0;
  double driver_cpu = 0;  // driver share of one core during the run
};

SleepStats run(bool sleep, std::size_t len, int iters) {
  core::OmxConfig cfg = cfg_omx();
  cfg.ioat_shm = true;
  cfg.sleep_sync_copy = sleep;
  core::Cluster cluster;
  cluster.add_node(cfg);
  mem::Buffer buf0(len, 1), buf1(len, 2);
  sim::Time t0 = 0, t1 = 0;
  cluster.spawn(cluster.node(0), 0, "ping", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    for (int i = 0; i < iters + 1; ++i) {
      if (i == 1) t0 = p.now();
      ep.wait(ep.isend(buf0.data(), len, {0, 1}, 7));
      ep.wait(ep.irecv(buf0.data(), len, 7));
    }
    t1 = p.now();
  });
  cluster.spawn(cluster.node(0), 4, "pong", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    for (int i = 0; i < iters + 1; ++i) {
      ep.wait(ep.irecv(buf1.data(), len, 7));
      ep.wait(ep.isend(buf1.data(), len, {0, 0}, 7));
    }
  });
  cluster.run();
  SleepStats st;
  st.mibs = sim::mib_per_second(len, (t1 - t0) / (2 * iters));
  st.driver_cpu =
      static_cast<double>(cluster.node(0).machine().busy_all_cores(
          cpu::Cat::DriverSyscall)) /
      static_cast<double>(t1 - t0);
  return st;
}

}  // namespace

int main() {
  std::printf("=== synchronous shm copies: busy-poll vs predicted sleep "
              "===\n");
  std::printf("%-10s %16s %16s %16s %16s\n", "size", "poll MiB/s",
              "sleep MiB/s", "poll drv CPU", "sleep drv CPU");
  for (std::size_t len : {2 * sim::MiB, 4 * sim::MiB, 16 * sim::MiB}) {
    const SleepStats poll = run(false, len, 6);
    const SleepStats slp = run(true, len, 6);
    std::printf("%-10s %16.0f %16.0f %15.0f%% %15.0f%%\n",
                size_label(len).c_str(), poll.mibs, slp.mibs,
                100 * poll.driver_cpu, 100 * slp.driver_cpu);
  }
  std::printf("\npaper (Section VI): sleeping until the predicted completion "
              "'would enable better overlap of synchronous copies'\n");
  return 0;
}
