#pragma once

// Fig. 12-style multi-node ring mesh used to measure simulation speed:
// every node streams a mix of eager, multi-fragment and rendezvous
// messages to its ring successor.  The same workload drives the
// sequential Cluster and the multi-LP ParallelCluster, so events/sec
// and scale-out speedup compare like for like.  Shared by
// bench_sim_speed (the KPI measurement + metrics JSON) and bench_guard
// (the single-worker parity guard row).

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/parallel_cluster.hpp"

namespace openmx::bench {

/// One simulation-speed measurement: how fast the harness chews through
/// simulated events, in wall-clock terms.
struct SimSpeedPoint {
  double events_per_sec = 0;
  std::uint64_t events = 0;   // engine events scheduled over the run
  double wall_s = 0;
  sim::Time vtime = 0;  // final virtual time (multi-LP overshoots the last
                        // event by up to one lookahead window)
};

/// Spawns the ring traffic on a Cluster or ParallelCluster.  Buffers are
/// owned by the returned holder; keep it alive across run().
template <typename ClusterT>
std::shared_ptr<void> spawn_ring_mesh(ClusterT& cluster, int nnodes,
                                      int iters) {
  struct Bufs {
    mem::Buffer s16k = mem::Buffer(16 * sim::KiB, 1);
    mem::Buffer s256k = mem::Buffer(256 * sim::KiB, 2);
    mem::Buffer r16k = mem::Buffer(16 * sim::KiB, 0);
    mem::Buffer r256k = mem::Buffer(256 * sim::KiB, 0);
  };
  auto bufs = std::make_shared<std::vector<Bufs>>(
      static_cast<std::size_t>(nnodes));

  for (int i = 0; i < nnodes; ++i) {
    const int next = (i + 1) % nnodes;
    cluster.spawn(
        cluster.node(static_cast<std::size_t>(i)), 0,
        "ring" + std::to_string(i), [bufs, i, next, iters](Process& p) {
          Endpoint ep(p, i);
          Bufs& b = (*bufs)[static_cast<std::size_t>(i)];
          for (int it = 0; it < iters; ++it) {
            const std::uint64_t tag = static_cast<std::uint64_t>(it) * 4;
            core::Request* r256k =
                ep.irecv(b.r256k.data(), 256 * sim::KiB, tag + 1);
            core::Request* r16k =
                ep.irecv(b.r16k.data(), 16 * sim::KiB, tag + 2);
            core::Request* s256k =
                ep.isend(b.s256k.data(), 256 * sim::KiB,
                         core::Addr{next, static_cast<std::uint16_t>(next)},
                         tag + 1);
            core::Request* s16k =
                ep.isend(b.s16k.data(), 16 * sim::KiB,
                         core::Addr{next, static_cast<std::uint16_t>(next)},
                         tag + 2);
            ep.wait(s256k);
            ep.wait(s16k);
            ep.wait(r256k);
            ep.wait(r16k);
          }
        });
  }
  return bufs;
}

/// Sequential single-engine reference.
inline SimSpeedPoint sim_speed_sequential(int nnodes, int iters) {
  core::Cluster cluster;
  cluster.add_nodes(nnodes, cfg_omx());
  auto hold = spawn_ring_mesh(cluster, nnodes, iters);
  const auto t0 = std::chrono::steady_clock::now();
  cluster.run();
  const auto t1 = std::chrono::steady_clock::now();
  SimSpeedPoint p;
  p.events = cluster.engine().events_scheduled();
  p.wall_s = std::chrono::duration<double>(t1 - t0).count();
  p.events_per_sec = p.wall_s > 0 ? static_cast<double>(p.events) / p.wall_s
                                  : 0;
  p.vtime = cluster.engine().now();
  return p;
}

/// Multi-LP run: one LP per node, executed on `workers` OS threads.
/// When `sched_metrics` is given the per-LP scheduler counters
/// (lp.<id>.windows/events/barrier_stall_ns, lp.critical.*) are folded
/// into it after the run; when `lp_trace_path` is set the window log is
/// enabled and rendered as one Perfetto track per LP.
inline SimSpeedPoint sim_speed_multi_lp(int nnodes, unsigned workers,
                                        int iters,
                                        obs::Registry* sched_metrics = nullptr,
                                        const std::string& lp_trace_path = {}) {
  core::ParallelCluster cluster(nnodes);
  cluster.add_nodes(nnodes, cfg_omx());
  if (!lp_trace_path.empty()) cluster.scheduler().enable_window_log();
  auto hold = spawn_ring_mesh(cluster, nnodes, iters);
  const auto t0 = std::chrono::steady_clock::now();
  cluster.run(workers);
  const auto t1 = std::chrono::steady_clock::now();
  if (sched_metrics) cluster.collect_scheduler_metrics(*sched_metrics);
  if (!lp_trace_path.empty())
    obs::write_lp_trace_file(lp_trace_path, cluster.scheduler().window_log());
  SimSpeedPoint p;
  p.events = cluster.events_scheduled();
  p.wall_s = std::chrono::duration<double>(t1 - t0).count();
  p.events_per_sec = p.wall_s > 0 ? static_cast<double>(p.events) / p.wall_s
                                  : 0;
  p.vtime = cluster.now();
  return p;
}

}  // namespace openmx::bench
