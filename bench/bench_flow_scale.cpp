// Background-traffic scaling of the fluid network model (ROADMAP item 3
// / hybrid-fidelity tentpole): sweeps the number of background endpoints
// to 131072 while measuring wall-clock solver throughput, and shows the
// per-event cost is independent of transfer size — the O(active flows),
// not O(frames), property the flow model exists for.  Finishes with the
// cross-validation table against the exact packet engine.
//
//   bench_flow_scale          full sweep (~131k endpoints)
//   bench_flow_scale --smoke  CI-sized subset, same checks (tier-1)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common.hpp"
#include "flow_xval.hpp"
#include "net/flow.hpp"
#include "obs/monitor.hpp"

using namespace openmx;
using namespace openmx::bench;

namespace {

struct ScalePoint {
  int endpoints = 0;
  std::size_t bytes = 0;
  std::uint64_t flows = 0;           // completed transfers
  std::uint64_t sim_events = 0;      // engine events scheduled
  double visits_per_flow = 0;        // solver flow-visits / completed flow
  double wall_ms = 0;
  double flows_per_sec = 0;
  std::size_t monitor_samples = 0;   // live-monitor snapshots taken
  std::size_t slo_breaches = 0;      // watchdogs that fired during the run
};

/// Disjoint background pairs (2i -> 2i+1), each restarting its transfer
/// `rounds` times: the steady state the fluid model is built for.
ScalePoint run_scale_point(int endpoints, std::size_t bytes, int rounds) {
  sim::Engine eng;
  net::FlowNetwork flow(eng, flow_params_like());
  flow.ensure_endpoints(static_cast<std::size_t>(endpoints));

  // Live monitor, polled at each flow completion: the solver-efficiency
  // watchdog fires (once) if incremental re-solve stops being
  // O(component).  Visits are normalized by *started* flows — every
  // start charges at least one visit, so the ratio sits near 1 on this
  // disjoint-pair workload from the very first sample (completed flows
  // would read 512 while the batch drains); 8 marks a collapse, not
  // noise.
  obs::Monitor monitor(flow.counters(), sim::kMillisecond);
  monitor.watch("flow.completed");
  monitor.watch("flow.solver_visits");
  monitor.add_slo("flow.visits_per_flow", 8.0, [](const obs::Registry& r) {
    const double started = static_cast<double>(r.get("flow.started"));
    return started > 0
               ? static_cast<double>(r.get("flow.solver_visits")) / started
               : 0.0;
  });
  flow.set_monitor(&monitor);

  std::function<void(int, int)> start = [&](int pair, int left) {
    flow.transfer(2 * pair, 2 * pair + 1, bytes,
                  [&, pair, left](const net::FlowInfo&) {
                    if (left > 1) start(pair, left - 1);
                  });
  };
  const auto t0 = std::chrono::steady_clock::now();
  for (int p = 0; p < endpoints / 2; ++p) start(p, rounds);
  eng.run();
  const auto t1 = std::chrono::steady_clock::now();

  ScalePoint sp;
  sp.endpoints = endpoints;
  sp.bytes = bytes;
  sp.flows = flow.counters().get("flow.completed");
  sp.sim_events = eng.events_scheduled();
  const auto visits = flow.counters().get("flow.solver_visits");
  sp.visits_per_flow =
      sp.flows ? static_cast<double>(visits) / static_cast<double>(sp.flows)
               : 0;
  sp.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  sp.flows_per_sec =
      sp.wall_ms > 0 ? 1000.0 * static_cast<double>(sp.flows) / sp.wall_ms : 0;
  sp.monitor_samples = monitor.samples_taken();
  sp.slo_breaches = monitor.breaches();
  return sp;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  obs::Registry metrics;

  // --- endpoint-count sweep -------------------------------------------
  std::vector<int> endpoint_counts =
      smoke ? std::vector<int>{1024, 8192}
            : std::vector<int>{1024, 8192, 32768, 131072};
  const int rounds = 4;
  std::printf("=== background endpoint sweep (1 MiB flows, %d rounds) ===\n",
              rounds);
  std::printf("%10s %10s %12s %14s %12s %9s %8s\n", "endpoints", "flows",
              "visits/flow", "flows/sec", "wall ms", "samples", "breach");
  std::size_t total_breaches = 0;
  for (int n : endpoint_counts) {
    const ScalePoint sp = run_scale_point(n, sim::MiB, rounds);
    std::printf("%10d %10llu %12.2f %14.0f %12.1f %9zu %8zu\n", sp.endpoints,
                static_cast<unsigned long long>(sp.flows), sp.visits_per_flow,
                sp.flows_per_sec, sp.wall_ms, sp.monitor_samples,
                sp.slo_breaches);
    total_breaches += sp.slo_breaches;
    const std::string tag = "flow_scale.n" + std::to_string(n);
    metrics.add(tag + ".flows", sp.flows);
    metrics.add(tag + ".sim_events", sp.sim_events);
    metrics.add(tag + ".visits_per_flow_x1000",
                static_cast<std::uint64_t>(1000.0 * sp.visits_per_flow));
    metrics.add(tag + ".monitor_samples", sp.monitor_samples);
  }
  metrics.add("flow_scale.slo_breaches", total_breaches);
  metrics.add("flow_scale.max_endpoints",
              static_cast<std::uint64_t>(endpoint_counts.back()));

  // --- transfer-size independence -------------------------------------
  // Same endpoint count, transfer sizes spanning 256x: a fluid event
  // count that moves with size would mean per-frame cost crept back in.
  const int n_fixed = smoke ? 1024 : 8192;
  std::printf("\n=== per-event cost vs transfer size (%d endpoints) ===\n",
              n_fixed);
  std::printf("%10s %12s %14s %12s\n", "size", "sim events", "visits/flow",
              "wall ms");
  std::uint64_t events_ref = 0;
  bool size_independent = true;
  for (std::size_t bytes :
       {64 * sim::KiB, sim::MiB, 16 * sim::MiB}) {
    const ScalePoint sp = run_scale_point(n_fixed, bytes, rounds);
    std::printf("%10s %12llu %14.2f %12.1f\n", size_label(bytes).c_str(),
                static_cast<unsigned long long>(sp.sim_events),
                sp.visits_per_flow, sp.wall_ms);
    if (!events_ref) events_ref = sp.sim_events;
    if (sp.sim_events != events_ref) size_independent = false;
    metrics.add("flow_scale.size_" + size_label(bytes) + ".sim_events",
                sp.sim_events);
  }
  std::printf("per-event cost independent of transfer size: %s\n",
              size_independent ? "yes (identical event counts)" : "NO");
  metrics.add("flow_scale.size_independent", size_independent ? 1 : 0);

  // --- cross-validation against the packet engine ---------------------
  std::printf("\n=== fluid vs packet cross-validation (nocopy config) ===\n");
  const core::OmxConfig cfg = cfg_omx_nocopy();
  const sim::Time overhead = flow_calibrate_pingpong(cfg);
  std::printf("calibrated per-message host overhead: %.2f us\n",
              sim::to_micros(overhead));
  std::printf("%10s %12s\n", "size", "flow/packet");
  for (std::size_t bytes : {256 * sim::KiB, sim::MiB, 4 * sim::MiB}) {
    const int iters = bytes >= sim::MiB ? 3 : 6;
    const double ratio = xval_pingpong_ratio(cfg, bytes, iters, overhead);
    std::printf("%10s %12.4f\n", size_label(bytes).c_str(), ratio);
    metrics.add("flow_xval.pingpong_" + size_label(bytes) + "_ratio_x1000",
                static_cast<std::uint64_t>(1000.0 * ratio));
  }

  if (!size_independent) {
    std::fprintf(stderr, "bench_flow_scale: event count varies with "
                         "transfer size — fluid model regressed to "
                         "per-frame cost\n");
    return 1;
  }
  emit_metrics_json("flow_scale", metrics);
  return 0;
}
