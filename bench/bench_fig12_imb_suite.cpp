// Figure 12: "Intel MPI Benchmarks performance on top of Open-MX
// (normalized to the performance on top of MXoE), with I/OAT being
// enabled or not, with 2 nodes and 1 or 2 processes per node" — at
// 128 kB and 4 MB message sizes.
//
// Paper reference points: at 128 kB, I/OAT lifts Open-MX to an average
// 68 % of MXoE (a 24 % improvement); at 4 MB with 1 ppn the improvement
// averages 32 % (reaching 90 % of MXoE); with 2 ppn it averages 41 %
// (up to 94 %) thanks to the I/OAT shared-memory path; Open-MX even
// passes native MXoE on several tests.
#include <cstdio>

#include "common.hpp"
#include "imb/imb.hpp"
#include "mpi/world.hpp"

using namespace openmx;
using namespace openmx::bench;

namespace {

/// One IMB point plus the cluster's telemetry: SweepRunner jobs return
/// both, and the caller folds the registries in index order so the merged
/// metrics are identical for any worker count.
struct TimedPoint {
  sim::Time t = 0;
  obs::Registry reg;
};

TimedPoint imb_time(const core::OmxConfig& cfg, imb::Test test,
                    std::size_t bytes, int ppn, int reps) {
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  mpi::World world(cluster, mpi::placements(2, ppn));
  TimedPoint out;
  world.run([&](mpi::Comm& c) {
    const sim::Time t = imb::run_test(c, test, bytes, reps);
    if (c.rank() == 0) out.t = t;
  });
  collect_cluster_metrics(cluster, out.reg);
  return out;
}

void run_panel(std::size_t bytes, int reps, obs::Registry& metrics) {
  std::printf("\n--- %s messages, percentage of MXoE performance ---\n",
              size_label(bytes).c_str());
  std::printf("%-12s %10s %12s %10s %12s\n", "test", "OMX 1ppn",
              "OMX+IOAT 1ppn", "OMX 2ppn", "OMX+IOAT 2ppn");

  // All (test, config, ppn) simulations of the panel are independent;
  // fan them out across worker threads and print from the index-ordered
  // results (identical to the old sequential loop, just faster).
  const std::vector<imb::Test>& tests = imb::all_tests();
  struct Point {
    core::OmxConfig cfg;
    int ppn;
  };
  const std::vector<Point> points = {
      {cfg_mx(), 1},  {cfg_omx(), 1}, {cfg_omx_ioat(), 1},
      {cfg_mx(), 2},  {cfg_omx(), 2}, {cfg_omx_ioat(), 2},
  };
  std::vector<TimedPoint> results = parallel_points<TimedPoint>(
      tests.size() * points.size(), [&](std::size_t i) {
        const Point& pt = points[i % points.size()];
        return imb_time(pt.cfg, tests[i / points.size()], bytes, pt.ppn, reps);
      });
  std::vector<sim::Time> times;
  for (TimedPoint& r : results) {
    times.push_back(r.t);
    metrics.merge(r.reg);  // index order: deterministic for any worker count
  }

  double sum_omx1 = 0, sum_io1 = 0, sum_omx2 = 0, sum_io2 = 0;
  int n = 0;
  for (std::size_t ti = 0; ti < tests.size(); ++ti) {
    const sim::Time* row = &times[ti * points.size()];
    const sim::Time mx1 = row[0], omx1 = row[1], io1 = row[2];
    const sim::Time mx2 = row[3], omx2 = row[4], io2 = row[5];
    const double p_omx1 = 100.0 * static_cast<double>(mx1) / omx1;
    const double p_io1 = 100.0 * static_cast<double>(mx1) / io1;
    const double p_omx2 = 100.0 * static_cast<double>(mx2) / omx2;
    const double p_io2 = 100.0 * static_cast<double>(mx2) / io2;
    std::printf("%-12s %10.0f %12.0f %10.0f %12.0f\n",
                imb::test_name(tests[ti]), p_omx1, p_io1, p_omx2, p_io2);
    sum_omx1 += p_omx1;
    sum_io1 += p_io1;
    sum_omx2 += p_omx2;
    sum_io2 += p_io2;
    ++n;
  }
  std::printf("%-12s %10.0f %12.0f %10.0f %12.0f\n", "average",
              sum_omx1 / n, sum_io1 / n, sum_omx2 / n, sum_io2 / n);
  std::printf("I/OAT improvement: 1ppn +%.0f%%, 2ppn +%.0f%%\n",
              100.0 * (sum_io1 / sum_omx1 - 1.0),
              100.0 * (sum_io2 / sum_omx2 - 1.0));
}

}  // namespace

int main() {
  obs::Registry metrics;
  run_panel(128 * sim::KiB, 8, metrics);
  run_panel(4 * sim::MiB, 3, metrics);
  std::printf("\npaper: 128kB I/OAT avg 68%% of MXoE (+24%%); 4MB 1ppn avg "
              "90%% (+32%%); 4MB 2ppn up to 94%% (+41%%)\n");
  emit_metrics_json("fig12_imb_suite", metrics);
  return 0;
}
