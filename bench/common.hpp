#pragma once

// Shared harness code for the figure-reproduction benchmarks: ping-pong
// and streaming workloads at the MX API level, table formatting, and the
// standard configurations (native MX, Open-MX, Open-MX + I/OAT, ...).

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/driver.hpp"
#include "core/endpoint.hpp"
#include "mem/aligned_buffer.hpp"
#include "obs/attrib.hpp"
#include "obs/monitor.hpp"
#include "obs/perfetto.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "sim/sweep.hpp"

namespace openmx::bench {

using core::Addr;
using core::Cluster;
using core::Endpoint;
using core::OmxConfig;
using core::Process;
using core::Request;
using sim::Time;

/// Canonical message-size sweep of the paper's throughput figures
/// (16 B ... `max`, doubling).
inline std::vector<std::size_t> size_sweep(std::size_t min_size,
                                           std::size_t max_size) {
  std::vector<std::size_t> v;
  for (std::size_t s = min_size; s <= max_size; s *= 2) v.push_back(s);
  return v;
}

/// Runs `job(i)` for i in [0, n) across worker threads and returns the
/// results in index order.  Each job builds its own Cluster, so results
/// are bit-identical to a sequential run; OPENMX_SWEEP_THREADS overrides
/// the worker count (1 = sequential reference).
template <typename R, typename Fn>
std::vector<R> parallel_points(std::size_t n, Fn&& job) {
  sim::SweepRunner runner{sim::sweep_options_from_env()};
  return runner.map<R>(n, std::function<R(std::size_t)>(std::forward<Fn>(job)));
}

/// Pre-canned configurations matching the paper's curve labels.
inline OmxConfig cfg_mx() {
  OmxConfig c;
  c.native_mx = true;
  return c;
}
inline OmxConfig cfg_omx() { return OmxConfig{}; }
inline OmxConfig cfg_omx_ioat() {
  OmxConfig c;
  c.ioat_large = true;
  c.ioat_shm = true;
  return c;
}
inline OmxConfig cfg_omx_nocopy() {
  OmxConfig c;
  c.ignore_bh_copy = true;
  return c;
}

/// Folds every per-component registry of the cluster into `out`, in a
/// fixed order (node index, then component, then the network), so the
/// merged result is deterministic and SweepRunner-safe.
inline void collect_cluster_metrics(Cluster& cluster, obs::Registry& out) {
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    core::Node& n = cluster.node(i);
    out.merge(n.driver().counters());
    out.merge(n.driver().regcache().counters());
    out.merge(n.nic().counters());
    out.merge(n.ioat().counters());
  }
  out.merge(cluster.network().counters());
}

/// Where bench artifacts (BENCH_*.json metrics, traces) land: the
/// OMX_BENCH_OUT_DIR directory when set, else the current directory.
/// Every file a bench emits at runtime goes through this one helper, so
/// `OMX_BENCH_OUT_DIR=build ctest` keeps the source tree clean — the
/// committed reference data lives in bench/baselines/ only.
inline std::string out_path(const std::string& filename) {
  const char* dir = std::getenv("OMX_BENCH_OUT_DIR");
  // Absolute paths pass through untouched, so CLIs (trace_viewer,
  // omx_blame, omx_postmortem) can route user-supplied output names here
  // without breaking explicit destinations.
  if (!dir || !*dir || (!filename.empty() && filename.front() == '/'))
    return filename;
  std::string p(dir);
  if (p.back() != '/') p += '/';
  return p + filename;
}

/// Prints the metrics block to stdout and writes it to
/// out_path("BENCH_<name>_metrics.json") — every bench_fig* target calls
/// this so each run leaves a machine-readable record of its counters and
/// histograms.
inline void emit_metrics_json(const std::string& bench_name,
                              const obs::Registry& reg) {
  std::printf("\n--- metrics: %s ---\n", bench_name.c_str());
  reg.dump_json(stdout);
  const std::string path = out_path("BENCH_" + bench_name + "_metrics.json");
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    reg.dump_json(f);
    std::fclose(f);
    std::printf("metrics written to %s\n", path.c_str());
  }
}

/// The ping-pong loop itself, on a caller-prepared cluster (so callers can
/// enable telemetry on the engine first).  Returns one-way time.  An
/// optional live monitor is polled from the event loop.
inline Time run_pingpong(Cluster& cluster, std::size_t len, int iters,
                         int warmup, obs::Monitor* monitor = nullptr) {
  mem::Buffer buf0(len ? len : 1, 1), buf1(len ? len : 1, 2);
  Time t0 = 0, t1 = 0;

  cluster.spawn(cluster.node(0), 0, "ping", [&](Process& p) {
    Endpoint ep(p, 0);
    for (int i = 0; i < warmup + iters; ++i) {
      if (i == warmup) t0 = p.now();
      ep.wait(ep.isend(buf0.data(), len, Addr{1, 1}, 7));
      ep.wait(ep.irecv(buf0.data(), len, 7));
    }
    t1 = p.now();
  });
  cluster.spawn(cluster.node(1), 0, "pong", [&](Process& p) {
    Endpoint ep(p, 1);
    for (int i = 0; i < warmup + iters; ++i) {
      ep.wait(ep.irecv(buf1.data(), len, 7));
      ep.wait(ep.isend(buf1.data(), len, Addr{0, 0}, 7));
    }
  });
  cluster.run(monitor);
  return (t1 - t0) / (2 * iters);
}

/// One ping-pong timing at the MX API level between two nodes
/// (node 0 core 0 <-> node 1 core 0), as in Figures 3 and 8.
/// Returns the one-way time per message (RTT/2) after warm-up.  When
/// `metrics` is given, the cluster's counters/histograms are merged into
/// it after the run.
inline Time pingpong_oneway(const OmxConfig& cfg, std::size_t len, int iters,
                            int warmup = 2,
                            core::NodeParams np = {},
                            net::NetParams netp = {},
                            obs::Registry* metrics = nullptr) {
  Cluster cluster(np, netp);
  cluster.add_nodes(2, cfg);
  const Time t = run_pingpong(cluster, len, iters, warmup);
  if (metrics) collect_cluster_metrics(cluster, *metrics);
  return t;
}

inline double pingpong_mibs(const OmxConfig& cfg, std::size_t len, int iters,
                            core::NodeParams np = {},
                            net::NetParams netp = {},
                            obs::Registry* metrics = nullptr) {
  return sim::mib_per_second(
      len, pingpong_oneway(cfg, len, iters, 2, np, netp, metrics));
}

/// Result of a fully instrumented ping-pong (traced_pingpong below).
struct TracedResult {
  Time oneway = 0;
  std::size_t num_spans = 0;
  double avg_overlap_us = 0;  // mean Fig. 8 DMA/ingress overlap per message
  obs::AttribReport report;   // per-size-class latency attribution
};

/// Ping-pong with full telemetry: spans + utilization timeline +
/// wait-state attribution enabled, Perfetto JSON written to `json_path`,
/// per-message waterfalls and the blame breakdown printed.  This is how
/// Figure 8 benches visualize the I/OAT overlap window.
inline TracedResult traced_pingpong(const OmxConfig& cfg, std::size_t len,
                                    int iters, const std::string& json_path,
                                    obs::Registry* metrics = nullptr,
                                    bool print_waterfall = true) {
  Cluster cluster;
  cluster.add_nodes(2, cfg);
  auto& eng = cluster.engine();
  eng.timeline().enable();
  eng.spans().enable();
  eng.attrib().enable();
  // Dual-clock trace: capture host-time profiler slices alongside the
  // virtual-time timeline (rendered as extra "host-thread*" processes).
  obs::WallProfiler& prof = obs::WallProfiler::instance();
  prof.reset();
  prof.set_slice_capacity(1 << 16);

  TracedResult r;
  r.oneway = run_pingpong(cluster, len, iters, /*warmup=*/1);
  r.num_spans = eng.spans().size();
  double total_overlap = 0;
  for (const auto& [key, s] : eng.spans().all())
    total_overlap += sim::to_micros(s.overlap_ns());
  if (r.num_spans)
    r.avg_overlap_us = total_overlap / static_cast<double>(r.num_spans);
  r.report.build(eng.spans(), eng.attrib());

  if (print_waterfall) {
    obs::dump_waterfall(stdout, eng.spans());
    std::printf("\n--- latency attribution ---\n");
    r.report.print(stdout);
  }
  if (obs::write_dual_clock_trace_file(json_path, eng.timeline(), eng.spans(),
                                       static_cast<int>(cluster.num_nodes()),
                                       &eng.attrib()))
    std::printf(
        "dual-clock perfetto trace written to %s (%zu spans, avg dma-overlap "
        "%.3f us, %zu host threads)\n",
        json_path.c_str(), r.num_spans, r.avg_overlap_us, prof.num_threads());
  prof.set_slice_capacity(0);
  if (metrics) {
    collect_cluster_metrics(cluster, *metrics);
    r.report.to_registry(*metrics);
    eng.attrib().to_registry(*metrics);
  }
  return r;
}

/// Intra-node ping-pong between two processes of one node (Figure 10).
/// `core_a`/`core_b` select the placement: {0,1} shares an L2 subchip,
/// {0,4} crosses sockets.
inline Time local_pingpong_oneway(const OmxConfig& cfg, std::size_t len,
                                  int iters, int core_a, int core_b,
                                  int warmup = 2,
                                  obs::Registry* metrics = nullptr) {
  Cluster cluster;
  cluster.add_node(cfg);
  mem::Buffer buf0(len ? len : 1, 1), buf1(len ? len : 1, 2);
  Time t0 = 0, t1 = 0;

  cluster.spawn(cluster.node(0), core_a, "ping", [&](Process& p) {
    Endpoint ep(p, 0);
    for (int i = 0; i < warmup + iters; ++i) {
      if (i == warmup) t0 = p.now();
      ep.wait(ep.isend(buf0.data(), len, Addr{0, 1}, 7));
      ep.wait(ep.irecv(buf0.data(), len, 7));
    }
    t1 = p.now();
  });
  cluster.spawn(cluster.node(0), core_b, "pong", [&](Process& p) {
    Endpoint ep(p, 1);
    for (int i = 0; i < warmup + iters; ++i) {
      ep.wait(ep.irecv(buf1.data(), len, 7));
      ep.wait(ep.isend(buf1.data(), len, Addr{0, 0}, 7));
    }
  });
  cluster.run();
  if (metrics) collect_cluster_metrics(cluster, *metrics);
  return (t1 - t0) / (2 * iters);
}

/// CPU-usage measurement of Figure 9: a unidirectional stream of
/// synchronous large messages into node 1; returns the receiver's busy
/// fraction of one core, split by category, over the active window.
/// `dma` additionally reports the I/OAT channels' busy fraction over the
/// same window — the engine-side half of the CPU/DMA utilization picture.
struct CpuUsage {
  double user = 0, driver = 0, bh = 0;
  [[nodiscard]] double total() const { return user + driver + bh; }
  double dma = 0;
  double throughput_mibs = 0;
};

/// The breakdown is derived from the obs utilization timeline: each busy
/// slice of node 1's cores is clipped to the measurement window and summed
/// per category, replacing the bespoke busy-counter deltas this harness
/// used to keep (a regression test asserts both accountings agree).
inline CpuUsage stream_cpu_usage(const OmxConfig& cfg, std::size_t len,
                                 int msgs, obs::Registry* metrics = nullptr) {
  Cluster cluster;
  cluster.add_nodes(2, cfg);
  cluster.engine().timeline().enable();
  mem::Buffer sbuf(len, 1), rbuf(len, 0);
  Time t0 = 0, t1 = 0;

  cluster.spawn(cluster.node(0), 0, "src", [&](Process& p) {
    Endpoint ep(p, 0);
    // Warm-up message, then the measured synchronous stream.
    ep.wait(ep.isend(sbuf.data(), len, Addr{1, 1}, 7));
    for (int i = 0; i < msgs; ++i)
      ep.wait(ep.isend(sbuf.data(), len, Addr{1, 1}, 7));
  });
  cluster.spawn(cluster.node(1), 0, "sink", [&](Process& p) {
    Endpoint ep(p, 1);
    ep.wait(ep.irecv(rbuf.data(), len, 7));
    t0 = p.now();
    for (int i = 0; i < msgs; ++i)
      ep.wait(ep.irecv(rbuf.data(), len, 7));
    t1 = p.now();
  });
  cluster.run();

  const obs::Timeline& tl = cluster.engine().timeline();
  CpuUsage out;
  const double window = static_cast<double>(t1 - t0);
  out.user =
      static_cast<double>(tl.busy_in_window(1, obs::kCatUserLib, t0, t1)) /
      window;
  out.driver =
      static_cast<double>(tl.busy_in_window(1, obs::kCatDriver, t0, t1)) /
      window;
  out.bh =
      static_cast<double>(tl.busy_in_window(1, obs::kCatBottomHalf, t0, t1)) /
      window;
  out.dma =
      static_cast<double>(tl.dma_busy_in_window(1, t0, t1)) / window;
  out.throughput_mibs = sim::mib_per_second(len * static_cast<size_t>(msgs),
                                            t1 - t0);
  if (metrics) collect_cluster_metrics(cluster, *metrics);
  return out;
}

/// Human-readable size label (16B, 4kB, 1MB ... as the paper's axes).
inline std::string size_label(std::size_t s) {
  char buf[32];
  if (s >= sim::MiB)
    std::snprintf(buf, sizeof buf, "%zuMB", s / sim::MiB);
  else if (s >= sim::KiB)
    std::snprintf(buf, sizeof buf, "%zukB", s / sim::KiB);
  else
    std::snprintf(buf, sizeof buf, "%zuB", s);
  return buf;
}

/// Prints a figure table: first column sizes, then one column per series.
inline void print_table(const std::string& title,
                        const std::vector<std::string>& series,
                        const std::vector<std::size_t>& sizes,
                        const std::vector<std::vector<double>>& columns,
                        const std::string& unit) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-10s", "size");
  for (const auto& s : series) std::printf("%22s", s.c_str());
  std::printf("   [%s]\n", unit.c_str());
  for (std::size_t row = 0; row < sizes.size(); ++row) {
    std::printf("%-10s", size_label(sizes[row]).c_str());
    for (const auto& col : columns) std::printf("%22.1f", col[row]);
    std::printf("\n");
  }
}

}  // namespace openmx::bench
