// Small-message latency breakdown (Section VI outlook: "we are also
// looking on improving small message latency").  Half-round-trip times
// for tiny messages across the stacks, plus the per-component budget the
// model charges — the starting point for the paper's proposed
// cache-effect work between interrupt handlers and user-space.
#include <cstdio>

#include "common.hpp"

using namespace openmx;
using namespace openmx::bench;

int main() {
  std::printf("=== small-message half-round-trip latency ===\n");
  std::printf("%-8s %14s %14s %16s\n", "size", "MX (us)", "Open-MX (us)",
              "OMX+I/OAT (us)");
  for (std::size_t s : {std::size_t{0}, std::size_t{16}, std::size_t{128},
                        std::size_t{1024}, std::size_t{4096}}) {
    std::printf("%-8s %14.2f %14.2f %16.2f\n", size_label(s).c_str(),
                sim::to_micros(pingpong_oneway(cfg_mx(), s, 50)),
                sim::to_micros(pingpong_oneway(cfg_omx(), s, 50)),
                sim::to_micros(pingpong_oneway(cfg_omx_ioat(), s, 50)));
  }

  core::NodeParams np;
  const auto& c = np.costs;
  std::printf("\nOpen-MX per-message budget (one direction, 16 B):\n");
  std::printf("  library call        %5ld ns\n",
              static_cast<long>(c.lib_call_ns));
  std::printf("  syscall + command   %5ld ns\n",
              static_cast<long>(c.syscall_ns + c.cmd_post_ns));
  std::printf("  skbuff + doorbell   %5ld ns\n",
              static_cast<long>(c.skb_alloc_ns + c.tx_doorbell_ns));
  std::printf("  wire (hdr+frame)    %5ld ns\n",
              static_cast<long>(
                  net::NetParams{}.latency_ns +
                  sim::duration_for_bytes(16 + 32 + 38, 1244.125e6)));
  std::printf("  interrupt + BH      %5ld ns\n",
              static_cast<long>(net::NetParams{}.intr_ns + c.bh_frag_ns +
                                c.bh_ack_ns));
  std::printf("  event fetch + wake  %5ld ns\n",
              static_cast<long>(c.lib_event_ns + c.lib_wakeup_ns));
  std::printf("\nI/OAT never engages below the 64 kB threshold: tiny\n"
              "latencies are identical with and without offload, as the\n"
              "paper notes ('the performance for smaller messages could\n"
              "not be improved', Section VI).\n");
  return 0;
}
