// Section IV-A micro-benchmarks: descriptor submission time, completion
// check cost, processor copy rate, and the offload break-even sizes.
//
// Paper reference points: submission ~350 ns; completion check negligible
// (an in-order memory read); memcpy ~1.6 GiB/s uncached / up to 12 GiB/s
// cached; break-even ~600 B uncached (~2 kB if the data is in cache).
#include <cstdio>

#include "common.hpp"
#include "dma/ioat.hpp"
#include "mem/memcpy_model.hpp"

using namespace openmx;
using namespace openmx::bench;

int main() {
  sim::Engine engine;
  dma::IoatEngine io(engine);
  const mem::MemcpyModel model;

  std::printf("=== Section IV-A: I/OAT micro-benchmarks ===\n\n");
  std::printf("descriptor submission time:   %ld ns   (paper: ~350 ns)\n",
              static_cast<long>(io.submit_cost(1)));
  std::printf("completion check cost:        %ld ns   (paper: negligible)\n",
              static_cast<long>(io.poll_cost()));

  const sim::Time uncached = model.duration(sim::MiB, 4096, 0.0, false);
  const sim::Time cached = model.duration(sim::MiB, 4096, 1.0, false);
  std::printf("memcpy rate, uncached:        %.2f GiB/s (paper: ~1.6)\n",
              static_cast<double>(sim::MiB) * 1e9 /
                  static_cast<double>(uncached) /
                  static_cast<double>(sim::GiB));
  std::printf("memcpy rate, cached:          %.1f GiB/s (paper: ~12)\n",
              static_cast<double>(sim::MiB) * 1e9 /
                  static_cast<double>(cached) /
                  static_cast<double>(sim::GiB));

  // Break-even for *asynchronous* offload is a CPU-cost comparison: the
  // submission burns ~350 ns of CPU; below the size a memcpy finishes in
  // that time, offloading cannot pay off (paper: "600 bytes may be copied
  // with memcpy (2 kB if in the cache) before I/OAT copy offload becomes
  // interesting").  The cached figure uses the effective copy-through-
  // cache rate (~6 GiB/s read+write), not the 12 GiB/s peak read rate.
  auto breakeven = [&](double bytes_per_s) -> std::size_t {
    const double bytes =
        static_cast<double>(io.submit_cost(1)) * bytes_per_s / 1e9;
    return static_cast<std::size_t>(bytes);
  };
  std::printf("offload break-even, uncached: %zu B  (paper: ~600 B)\n",
              breakeven(1.6 * static_cast<double>(sim::GiB)));
  std::printf("offload break-even, cached:   %zu B  (paper: ~2 kB)\n",
              breakeven(6.0 * static_cast<double>(sim::GiB)));

  // Per-copy completion cost really is a single in-order memory read:
  // demonstrate that polling N completions costs one read each.
  std::printf("\npolling 1000 completions:     %ld ns total (%ld ns each)\n",
              static_cast<long>(1000 * io.poll_cost()),
              static_cast<long>(io.poll_cost()));
  return 0;
}
