#pragma once

// Cross-validation harness for the hybrid-fidelity network: runs the
// same ping-pong workloads through the fluid FlowNetwork and through the
// exact packet engine, and reports the throughput ratio between them.
//
// The fluid model carries only wire physics (fair-share bandwidth at
// Open-MX fragment granularity, one fabric latency); everything the
// packet stack spends per message *off* the wire — interrupt entry,
// driver queueing, process wakeups — is folded into one host-overhead
// constant per configuration, *calibrated* from a single small-message
// packet-level run rather than assumed.  A 16-byte ping-pong is pure
// host overhead (wire time ~50 ns), so the calibration point and the
// validation points (256 kB+) are independent measurements: agreement at
// large sizes is a genuine check of the fluid bandwidth model, not a
// curve fit.

#include <cstddef>
#include <functional>

#include "common.hpp"
#include "core/wire.hpp"
#include "imb/imb.hpp"
#include "mpi/world.hpp"
#include "net/flow.hpp"

namespace openmx::bench {

/// Fluid parameters modeling the same fabric as the packet NetParams,
/// framed at the Open-MX fragment payload (so per-chunk overhead matches
/// the 32-byte Open-MX header + 38-byte Ethernet overhead the packet
/// path charges per fragment).
inline net::FlowParams flow_params_like(const net::NetParams& np = {},
                                        std::size_t frag_payload = 4096) {
  return net::FlowParams::match(np, /*oversub=*/1.0, frag_payload,
                                core::kOmxHeaderBytes);
}

/// One-way time of a fluid-model ping-pong: each leg costs the calibrated
/// host overhead plus the flow's analytic delivery time.  Runs the real
/// FlowNetwork (start → solve → completion event → delivery callback),
/// so it exercises exactly the machinery bench_flow_scale scales up.
inline sim::Time flow_pingpong_oneway(std::size_t len, int iters,
                                      sim::Time host_overhead_ns,
                                      net::FlowParams fp = flow_params_like()) {
  sim::Engine eng;
  net::FlowNetwork flow(eng, fp);
  flow.ensure_endpoints(2);
  int remaining = 2 * iters;
  sim::Time done_at = 0;
  std::function<void(const net::FlowInfo&)> bounce =
      [&](const net::FlowInfo& fi) {
        if (--remaining == 0) {
          done_at = eng.now();
          return;
        }
        eng.schedule(host_overhead_ns, [&, src = fi.dst, dst = fi.src] {
          flow.transfer(src, dst, len, bounce);
        });
      };
  eng.schedule(host_overhead_ns, [&] { flow.transfer(0, 1, len, bounce); });
  eng.run();
  return done_at / (2 * iters);
}

/// Calibrates the per-message host overhead of `cfg`'s packet stack: the
/// measured 16-byte packet one-way time minus the fluid model's wire
/// time for the same message.
inline sim::Time flow_calibrate_pingpong(const core::OmxConfig& cfg,
                                         net::FlowParams fp =
                                             flow_params_like()) {
  sim::Engine eng;
  net::FlowNetwork probe(eng, fp);
  const sim::Time wire16 = probe.uncontended_delivery_ns(16);
  const sim::Time pkt16 = pingpong_oneway(cfg, 16, 8);
  return pkt16 > wire16 ? pkt16 - wire16 : 0;
}

/// Fluid-vs-packet ping-pong throughput ratio at `len` (1.0 = the two
/// fidelities agree exactly).  Both sides are deterministic simulations,
/// so guard rows built on this are machine-independent.
inline double xval_pingpong_ratio(const core::OmxConfig& cfg, std::size_t len,
                                  int iters, sim::Time host_overhead_ns) {
  const double pkt = pingpong_mibs(cfg, len, iters);
  const double flo = sim::mib_per_second(
      len, flow_pingpong_oneway(len, iters, host_overhead_ns));
  return pkt > 0 ? flo / pkt : 0;
}

/// IMB PingPong at the MPI level against the fluid model, calibrated the
/// same way (16-byte IMB run fixes the MPI-stack overhead constant).
inline sim::Time imb_pingpong_oneway(const core::OmxConfig& cfg,
                                     std::size_t bytes, int reps) {
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  mpi::World world(cluster, mpi::placements(2, 1));
  sim::Time rtt = 0;
  world.run([&](mpi::Comm& c) {
    const sim::Time t = imb::run_test(c, imb::Test::PingPong, bytes, reps);
    if (c.rank() == 0) rtt = t;
  });
  return rtt / 2;
}

inline sim::Time flow_calibrate_imb(const core::OmxConfig& cfg,
                                    net::FlowParams fp = flow_params_like()) {
  sim::Engine eng;
  net::FlowNetwork probe(eng, fp);
  const sim::Time wire16 = probe.uncontended_delivery_ns(16);
  const sim::Time imb16 = imb_pingpong_oneway(cfg, 16, 8);
  return imb16 > wire16 ? imb16 - wire16 : 0;
}

inline double xval_imb_ratio(const core::OmxConfig& cfg, std::size_t len,
                             int reps, sim::Time host_overhead_ns) {
  const double pkt =
      sim::mib_per_second(len, imb_pingpong_oneway(cfg, len, reps));
  const double flo = sim::mib_per_second(
      len, flow_pingpong_oneway(len, reps, host_overhead_ns));
  return pkt > 0 ? flo / pkt : 0;
}

/// Canonical deterministic background workload for the solver-throughput
/// guard row: `pairs` disjoint endpoint pairs, each restarting a 1 MiB
/// flow `rounds` times.  Returns solver flow-visits per completed flow —
/// an integer-derived, machine-independent measure of incremental
/// re-solve cost (O(1) for disjoint pairs; growth means the component
/// closure regressed).
inline double flow_solver_visits_per_flow(int pairs, int rounds) {
  sim::Engine eng;
  net::FlowNetwork flow(eng, flow_params_like());
  flow.ensure_endpoints(static_cast<std::size_t>(2 * pairs));
  std::function<void(int, int)> start = [&](int pair, int left) {
    flow.transfer(2 * pair, 2 * pair + 1, sim::MiB,
                  [&, pair, left](const net::FlowInfo&) {
                    if (left > 1) start(pair, left - 1);
                  });
  };
  for (int p = 0; p < pairs; ++p) start(p, rounds);
  eng.run();
  const auto visits = flow.counters().get("flow.solver_visits");
  const auto done = flow.counters().get("flow.completed");
  return done ? static_cast<double>(visits) / static_cast<double>(done) : 0;
}

}  // namespace openmx::bench
