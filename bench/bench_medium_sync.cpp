// Section IV-C: "We implemented synchronous copies in the medium message
// path ... and noticed a performance degradation.  The reason relies in
// OPEN-MX requiring all 4 kB medium fragment copies to be synchronous and
// I/OAT performance for such small copies not being interesting."
//
// Ping-pong across the eager range with the medium-copy offload enabled
// and disabled.  The ring copy is cache-warm (~2.4 GiB/s), so a 4 kB
// synchronous I/OAT round trip (submit + engine latency + poll) loses.
#include <cstdio>

#include "common.hpp"

using namespace openmx;
using namespace openmx::bench;

int main() {
  core::OmxConfig plain = cfg_omx();
  core::OmxConfig medium = cfg_omx();
  medium.ioat_medium = true;

  core::OmxConfig overlap = cfg_omx();
  overlap.ioat_medium_overlap = true;

  const auto sizes = size_sweep(2 * sim::KiB, 32 * sim::KiB);
  std::vector<double> c_plain, c_med, c_ovl;
  for (std::size_t s : sizes) {
    c_plain.push_back(pingpong_mibs(plain, s, 25));
    c_med.push_back(pingpong_mibs(medium, s, 25));
    c_ovl.push_back(pingpong_mibs(overlap, s, 25));
  }
  print_table("Section IV-C: synchronous I/OAT offload of medium copies",
              {"ring memcpy", "I/OAT sync offload", "in-driver matching"},
              sizes, {c_plain, c_med, c_ovl}, "MiB/s");

  double worst = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i)
    worst = std::max(worst, 100.0 * (1.0 - c_med[i] / c_plain[i]));
  std::printf("\npaper: sync degradation observed -> offload left disabled "
              "for mediums (measured worst-case slowdown %.0f%%)\n",
              worst);

  // The Section VI in-driver-matching extension trades ping-pong latency
  // (the library's ring copies batch up behind the single event) for
  // streaming throughput (the bottom half stops copying):
  auto stream_mibs = [](const core::OmxConfig& cfg) {
    const CpuUsage u = stream_cpu_usage(cfg, 32 * sim::KiB, 200);
    return u.throughput_mibs;
  };
  std::printf("\n32kB unidirectional stream: ring memcpy %.0f MiB/s, "
              "in-driver matching + overlap %.0f MiB/s\n",
              stream_mibs(plain), stream_mibs(overlap));
  return 0;
}
