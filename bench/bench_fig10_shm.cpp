// Figure 10: "Performance of Open-MX one-copy-based shared-memory
// communication with I/OAT offload of synchronous copies."
//
// Paper reference points: memcpy between processes sharing a dual-core
// subchip's L2 reaches ~6 GiB/s while the working set fits in the cache
// and collapses to ~1.2 GiB/s beyond it (or across sockets); the
// I/OAT-offloaded synchronous copy sustains ~2.3 GiB/s for large
// messages — ~80 % better than the uncached memcpy.
#include <cstdio>

#include "common.hpp"

using namespace openmx;
using namespace openmx::bench;

int main() {
  const auto sizes = size_sweep(16, 16 * sim::MiB);
  obs::Registry metrics;
  std::vector<double> same_subchip, cross_socket, ioat;
  for (std::size_t s : sizes) {
    const int iters = s >= sim::MiB ? 5 : 20;
    // Cores 0/1 share an L2 subchip; cores 0/4 sit on different sockets.
    same_subchip.push_back(sim::mib_per_second(
        s, local_pingpong_oneway(cfg_omx(), s, iters, 0, 1)));
    cross_socket.push_back(sim::mib_per_second(
        s, local_pingpong_oneway(cfg_omx(), s, iters, 0, 4)));
    core::OmxConfig io = cfg_omx();
    io.ioat_shm = true;
    // The paper enables shm offload beyond 1 MB; to expose the raw I/OAT
    // curve across the sweep (as Figure 10 does) lower the threshold to
    // the large-message threshold.
    io.ioat_shm_min_msg = 32 * sim::KiB + 1;
    ioat.push_back(sim::mib_per_second(
        s, local_pingpong_oneway(io, s, iters, 0, 4, 2, &metrics)));
  }
  print_table("Figure 10: intra-node one-copy ping-pong",
              {"memcpy same subchip", "memcpy cross socket",
               "I/OAT sync copy"},
              sizes, {same_subchip, cross_socket, ioat}, "MiB/s");

  const double ioat_gibs = ioat.back() / 1024.0;
  const double cross_gibs = cross_socket.back() / 1024.0;
  std::printf("\npaper: I/OAT ~2.3 GiB/s vs ~1.2 GiB/s uncached memcpy "
              "(+80%%); cached memcpy ~6 GiB/s under 1MB\n");
  std::printf("measured at 16MB: I/OAT %.2f GiB/s, cross-socket memcpy "
              "%.2f GiB/s (+%.0f%%)\n",
              ioat_gibs, cross_gibs, 100.0 * (ioat_gibs / cross_gibs - 1.0));
  emit_metrics_json("fig10_shm", metrics);
  return 0;
}
