// Figure 9: CPU usage of the Open-MX library, driver command processing
// and bottom-half receive processing while receiving a stream of
// synchronous large messages, with and without overlapped I/OAT copies.
//
// Paper reference points: the memcpy-based path saturates one core up to
// 95 % for multi-megabyte messages; with overlapped DMA copies the total
// drops to ~60 % (and from ~50 % to ~42 % at the small end of the sweep).
#include <cstdio>

#include "common.hpp"

using namespace openmx;
using namespace openmx::bench;

namespace {

// The per-category percentages come from the obs utilization timeline
// (clipped busy slices of node 1's cores), not from bespoke busy-counter
// deltas; tests/test_obs.cpp asserts the two accountings agree.
void run_one(const char* label, const core::OmxConfig& cfg,
             openmx::obs::Registry* metrics) {
  std::printf("\n--- BH receive with %s ---\n", label);
  std::printf("%-10s %12s %12s %12s %12s %8s %14s\n", "size", "user-lib%",
              "driver%", "bottom-half%", "total%", "dma%", "MiB/s");
  for (std::size_t s : size_sweep(64 * sim::KiB, 16 * sim::MiB)) {
    const int msgs = s >= 4 * sim::MiB ? 8 : 24;
    const CpuUsage u = stream_cpu_usage(cfg, s, msgs, metrics);
    std::printf("%-10s %12.1f %12.1f %12.1f %12.1f %8.1f %14.1f\n",
                size_label(s).c_str(), 100 * u.user, 100 * u.driver,
                100 * u.bh, 100 * u.total(), 100 * u.dma, u.throughput_mibs);
  }
}

}  // namespace

int main() {
  // The paper's Figure 9 pins each message's region inside the pull
  // syscall ("the driver time is higher because it involves memory
  // pinning during a system call prior to the data transfer"), so run
  // without the deferred-deregistration cache to surface that component.
  core::OmxConfig memcpy_cfg = cfg_omx();
  memcpy_cfg.regcache = false;
  core::OmxConfig ioat_cfg = cfg_omx_ioat();
  ioat_cfg.regcache = false;

  obs::Registry metrics;
  run_one("memcpy", memcpy_cfg, &metrics);
  run_one("overlapped DMA copy (I/OAT)", ioat_cfg, &metrics);

  const CpuUsage mem16 = stream_cpu_usage(memcpy_cfg, 16 * sim::MiB, 8);
  const CpuUsage io16 = stream_cpu_usage(ioat_cfg, 16 * sim::MiB, 8);
  std::printf("\npaper: multi-MB receive CPU usage 95%% -> 60%% with I/OAT\n");
  std::printf("measured at 16MB: %.0f%% -> %.0f%%\n", 100 * mem16.total(),
              100 * io16.total());
  emit_metrics_json("fig09_cpu_usage", metrics);
  return 0;
}
