// Figure 3: "Expected Open-MX performance improvement when removing the
// copy in the receive callback."  Ping-pong throughput between two nodes
// for native MX, plain Open-MX, and Open-MX with the bottom-half receive
// copy ignored (the prediction that motivates the I/OAT work).
//
// Paper reference points: MX peaks near 1140 MiB/s; Open-MX saturates
// near 800 MiB/s; with the BH copy ignored, line rate (1186 MiB/s)
// appears achievable.
#include <cstdio>

#include "common.hpp"

using namespace openmx;
using namespace openmx::bench;

int main() {
  const auto sizes = size_sweep(16, 4 * sim::MiB);
  obs::Registry metrics;
  std::vector<double> mx, omx, nocopy;
  for (std::size_t s : sizes) {
    const int iters = s >= sim::MiB ? 5 : 20;
    mx.push_back(pingpong_mibs(cfg_mx(), s, iters));
    omx.push_back(pingpong_mibs(cfg_omx(), s, iters, {}, {}, &metrics));
    nocopy.push_back(pingpong_mibs(cfg_omx_nocopy(), s, iters));
  }
  print_table("Figure 3: ping-pong throughput (prediction)",
              {"MX", "Open-MX ignoring BH copy", "Open-MX"}, sizes,
              {mx, nocopy, omx}, "MiB/s");

  const double line_rate = 1186.0;
  std::printf("\npaper checkpoints: MX peak ~1140, Open-MX ~800, "
              "no-copy ~line rate (%.0f MiB/s)\n", line_rate);
  std::printf("measured peaks:    MX %.0f, Open-MX %.0f, no-copy %.0f\n",
              mx.back(), omx.back(), nocopy.back());
  emit_metrics_json("fig03_pingpong_nocopy", metrics);
  return 0;
}
