// Ablation: DMA channel assignment.  The paper assigns one channel per
// message ("this strategy reduces the management cost without much
// decreasing the overall performance") and cites up to +40 % from
// striping a single copy across channels [22].  Measures network receive
// and shared-memory copies with 1, 2 and 4 channels per message, plus the
// many-concurrent-messages case the paper's argument rests on.
#include <cstdio>

#include "common.hpp"

using namespace openmx;
using namespace openmx::bench;

namespace {

double shm_mibs(int channels, std::size_t len) {
  core::OmxConfig cfg = cfg_omx();
  cfg.ioat_shm = true;
  cfg.channels_per_msg = channels;
  return sim::mib_per_second(len,
                             local_pingpong_oneway(cfg, len, 6, 0, 4));
}

double net_mibs(int channels, std::size_t len) {
  core::OmxConfig cfg = cfg_omx_ioat();
  cfg.channels_per_msg = channels;
  return pingpong_mibs(cfg, len, 6);
}

/// Four concurrent large streams into one node: with one channel per
/// message, the four messages spread over the four channels.
double concurrent_streams_mibs(int channels_per_msg) {
  core::OmxConfig cfg = cfg_omx_ioat();
  cfg.channels_per_msg = channels_per_msg;
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  constexpr int kStreams = 4;
  constexpr std::size_t kLen = sim::MiB;
  std::vector<mem::Buffer> src(
      kStreams, mem::Buffer(kLen, 3));
  std::vector<mem::Buffer> dst(
      kStreams, mem::Buffer(kLen));
  sim::Time t0 = 0, t1 = 0;
  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    std::vector<core::Request*> reqs;
    for (int i = 0; i < kStreams; ++i)
      reqs.push_back(ep.isend(src[static_cast<std::size_t>(i)].data(), kLen,
                              {1, 1}, static_cast<std::uint64_t>(i)));
    for (auto* r : reqs) ep.wait(r);
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    std::vector<core::Request*> reqs;
    t0 = p.now();
    for (int i = 0; i < kStreams; ++i)
      reqs.push_back(ep.irecv(dst[static_cast<std::size_t>(i)].data(), kLen,
                              static_cast<std::uint64_t>(i)));
    for (auto* r : reqs) ep.wait(r);
    t1 = p.now();
  });
  cluster.run();
  return sim::mib_per_second(kLen * kStreams, t1 - t0);
}

}  // namespace

int main() {
  // 3 workloads x {1, 2, 4} channels, all independent: fan the 9
  // simulations across worker threads and print from the ordered result.
  const int chans[] = {1, 2, 4};
  const std::vector<double> r =
      parallel_points<double>(9, [&](std::size_t i) {
        const int c = chans[i % 3];
        switch (i / 3) {
          case 0: return shm_mibs(c, 8 * sim::MiB);
          case 1: return net_mibs(c, sim::MiB);
          default: return concurrent_streams_mibs(c);
        }
      });

  std::printf("=== DMA channels per message ===\n");
  std::printf("%-28s %10s %10s %10s\n", "workload", "1 chan", "2 chan",
              "4 chan");
  std::printf("%-28s %10.0f %10.0f %10.0f\n", "shm copy 8MB (MiB/s)", r[0],
              r[1], r[2]);
  std::printf("%-28s %10.0f %10.0f %10.0f\n", "network recv 1MB (MiB/s)",
              r[3], r[4], r[5]);
  std::printf("%-28s %10.0f %10.0f %10.0f\n", "4 concurrent 1MB streams",
              r[6], r[7], r[8]);
  std::printf("\npaper: one channel per message; concurrent messages keep "
              "all 4 channels busy anyway\n");
  return 0;
}
