// Ablation: the offload thresholds of Section IV-A ("offload fragments
// larger than 1 kB for messages larger than 64 kB").  Sweeps the
// minimum-message threshold, shows what happens when sub-kB fragments
// are offloaded anyway (via a vectorial receive buffer), and reports the
// values the Section VI auto-tuner picks.
#include <cstdio>
#include <vector>

#include "common.hpp"

using namespace openmx;
using namespace openmx::bench;

namespace {

/// Ping-pong with a segmented receive buffer on the pong side.
double vectorial_pingpong_mibs(const core::OmxConfig& cfg, std::size_t len,
                               std::size_t seg, int iters) {
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  mem::Buffer buf0(len, 1), buf1(len, 2);
  std::vector<core::IoVec> segs;
  for (std::size_t off = 0; off < len; off += seg)
    segs.push_back(core::IoVec{buf1.data() + off, std::min(seg, len - off)});
  sim::Time t0 = 0, t1 = 0;
  const int warmup = 2;
  cluster.spawn(cluster.node(0), 0, "ping", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    for (int i = 0; i < warmup + iters; ++i) {
      if (i == warmup) t0 = p.now();
      ep.wait(ep.isend(buf0.data(), len, {1, 1}, 7));
      ep.wait(ep.irecv(buf0.data(), len, 7));
    }
    t1 = p.now();
  });
  cluster.spawn(cluster.node(1), 0, "pong", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    for (int i = 0; i < warmup + iters; ++i) {
      ep.wait(ep.irecvv(segs.data(), segs.size(), 7));
      ep.wait(ep.isend(buf1.data(), len, {0, 0}, 7));
    }
  });
  cluster.run();
  return sim::mib_per_second(len, (t1 - t0) / (2 * iters));
}

}  // namespace

int main() {
  // --- message-size threshold sweep ---
  std::printf("=== min-message threshold sweep (contiguous buffers) ===\n");
  std::printf("%-14s", "min_msg");
  const auto sizes = size_sweep(32 * sim::KiB, sim::MiB);
  for (std::size_t s : sizes) std::printf("%10s", size_label(s).c_str());
  std::printf("  [ping-pong MiB/s]\n");
  for (std::size_t thr : {std::size_t{32} * sim::KiB, std::size_t{64} * sim::KiB,
                          std::size_t{256} * sim::KiB, std::size_t{1} * sim::MiB}) {
    core::OmxConfig cfg = cfg_omx_ioat();
    cfg.ioat_min_msg = thr;
    std::printf("%-14s", size_label(thr).c_str());
    for (std::size_t s : sizes)
      std::printf("%10.0f", pingpong_mibs(cfg, s, 15));
    std::printf("\n");
  }

  // --- fragment-size threshold with vectorial buffers ---
  std::printf("\n=== 512 B receive segments, 256 kB messages: enforcing the "
              "1 kB fragment floor ===\n");
  core::OmxConfig honor = cfg_omx_ioat();           // min_frag = 1 kB
  core::OmxConfig ignore_floor = cfg_omx_ioat();
  ignore_floor.ioat_min_frag = 1;                   // offload 512 B chunks
  std::printf("respect 1kB floor (falls back to memcpy): %7.0f MiB/s\n",
              vectorial_pingpong_mibs(honor, 256 * sim::KiB, 512, 10));
  std::printf("offload sub-kB chunks anyway:             %7.0f MiB/s\n",
              vectorial_pingpong_mibs(ignore_floor, 256 * sim::KiB, 512, 10));
  std::printf("page-sized segments, offloaded:           %7.0f MiB/s\n",
              vectorial_pingpong_mibs(honor, 256 * sim::KiB, 4096, 10));
  std::printf("(both 512 B variants lose ~15%% to the page-sized case: the\n"
              " per-chunk descriptor/loop overheads dominate; the hard floor\n"
              " matters most for the synchronous paths, see "
              "bench_medium_sync)\n");

  // --- the Section VI auto-tuner ---
  core::OmxConfig at = cfg_omx_ioat();
  at.autotune_thresholds = true;
  core::Cluster probe;
  probe.add_nodes(1, at);
  const auto& tuned = probe.node(0).driver().config();
  std::printf("\nauto-tuned thresholds: min_frag=%zu B, min_msg=%zu kB "
              "(paper's empirical choice: 1 kB / 64 kB)\n",
              tuned.ioat_min_frag, tuned.ioat_min_msg / sim::KiB);
  return 0;
}
