// NAS IS (Section IV-D, last paragraph): "we also observed up to 10 %
// performance increase on the NAS parallel benchmarks, especially on IS
// which relies on large messages".
//
// Bucket-sort kernel on 2 nodes x 2 processes; the Alltoallv of keys is
// the large-message phase the I/OAT offload (network + shared-memory)
// accelerates.
#include <cstdio>

#include "common.hpp"
#include "mpi/world.hpp"
#include "nas/is_kernel.hpp"

using namespace openmx;
using namespace openmx::bench;

namespace {

sim::Time run_cfg(const core::OmxConfig& cfg, std::size_t keys_per_rank) {
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  mpi::World world(cluster, mpi::placements(2, 2));
  sim::Time out = 0;
  bool sorted = false;
  nas::IsParams params;
  params.keys_per_rank = keys_per_rank;
  world.run([&](mpi::Comm& c) {
    const nas::IsResult r = nas::run_is(c, params);
    if (c.rank() == 0) {
      out = r.time_per_iteration;
      sorted = r.sorted;
    }
  });
  if (!sorted) std::printf("WARNING: IS verification failed!\n");
  return out;
}

}  // namespace

int main() {
  std::printf("=== NAS IS-like kernel, 2 nodes x 2 ppn ===\n");
  std::printf("%-14s %16s %16s %10s\n", "keys/rank", "Open-MX us/iter",
              "OMX+I/OAT us/iter", "speedup");
  for (std::size_t keys : {1u << 14, 1u << 16, 1u << 18}) {
    const sim::Time t_omx = run_cfg(cfg_omx(), keys);
    const sim::Time t_io = run_cfg(cfg_omx_ioat(), keys);
    std::printf("%-14zu %16.1f %16.1f %9.1f%%\n", keys,
                sim::to_micros(t_omx), sim::to_micros(t_io),
                100.0 * (static_cast<double>(t_omx) / t_io - 1.0));
  }
  std::printf("\npaper: up to ~10%% improvement on IS\n");
  return 0;
}
