// Ablation: how much of the gain is the *overlap* (Figure 6) versus just
// the DMA engine's raw copy speed?  Compares plain memcpy, synchronous
// per-fragment I/OAT (submit, busy-poll, next fragment), and the paper's
// overlapped design (wait only behind the last fragment).
#include <cstdio>

#include "common.hpp"

using namespace openmx;
using namespace openmx::bench;

int main() {
  core::OmxConfig memcpy_cfg = cfg_omx();
  core::OmxConfig sync_cfg = cfg_omx_ioat();
  sync_cfg.ioat_large_sync = true;
  core::OmxConfig overlap_cfg = cfg_omx_ioat();

  const auto sizes = size_sweep(64 * sim::KiB, 8 * sim::MiB);
  std::vector<double> c_mem, c_sync, c_ovl;
  for (std::size_t s : sizes) {
    const int iters = s >= sim::MiB ? 5 : 15;
    c_mem.push_back(pingpong_mibs(memcpy_cfg, s, iters));
    c_sync.push_back(pingpong_mibs(sync_cfg, s, iters));
    c_ovl.push_back(pingpong_mibs(overlap_cfg, s, iters));
  }
  print_table("Ablation: copy strategy in the large-receive bottom half",
              {"memcpy", "I/OAT sync (no overlap)", "I/OAT overlapped"},
              sizes, {c_mem, c_sync, c_ovl}, "MiB/s");

  // On a 10 GbE wire the engine keeps pace either way, so the throughput
  // difference is small — the overlap's value is the CPU it frees: the
  // bottom half no longer busy-polls every fragment's completion.
  std::printf("\n%-28s %14s %14s\n", "streaming 16MB receives",
              "BH CPU", "MiB/s");
  for (auto* cfg : {&memcpy_cfg, &sync_cfg, &overlap_cfg}) {
    const CpuUsage u = stream_cpu_usage(*cfg, 16 * sim::MiB, 8);
    const char* name = cfg == &memcpy_cfg ? "memcpy"
                       : cfg == &sync_cfg ? "I/OAT sync (no overlap)"
                                          : "I/OAT overlapped";
    std::printf("%-28s %13.0f%% %14.0f\n", name, 100 * u.bh,
                u.throughput_mibs);
  }

  const std::size_t last = sizes.size() - 1;
  std::printf("\nat %s: engine gives %+.0f%% throughput over memcpy; "
              "overlap then removes the busy-poll CPU (Figure 6)\n",
              size_label(sizes[last]).c_str(),
              100.0 * (c_sync[last] / c_mem[last] - 1.0));
  return 0;
}
