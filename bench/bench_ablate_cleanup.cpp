// Ablation: the Section III-B resource-tracking cleanup routine.  With
// cleanup tied to pull-block requests, the pending-skbuff pool stays
// bounded by the outstanding window; without it, every skbuff of a
// message stays pinned down until the last fragment, starving the NIC
// receive ring for very large messages.
#include <cstdio>
#include <functional>

#include "common.hpp"

using namespace openmx;
using namespace openmx::bench;

namespace {

struct CleanupStats {
  std::size_t max_pending = 0;
  std::uint64_t cleanup_runs = 0;
  std::uint64_t ring_drops = 0;
  double mibs = 0;
};

CleanupStats run(bool cleanup_on_block, std::size_t len) {
  core::OmxConfig cfg = cfg_omx_ioat();
  cfg.cleanup_on_block = cleanup_on_block;
  core::Cluster cluster;
  cluster.add_nodes(2, cfg);
  mem::Buffer src(len, 9), dst(len);
  CleanupStats st;
  bool done = false;
  sim::Time t0 = 0, t1 = 0;
  std::function<void()> sampler = [&] {
    st.max_pending = std::max(
        st.max_pending, cluster.node(1).driver().pending_offload_skbuffs());
    if (!done)
      cluster.engine().schedule(10 * sim::kMicrosecond, [&] { sampler(); });
  };
  cluster.engine().schedule(10 * sim::kMicrosecond, [&] { sampler(); });
  cluster.spawn(cluster.node(0), 0, "s", [&](core::Process& p) {
    core::Endpoint ep(p, 0);
    ep.wait(ep.isend(src.data(), len, {1, 1}, 1));
  });
  cluster.spawn(cluster.node(1), 0, "r", [&](core::Process& p) {
    core::Endpoint ep(p, 1);
    t0 = p.now();
    ep.wait(ep.irecv(dst.data(), len, 1));
    t1 = p.now();
    done = true;
  });
  cluster.run();
  st.cleanup_runs = cluster.node(1).driver().counters().get("driver.cleanup_runs");
  st.ring_drops = cluster.node(1).nic().counters().get("nic.rx_ring_drops");
  st.mibs = sim::mib_per_second(len, t1 - t0);
  return st;
}

}  // namespace

int main() {
  std::printf("=== cleanup cadence vs pending-skbuff pool (Section III-B) "
              "===\n");
  std::printf("%-10s %18s %14s %18s %14s %10s\n", "size", "cleanup",
              "max pending", "cleanup runs", "ring drops", "MiB/s");
  for (std::size_t len : {sim::MiB, 4 * sim::MiB, 16 * sim::MiB}) {
    for (bool on : {true, false}) {
      const CleanupStats st = run(on, len);
      std::printf("%-10s %18s %14zu %18llu %14llu %10.0f\n",
                  size_label(len).c_str(),
                  on ? "on block request" : "end of message only",
                  st.max_pending,
                  static_cast<unsigned long long>(st.cleanup_runs),
                  static_cast<unsigned long long>(st.ring_drops), st.mibs);
    }
  }
  std::printf("\npaper: 'resources are freed early and the number of "
              "pending skbuff copy is bounded'\n");
  return 0;
}
