// Figure 8: "Comparison of a ping-pong performance improvement using
// I/OAT and the expected performance with bottom half copy ignored."
//
// Paper reference points: with I/OAT async copy offload, throughput is up
// to 50 % higher for messages >32 kB, reaches 1114 MiB/s for multi-MB
// messages (line rate is 1186), remains below the copy-ignored prediction
// around 256 kB, and is >20 % better than plain Open-MX even there.
#include <cstdio>

#include "common.hpp"

using namespace openmx;
using namespace openmx::bench;

int main() {
  const auto sizes = size_sweep(16, 4 * sim::MiB);
  obs::Registry metrics;
  std::vector<double> mx, omx, ioat, nocopy;
  for (std::size_t s : sizes) {
    const int iters = s >= sim::MiB ? 5 : 20;
    mx.push_back(pingpong_mibs(cfg_mx(), s, iters));
    omx.push_back(pingpong_mibs(cfg_omx(), s, iters));
    ioat.push_back(pingpong_mibs(cfg_omx_ioat(), s, iters, {}, {}, &metrics));
    nocopy.push_back(pingpong_mibs(cfg_omx_nocopy(), s, iters));
  }
  print_table("Figure 8: ping-pong throughput with I/OAT copy offload",
              {"MX", "OMX-nocopy(exp.)", "OMX+I/OAT", "Open-MX"}, sizes,
              {mx, nocopy, ioat, omx}, "MiB/s");

  // One instrumented run at 1 MB: spans + utilization timeline on, Perfetto
  // trace out, per-message waterfalls showing the Fig. 8 overlap window.
  std::printf("\n--- instrumented 1MB ping-pong (spans + timeline) ---\n");
  const TracedResult tr = traced_pingpong(
      cfg_omx_ioat(), sim::MiB, 2, out_path("BENCH_fig08_trace.json"),
      &metrics);
  std::printf("1MB one-way %.1f us, avg dma-overlap %.3f us over %zu spans\n",
              sim::to_micros(tr.oneway), tr.avg_overlap_us, tr.num_spans);
  emit_metrics_json("fig08_pingpong_ioat", metrics);

  auto at = [&](std::size_t want) -> std::size_t {
    for (std::size_t i = 0; i < sizes.size(); ++i)
      if (sizes[i] == want) return i;
    return sizes.size() - 1;
  };
  const std::size_t i256k = at(256 * sim::KiB);
  const std::size_t i4m = at(4 * sim::MiB);
  std::printf("\npaper: I/OAT ~1114 MiB/s multi-MB; >20%% over Open-MX at "
              "256kB; below no-copy prediction there\n");
  std::printf("measured: I/OAT %.0f MiB/s at 4MB; +%.0f%% over Open-MX at "
              "256kB; no-copy-minus-I/OAT at 256kB = %.0f MiB/s\n",
              ioat[i4m], 100.0 * (ioat[i256k] / omx[i256k] - 1.0),
              nocopy[i256k] - ioat[i256k]);
  return 0;
}
