// Figure 11: "Intel MPI Benchmarks PingPong throughput with MXoE and
// Open-MX, with I/OAT and registration cache enabled or not."
//
// Paper reference points: Open-MX + I/OAT reaches MX performance for
// large messages, close to 10 GbE line rate; I/OAT matters much more
// than the registration cache (Open-MX registration is cheap since no
// NIC translation tables are involved).
#include <cstdio>

#include "common.hpp"
#include "imb/imb.hpp"
#include "mpi/world.hpp"

using namespace openmx;
using namespace openmx::bench;

namespace {

sim::Time imb_time(const core::OmxConfig& cfg, imb::Test test,
                   std::size_t bytes, int nnodes, int ppn, int reps,
                   obs::Registry* metrics = nullptr) {
  core::Cluster cluster;
  cluster.add_nodes(nnodes, cfg);
  mpi::World world(cluster, mpi::placements(nnodes, ppn));
  sim::Time out = 0;
  world.run([&](mpi::Comm& c) {
    const sim::Time t = imb::run_test(c, test, bytes, reps);
    if (c.rank() == 0) out = t;
  });
  if (metrics) collect_cluster_metrics(cluster, *metrics);
  return out;
}

double pingpong_mibs_mpi(const core::OmxConfig& cfg, std::size_t bytes,
                         int reps, obs::Registry* metrics = nullptr) {
  const sim::Time rtt =
      imb_time(cfg, imb::Test::PingPong, bytes, 2, 1, reps, metrics);
  return sim::mib_per_second(bytes, rtt / 2);
}

}  // namespace

int main() {
  core::OmxConfig omx = cfg_omx();
  core::OmxConfig omx_nrc = cfg_omx();
  omx_nrc.regcache = false;
  core::OmxConfig ioat = cfg_omx_ioat();
  core::OmxConfig ioat_nrc = cfg_omx_ioat();
  ioat_nrc.regcache = false;

  const auto sizes = size_sweep(16, 4 * sim::MiB);
  obs::Registry metrics;
  std::vector<double> mx_col, ioat_col, omx_col, ioat_nrc_col, omx_nrc_col;
  for (std::size_t s : sizes) {
    const int reps = s >= sim::MiB ? 4 : 12;
    mx_col.push_back(pingpong_mibs_mpi(cfg_mx(), s, reps));
    ioat_col.push_back(pingpong_mibs_mpi(ioat, s, reps, &metrics));
    omx_col.push_back(pingpong_mibs_mpi(omx, s, reps));
    ioat_nrc_col.push_back(pingpong_mibs_mpi(ioat_nrc, s, reps));
    omx_nrc_col.push_back(pingpong_mibs_mpi(omx_nrc, s, reps));
  }
  print_table("Figure 11: IMB PingPong throughput",
              {"MX", "OMX+I/OAT", "OMX", "OMX+I/OAT w/o rc", "OMX w/o rc"},
              sizes,
              {mx_col, ioat_col, omx_col, ioat_nrc_col, omx_nrc_col},
              "MiB/s");

  const std::size_t last = sizes.size() - 1;
  std::printf("\npaper: OMX+I/OAT reaches MX for large messages; losing the "
              "regcache costs far less than losing I/OAT\n");
  std::printf("measured at 4MB: MX %.0f, OMX+I/OAT %.0f (%.0f%% of MX); "
              "regcache delta %.0f MiB/s vs I/OAT delta %.0f MiB/s\n",
              mx_col[last], ioat_col[last],
              100.0 * ioat_col[last] / mx_col[last],
              ioat_col[last] - ioat_nrc_col[last],
              ioat_col[last] - omx_col[last]);
  emit_metrics_json("fig11_imb_pingpong", metrics);
  return 0;
}
