// Telemetry overhead check: runs the same ping-pong workload with all
// telemetry off and with every obs subsystem on (typed trace, spans,
// utilization timeline, counters are always on), and reports the
// wall-clock cost of each.  The ISSUE contract is that telemetry-off
// throughput stays within 2 % of the pre-telemetry baseline; this bench
// gives the number reviewers need to check that, and quantifies what
// turning everything on costs.
#include <chrono>
#include <cstdio>

#include "common.hpp"

using namespace openmx;
using namespace openmx::bench;

namespace {

struct Sample {
  double wall_ms = 0;
  double msgs_per_sec = 0;  // simulated messages per wall second
};

/// One measured configuration: `reps` ping-pong simulations, telemetry
/// toggled per `on`.  The workload mixes an eager and a large size so both
/// the packet-dispatch and the descriptor-submit hot paths are exercised.
Sample run(bool on, int reps) {
  using clock = std::chrono::steady_clock;
  const int iters = 30;
  int msgs = 0;
  const auto t0 = clock::now();
  for (int r = 0; r < reps; ++r) {
    Cluster cluster;
    cluster.add_nodes(2, cfg_omx_ioat());
    if (on) {
      cluster.engine().trace().enable();
      cluster.engine().spans().enable();
      cluster.engine().timeline().enable();
    }
    run_pingpong(cluster, 4 * sim::KiB, iters, 1);
    msgs += 2 * iters;

    Cluster big;
    big.add_nodes(2, cfg_omx_ioat());
    if (on) {
      big.engine().trace().enable();
      big.engine().spans().enable();
      big.engine().timeline().enable();
    }
    run_pingpong(big, sim::MiB, iters / 6, 1);
    msgs += 2 * (iters / 6);
  }
  const auto t1 = clock::now();
  Sample s;
  s.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  s.msgs_per_sec = 1000.0 * msgs / s.wall_ms;
  return s;
}

}  // namespace

int main() {
  const int reps = 6;
  run(false, 1);  // warm caches/allocator before measuring
  const Sample off = run(false, reps);
  const Sample on = run(true, reps);
  const double overhead_pct = 100.0 * (off.msgs_per_sec / on.msgs_per_sec - 1.0);

  std::printf("=== telemetry overhead (ping-pong 4kB + 1MB, %d reps) ===\n",
              reps);
  std::printf("telemetry off: %8.1f ms  %8.0f msgs/s\n", off.wall_ms,
              off.msgs_per_sec);
  std::printf("telemetry on:  %8.1f ms  %8.0f msgs/s\n", on.wall_ms,
              on.msgs_per_sec);
  std::printf("full-telemetry overhead: %.1f%%\n", overhead_pct);

  const std::string out = openmx::bench::out_path("BENCH_obs_overhead.json");
  if (std::FILE* f = std::fopen(out.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"telemetry_off\": {\"wall_ms\": %.1f, \"msgs_per_sec\": "
                 "%.0f},\n"
                 "  \"telemetry_on\": {\"wall_ms\": %.1f, \"msgs_per_sec\": "
                 "%.0f},\n"
                 "  \"overhead_pct\": %.1f\n"
                 "}\n",
                 off.wall_ms, off.msgs_per_sec, on.wall_ms, on.msgs_per_sec,
                 overhead_pct);
    std::fclose(f);
    std::printf("written to %s\n", out.c_str());
  }
  return 0;
}
