// Telemetry overhead check: runs the same ping-pong workload with all
// telemetry off, with every opt-in obs subsystem on (typed trace, spans,
// utilization timeline; counters are always on), with only the always-on
// flight recorder attached, and with only the live run monitor polling —
// and reports the wall-clock cost of each.  The ISSUE contracts are that
// telemetry-off throughput stays within 2 % of the pre-telemetry
// baseline, and that the always-on recorder ring costs < 3 % on the
// Fig. 8 ping-pong path (pinned by the obs.recorder_overhead guard row).
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "obs/flight.hpp"

using namespace openmx;
using namespace openmx::bench;

namespace {

enum class Mode { kOff, kAll, kRecorder, kMonitor };

struct Sample {
  double wall_ms = 0;
  double msgs_per_sec = 0;  // simulated messages per wall second
};

/// One measured configuration: `reps` ping-pong simulations with the
/// chosen obs layer active.  The workload mixes an eager and a large size
/// so both the packet-dispatch and the descriptor-submit hot paths are
/// exercised.
Sample run(Mode mode, int reps) {
  using clock = std::chrono::steady_clock;
  const int iters = 30;
  int msgs = 0;

  auto run_once = [&](std::size_t len, int n) {
    Cluster cluster;
    cluster.add_nodes(2, cfg_omx_ioat());
    obs::FlightRecorder fr(1, 256);
    obs::Monitor monitor(cluster.network().counters(),
                         100 * sim::kMicrosecond);
    obs::Monitor* poll = nullptr;
    switch (mode) {
      case Mode::kOff:
        break;
      case Mode::kAll:
        cluster.engine().trace().enable();
        cluster.engine().spans().enable();
        cluster.engine().timeline().enable();
        break;
      case Mode::kRecorder:
        cluster.engine().trace().attach_flight(&fr, 0);
        break;
      case Mode::kMonitor:
        monitor.watch("net.tx_frames");
        poll = &monitor;
        break;
    }
    run_pingpong(cluster, len, n, 1, poll);
    msgs += 2 * n;
  };

  const auto t0 = clock::now();
  for (int r = 0; r < reps; ++r) {
    run_once(4 * sim::KiB, iters);
    run_once(sim::MiB, iters / 6);
  }
  const auto t1 = clock::now();
  Sample s;
  s.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  s.msgs_per_sec = 1000.0 * msgs / s.wall_ms;
  return s;
}

double pct_over(const Sample& base, const Sample& other) {
  return 100.0 * (base.msgs_per_sec / other.msgs_per_sec - 1.0);
}

}  // namespace

int main() {
  const int reps = 6;
  run(Mode::kOff, 1);  // warm caches/allocator before measuring
  const Sample off = run(Mode::kOff, reps);
  const Sample on = run(Mode::kAll, reps);
  const Sample rec = run(Mode::kRecorder, reps);
  const Sample mon = run(Mode::kMonitor, reps);

  std::printf("=== telemetry overhead (ping-pong 4kB + 1MB, %d reps) ===\n",
              reps);
  std::printf("telemetry off:  %8.1f ms  %8.0f msgs/s\n", off.wall_ms,
              off.msgs_per_sec);
  std::printf("telemetry on:   %8.1f ms  %8.0f msgs/s  (%.1f%% overhead)\n",
              on.wall_ms, on.msgs_per_sec, pct_over(off, on));
  std::printf("recorder only:  %8.1f ms  %8.0f msgs/s  (%.1f%% overhead)\n",
              rec.wall_ms, rec.msgs_per_sec, pct_over(off, rec));
  std::printf("monitor only:   %8.1f ms  %8.0f msgs/s  (%.1f%% overhead)\n",
              mon.wall_ms, mon.msgs_per_sec, pct_over(off, mon));

  const std::string out = openmx::bench::out_path("BENCH_obs_overhead.json");
  if (std::FILE* f = std::fopen(out.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"telemetry_off\": {\"wall_ms\": %.1f, \"msgs_per_sec\": "
                 "%.0f},\n"
                 "  \"telemetry_on\": {\"wall_ms\": %.1f, \"msgs_per_sec\": "
                 "%.0f},\n"
                 "  \"recorder_only\": {\"wall_ms\": %.1f, \"msgs_per_sec\": "
                 "%.0f},\n"
                 "  \"monitor_only\": {\"wall_ms\": %.1f, \"msgs_per_sec\": "
                 "%.0f},\n"
                 "  \"overhead_pct\": %.1f,\n"
                 "  \"recorder_overhead_pct\": %.1f,\n"
                 "  \"monitor_overhead_pct\": %.1f\n"
                 "}\n",
                 off.wall_ms, off.msgs_per_sec, on.wall_ms, on.msgs_per_sec,
                 rec.wall_ms, rec.msgs_per_sec, mon.wall_ms, mon.msgs_per_sec,
                 pct_over(off, on), pct_over(off, rec), pct_over(off, mon));
    std::fclose(f);
    std::printf("written to %s\n", out.c_str());
  }
  return 0;
}
