// Wall-clock micro-benchmarks (google-benchmark) of the simulator
// substrate itself: event-engine dispatch, DMA-engine descriptor
// processing, cache-model touches, and a full simulated ping-pong per
// wall second — the numbers that bound how large an experiment the
// harness can run.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/common.hpp"
#include "core/cluster.hpp"
#include "core/endpoint.hpp"
#include "dma/ioat.hpp"
#include "mem/cache_model.hpp"
#include "sim/engine.hpp"

using namespace openmx;

static void BM_EngineDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 1000; ++i) e.schedule(i, [] {});
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineDispatch);

static void BM_EngineNestedTimers(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    int remaining = 1000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) e.schedule(10, tick);
    };
    e.schedule(10, tick);
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineNestedTimers);

static void BM_IoatDescriptors(benchmark::State& state) {
  std::vector<std::uint8_t> src(4096), dst(4096);
  for (auto _ : state) {
    sim::Engine e;
    dma::IoatEngine io(e);
    for (int i = 0; i < 256; ++i)
      io.submit(i % 4, src.data(), dst.data(), src.size());
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_IoatDescriptors);

static void BM_CacheTouch(benchmark::State& state) {
  mem::CacheModel cache;
  std::vector<std::uint8_t> buf(1 * sim::MiB);
  for (auto _ : state) {
    cache.touch(buf.data(), buf.size());
    benchmark::DoNotOptimize(cache.hit_fraction(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_CacheTouch);

static void BM_SimulatedPingPong4k(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::pingpong_oneway(bench::cfg_omx(), 4096, 5, 1));
  }
}
BENCHMARK(BM_SimulatedPingPong4k);

static void BM_SimulatedLargeTransfer1M(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::pingpong_oneway(bench::cfg_omx_ioat(), sim::MiB, 2, 1));
  }
}
BENCHMARK(BM_SimulatedLargeTransfer1M);

BENCHMARK_MAIN();
