// Wall-clock micro-benchmarks (google-benchmark) of the simulator
// substrate itself: event-engine dispatch, DMA-engine descriptor
// processing, cache-model touches, and a full simulated ping-pong per
// wall second — the numbers that bound how large an experiment the
// harness can run.
//
// After the micro-benchmarks, main() measures the single-run scale-out
// KPI: events/sec of an 8-node ring mesh on the sequential Cluster vs.
// the multi-LP ParallelCluster at 1/2/4 workers, written to
// BENCH_sim_speed_metrics.json (and guarded by bench_guard's
// sim_speed.par_ratio_w1 row).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "bench/lp_mesh.hpp"
#include "core/cluster.hpp"
#include "core/endpoint.hpp"
#include "core/parallel_cluster.hpp"
#include "dma/ioat.hpp"
#include "mem/cache_model.hpp"
#include "obs/registry.hpp"
#include "obs/wallprof.hpp"
#include "sim/engine.hpp"
#include "sim/sweep.hpp"

using namespace openmx;

static void BM_EngineDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 1000; ++i) e.schedule(i, [] {});
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineDispatch);

namespace {
// Self-rescheduling timer in the engine's native idiom: a small
// trivially-copyable callable handed to schedule() by value.  The seed
// engine forced every callback through std::function (see the
// StdFunction variant below for that legacy shape).
struct Tick {
  sim::Engine* e;
  int* remaining;
  void operator()() const {
    if (--*remaining > 0) e->schedule(10, *this);
  }
};
}  // namespace

static void BM_EngineNestedTimers(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    int remaining = 1000;
    e.schedule(10, Tick{&e, &remaining});
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineNestedTimers);

static void BM_EngineNestedTimersStdFunction(benchmark::State& state) {
  // Legacy shape: the callback is a std::function copied on every
  // reschedule, exactly what the seed engine's queue imposed.  Kept for
  // an apples-to-apples lineage comparison.
  for (auto _ : state) {
    sim::Engine e;
    int remaining = 1000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) e.schedule(10, tick);
    };
    e.schedule(10, tick);
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineNestedTimersStdFunction);

namespace {
// Driver-style timer churn: many concurrent flows, each rescheduling a
// short-delay timer from its own callback — the workload the optional
// timer wheel is built for (every insert lands in wheel level 0).
struct ShortTick {
  sim::Engine* e;
  int* remaining;
  int delay;
  void operator()() const {
    if (--*remaining > 0) e->schedule(delay, *this);
  }
};

template <bool UseWheel>
void engine_short_timers(benchmark::State& state) {
  constexpr int kFlows = 256;
  constexpr int kEvents = 16384;
  for (auto _ : state) {
    sim::Engine e(sim::EngineConfig{.timer_wheel = UseWheel,
                                    .wheel_granularity_shift = 0});
    int remaining = kEvents;
    for (int i = 0; i < kFlows; ++i)
      e.schedule(1 + i % 61, ShortTick{&e, &remaining, 1 + i % 61});
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
}
}  // namespace

static void BM_EngineShortTimersHeap(benchmark::State& state) {
  engine_short_timers<false>(state);
}
BENCHMARK(BM_EngineShortTimersHeap);

static void BM_EngineShortTimersWheel(benchmark::State& state) {
  engine_short_timers<true>(state);
}
BENCHMARK(BM_EngineShortTimersWheel);

static void BM_EngineCancelTimers(benchmark::State& state) {
  // The retransmission-timer pattern: schedule a cancellable guard, then
  // cancel it before it fires (the common case on a healthy fabric).
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 1000; ++i) {
      sim::EventHandle h = e.schedule_cancellable(1000 + i, [] {});
      e.schedule(i, [h]() mutable { h.cancel(); });
    }
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineCancelTimers);

static void BM_SweepPingPong(benchmark::State& state) {
  // Replica fan-out throughput: the fig12/ablation driver pattern of N
  // independent simulations spread across worker threads.
  const std::size_t replicas = 16;
  sim::SweepRunner runner{sim::sweep_options_from_env()};
  for (auto _ : state) {
    std::vector<double> times = runner.map<double>(replicas, [](std::size_t) {
      return bench::pingpong_oneway(bench::cfg_omx(), 4096, 3, 1);
    });
    benchmark::DoNotOptimize(times.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * replicas);
}
BENCHMARK(BM_SweepPingPong);

static void BM_IoatDescriptors(benchmark::State& state) {
  mem::Buffer src(4096), dst(4096);
  for (auto _ : state) {
    sim::Engine e;
    dma::IoatEngine io(e);
    for (int i = 0; i < 256; ++i)
      io.submit(i % 4, src.data(), dst.data(), src.size());
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_IoatDescriptors);

static void BM_CacheTouch(benchmark::State& state) {
  mem::CacheModel cache;
  mem::Buffer buf(1 * sim::MiB);
  for (auto _ : state) {
    cache.touch(buf.data(), buf.size());
    benchmark::DoNotOptimize(cache.hit_fraction(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_CacheTouch);

static void BM_SimulatedPingPong4k(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::pingpong_oneway(bench::cfg_omx(), 4096, 5, 1));
  }
}
BENCHMARK(BM_SimulatedPingPong4k);

static void BM_SimulatedLargeTransfer1M(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::pingpong_oneway(bench::cfg_omx_ioat(), sim::MiB, 2, 1));
  }
}
BENCHMARK(BM_SimulatedLargeTransfer1M);

static void BM_MultiLpRingMesh(benchmark::State& state) {
  // One whole partitioned run per iteration, at the worker count given
  // by the benchmark argument.
  const auto workers = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    const bench::SimSpeedPoint p = bench::sim_speed_multi_lp(8, workers, 4);
    benchmark::DoNotOptimize(p.events);
    state.SetItemsProcessed(static_cast<int64_t>(state.items_processed()) +
                            static_cast<int64_t>(p.events));
  }
}
BENCHMARK(BM_MultiLpRingMesh)->Arg(1)->Arg(2)->Arg(4);

namespace {

// The scale-out KPI: sequential vs. multi-LP events/sec on the fig12
// ring mesh, recorded as counters so the JSON is machine-comparable.
// The events-scheduled totals of every mode must agree (the determinism
// suite asserts bit-identical results; this is the perf-side echo).
//
// The wall-clock self-profiler runs alongside: each mode is profiled in
// isolation (reset between modes), the barrier share of multi-LP worker
// time lands in the table, and the sequential mode asserts that the
// instrumented zones explain >= 90 % of the engine-run wall time — the
// coverage contract that makes "where does the wall time go" claims
// trustworthy.  Zone totals go to a *separate*
// BENCH_sim_speed_wall_metrics.json: wall numbers are nondeterministic
// and must never mix into the deterministic metrics stream.
void run_scaleout_kpi() {
  const int kNodes = 8, kIters = 48;
  openmx::obs::Registry reg;
  openmx::obs::Registry wall;
  openmx::obs::WallProfiler& prof = openmx::obs::WallProfiler::instance();
  const bool prof_on = prof.compiled_in() && prof.enabled();

  prof.reset();
  const bench::SimSpeedPoint seq = bench::sim_speed_sequential(kNodes, kIters);
  const double seq_coverage = prof.coverage("engine.run");
  if (prof_on) prof.export_metrics(wall, "seq.");
  std::printf("\n=== sim_speed scale-out KPI (%d-node ring, %d iters) ===\n",
              kNodes, kIters);
  std::printf("%-14s %14s %12s %12s %10s %10s\n", "mode", "events/s", "events",
              "wall[ms]", "barrier%", "coverage");
  std::printf("%-14s %14.0f %12llu %12.1f %10s %9.1f%%\n", "sequential",
              seq.events_per_sec, static_cast<unsigned long long>(seq.events),
              1e3 * seq.wall_s, "-", 100.0 * seq_coverage);
  if (prof_on && seq_coverage < 0.90) {
    std::fprintf(stderr,
                 "FAIL: wall zones cover %.1f%% of sequential engine-run "
                 "wall time (need >= 90%%)\n",
                 100.0 * seq_coverage);
    std::exit(1);
  }

  reg.counter("sim_speed.nodes").add(static_cast<std::uint64_t>(kNodes));
  reg.counter("sim_speed.iters").add(static_cast<std::uint64_t>(kIters));
  reg.counter("sim_speed.events").add(seq.events);
  reg.counter("sim_speed.seq_events_per_sec")
      .add(static_cast<std::uint64_t>(seq.events_per_sec));
  wall.counter("wall.coverage.seq_x1000")
      .add(static_cast<std::uint64_t>(1000.0 * seq_coverage));

  double w4_speedup = 0;
  for (unsigned workers : {1u, 2u, 4u}) {
    // The 4-worker point doubles as the scale-out observability export:
    // per-LP scheduler counters land in the same metrics JSON and the
    // window log becomes a per-LP Perfetto timeline next to it.
    const bool instrument = workers == 4;
    const std::string lp_trace =
        instrument ? bench::out_path("BENCH_sim_speed_lp_trace.json") : "";
    prof.reset();
    const bench::SimSpeedPoint mlp = bench::sim_speed_multi_lp(
        kNodes, workers, kIters, instrument ? &reg : nullptr, lp_trace);
    // Barrier share: wall time in lp.barrier_wait over all workers'
    // top-level zone time — the scale-out tax the profiler was built to
    // expose (compute shrinks with workers, the barrier does not).
    const auto barrier = prof.totals("lp.barrier_wait");
    const std::uint64_t top = prof.toplevel_ns();
    const double bshare =
        top ? static_cast<double>(barrier.ns) / static_cast<double>(top) : 0;
    const std::string scope = "mlp_w" + std::to_string(workers) + ".";
    if (prof_on) prof.export_metrics(wall, scope.c_str());
    if (instrument)
      std::printf("per-LP scheduler timeline: %s\n", lp_trace.c_str());
    const double speedup =
        seq.wall_s > 0 && mlp.wall_s > 0 ? seq.wall_s / mlp.wall_s : 0;
    std::printf("%-14s %14.0f %12llu %12.1f %9.1f%% %10s   speedup %.2fx\n",
                ("multi-lp w" + std::to_string(workers)).c_str(),
                mlp.events_per_sec,
                static_cast<unsigned long long>(mlp.events), 1e3 * mlp.wall_s,
                100.0 * bshare, "-", speedup);
    const std::string prefix = "sim_speed.mlp_w" + std::to_string(workers);
    reg.counter(prefix + "_events_per_sec")
        .add(static_cast<std::uint64_t>(mlp.events_per_sec));
    reg.counter(prefix + "_speedup_x1000")
        .add(static_cast<std::uint64_t>(1000.0 * speedup));
    wall.counter("wall.barrier_share.w" + std::to_string(workers) + "_x1000")
        .add(static_cast<std::uint64_t>(1000.0 * bshare));
    if (workers == 4) w4_speedup = speedup;
  }
  std::printf("4-worker speedup over sequential: %.2fx (on %u hardware "
              "threads)\n",
              w4_speedup, std::thread::hardware_concurrency());
  reg.counter("sim_speed.hardware_threads")
      .add(std::thread::hardware_concurrency());
  bench::emit_metrics_json("sim_speed", reg);
  if (prof_on) {
    std::printf("(host-time profile: %zu zones over %zu threads, clock %s)\n",
                prof.num_zones(), prof.num_threads(), prof.clock_name());
    bench::emit_metrics_json("sim_speed_wall", wall);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  run_scaleout_kpi();
  return 0;
}
