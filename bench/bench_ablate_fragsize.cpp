// Ablation: fragment payload size.  The paper uses page-based (4 kB)
// fragments; jumbo frames would allow two pages per frame (8 kB), and
// smaller fragments stress the per-frame costs.  Sweeps the fragment
// size for the no-offload and offloaded receive paths.
#include <cstdio>

#include "common.hpp"

using namespace openmx;
using namespace openmx::bench;

int main() {
  const std::size_t frag_sizes[] = {2048, 4096, 8192};
  const auto msg_sizes = size_sweep(64 * sim::KiB, 4 * sim::MiB);

  for (bool ioat : {false, true}) {
    std::printf("=== %s receive, fragment-size sweep ===\n",
                ioat ? "I/OAT-offloaded" : "memcpy");
    std::printf("%-10s", "size");
    for (std::size_t f : frag_sizes)
      std::printf("   frag-%-6s", size_label(f).c_str());
    std::printf(" [MiB/s]\n");
    for (std::size_t s : msg_sizes) {
      std::printf("%-10s", size_label(s).c_str());
      for (std::size_t f : frag_sizes) {
        core::OmxConfig cfg = ioat ? cfg_omx_ioat() : cfg_omx();
        cfg.frag_payload = f;
        const int iters = s >= sim::MiB ? 5 : 12;
        std::printf("   %11.0f", pingpong_mibs(cfg, s, iters));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("takeaway: per-frame costs make 2 kB fragments lose on the\n"
              "memcpy path; 8 kB (two-page jumbo) fragments halve the\n"
              "per-frame overhead and the descriptor count — the paper's\n"
              "page-based choice is the portable middle ground.\n");
  return 0;
}
