// Bench regression guard: recomputes the scalar metrics that map onto
// the paper's figures and compares them against the committed baselines
// in bench/baselines/guard.json, each with its own tolerance band.  The
// simulation is deterministic, so any drift outside a band means a code
// change altered modeled behavior — the guard runs as a tier-1 ctest and
// fails the build until the change is either fixed or the baseline is
// deliberately refreshed:
//
//   refresh:  ./build/bench/bench_guard --write bench/baselines/guard.json
//   check:    ./build/bench/bench_guard --check bench/baselines/guard.json
//
// The metric set covers Fig. 3 (throughput without copy), Fig. 8
// (I/OAT throughput + DMA/ingress overlap), Fig. 9 (receive-side CPU
// and DMA utilization), Fig. 10 (intra-node shared memory), and the
// latency-attribution blame fractions, so attribution drift fails the
// build too.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "flow_xval.hpp"
#include "lp_mesh.hpp"
#include "obs/attrib.hpp"
#include "obs/flight.hpp"
#include "obs/wallprof.hpp"

using namespace openmx;

namespace {

struct Metric {
  std::string name;
  double value = 0;
  double tol = 0.05;  // relative tolerance band
};

/// Blame fraction of one or two categories within a size class of the
/// attribution report (share of the total partitioned time).
double blame_frac(const obs::AttribReport& report, std::uint64_t cls,
                  std::initializer_list<obs::Blame> blames) {
  auto it = report.classes().find(cls);
  if (it == report.classes().end()) return 0.0;
  double total = 0, picked = 0;
  for (std::size_t b = 0; b < obs::kNumBlames; ++b)
    total += static_cast<double>(it->second.blame_sum[b]);
  for (obs::Blame b : blames)
    picked +=
        static_cast<double>(it->second.blame_sum[static_cast<std::size_t>(b)]);
  return total > 0 ? picked / total : 0.0;
}

std::vector<Metric> compute_metrics() {
  std::vector<Metric> m;
  const std::size_t kM = sim::MiB;
  const std::size_t k256 = 256 * sim::KiB;

  // Fig. 3: large-message throughput, vanilla Open-MX vs. the
  // no-copy/zero-copy upper bound.
  m.push_back({"fig03.omx_1MB_mibs",
               bench::pingpong_mibs(bench::cfg_omx(), kM, 4), 0.05});
  m.push_back({"fig03.nocopy_1MB_mibs",
               bench::pingpong_mibs(bench::cfg_omx_nocopy(), kM, 4), 0.05});

  // Fig. 8: I/OAT receive offload across the knee of the curve.
  m.push_back({"fig08.omx_256kB_mibs",
               bench::pingpong_mibs(bench::cfg_omx(), k256, 6), 0.05});
  m.push_back({"fig08.ioat_256kB_mibs",
               bench::pingpong_mibs(bench::cfg_omx_ioat(), k256, 6), 0.05});
  m.push_back({"fig08.ioat_4MB_mibs",
               bench::pingpong_mibs(bench::cfg_omx_ioat(), 4 * kM, 3), 0.05});

  // Fig. 8 overlap + latency attribution at 1 MB (the instrumented run).
  bench::TracedResult tr =
      bench::traced_pingpong(bench::cfg_omx_ioat(), kM, 3,
                             bench::out_path("BENCH_guard_trace.json"), nullptr,
                             /*print_waterfall=*/false);
  if (tr.report.sum_mismatches()) {
    std::fprintf(stderr,
                 "bench_guard: %llu blame partitions do not sum to their "
                 "span totals\n",
                 static_cast<unsigned long long>(tr.report.sum_mismatches()));
    std::exit(1);
  }
  m.push_back({"fig08.overlap_1MB_us", tr.avg_overlap_us, 0.10});
  m.push_back({"attrib.1MB.wire_frac",
               blame_frac(tr.report, kM, {obs::Blame::Wire}), 0.10});
  m.push_back({"attrib.1MB.dma_frac",
               blame_frac(tr.report, kM,
                          {obs::Blame::DmaQueueWait, obs::Blame::DmaTransfer}),
               0.25});

  // Fig. 9: receive-side CPU and DMA utilization of a 1 MB stream.
  const bench::CpuUsage cu =
      bench::stream_cpu_usage(bench::cfg_omx_ioat(), kM, 8);
  m.push_back({"fig09.ioat_1MB_cpu_frac", cu.total(), 0.10});
  m.push_back({"fig09.ioat_1MB_dma_frac", cu.dma, 0.10});

  // Fig. 10: intra-node shared memory with I/OAT, shared-L2 placement.
  m.push_back(
      {"fig10.shm_1MB_mibs",
       sim::mib_per_second(
           kM, bench::local_pingpong_oneway(bench::cfg_omx_ioat(), kM, 4,
                                            /*core_a=*/0, /*core_b=*/1)),
       0.05});

  // Multi-LP engine: single-worker partitioned events/sec relative to
  // the sequential engine on the same ring mesh.  This is a wall-clock
  // ratio, so it is machine-normalized (both runs execute on the same
  // box) but still noisy — the generous band only catches a partitioned
  // path that suddenly costs multiples of the sequential one.  The
  // committed baseline is 1.0 with the barrier-backoff regression floor:
  // the w1 partitioned path must stay >= 0.95x of sequential (a
  // collapsing spin barrier shows up here first).
  {
    auto w1_parity = [] {
      const bench::SimSpeedPoint seq = bench::sim_speed_sequential(8, 12);
      const bench::SimSpeedPoint w1 = bench::sim_speed_multi_lp(8, 1, 12);
      return seq.events_per_sec > 0 ? w1.events_per_sec / seq.events_per_sec
                                    : 0;
    };
    double ratio = w1_parity();
    // Hard floor from the spin-barrier backoff fix: the partitioned path
    // must not fall below 0.95x of sequential.  One retry absorbs a
    // transient scheduler hiccup; two consecutive misses is a real
    // regression (the pre-backoff barrier measured 0.82x here).
    if (ratio < 0.95) ratio = std::max(ratio, w1_parity());
    if (ratio < 0.95) {
      std::fprintf(stderr,
                   "bench_guard: w1 parity %.3f below the 0.95 floor "
                   "(spin-barrier oversubscription regression?)\n",
                   ratio);
      std::exit(1);
    }
    m.push_back({"sim_speed.par_ratio_w1", ratio, 0.40});
  }

  // Always-on flight recorder: wall-clock throughput of the Fig. 8 I/OAT
  // ping-pong with the recorder ring attached, relative to the same run
  // without it.  The recorder is unconditionally on in production-style
  // runs, so its cost is contracted to < 3 %: ratio = t_off / t_on, and
  // the 0.97 hard floor is exactly that bound.  Wall-clock noise gets a
  // best-of-3 retry (same machine, back-to-back, so a real regression
  // fails all three).
  {
    auto recorder_ratio = [] {
      auto workload = [](bool rec) {
        using clock = std::chrono::steady_clock;
        const auto t0 = clock::now();
        for (int r = 0; r < 4; ++r) {
          bench::Cluster cluster;
          cluster.add_nodes(2, bench::cfg_omx_ioat());
          obs::FlightRecorder fr(1, 256);
          if (rec) cluster.engine().trace().attach_flight(&fr, 0);
          bench::run_pingpong(cluster, 256 * sim::KiB, 12, 1);
        }
        return std::chrono::duration<double>(clock::now() - t0).count();
      };
      workload(false);  // warm caches/allocator
      const double off = workload(false);
      const double on = workload(true);
      return on > 0 ? off / on : 0.0;
    };
    double ratio = recorder_ratio();
    if (ratio < 0.97) ratio = std::max(ratio, recorder_ratio());
    if (ratio < 0.97) ratio = std::max(ratio, recorder_ratio());
    if (ratio < 0.97) {
      std::fprintf(stderr,
                   "bench_guard: recorder ratio %.3f below the 0.97 floor "
                   "(always-on flight ring costs more than 3%%)\n",
                   ratio);
      std::exit(1);
    }
    m.push_back({"obs.recorder_overhead", ratio, 0.10});
  }

  // Wall-clock self-profiler: the same contract as the flight recorder —
  // zones are compiled in and enabled by default, so their cost on a
  // realistic event mix is pinned below 3 % (ratio = t_off / t_on with
  // the 0.97 hard floor, best-of-3 against scheduler noise).
  {
    obs::WallProfiler& prof = obs::WallProfiler::instance();
    const bool was_enabled = prof.enabled();
    auto wallprof_ratio = [&prof] {
      auto workload = [&prof](bool on) {
        prof.set_enabled(on);
        using clock = std::chrono::steady_clock;
        const auto t0 = clock::now();
        // ~0.2 s per side: long enough that scheduler jitter stays well
        // inside the 3 % budget the floor below enforces.
        for (int r = 0; r < 8; ++r) {
          bench::Cluster cluster;
          cluster.add_nodes(2, bench::cfg_omx_ioat());
          bench::run_pingpong(cluster, 256 * sim::KiB, 12, 1);
        }
        return std::chrono::duration<double>(clock::now() - t0).count();
      };
      workload(false);  // warm caches/allocator
      const double off = workload(false);
      const double on = workload(true);
      return on > 0 ? off / on : 0.0;
    };
    double ratio = wallprof_ratio();
    if (ratio < 0.97) ratio = std::max(ratio, wallprof_ratio());
    if (ratio < 0.97) ratio = std::max(ratio, wallprof_ratio());
    prof.set_enabled(was_enabled);
    if (ratio < 0.97) {
      std::fprintf(stderr,
                   "bench_guard: wallprof ratio %.3f below the 0.97 floor "
                   "(scoped zones cost more than 3%%)\n",
                   ratio);
      std::exit(1);
    }
    m.push_back({"obs.wallprof_overhead", ratio, 0.10});
  }

  // Hybrid-fidelity cross-validation: the fluid FlowNetwork against the
  // exact packet engine on the same ping-pong curves.  Both sides are
  // deterministic simulations, so these ratios are machine-independent
  // and the bands can be tight; a committed value near 1.0 is the
  // acceptance criterion that flow-level curves track the packet-level
  // figure baselines.
  {
    const core::OmxConfig nc = bench::cfg_omx_nocopy();
    const sim::Time ov = bench::flow_calibrate_pingpong(nc);
    m.push_back({"xval.pingpong_256kB_ratio",
                 bench::xval_pingpong_ratio(nc, k256, 6, ov), 0.05});
    m.push_back({"xval.pingpong_1MB_ratio",
                 bench::xval_pingpong_ratio(nc, kM, 4, ov), 0.05});
    m.push_back({"xval.pingpong_4MB_ratio",
                 bench::xval_pingpong_ratio(nc, 4 * kM, 3, ov), 0.05});
    const sim::Time ov_imb = bench::flow_calibrate_imb(nc);
    m.push_back({"xval.imb_pingpong_1MB_ratio",
                 bench::xval_imb_ratio(nc, kM, 4, ov_imb), 0.05});
    // Solver throughput, measured as an integer-derived invariant rather
    // than wall clock: flow-visits per completed flow on the canonical
    // disjoint-pair background workload.  Growth here means incremental
    // re-solve stopped being O(component).
    m.push_back({"flow.solver_visits_per_flow",
                 bench::flow_solver_visits_per_flow(1024, 4), 0.25});
  }
  return m;
}

bool write_baseline(const std::vector<Metric>& metrics,
                    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_guard: cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs("{\n", f);
  for (std::size_t i = 0; i < metrics.size(); ++i)
    std::fprintf(f, "  \"%s\": {\"value\": %.6f, \"tol\": %.2f}%s\n",
                 metrics[i].name.c_str(), metrics[i].value, metrics[i].tol,
                 i + 1 < metrics.size() ? "," : "");
  std::fputs("}\n", f);
  std::fclose(f);
  std::printf("baseline written to %s (%zu metrics)\n", path.c_str(),
              metrics.size());
  return true;
}

/// Minimal parser for the flat baseline format written above: one
/// `"name": {"value": v, "tol": t}` entry per line.
std::vector<Metric> read_baseline(const std::string& path) {
  std::vector<Metric> out;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) {
    std::fprintf(stderr, "bench_guard: cannot read %s\n", path.c_str());
    return out;
  }
  char line[512];
  while (std::fgets(line, sizeof line, f)) {
    char name[128];
    double value = 0, tol = 0;
    if (std::sscanf(line, " \"%127[^\"]\": {\"value\": %lf, \"tol\": %lf}",
                    name, &value, &tol) == 3)
      out.push_back({name, value, tol});
  }
  std::fclose(f);
  return out;
}

int check_against(const std::vector<Metric>& current,
                  const std::string& path) {
  const std::vector<Metric> baseline = read_baseline(path);
  if (baseline.empty()) {
    std::fprintf(stderr,
                 "bench_guard: no metrics parsed from %s — refresh it with "
                 "--write\n",
                 path.c_str());
    return 1;
  }
  int failures = 0;
  std::printf("%-26s %12s %12s %8s  %s\n", "metric", "baseline", "current",
              "drift", "band");
  for (const Metric& b : baseline) {
    const Metric* c = nullptr;
    for (const Metric& m : current)
      if (m.name == b.name) c = &m;
    if (!c) {
      std::printf("%-26s %12.4f %12s %8s  MISSING\n", b.name.c_str(), b.value,
                  "-", "-");
      ++failures;
      continue;
    }
    const double scale = std::max(std::fabs(b.value), 1e-9);
    const double drift = (c->value - b.value) / scale;
    const bool ok = std::fabs(drift) <= b.tol;
    std::printf("%-26s %12.4f %12.4f %+7.1f%%  +-%.0f%%%s\n", b.name.c_str(),
                b.value, c->value, 100.0 * drift, 100.0 * b.tol,
                ok ? "" : "  FAIL");
    if (!ok) ++failures;
  }
  for (const Metric& m : current) {
    bool known = false;
    for (const Metric& b : baseline)
      if (b.name == m.name) known = true;
    if (!known)
      std::printf("%-26s %12s %12.4f  (not in baseline — refresh with "
                  "--write)\n",
                  m.name.c_str(), "-", m.value);
  }
  if (failures) {
    std::printf("\nbench_guard: %d metric(s) drifted outside their band.\n"
                "If the change is intentional, refresh the baseline:\n"
                "  ./build/bench/bench_guard --write bench/baselines/"
                "guard.json\n",
                failures);
    return 1;
  }
  std::printf("\nbench_guard: all %zu figure-mapped metrics within "
              "tolerance\n",
              baseline.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "--check";
  std::string path = "bench/baselines/guard.json";
  if (argc >= 2) mode = argv[1];
  if (argc >= 3) path = argv[2];
  if (mode != "--check" && mode != "--write") {
    std::fprintf(stderr, "usage: bench_guard [--check|--write] [guard.json]\n");
    return 2;
  }
  const std::vector<Metric> metrics = compute_metrics();
  if (mode == "--write") return write_baseline(metrics, path) ? 0 : 1;
  return check_against(metrics, path);
}
