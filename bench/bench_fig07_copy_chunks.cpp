// Figure 7: "Comparison of pipelined memcpy and I/OAT copy performance
// using 256 bytes, 1 kB and 4 kB chunks."
//
// Paper reference points: memcpy barely degrades with chunk size and
// saturates near 1.5-1.6 GiB/s out of cache; I/OAT sustains ~2.4 GiB/s
// with 4 kB (page) chunks but collapses with 256 B chunks because each
// chunk costs a descriptor submission; the two cross near 1 kB chunks.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "dma/ioat.hpp"
#include "mem/memcpy_model.hpp"

using namespace openmx;
using namespace openmx::bench;

namespace {

/// Pipelined CPU memcpy of `total` bytes in `chunk` pieces, uncached
/// stream (the benchmark copies a fresh data set every iteration).
double memcpy_mibs(std::size_t total, std::size_t chunk) {
  const mem::MemcpyModel model;
  const sim::Time t = model.duration(total, chunk, 0.0, false);
  return sim::mib_per_second(total, t);
}

/// Pipelined I/OAT copy: the CPU submits chunk descriptors back to back
/// while the engine drains them; total time is the later of the two
/// pipelines, measured in a real simulation of the engine.
double ioat_mibs(std::size_t total, std::size_t chunk,
                 openmx::obs::Registry* metrics = nullptr) {
  sim::Engine engine;
  dma::IoatEngine io(engine);
  mem::Buffer src(total), dst(total);
  sim::Time cpu_time = 0;
  std::uint64_t last = 0;
  for (std::size_t off = 0; off < total; off += chunk) {
    const std::size_t n = std::min(chunk, total - off);
    // CPU-side submission cost paces the submissions.
    cpu_time += io.submit_cost(1);
    last = io.submit(0, src.data() + off, dst.data() + off, n);
  }
  engine.run();
  const sim::Time done = std::max(cpu_time, io.cookie_done_time(0, last));
  if (metrics) metrics->merge(io.counters());
  return sim::mib_per_second(total, done);
}

}  // namespace

int main() {
  const auto sizes = size_sweep(256, sim::MiB);
  const std::size_t chunks[] = {4096, 1024, 256};
  obs::Registry metrics;
  obs::Histogram& h_chunk = metrics.histogram("fig07.chunk_bytes");

  std::printf("=== Figure 7: pipelined memcpy vs I/OAT copy throughput ===\n");
  std::printf("%-10s", "size");
  for (std::size_t c : chunks) std::printf("   memcpy-%-5s", size_label(c).c_str());
  for (std::size_t c : chunks) std::printf("   ioat-%-7s", size_label(c).c_str());
  std::printf("  [MiB/s]\n");
  for (std::size_t s : sizes) {
    std::printf("%-10s", size_label(s).c_str());
    for (std::size_t c : chunks) std::printf("   %12.0f", memcpy_mibs(s, c));
    for (std::size_t c : chunks) {
      std::printf("   %12.0f", ioat_mibs(s, c, &metrics));
      h_chunk.add(c, s / c);
    }
    std::printf("\n");
  }

  std::printf("\npaper: I/OAT ~2.4 GiB/s with 4kB chunks vs memcpy ~1.5 "
              "GiB/s; I/OAT loses below ~1kB chunks\n");
  std::printf("measured at 1MB: ioat-4kB %.0f MiB/s, memcpy-4kB %.0f MiB/s, "
              "ioat-256B %.0f MiB/s\n",
              ioat_mibs(sim::MiB, 4096), memcpy_mibs(sim::MiB, 4096),
              ioat_mibs(sim::MiB, 256));
  emit_metrics_json("fig07_copy_chunks", metrics);
  return 0;
}
